//! Cross-crate semantic checks: every transforming pass must preserve the
//! observable behaviour of every workload (same return value under the
//! simulator's functional execution).

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels;
use mao_corpus::spec::{spec2000_benchmark, spec2006_benchmark};
use mao_corpus::Workload;
use mao_sim::{run_functional, Program};

const TRANSFORMING_PASSES: &[&str] = &[
    "REDZEXT",
    "REDTEST",
    "REDMOV",
    "ADDADD",
    "CONSTFOLD",
    "DCE",
    "SCHED",
    "LOOP16",
    "LSDFIT",
    "BRALIGN",
    "NOPKILL",
    "NOPIN=seed[3],density[0.1]",
    "INSTPREP",
    // Bounded budgets keep the search fast; what it does rewrite must
    // preserve semantics like any other pass.
    "SUPEROPT=seed[1],max-window[6],diff-states[3],iters[24],max-candidates[48]",
];

fn check_workload(w: &Workload) {
    mao_superopt::register();
    let base_unit = MaoUnit::parse(&w.asm).expect("workload parses");
    let base_prog = Program::load(&base_unit).expect("workload loads");
    let (base_ret, base_count) =
        run_functional(&base_prog, &w.entry, &w.args, 50_000_000).expect("workload runs");

    for pass in TRANSFORMING_PASSES {
        let mut unit = base_unit.clone();
        let invs = parse_invocations(pass).expect("valid pass string");
        run_pipeline(&mut unit, &invs, None)
            .unwrap_or_else(|e| panic!("{pass} failed on {}: {e}", w.name));
        let prog = Program::load(&unit)
            .unwrap_or_else(|e| panic!("{pass} broke loading of {}: {e}", w.name));
        let (ret, count) = run_functional(&prog, &w.entry, &w.args, 50_000_000)
            .unwrap_or_else(|e| panic!("{pass} broke execution of {}: {e}", w.name));
        assert_eq!(
            ret, base_ret,
            "{pass} changed the result of {} ({base_ret:#x} -> {ret:#x})",
            w.name
        );
        // Sanity: deleting passes may shrink the dynamic count, inserters
        // may grow it, but never by more than 2x on these workloads.
        assert!(
            count <= base_count * 2 && count * 2 >= base_count,
            "{pass} changed dynamic instructions implausibly on {}: {base_count} -> {count}",
            w.name
        );
    }
}

#[test]
fn passes_preserve_kernel_semantics() {
    for w in [
        kernels::mcf_fig1(false, 60),
        kernels::eon_short_loop(3, 8, 12),
        kernels::hashing(false, 80),
        kernels::port_contention(60),
        kernels::lsd_loop(9, 60),
        kernels::image_nest(2, 30),
        kernels::streaming_with_hot_set(false, 32),
    ] {
        check_workload(&w);
    }
}

#[test]
fn passes_preserve_spec2000_semantics() {
    // A representative subset (the full suite runs in the experiments).
    for name in ["252.eon", "181.mcf", "175.vpr"] {
        let mut w = spec2000_benchmark(name).expect("known benchmark");
        // Shrink the workload: patch the outer iteration counts down.
        w.asm = w.asm.replace("movl $12000, %r10d", "movl $40, %r10d");
        check_workload(&w);
    }
}

#[test]
fn passes_preserve_spec2006_semantics() {
    for name in ["454.calculix", "464.h264ref"] {
        let w = spec2006_benchmark(name).expect("known benchmark");
        check_workload(&w);
    }
}

#[test]
fn pipeline_composition_preserves_semantics() {
    // The Fig. 7 combined set, all at once.
    let w = kernels::hashing(false, 100);
    let base = {
        let unit = MaoUnit::parse(&w.asm).expect("parses");
        let prog = Program::load(&unit).expect("loads");
        run_functional(&prog, &w.entry, &w.args, 10_000_000).expect("runs")
    };
    let mut unit = MaoUnit::parse(&w.asm).expect("parses");
    let invs =
        parse_invocations("REDMOV:REDTEST:LOOP16:NOPIN=seed[1],density[0.02]:SCHED:DCE:CONSTFOLD")
            .expect("valid");
    run_pipeline(&mut unit, &invs, None).expect("pipeline runs");
    let prog = Program::load(&unit).expect("loads");
    let after = run_functional(&prog, &w.entry, &w.args, 10_000_000).expect("runs");
    assert_eq!(base.0, after.0);
}
