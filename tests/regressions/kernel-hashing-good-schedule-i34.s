# mao-check: passes=MISOPT=mode[imm],nth[0]
# mao-check: path=oneshot
# mao-check: entry=hash_kernel
# mao-check: args=
# mao-check: expect=mismatch
hash_kernel:
	movl $0x9e3779b9, %ebx
