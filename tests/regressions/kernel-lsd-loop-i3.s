# mao-check: passes=MISOPT=mode[imm],nth[0]
# mao-check: path=oneshot
# mao-check: entry=lsd_kernel
# mao-check: args=
# mao-check: expect=mismatch
lsd_kernel:
	movq $1, %r10
	subq $1, %r10
	jne .L0
