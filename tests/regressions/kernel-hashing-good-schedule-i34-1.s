# mao-check: passes=ADDADD:MISOPT=mode[drop],nth[1]
# mao-check: path=oneshot
# mao-check: entry=hash_kernel
# mao-check: args=
# mao-check: expect=mismatch
hash_kernel:
	movl $0, %eax
	movl $0x9e3779b9, %ebx
