//! Telemetry determinism: the counters and span totals the observed
//! pipeline records must not depend on the worker count, just like the
//! assembly output itself. Wall-clock content (histograms, span durations)
//! is explicitly excluded from the comparison — that is the design split
//! the metrics registry encodes.

use std::collections::BTreeMap;
use std::sync::Arc;

use mao::pass::{parse_invocations, run_pipeline_observed, PipelineConfig};
use mao::{AnalysisCache, MaoUnit, Obs};
use mao_corpus::{generate, GeneratorConfig};

const PIPELINE: &str = "LFIND:REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD:DCE:SCHED";

/// Run the observed pipeline over a fixed corpus with a fresh telemetry
/// bundle and a fresh attached analysis cache.
fn run(jobs: usize) -> (String, Obs) {
    let corpus = generate(&GeneratorConfig::core_library(0.05));
    let mut unit = MaoUnit::parse(&corpus.asm).expect("generated corpus parses");
    let obs = Obs::aggregating();
    let analyses = Arc::new(AnalysisCache::new());
    analyses.attach_metrics(&obs.metrics);
    let invs = parse_invocations(PIPELINE).unwrap();
    run_pipeline_observed(
        &mut unit,
        &invs,
        None,
        &PipelineConfig { jobs },
        &analyses,
        &obs,
    )
    .expect("pipeline runs");
    (unit.emit(), obs)
}

#[test]
fn counter_totals_are_byte_identical_across_job_counts() {
    let (asm_seq, obs_seq) = run(1);
    let (asm_par, obs_par) = run(8);
    assert_eq!(asm_seq, asm_par, "output must not depend on the job count");
    let lines_seq = obs_seq.metrics.counter_lines();
    let lines_par = obs_par.metrics.counter_lines();
    assert!(
        !lines_seq.is_empty(),
        "the observed pipeline must register counters"
    );
    assert_eq!(
        lines_seq, lines_par,
        "every counter (pass invocations, transformations, cache traffic, \
         functions processed) must be byte-identical across --jobs"
    );
    // Sanity: the pipeline actually counted work, not just zeros.
    assert!(
        obs_seq
            .metrics
            .counter_value("mao_functions_processed_total")
            > 0
    );
    assert!(lines_seq.contains("mao_pass_invocations_total{pass=\"DCE\"} 1"));
}

#[test]
fn span_total_counts_are_identical_across_job_counts() {
    let (_, obs_seq) = run(1);
    let (_, obs_par) = run(8);
    let counts = |obs: &Obs| -> BTreeMap<(String, String), u64> {
        obs.recorder
            .totals()
            .into_iter()
            .map(|t| ((t.cat, t.name), t.count))
            .collect()
    };
    let seq = counts(&obs_seq);
    assert!(!seq.is_empty(), "aggregating recorder must see spans");
    assert_eq!(
        seq,
        counts(&obs_par),
        "per-(cat, name) span counts must not depend on the job count"
    );
    // One pass span per invocation, one function span per (function, pass).
    assert_eq!(seq.get(&("pass".into(), "DCE".into())), Some(&1));
    assert!(seq.keys().any(|(cat, _)| cat == "function"));
}

#[test]
fn prometheus_render_of_a_live_run_validates() {
    let (_, obs) = run(2);
    let text = obs.metrics.render_prometheus();
    mao::obs::prom::validate(&text).expect("exposition text validates");
    assert!(text.contains("# TYPE mao_pass_wall_us histogram"), "{text}");
}
