//! Replay the persisted regression corpus (`tests/regressions/*.s`).
//!
//! Every file was produced by `mao check` catching a failure and
//! shrinking it; see `crates/check/src/regress.rs` for the header format.
//! `expect=pass` files assert a once-broken pass now preserves semantics;
//! `expect=mismatch` files assert the checker still catches the
//! deliberately injected miscompile (a standing canary for the oracle).
//! New failures found by `mao check --regress-dir tests/regressions` are
//! picked up here automatically — no per-file test registration.

use std::path::Path;

use mao_check::paths::PathRunner;
use mao_check::regress::load_dir;

#[test]
fn persisted_regressions_replay() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let corpus = load_dir(&dir).expect("regression corpus parses");
    assert!(
        !corpus.is_empty(),
        "tests/regressions/ is empty — the seeded corpus is missing"
    );
    let runner = PathRunner::new(2);
    let mut failed = Vec::new();
    for regression in &corpus {
        if let Err(e) = regression.replay(&runner) {
            failed.push(e);
        }
    }
    assert!(
        failed.is_empty(),
        "{} regression(s) failed replay:\n{}",
        failed.len(),
        failed.join("\n")
    );
}
