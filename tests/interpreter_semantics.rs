//! Focused semantics tests for the simulator's interpreter: each supported
//! instruction family computes the architecturally correct result. The
//! functional layer must be exact — the timing layer is approximate, but a
//! wrong *value* would silently corrupt every experiment.

use mao::MaoUnit;
use mao_sim::{run_functional, Program};

fn run(body: &str, args: &[u64]) -> u64 {
    let asm = format!(".type f, @function\nf:\n{body}\tret\n");
    let unit = MaoUnit::parse(&asm).expect("parses");
    let p = Program::load(&unit).expect("loads");
    run_functional(&p, "f", args, 1_000_000).expect("runs").0
}

#[test]
fn adc_sbb_carry_chains() {
    // 64-bit add of (2^64-1) + 1 via 32-bit halves with adc.
    let v = run(
        "\tmovl $0xffffffff, %eax\n\tmovl $1, %ecx\n\taddl %ecx, %eax\n\tmovl $0, %edx\n\tadcl $0, %edx\n\tmovl %edx, %eax\n",
        &[],
    );
    assert_eq!(v, 1, "carry out of the low half feeds adc");
    let v = run(
        "\tmovl $0, %eax\n\tsubl $1, %eax\n\tmovl $5, %ebx\n\tsbbl $0, %ebx\n\tmovl %ebx, %eax\n",
        &[],
    );
    assert_eq!(v, 4, "borrow feeds sbb");
}

#[test]
fn cmov_not_taken_keeps_dest() {
    let v = run(
        "\tmovl $7, %eax\n\tmovl $9, %ecx\n\tcmpl $100, %eax\n\tcmovg %ecx, %eax\n",
        &[],
    );
    assert_eq!(v, 7);
}

#[test]
fn setcc_writes_single_byte() {
    let v = run(
        "\tmovl $0xffffff00, %eax\n\tcmpl $0, %ecx\n\tsete %al\n",
        &[],
    );
    assert_eq!(v, 0xffffff01, "sete merges into the low byte only");
}

#[test]
fn xchg_register_and_memory() {
    let v = run(
        "\tmovq $1, %rax\n\tmovq $2, %rbx\n\txchg %rax, %rbx\n\taddq %rbx, %rax\n",
        &[],
    );
    assert_eq!(v, 3);
    let v = run(
        "\tmovq $5, -8(%rsp)\n\tmovq $7, %rax\n\txchg %rax, -8(%rsp)\n\taddq -8(%rsp), %rax\n",
        &[],
    );
    assert_eq!(v, 12, "xchg with memory swaps both sides");
}

#[test]
fn push_pop_and_leave() {
    let v = run(
        "\tpush %rbp\n\tmov %rsp, %rbp\n\tpushq $42\n\tpop %rax\n\tleave\n",
        &[],
    );
    assert_eq!(v, 42);
}

#[test]
fn rotates() {
    assert_eq!(run("\tmovl $0x80000000, %eax\n\troll $4, %eax\n", &[]), 0x8);
    assert_eq!(run("\tmovl $1, %eax\n\trorl $1, %eax\n", &[]), 0x80000000);
}

#[test]
fn signed_division_signs() {
    // -7 / 2 = -3 rem -1 (C semantics).
    let v = run(
        "\tmovl $-7, %eax\n\tcltd\n\tmovl $2, %ecx\n\tidivl %ecx\n",
        &[],
    );
    assert_eq!(v as u32 as i32, -3);
    let v = run(
        "\tmovl $-7, %eax\n\tcltd\n\tmovl $2, %ecx\n\tidivl %ecx\n\tmovl %edx, %eax\n",
        &[],
    );
    assert_eq!(v as u32 as i32, -1);
}

#[test]
fn unsigned_division_uses_full_dividend() {
    // (1 << 40) / 3 via 64-bit div.
    let v = run(
        "\tmovq $0x10000000000, %rax\n\txorq %rdx, %rdx\n\tmovq $3, %rcx\n\tdivq %rcx\n",
        &[],
    );
    assert_eq!(v, 0x10000000000 / 3);
}

#[test]
fn movsx_widths() {
    assert_eq!(
        run("\tmovl $0x8000, %eax\n\tmovswl %ax, %eax\n", &[]) as u32,
        0xffff8000
    );
    assert_eq!(
        run("\tmovl $-1, %eax\n\tmovslq %eax, %rax\n", &[]),
        u64::MAX
    );
    assert_eq!(run("\tmovl $-1, %eax\n\tmovzwl %ax, %eax\n", &[]), 0xffff);
}

#[test]
fn float_comparison_flags() {
    // ucomiss: 2.0 > 1.0 -> neither ZF nor CF -> ja taken.
    let asm = r#"
	movl $0x40000000, %eax
	movd %eax, %xmm0
	movl $0x3f800000, %eax
	movd %eax, %xmm1
	ucomiss %xmm1, %xmm0
	ja .Lgt
	movl $0, %eax
	ret
.Lgt:
	movl $1, %eax
"#;
    assert_eq!(run(asm, &[]), 1);
}

#[test]
fn float_arithmetic_double() {
    // 1.5 + 2.25 = 3.75; truncate to 3.
    let bits15 = (1.5f64).to_bits();
    let bits225 = (2.25f64).to_bits();
    let asm = format!(
        "\tmovabs ${bits15}, %rax\n\tmovq %rax, -8(%rsp)\n\tmovsd -8(%rsp), %xmm0\n\tmovabs ${bits225}, %rax\n\tmovq %rax, -16(%rsp)\n\tmovsd -16(%rsp), %xmm1\n\taddsd %xmm1, %xmm0\n\tcvttsd2si %xmm0, %eax\n"
    );
    assert_eq!(run(&asm, &[]), 3);
}

#[test]
fn cvt_int_float_roundtrip() {
    let v = run(
        "\tmovl $41, %eax\n\tcvtsi2ss %eax, %xmm0\n\tmovl $1, %ecx\n\tcvtsi2ss %ecx, %xmm1\n\taddss %xmm1, %xmm0\n\tcvttss2si %xmm0, %eax\n",
        &[],
    );
    assert_eq!(v, 42);
}

#[test]
fn neg_and_not() {
    assert_eq!(run("\tmovl $5, %eax\n\tnegl %eax\n", &[]) as u32 as i32, -5);
    assert_eq!(run("\tmovl $0, %eax\n\tnotl %eax\n", &[]) as u32, u32::MAX);
}

#[test]
fn shift_counts_mask() {
    // 32-bit shifts mask the count to 5 bits: shll $33 == shll $1.
    assert_eq!(
        run("\tmovl $1, %eax\n\tmovl $33, %ecx\n\tshll %cl, %eax\n", &[]),
        2
    );
}

#[test]
fn memory_widths_partial_stores() {
    let v = run(
        "\tmovq $-1, %rax\n\tmovq %rax, -8(%rsp)\n\tmovb $0, -8(%rsp)\n\tmovq -8(%rsp), %rax\n",
        &[],
    );
    assert_eq!(v, 0xffff_ffff_ffff_ff00);
}

#[test]
fn nested_calls_and_stack_discipline() {
    let asm = r#"
	.type	f, @function
f:
	call g
	addq $1, %rax
	ret
	.size	f, .-f
	.type	g, @function
g:
	call h
	addq $10, %rax
	ret
	.size	g, .-g
	.type	h, @function
h:
	movq $100, %rax
	ret
	.size	h, .-h
"#;
    let unit = MaoUnit::parse(asm).expect("parses");
    let p = Program::load(&unit).expect("loads");
    let (v, _) = run_functional(&p, "f", &[], 1000).expect("runs");
    assert_eq!(v, 111);
}

#[test]
fn recursion_with_stack() {
    // factorial(5) via recursion.
    let asm = r#"
	.type	fact, @function
fact:
	cmpq $1, %rdi
	jg .Lrec
	movq $1, %rax
	ret
.Lrec:
	push %rdi
	subq $1, %rdi
	call fact
	pop %rdi
	imulq %rdi, %rax
	ret
	.size	fact, .-fact
"#;
    let unit = MaoUnit::parse(asm).expect("parses");
    let p = Program::load(&unit).expect("loads");
    let (v, _) = run_functional(&p, "fact", &[5], 10_000).expect("runs");
    assert_eq!(v, 120);
}

#[test]
fn timed_and_functional_agree() {
    use mao_sim::{simulate, SimOptions, UarchConfig};
    let asm = ".type f, @function\nf:\n\tmovl $7, %eax\n\timull $6, %eax, %eax\n\tret\n";
    let unit = MaoUnit::parse(asm).expect("parses");
    let p = Program::load(&unit).expect("loads");
    let (functional, _) = run_functional(&p, "f", &[], 100).expect("runs");
    let timed = simulate(
        &unit,
        "f",
        &[],
        &UarchConfig::core2(),
        &SimOptions::default(),
    )
    .expect("runs");
    assert_eq!(functional, timed.ret);
    assert_eq!(functional, 42);
}
