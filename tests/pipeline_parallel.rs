//! Parallel-pipeline determinism: running the function-level passes over a
//! multi-function corpus must produce byte-identical assembly for every job
//! count, and the shared analysis cache must actually get hits across
//! passes.

use mao::pass::{parse_invocations, run_pipeline_with, PipelineConfig};
use mao::MaoUnit;
use mao_corpus::{generate, GeneratorConfig};

/// The function-level default pipeline (every pass migrated to the parallel
/// driver; unit-global layout passes are exercised separately below).
const PIPELINE: &str = "MAOPASS:LFIND:REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD:DCE:SCHED";

fn corpus_unit(scale: f64) -> MaoUnit {
    let corpus = generate(&GeneratorConfig::core_library(scale));
    MaoUnit::parse(&corpus.asm).expect("generated corpus parses")
}

fn run_with_jobs(jobs: usize, scale: f64) -> (String, mao::PipelineReport) {
    let mut unit = corpus_unit(scale);
    let invs = parse_invocations(PIPELINE).unwrap();
    let report =
        run_pipeline_with(&mut unit, &invs, None, &PipelineConfig { jobs }).expect("pipeline runs");
    (unit.emit(), report)
}

#[test]
fn jobs_1_and_8_are_byte_identical() {
    // ~40 functions: enough that work stealing interleaves worker order.
    let (seq, seq_report) = run_with_jobs(1, 0.05);
    let (par, par_report) = run_with_jobs(8, 0.05);
    assert_eq!(seq, par, "assembly must not depend on the job count");
    assert!(
        seq_report.total_transformations() > 0,
        "the corpus must exercise the passes ({:?})",
        seq_report.passes
    );
    assert_eq!(
        seq_report
            .passes
            .iter()
            .map(|(n, s)| (n.clone(), s.transformations, s.matches))
            .collect::<Vec<_>>(),
        par_report
            .passes
            .iter()
            .map(|(n, s)| (n.clone(), s.transformations, s.matches))
            .collect::<Vec<_>>(),
        "per-pass stats must not depend on the job count"
    );
    assert_eq!(
        seq_report.trace, par_report.trace,
        "trace output must not depend on the job count"
    );
}

#[test]
fn auto_jobs_matches_sequential() {
    let (seq, _) = run_with_jobs(1, 0.02);
    let (auto, _) = run_with_jobs(0, 0.02); // 0 = available parallelism
    assert_eq!(seq, auto);
}

#[test]
fn analysis_cache_gets_hits_across_passes() {
    // Several passes request the same functions' CFGs; functions the early
    // passes did not edit must be served from the cache.
    let (_, report) = run_with_jobs(4, 0.02);
    assert!(
        report.cache.hits > 0,
        "expected cross-pass cache hits, got {:?}",
        report.cache
    );
    assert!(report.cache.misses > 0);
}

/// The layout-global passes (LOOP16, BRALIGN, INSTPREP's phase 2) stay on
/// the sequential path by design, but must still behave identically under a
/// parallel PipelineConfig.
#[test]
fn layout_passes_unaffected_by_jobs() {
    let invs = parse_invocations("INSTPREP:LOOP16:BRALIGN").unwrap();
    let mut a = corpus_unit(0.01);
    let mut b = corpus_unit(0.01);
    run_pipeline_with(&mut a, &invs, None, &PipelineConfig { jobs: 1 }).unwrap();
    run_pipeline_with(&mut b, &invs, None, &PipelineConfig { jobs: 8 }).unwrap();
    assert_eq!(a.emit(), b.emit());
}
