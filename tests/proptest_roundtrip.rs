//! Property-based tests over the core data structures: random instructions
//! must survive the emit/parse round trip, encode within architectural
//! limits, and relax monotonically.

use proptest::prelude::*;

use mao::relax::relax;
use mao::MaoUnit;
use mao_x86::encode::{encoded_length, BranchForm};
use mao_x86::insn::Instruction;
use mao_x86::operand::{Mem, Operand};
use mao_x86::reg::{Reg, RegId, Width};

fn gpr() -> impl Strategy<Value = RegId> {
    prop::sample::select(RegId::GPRS.to_vec())
}

fn width() -> impl Strategy<Value = Width> {
    prop::sample::select(vec![Width::B1, Width::B2, Width::B4, Width::B8])
}

fn scale() -> impl Strategy<Value = u8> {
    prop::sample::select(vec![1u8, 2, 4, 8])
}

/// Memory operands with all addressing shapes (no %rsp index — invalid).
fn mem() -> impl Strategy<Value = Mem> {
    (
        any::<i32>(),
        prop::option::of(gpr()),
        prop::option::of(gpr().prop_filter("rsp cannot index", |r| *r != RegId::Rsp)),
        scale(),
    )
        .prop_map(|(disp, base, index, scale)| {
            // A memory operand with no base, no index and no displacement
            // has no textual form; force an absolute address then.
            let disp = if disp == 0 && base.is_none() && index.is_none() {
                0x1000
            } else {
                disp
            };
            Mem {
                disp: if disp == 0 {
                    mao_x86::operand::Disp::None
                } else {
                    mao_x86::operand::Disp::Imm(i64::from(disp))
                },
                base: base.map(Reg::q),
                // A scale without an index register has no textual form.
                scale: if index.is_some() { scale } else { 1 },
                index: index.map(Reg::q),
            }
        })
}

/// A random two-operand ALU instruction in one of the encodable forms.
fn alu_instruction() -> impl Strategy<Value = Instruction> {
    let mnemonics = prop::sample::select(vec!["add", "sub", "and", "or", "xor", "cmp", "mov"]);
    (
        mnemonics,
        width(),
        gpr(),
        gpr(),
        mem(),
        any::<i32>(),
        0u8..4,
    )
        .prop_map(|(m, w, r1, r2, mem, imm, form)| {
            let reg = |id: RegId| match w {
                Width::B1 => Reg::b(id),
                Width::B2 => Reg::w(id),
                Width::B4 => Reg::l(id),
                _ => Reg::q(id),
            };
            // Clamp immediates into the operand width's encodable range.
            let imm_val = i64::from(imm) & (w.mask() as i64);
            let (src, dst): (Operand, Operand) = match form {
                0 => (reg(r1).into(), reg(r2).into()),
                1 => (Operand::Imm(imm_val), reg(r2).into()),
                2 => (reg(r1).into(), mem.into()),
                _ => (mem.into(), reg(r2).into()),
            };
            let name = format!("{m}{}", w.att_suffix().expect("GPR widths have suffixes"));
            Instruction::from_att(&name, vec![src, dst]).expect("ALU form parses")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Display -> parse -> display must be a fixed point, and the encoding
    /// length must be preserved exactly (the property relaxation needs).
    #[test]
    fn instruction_text_roundtrip(insn in alu_instruction()) {
        let text = format!("\t{insn}\n");
        let entries = mao_asm::parse(&text).expect("emitted instruction parses");
        prop_assert_eq!(entries.len(), 1);
        let back = entries[0].insn().expect("is an instruction");
        prop_assert_eq!(&insn, back);
        let l1 = encoded_length(&insn, BranchForm::Rel32).expect("encodes");
        let l2 = encoded_length(back, BranchForm::Rel32).expect("encodes");
        prop_assert_eq!(l1, l2);
    }

    /// Every encodable instruction is 1..=15 bytes (the x86 limit).
    #[test]
    fn encoded_lengths_are_architectural(insn in alu_instruction()) {
        let len = encoded_length(&insn, BranchForm::Rel32).expect("encodes");
        prop_assert!((1..=15).contains(&len));
    }

    /// Inserting NOPs never makes a branch encoding *shorter*, and
    /// relaxation always converges (the §II fixed point).
    #[test]
    fn relaxation_is_monotone_under_padding(pad in 0usize..200) {
        let body: String = "\tnop\n".repeat(pad);
        let asm = format!("f:\n\tjmp .Lend\n{body}.Lend:\n\tret\n");
        let unit = MaoUnit::parse(&asm).expect("parses");
        let layout = relax(&unit).expect("converges");
        let jmp = 1; // f: label is entry 0
        let expected = if pad <= 0x7f { 2 } else { 5 };
        prop_assert_eq!(layout.size[jmp], expected);
        prop_assert!(layout.iterations <= mao::relax::MAX_ITERATIONS);
    }

    /// The NOP padder always produces exactly the requested byte count.
    #[test]
    fn nop_pad_is_exact(len in 1usize..64) {
        let pad = Instruction::nop_pad(len);
        let total: usize = pad
            .iter()
            .map(|i| encoded_length(i, BranchForm::Rel32).expect("nop encodes"))
            .sum();
        prop_assert_eq!(total, len);
    }

    /// Parsing arbitrary junk must error, never panic.
    #[test]
    fn parser_never_panics(line in "[ -~]{0,60}") {
        let _ = mao_asm::parse(&line);
    }

    /// Random instruction streams survive the unit-level round trip.
    #[test]
    fn unit_roundtrip(insns in prop::collection::vec(alu_instruction(), 1..40)) {
        let mut asm = String::from("f:\n");
        for i in &insns {
            asm.push_str(&format!("\t{i}\n"));
        }
        asm.push_str("\tret\n");
        let a1 = MaoUnit::parse(&asm).expect("parses");
        let a2 = MaoUnit::parse(&a1.emit()).expect("re-parses");
        prop_assert_eq!(a1, a2);
    }
}

/// Named regression tests for instruction shapes proptest once found and
/// shrank (promoted from the opaque `.proptest-regressions` seed file so
/// the failure modes stay documented and always-run).
mod historical_regressions {
    use super::*;

    /// `addb $256, %al`: the immediate exceeds the 8-bit operand width.
    /// The strategy used to generate it unclamped and then panic on
    /// `encoded_length`; the fix masks immediates to the operand width in
    /// `alu_instruction`. The shape itself must keep behaving like this:
    /// constructible and text-round-trippable, but *rejected* by the
    /// encoder rather than silently truncated.
    #[test]
    fn imm_wider_than_operand_width_is_rejected_by_the_encoder() {
        let insn =
            Instruction::from_att("addb", vec![Operand::Imm(256), Reg::b(RegId::Rax).into()])
                .expect("parses at the AT&T layer");
        let text = format!("\t{insn}\n");
        let entries = mao_asm::parse(&text).expect("textual form reparses");
        assert_eq!(
            entries[0].insn(),
            Some(&insn),
            "text round trip is faithful"
        );
        let err =
            encoded_length(&insn, BranchForm::Rel32).expect_err("an 8-bit add cannot hold imm 256");
        assert!(
            format!("{err:?}").contains("imm8"),
            "rejection names the immediate width: {err:?}"
        );
    }

    /// `addb %al, <mem with no disp/base/index>`: a memory operand with no
    /// textual form. It displays as `addb %al, ` and reparses as a
    /// *one-operand* instruction, so the display/parse round trip is not
    /// faithful for this shape — which is why the `mem()` strategy forces
    /// an absolute displacement when all components are absent. This test
    /// pins the degenerate behavior the generator must keep avoiding.
    #[test]
    fn fully_empty_mem_operand_has_no_textual_form() {
        let empty = Mem {
            disp: mao_x86::operand::Disp::None,
            base: None,
            index: None,
            scale: 1,
        };
        let insn = Instruction::from_att("addb", vec![Reg::b(RegId::Rax).into(), empty.into()])
            .expect("constructible in memory");
        let text = format!("\t{insn}\n");
        let entries = mao_asm::parse(&text).expect("parses without panicking");
        let back = entries[0].insn().expect("still an instruction");
        assert_eq!(
            back.operands.len(),
            1,
            "the empty memory operand vanishes in the text round trip"
        );
        assert_ne!(back, &insn, "round trip is (knowingly) unfaithful here");
    }
}
