//! Small, fast versions of the headline experiments: every effect the paper
//! reports must have the right *direction* on the simulator. The full
//! magnitudes live in the `exp_*` binaries and EXPERIMENTS.md.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn cycles(asm: &str, entry: &str, args: &[u64], config: &UarchConfig) -> u64 {
    let unit = MaoUnit::parse(asm).expect("parses");
    simulate(&unit, entry, args, config, &SimOptions::default())
        .expect("runs")
        .pmu
        .cycles
}

fn optimized(asm: &str, passes: &str) -> String {
    let mut unit = MaoUnit::parse(asm).expect("parses");
    run_pipeline(&mut unit, &parse_invocations(passes).expect("valid"), None).expect("runs");
    unit.emit()
}

/// §III.C.e — a 15-byte loop crossing a 16-byte line is slower, and LOOP16
/// recovers it.
#[test]
fn crossing_loop_is_slower_and_loop16_fixes_it() {
    let config = UarchConfig::core2();
    // The kernel's entry code is 15 bytes: pad 1 puts the loop on a line
    // boundary, pad 4 puts it across one.
    let aligned = kernels::eon_short_loop(1, 8, 20_000);
    let crossing = kernels::eon_short_loop(4, 8, 20_000);
    let ca = cycles(&aligned.asm, &aligned.entry, &aligned.args, &config);
    let cc = cycles(&crossing.asm, &crossing.entry, &crossing.args, &config);
    assert!(cc > ca + ca / 20, "crossing {cc} vs aligned {ca}");

    let fixed = optimized(&crossing.asm, "LOOP16");
    let cf = cycles(&fixed, &crossing.entry, &crossing.args, &config);
    assert!(cf < cc, "LOOP16 {cf} improves on {cc}");
}

/// Figures 4/5 — a loop inside the LSD window is much faster; LSDFIT moves
/// an outside loop in.
#[test]
fn lsd_window_effect_and_lsdfit() {
    let config = UarchConfig::core2();
    let fitting = kernels::lsd_loop(6, 50_000); // 4 lines
    let spilling = kernels::lsd_loop(0, 50_000); // 5 lines
    let cf = cycles(&fitting.asm, &fitting.entry, &[], &config);
    let cs = cycles(&spilling.asm, &spilling.entry, &[], &config);
    assert!(
        cs as f64 > cf as f64 * 1.3,
        "5-line loop {cs} should be >=1.3x the 4-line loop {cf}"
    );
    let fixed = optimized(&spilling.asm, "LSDFIT");
    let cfx = cycles(&fixed, &spilling.entry, &[], &config);
    assert!(cfx < cs, "LSDFIT recovers: {cfx} < {cs}");
}

/// §III.C.g — aliased back branches mispredict; BRALIGN separates them.
#[test]
fn branch_aliasing_and_bralign() {
    let config = UarchConfig::core2();
    let nest = kernels::image_nest(0, 30_000);
    let unit = MaoUnit::parse(&nest.asm).expect("parses");
    let base = simulate(&unit, &nest.entry, &[], &config, &SimOptions::default()).expect("runs");
    assert!(
        base.pmu.mispredict_rate() > 0.2,
        "aliased nest mispredicts heavily: {:.2}",
        base.pmu.mispredict_rate()
    );
    let fixed = optimized(&nest.asm, "BRALIGN");
    let unit = MaoUnit::parse(&fixed).expect("parses");
    let after = simulate(&unit, &nest.entry, &[], &config, &SimOptions::default()).expect("runs");
    assert!(
        after.pmu.branch_mispredictions < base.pmu.branch_mispredictions / 4,
        "BRALIGN removes the conflict: {} -> {}",
        base.pmu.branch_mispredictions,
        after.pmu.branch_mispredictions
    );
}

/// §III.F — the forwarding-hostile schedule is slower with more RS_FULL
/// pressure; SCHED recovers the good order.
#[test]
fn schedule_order_and_sched_pass() {
    let config = UarchConfig::core2();
    let bad = kernels::hashing(false, 50_000);
    let good = kernels::hashing(true, 50_000);
    let unit_bad = MaoUnit::parse(&bad.asm).expect("parses");
    let unit_good = MaoUnit::parse(&good.asm).expect("parses");
    let rb = simulate(&unit_bad, &bad.entry, &[], &config, &SimOptions::default()).expect("runs");
    let rg = simulate(
        &unit_good,
        &good.entry,
        &[],
        &config,
        &SimOptions::default(),
    )
    .expect("runs");
    assert!(rb.pmu.cycles > rg.pmu.cycles);
    assert!(
        rb.pmu.rs_full_stalls > rg.pmu.rs_full_stalls * 2,
        "RS_FULL correlates with the bad order: {} vs {}",
        rb.pmu.rs_full_stalls,
        rg.pmu.rs_full_stalls
    );
    let fixed = optimized(&bad.asm, "SCHED");
    let cycles_fixed = cycles(&fixed, &bad.entry, &[], &config);
    assert!(cycles_fixed <= rg.pmu.cycles + rg.pmu.cycles / 50);
}

/// §III.E.k — a non-temporal stream stops evicting the hot set.
#[test]
fn prefetchnta_reduces_pollution() {
    let mut config = UarchConfig::core2();
    config.l1d.sets = 8;
    config.l1d.ways = 4;
    let plain = kernels::streaming_with_hot_set(false, 10_000);
    let nta = kernels::streaming_with_hot_set(true, 10_000);
    let up = MaoUnit::parse(&plain.asm).expect("parses");
    let un = MaoUnit::parse(&nta.asm).expect("parses");
    let rp = simulate(
        &up,
        &plain.entry,
        &plain.args,
        &config,
        &SimOptions::default(),
    )
    .expect("runs");
    let rn = simulate(&un, &nta.entry, &nta.args, &config, &SimOptions::default()).expect("runs");
    assert!(rn.pmu.l1d_misses * 4 < rp.pmu.l1d_misses);
    assert!(rn.pmu.cycles < rp.pmu.cycles);
}

/// §III.E.l — INSTPREP probes don't change behaviour and never cross lines.
#[test]
fn instprep_probes_are_patchable() {
    let w = kernels::hashing(true, 1_000);
    let fixed = optimized(&w.asm, "INSTPREP");
    assert!(
        fixed.contains("nopl 0(%rax,%rax,1)"),
        "5-byte probes planted"
    );
    let unit = MaoUnit::parse(&fixed).expect("parses");
    let layout = mao::relax(&unit).expect("relaxes");
    let probe = mao_x86::Instruction::nop_of_len(5);
    for (id, e) in unit.entries().iter().enumerate() {
        if e.insn() == Some(&probe) {
            let start = layout.addr[id];
            let end = layout.end_addr(id);
            assert_eq!(start / 64, (end - 1) / 64, "probe crosses a cache line");
        }
    }
}

/// The two simulated platforms behave differently — the §V.B premise.
#[test]
fn platforms_differ_on_the_same_code() {
    let w = kernels::port_contention(20_000);
    let intel = cycles(&w.asm, &w.entry, &[], &UarchConfig::core2());
    let amd = cycles(&w.asm, &w.entry, &[], &UarchConfig::opteron());
    assert_ne!(intel, amd);
}

/// §V.B — the calculix mechanism: REDTEST enables streaming on the AMD
/// profile (positive), NOPKILL breaks the protected loop (negative).
#[test]
fn calculix_pass_signs_on_amd() {
    use mao_corpus::spec::spec2006_benchmark;
    let w = spec2006_benchmark("454.calculix").expect("known benchmark");
    let amd = UarchConfig::opteron();
    let unit = MaoUnit::parse(&w.asm).expect("parses");
    let base = simulate(&unit, &w.entry, &w.args, &amd, &SimOptions::default()).expect("runs");
    for (pass, improves) in [("REDTEST", true), ("REDMOV", true), ("NOPKILL", false)] {
        let t = optimized(&w.asm, pass);
        let unit = MaoUnit::parse(&t).expect("parses");
        let after = simulate(&unit, &w.entry, &w.args, &amd, &SimOptions::default()).expect("runs");
        assert_eq!(base.ret, after.ret, "{pass} changed the result");
        if improves {
            assert!(
                after.pmu.cycles < base.pmu.cycles,
                "{pass} should speed calculix up: {} -> {}",
                base.pmu.cycles,
                after.pmu.cycles
            );
        } else {
            assert!(
                after.pmu.cycles > base.pmu.cycles,
                "{pass} should slow calculix down: {} -> {}",
                base.pmu.cycles,
                after.pmu.cycles
            );
        }
    }
}

/// §V.B — LOOP16 helps the mcf mechanism on AMD but is ~flat on Intel
/// (where the LSD streams the loop regardless of placement).
#[test]
fn loop16_platform_asymmetry() {
    use mao_corpus::spec::spec2000_benchmark;
    let w = spec2000_benchmark("181.mcf").expect("known benchmark");
    let fixed = optimized(&w.asm, "LOOP16");
    for (config, min_gain_pct) in [(UarchConfig::opteron(), 1.0), (UarchConfig::core2(), -0.5)] {
        let before = cycles(&w.asm, &w.entry, &[], &config);
        let after = cycles(&fixed, &w.entry, &[], &config);
        let gain = (before as f64 - after as f64) / before as f64 * 100.0;
        assert!(
            gain >= min_gain_pct,
            "{}: LOOP16 gain {gain:.2}% below {min_gain_pct}%",
            config.name
        );
    }
}
