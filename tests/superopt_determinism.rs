//! SUPEROPT determinism: the stochastic search is seeded per window
//! (splitmix over the explicit `--seed` and the canonical window key), so
//! the pass must produce byte-identical assembly for every job count and
//! for repeated runs with the same seed — and different output only when
//! the seed actually changes search decisions.

use mao::pass::{parse_invocations, run_pipeline_with, PipelineConfig};
use mao::MaoUnit;
use mao_corpus::{generate, GeneratorConfig};

/// Small fixed budgets: determinism is about search *decisions*, not depth.
fn spec(seed: u64) -> String {
    format!("SUPEROPT=seed[{seed}],max-window[5],diff-states[3],iters[16],max-candidates[32]")
}

fn run(seed: u64, jobs: usize) -> (String, mao::PipelineReport) {
    mao_superopt::register();
    let corpus = generate(&GeneratorConfig::core_library(0.01));
    let mut unit = MaoUnit::parse(&corpus.asm).expect("generated corpus parses");
    let invs = parse_invocations(&spec(seed)).unwrap();
    let report =
        run_pipeline_with(&mut unit, &invs, None, &PipelineConfig { jobs }).expect("pass runs");
    (unit.emit(), report)
}

#[test]
fn superopt_is_byte_identical_across_job_counts() {
    let (seq, seq_report) = run(42, 1);
    let (par, par_report) = run(42, 8);
    assert_eq!(seq, par, "assembly must not depend on the job count");
    assert_eq!(
        seq_report
            .passes
            .iter()
            .map(|(n, s)| (n.clone(), s.transformations, s.matches))
            .collect::<Vec<_>>(),
        par_report
            .passes
            .iter()
            .map(|(n, s)| (n.clone(), s.transformations, s.matches))
            .collect::<Vec<_>>(),
        "per-pass stats must not depend on the job count"
    );
}

#[test]
fn superopt_reruns_reproduce_exactly() {
    let (a, _) = run(7, 4);
    let (b, _) = run(7, 4);
    assert_eq!(a, b, "same seed, same corpus -> same bytes");
}
