//! The §III.A correctness harness: identity transformation.
//!
//! The paper: *"For each source file we take the compiler generated
//! assembly file A1 ... Then we run MAO on A1, construct the CFG and
//! perform loop recognition, and generate an assembly file A2 ... and
//! verify that both disassembled files are textually identical."*
//!
//! Without an external assembler, our equivalent checks are: (a) the
//! emitted text re-parses to an equal entry list, (b) per-entry encodings
//! (our "disassembly") are identical, and (c) the simulator produces
//! identical results and dynamic instruction counts.

use mao::cfg::Cfg;
use mao::loops::find_loops;
use mao::relax::relax;
use mao::MaoUnit;
use mao_corpus::compiler::{generate, GeneratorConfig};
use mao_corpus::kernels;
use mao_corpus::spec::{spec2000_int, spec2006_subset};
use mao_sim::{run_functional, Program};

/// Parse -> analyse -> emit -> parse must be the identity.
fn assert_identity(asm: &str, name: &str) {
    let a1 = MaoUnit::parse(asm).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    // "Construct the CFG and perform loop recognition" — the analyses must
    // not perturb the unit.
    for f in a1.functions() {
        let cfg = Cfg::build(&a1, &f);
        let _ = find_loops(&cfg);
    }
    let text = a1.emit();
    let a2 = MaoUnit::parse(&text)
        .unwrap_or_else(|e| panic!("{name}: emitted text failed to re-parse: {e}"));
    assert_eq!(a1, a2, "{name}: round-trip changed the unit");

    // The byte-level check: every instruction's encoded length must match.
    let l1 = relax(&a1).unwrap_or_else(|e| panic!("{name}: relax failed: {e}"));
    let l2 = relax(&a2).expect("same unit relaxes");
    assert_eq!(
        l1.size, l2.size,
        "{name}: encodings differ after round-trip"
    );
}

#[test]
fn kernels_round_trip() {
    for w in [
        kernels::mcf_fig1(false, 10),
        kernels::mcf_fig1(true, 10),
        kernels::eon_short_loop(3, 8, 5),
        kernels::hashing(true, 5),
        kernels::hashing(false, 5),
        kernels::port_contention(5),
        kernels::lsd_loop(7, 5),
        kernels::image_nest(4, 5),
        kernels::streaming_with_hot_set(true, 8),
    ] {
        assert_identity(&w.asm, &w.name);
    }
}

#[test]
fn synthetic_corpus_round_trips() {
    let corpus = generate(&GeneratorConfig::core_library(0.02));
    assert_identity(&corpus.asm, "core-library corpus");
}

#[test]
fn spec_suites_round_trip() {
    for w in spec2000_int().into_iter().chain(spec2006_subset()) {
        assert_identity(&w.asm, &w.name);
    }
}

#[test]
fn round_trip_preserves_execution() {
    for w in [
        kernels::mcf_fig1(false, 50),
        kernels::hashing(false, 50),
        kernels::lsd_loop(3, 50),
    ] {
        let a1 = MaoUnit::parse(&w.asm).expect("parses");
        let a2 = MaoUnit::parse(&a1.emit()).expect("re-parses");
        let p1 = Program::load(&a1).expect("loads");
        let p2 = Program::load(&a2).expect("loads");
        let r1 = run_functional(&p1, &w.entry, &w.args, 1_000_000).expect("runs");
        let r2 = run_functional(&p2, &w.entry, &w.args, 1_000_000).expect("runs");
        assert_eq!(r1, r2, "{}: execution diverged after round-trip", w.name);
    }
}
