#!/usr/bin/env bash
# CI gate: formatting, release build, the full workspace test suite, and an
# end-to-end daemon smoke test (start `mao serve`, round-trip a request via
# `mao client`, confirm a repeat is served from cache, query stats, scrape
# Prometheus metrics cold and warm, clean shutdown). Run from anywhere;
# exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

# Note: a bare `cargo test` at the root runs only the root package's suites;
# --workspace is what pulls in every crate (mao-serve's e2e tests included).
# This also replays the persisted regression corpus (tests/regressions.rs).
echo "==> cargo test"
cargo test -q --workspace

echo "==> relaxation equivalence smoke test"
cargo run --release -p mao-bench --bin bench_relax -- --smoke

# Differential correctness: a bounded fixed-seed sweep of every pass through
# every execution path, plus the fault-injection self-test that proves the
# oracle still catches deliberate miscompiles. Deep sweeps live in
# scripts/nightly_check.sh.
echo "==> differential check (smoke)"
# The smoke sweep now carries an ISA matrix leg: the aarch64 structural
# sweep must run (and pass) alongside the x86-64 differential matrix.
SMOKE_LOG=$(mktemp)
trap 'rm -f "$SMOKE_LOG"' EXIT
target/release/mao check --smoke | tee "$SMOKE_LOG"
grep -q 'aarch64 structural leg' "$SMOKE_LOG"
rm -f "$SMOKE_LOG"
trap - EXIT
target/release/mao check --inject-miscompile > /dev/null

echo "==> cost-model calibration smoke"
# Probe sweep on the deterministic sim backend, round-tripped through
# `--show`; the committed golden fixture must load; and a damaged table in
# every class — truncated, corrupted, version-skewed, not-a-table — must
# be rejected with its structured reason and never installed (the same
# validate-before-serve discipline as the serve disk store). The
# differential smoke then runs under the measured table and banners it.
PROBE_WORK=$(mktemp -d)
trap 'rm -rf "$PROBE_WORK"' EXIT
target/release/mao probe --sweep --profile core2 --seed 42 --trips 500 \
    --name ci-core2 -o "$PROBE_WORK/ci.mpt" > "$PROBE_WORK/sweep.log"
grep -q 'probe sweep: probe/sim on intel-core2-like' "$PROBE_WORK/sweep.log"
grep -q ', 0 unstable' "$PROBE_WORK/sweep.log"
target/release/mao probe --show "$PROBE_WORK/ci.mpt" > "$PROBE_WORK/show.log"
grep -q 'ci-core2' "$PROBE_WORK/show.log"
grep -q 'source probe/sim' "$PROBE_WORK/show.log"
target/release/mao probe --show crates/probe/tests/fixtures/core2.mpt \
    > "$PROBE_WORK/golden.log"
grep -q 'golden-core2' "$PROBE_WORK/golden.log"

head -c 30 "$PROBE_WORK/ci.mpt" > "$PROBE_WORK/trunc.mpt"
cp "$PROBE_WORK/ci.mpt" "$PROBE_WORK/corrupt.mpt"
printf '\xff' | dd of="$PROBE_WORK/corrupt.mpt" bs=1 \
    seek=$(( $(stat -c%s "$PROBE_WORK/corrupt.mpt") - 1 )) conv=notrunc 2>/dev/null
cp "$PROBE_WORK/ci.mpt" "$PROBE_WORK/skew.mpt"
printf '\x63' | dd of="$PROBE_WORK/skew.mpt" bs=1 seek=8 conv=notrunc 2>/dev/null
printf 'GARBAGEGARBAGEGARBAGEGARBAGE' > "$PROBE_WORK/junk.mpt"
for bad in trunc:truncated corrupt:checksum skew:version junk:magic; do
    f="$PROBE_WORK/${bad%%:*}.mpt"
    ! target/release/mao probe --show "$f" 2> "$PROBE_WORK/err.log"
    grep -q "${bad##*:}" "$PROBE_WORK/err.log"
done
# A consumer refuses a rejected table outright (never half-installed).
! target/release/mao check --cases 1 --cost-model "$PROBE_WORK/corrupt.mpt" \
    2> "$PROBE_WORK/refuse.log"
grep -q 'cannot load cost model' "$PROBE_WORK/refuse.log"

# Differential smoke under the measured table, bannering its identity.
target/release/mao check --smoke --cost-model "$PROBE_WORK/ci.mpt" \
    > "$PROBE_WORK/check.log"
grep -q 'cost model `ci-core2`' "$PROBE_WORK/check.log"
rm -rf "$PROBE_WORK"
trap - EXIT

# Superoptimizer: the bundled smoke unit must yield at least one verified
# rewrite under a bounded, seeded search; the fault-injection mode must
# prove the two-phase verifier rejects a deliberately wrong rewrite.
echo "==> superopt smoke"
target/release/mao superopt --smoke --seed 42
target/release/mao superopt --smoke --seed 42 --inject-bogus-rewrite 2>&1 \
    | grep -q 'injection self-test rejected'

echo "==> superopt rewrite-cache replay"
# Cold run populates a persistent learned-rewrite cache; the warm run must
# apply the same rewrites byte-identically without a single fresh search.
SUPEROPT_WORK=$(mktemp -d)
trap 'rm -rf "$SUPEROPT_WORK"' EXIT
cat > "$SUPEROPT_WORK/in.s" <<'EOF'
	.text
	.type	f, @function
f:
	movq	%rdi, %rax
	movq	%rax, %rbx
	movq	%rbx, %rax
	ret
	.type	g, @function
g:
	movq	%rsi, %rcx
	movq	%rcx, %rdx
	movq	%rdx, %rcx
	ret
EOF
target/release/mao superopt --seed 42 --cache-dir "$SUPEROPT_WORK/cache" \
    -o "$SUPEROPT_WORK/cold.s" "$SUPEROPT_WORK/in.s" 2> "$SUPEROPT_WORK/cold.log"
target/release/mao superopt --seed 42 --cache-dir "$SUPEROPT_WORK/cache" \
    -o "$SUPEROPT_WORK/warm.s" "$SUPEROPT_WORK/in.s" 2> "$SUPEROPT_WORK/warm.log"
cmp "$SUPEROPT_WORK/cold.s" "$SUPEROPT_WORK/warm.s"
grep -q ' 0 searches' "$SUPEROPT_WORK/warm.log"
! grep -q ' 0 rewrites' "$SUPEROPT_WORK/warm.log"
rm -rf "$SUPEROPT_WORK"
trap - EXIT

echo "==> superopt benchmark gates (smoke)"
# Warm-cache >= 10x cold-search throughput and a measured cycle win on at
# least one paper kernel (full run: scripts/bench_superopt.sh).
cargo run --release -p mao-bench --bin bench_superopt -- --smoke > /dev/null

echo "==> snapshot round-trip smoke"
# The differential matrix above already proves the snapshot execution path
# byte-identical to the text path; this stage exercises the *user-facing*
# snapshot surface: emit a snapshot, feed it back as input, and replay
# through a content-addressed snapshot store cold (miss) then warm (hit).
SNAP_WORK=$(mktemp -d)
trap 'rm -rf "$SNAP_WORK"' EXIT
cat > "$SNAP_WORK/in.s" <<'EOF'
	.text
	.type	f, @function
f:
	movl	$0, %eax
	addl	$3, %eax
	addl	$4, %eax
	ret
EOF
target/release/mao --mao=ADDADD:DCE "$SNAP_WORK/in.s" > "$SNAP_WORK/text.s"
target/release/mao --emit-snapshot "$SNAP_WORK/in.msnap" "$SNAP_WORK/in.s" > /dev/null
target/release/mao --mao=ADDADD:DCE "$SNAP_WORK/in.msnap" > "$SNAP_WORK/snap.s" \
    2> "$SNAP_WORK/snap.log"
cmp "$SNAP_WORK/text.s" "$SNAP_WORK/snap.s"
grep -q 'frontend: loaded snapshot' "$SNAP_WORK/snap.log"

# Cold run populates the store and reports a miss; the warm run must hit
# and produce byte-identical output.
target/release/mao --mao=ADDADD:DCE --snapshot-dir "$SNAP_WORK/store" \
    "$SNAP_WORK/in.s" > "$SNAP_WORK/cold.s" 2> "$SNAP_WORK/cold.log"
grep -q 'frontend: snapshot miss' "$SNAP_WORK/cold.log"
target/release/mao --mao=ADDADD:DCE --snapshot-dir "$SNAP_WORK/store" \
    "$SNAP_WORK/in.s" > "$SNAP_WORK/warm.s" 2> "$SNAP_WORK/warm.log"
grep -q 'frontend: snapshot hit' "$SNAP_WORK/warm.log"
cmp "$SNAP_WORK/cold.s" "$SNAP_WORK/warm.s"
cmp "$SNAP_WORK/text.s" "$SNAP_WORK/warm.s"
rm -rf "$SNAP_WORK"
trap - EXIT

echo "==> aarch64 smoke"
# The second ISA instantiation end to end on a committed fixture: parse the
# A64 dialect, run the ISA-neutral pipeline, relax, emit — then prove the
# emitted text reparses to identical bytes, that an x86-only pass is
# rejected with the structured gating error, and that the structural sweep
# (path agreement, reparse stability, layout monotonicity, fixed 4-byte
# widths) is green.
A64_WORK=$(mktemp -d)
trap 'rm -rf "$A64_WORK"' EXIT
A64_FIXTURE=crates/check/tests/fixtures/aarch64_smoke.s
target/release/mao --isa aarch64 --mao=NOPKILL:DCE "$A64_FIXTURE" \
    > "$A64_WORK/out.s" 2> /dev/null
! grep -q $'\tnop' "$A64_WORK/out.s"   # NOPKILL fired on the A64 unit
target/release/mao --isa aarch64 "$A64_WORK/out.s" > "$A64_WORK/out2.s" \
    2> /dev/null
cmp "$A64_WORK/out.s" "$A64_WORK/out2.s"
! target/release/mao --isa aarch64 --mao=SCHED "$A64_FIXTURE" \
    > /dev/null 2> "$A64_WORK/sched.log"
grep -q 'does not support ISA' "$A64_WORK/sched.log"
target/release/mao check --isa aarch64
rm -rf "$A64_WORK"
trap - EXIT

echo "==> front-end benchmark gates (smoke)"
# Zero-copy parse >= 2x the seed parser and snapshot load >= 10x the text
# parse, differentially checked; writes the BENCH_frontend.json artifact
# (full-scale run: scripts/bench_frontend.sh).
cargo run --release -p mao-bench --bin bench_frontend -- --smoke > /dev/null

echo "==> daemon smoke test"
MAO=target/release/mao
WORK=$(mktemp -d)
SOCK="unix:$WORK/maod.sock"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cat > "$WORK/in.s" <<'EOF'
	.type	f, @function
f:
	subl	$16, %r15d
	testl	%r15d, %r15d
	jne	.L1
	addl	$3, %eax
	addl	$4, %eax
.L1:
	ret
EOF
PASSES=REDTEST:ADDADD:DCE

"$MAO" serve --listen "$SOCK" &
DAEMON_PID=$!
for _ in $(seq 1 50); do
    "$MAO" client --listen "$SOCK" --ping >/dev/null 2>&1 && break
    sleep 0.1
done
"$MAO" client --listen "$SOCK" --ping >/dev/null

# (a0) cold metrics scrape: exposition format, zero cache traffic so far
"$MAO" client --listen "$SOCK" --metrics > "$WORK/metrics_cold.txt"
grep -q '^# TYPE mao_requests_total counter$' "$WORK/metrics_cold.txt"
grep -q '^# TYPE mao_request_service_us histogram$' "$WORK/metrics_cold.txt"
grep -q '^mao_result_cache_hits_total 0$' "$WORK/metrics_cold.txt"

# (a) daemon output must be byte-identical to the one-shot driver
"$MAO" --mao="$PASSES" "$WORK/in.s" > "$WORK/oneshot.s"
"$MAO" client --listen "$SOCK" --passes "$PASSES" "$WORK/in.s" \
    > "$WORK/served.s" 2> "$WORK/client1.log"
cmp "$WORK/oneshot.s" "$WORK/served.s"
grep -q 'cache: miss' "$WORK/client1.log"

# (b) the repeat must be a cache hit with identical output
"$MAO" client --listen "$SOCK" --passes "$PASSES" "$WORK/in.s" \
    > "$WORK/served2.s" 2> "$WORK/client2.log"
cmp "$WORK/oneshot.s" "$WORK/served2.s"
grep -q 'cache: hit' "$WORK/client2.log"

# (b2) warm metrics scrape: the result-cache hit counter moved
"$MAO" client --listen "$SOCK" --metrics > "$WORK/metrics_warm.txt"
grep -q '^mao_result_cache_hits_total 1$' "$WORK/metrics_warm.txt"
grep -q '^mao_result_cache_misses_total 1$' "$WORK/metrics_warm.txt"

# (c) stats reflect the traffic
"$MAO" client --listen "$SOCK" --stats > "$WORK/stats.json"
grep -q '"status":"ok"' "$WORK/stats.json"
grep -q '"result_cache":{"hits":1,"misses":1' "$WORK/stats.json"

# (d) graceful shutdown: ack, clean exit, socket removed
"$MAO" client --listen "$SOCK" --shutdown | grep -q '"shutdown":true'
wait "$DAEMON_PID"
test ! -e "$WORK/maod.sock"

echo "==> restart-warm daemon e2e"
# A daemon with a persistent cache dir computes once, shuts down, and a
# fresh daemon over the same dir serves the same request from the disk
# tier — byte-identical, no recompute.
CACHE="$WORK/result-cache"
SOCK2="unix:$WORK/maod2.sock"
"$MAO" serve --listen "$SOCK2" --cache-dir "$CACHE" &
DAEMON_PID=$!
for _ in $(seq 1 50); do
    "$MAO" client --listen "$SOCK2" --ping >/dev/null 2>&1 && break
    sleep 0.1
done
"$MAO" client --listen "$SOCK2" --passes "$PASSES" "$WORK/in.s" \
    > "$WORK/served_cold.s" 2> "$WORK/client_cold.log"
cmp "$WORK/oneshot.s" "$WORK/served_cold.s"
grep -q 'cache: miss' "$WORK/client_cold.log"
"$MAO" client --listen "$SOCK2" --shutdown | grep -q '"shutdown":true'
wait "$DAEMON_PID"

"$MAO" serve --listen "$SOCK2" --cache-dir "$CACHE" &
DAEMON_PID=$!
for _ in $(seq 1 50); do
    "$MAO" client --listen "$SOCK2" --ping >/dev/null 2>&1 && break
    sleep 0.1
done
# The very first request after restart must be a *disk* hit (grep the
# exact outcome: `cache: hit` would also match `hit_disk`).
"$MAO" client --listen "$SOCK2" --passes "$PASSES" "$WORK/in.s" \
    > "$WORK/served_warm.s" 2> "$WORK/client_warm.log"
cmp "$WORK/oneshot.s" "$WORK/served_warm.s"
grep -q 'cache: hit_disk' "$WORK/client_warm.log"
"$MAO" client --listen "$SOCK2" --metrics \
    | grep -q '^mao_result_cache_disk_hits_total 1$'

echo "==> loadgen smoke (p99 gate)"
# Mixed hot/cold/malformed replay against the live daemon; fails on any
# unexpected response or a service-side p99 above one second.
"$MAO" loadgen --listen "$SOCK2" --requests 200 --connections 2 \
    --p99-limit-us 1000000 > "$WORK/loadgen.log"
"$MAO" client --listen "$SOCK2" --shutdown | grep -q '"shutdown":true'
wait "$DAEMON_PID"
trap 'rm -rf "$WORK"' EXIT

echo "ci: all checks passed"
