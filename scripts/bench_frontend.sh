#!/usr/bin/env bash
# Run the front-end benchmark and write BENCH_frontend.json at the repo
# root: the zero-copy parser and binary IR snapshot loading against the
# retired seed parser, with differential checks before any timing.
# Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench_frontend.sh --scale 0.2 --jobs 2
#
# Defaults: --scale 1.0 --iters 9 --jobs 4 --min-parse-speedup 2
#           --min-snapshot-speedup 10 --out BENCH_frontend.json.
# Pass --smoke for the fast CI configuration (scale 0.2, 5 iterations,
# same gates). The binary exits non-zero if the zero-copy parse falls
# below 2x the seed parser or the snapshot load falls below 10x the text
# parse, or if any path disagrees with the reference entry list.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_frontend -- "$@"
