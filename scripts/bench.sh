#!/usr/bin/env bash
# Run the pass-pipeline throughput benchmark and write BENCH_pass_pipeline.json
# at the repo root. Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench.sh --jobs 8 --scale 0.5
#
# Defaults: --jobs 4 --scale 0.25 (~200 functions) --out BENCH_pass_pipeline.json.
# On a single-core host the jobs=N measurement cannot show parallel speedup;
# the JSON records `available_cpus` and flags that case.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_pass_pipeline -- "$@"
# Telemetry must stay effectively free: fail the run if the observed
# pipeline with aggregating spans + metrics costs >3% (plus noise
# allowance) over telemetry-off on the same corpus.
cargo run --release -p mao-bench --bin bench_pass_pipeline -- --telemetry-guard --scale 0.1
