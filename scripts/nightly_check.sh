#!/usr/bin/env bash
# Nightly differential sweep: much deeper than the CI smoke stage.
#
# Runs `mao check` over several seeds at 500 cases each (every transforming
# pass alone plus the full pipeline, through all four execution paths), and
# finishes with the fault-injection self-test. Any failure is shrunk and
# persisted under tests/regressions/ — commit the new file so `cargo test`
# replays it forever after.
#
# Usage: scripts/nightly_check.sh [seed...]   (default seeds: 1 2 3 42 1337)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=("$@")
if [ ${#SEEDS[@]} -eq 0 ]; then
    SEEDS=(1 2 3 42 1337)
fi
CASES=${CASES:-500}

cargo build --release -p mao-check
MAO=target/release/mao

status=0
for seed in "${SEEDS[@]}"; do
    echo "==> mao check --seed $seed --cases $CASES"
    if ! "$MAO" check --seed "$seed" --cases "$CASES" --regress-dir tests/regressions; then
        status=1
    fi
done

echo "==> injection self-test"
"$MAO" check --inject-miscompile > /dev/null

if [ "$status" -ne 0 ]; then
    echo "nightly check: FAILURES found — shrunk units persisted to tests/regressions/"
    exit 1
fi
echo "nightly check: all sweeps green"
