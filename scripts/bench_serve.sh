#!/usr/bin/env bash
# Run the service benchmark and write BENCH_serve.json at the repo root:
# cold vs warm (memory tier) vs restart-warm (persistent disk tier under a
# fresh engine) throughput, plus an admission-control flood round with the
# shed rate. Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench_serve.sh --requests 64 --scale 0.25
#
# Defaults: --requests 32 --scale 0.1 --shards 2 --jobs 1
#           --min-restart-speedup 50 --out BENCH_serve.json.
# The warm round must be served entirely from the memory tier and the
# restart round entirely from disk with byte-identical responses; the
# binary exits non-zero if any counter disagrees or the restart-warm
# median speedup falls below the gate.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_serve -- "$@"
