#!/usr/bin/env bash
# Run the service cold-vs-warm-cache benchmark and write BENCH_serve.json
# at the repo root. Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench_serve.sh --requests 64 --scale 0.25
#
# Defaults: --requests 32 --scale 0.1 --workers 2 --jobs 1 --out BENCH_serve.json.
# The warm round must be served entirely from the content-addressed result
# cache; the binary exits non-zero if the hit/miss counters disagree.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_serve -- "$@"
