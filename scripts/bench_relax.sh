#!/usr/bin/env bash
# Run the relaxation benchmark and write BENCH_relax.json at the repo root.
# Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench_relax.sh --scale 0.25
#
# Defaults: --scale 0.1 --out BENCH_relax.json. Pass --smoke for a fast
# small-scale equivalence check that writes no file (used by ci.sh).
# The binary asserts that the fragment engine, the incremental patches, and
# the legacy reference solver all produce byte-identical layouts/assembly.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_relax -- "$@"
