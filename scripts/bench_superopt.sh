#!/usr/bin/env bash
# Run the superoptimizer benchmark and write BENCH_superopt.json at the
# repo root. Arguments are forwarded to the benchmark binary, e.g.
#
#   scripts/bench_superopt.sh --scale 0.05 --jobs 4
#
# Defaults: --scale 0.02 --seed 42 --out BENCH_superopt.json. Pass --smoke
# for a fast small-scale run that writes no file (used by ci.sh).
# The binary gates on warm-cache throughput >= 10x cold-search throughput
# (byte-identical output) and on at least one paper kernel getting a
# measured simulated-cycle improvement with identical results.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p mao-bench --bin bench_superopt -- "$@"
