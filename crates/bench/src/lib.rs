//! Shared harness for the experiment binaries and criterion benches.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper (see
//! DESIGN.md's per-experiment index); this library holds the common
//! plumbing: run a workload on a profile, apply a `--mao=` pass string,
//! and report the paper's improvement convention (positive = faster).

use std::fmt;

use mao::pass::{parse_invocations, run_pipeline, PipelineReport};
use mao::{MaoUnit, Profile};
use mao_corpus::Workload;
use mao_sim::{simulate, SimOptions, SimResult, UarchConfig};

/// A harness failure: which workload/pass string failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError(pub String);

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BenchError {}

/// Unwrap a harness result in an experiment binary: report the failure on
/// stderr and exit 1 instead of panicking with a backtrace.
pub fn or_exit<T>(result: Result<T, BenchError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Simulate a workload and return the result.
pub fn run_workload(w: &Workload, config: &UarchConfig) -> Result<SimResult, BenchError> {
    let unit = MaoUnit::parse(&w.asm)
        .map_err(|e| BenchError(format!("workload {} does not parse: {e}", w.name)))?;
    simulate(&unit, &w.entry, &w.args, config, &SimOptions::default())
        .map_err(|e| BenchError(format!("workload {} failed to simulate: {e}", w.name)))
}

/// Apply a `--mao=` pass string to a workload, returning the transformed
/// workload and the pipeline report (for transformation counts).
pub fn apply_passes(
    w: &Workload,
    passes: &str,
    profile: Option<Profile>,
) -> Result<(Workload, PipelineReport), BenchError> {
    let mut unit = MaoUnit::parse(&w.asm)
        .map_err(|e| BenchError(format!("workload {} does not parse: {e}", w.name)))?;
    let invocations = parse_invocations(passes)
        .map_err(|e| BenchError(format!("bad pass string `{passes}`: {e}")))?;
    let report = run_pipeline(&mut unit, &invocations, profile)
        .map_err(|e| BenchError(format!("pipeline `{passes}` failed on {}: {e}", w.name)))?;
    let transformed = Workload {
        name: format!("{}+{passes}", w.name),
        asm: unit.emit(),
        entry: w.entry.clone(),
        args: w.args.clone(),
    };
    Ok((transformed, report))
}

/// The paper's improvement convention: positive percentage = speedup.
pub fn improvement_pct(baseline_cycles: u64, new_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    (baseline_cycles as f64 - new_cycles as f64) / baseline_cycles as f64 * 100.0
}

/// Run `workload` before and after `passes` on `config`; return
/// (improvement %, report).
pub fn pass_effect(
    w: &Workload,
    passes: &str,
    config: &UarchConfig,
) -> Result<(f64, PipelineReport), BenchError> {
    let base = run_workload(w, config)?;
    let (transformed, report) = apply_passes(w, passes, None)?;
    let after = run_workload(&transformed, config)?;
    if base.ret != after.ret {
        return Err(BenchError(format!(
            "pass `{passes}` changed the result of {}: {} -> {}",
            w.name, base.ret, after.ret
        )));
    }
    Ok((improvement_pct(base.pmu.cycles, after.pmu.cycles), report))
}

/// Geometric mean of (1 + pct/100) values, returned as a percentage — the
/// aggregation Fig. 7 uses.
pub fn geomean_pct(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let product: f64 = pcts.iter().map(|p| 1.0 + p / 100.0).product();
    (product.powf(1.0 / pcts.len() as f64) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao_corpus::kernels;

    #[test]
    fn improvement_sign_convention() {
        assert!(improvement_pct(100, 90) > 0.0);
        assert!(improvement_pct(100, 110) < 0.0);
        assert_eq!(improvement_pct(0, 10), 0.0);
        assert!((improvement_pct(200, 190) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geomean() {
        assert!((geomean_pct(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_pct(&[]), 0.0);
        let g = geomean_pct(&[21.0, 0.0]);
        assert!(g > 9.0 && g < 11.0);
    }

    #[test]
    fn end_to_end_pass_effect() {
        let w = kernels::hashing(false, 2000);
        let (pct, report) = pass_effect(&w, "SCHED", &UarchConfig::core2()).unwrap();
        assert!(report.total_transformations() > 0);
        assert!(pct > 5.0, "SCHED should speed the bad order up: {pct:.2}%");
    }

    #[test]
    fn apply_passes_preserves_behavior() {
        let w = kernels::mcf_fig1(false, 500);
        let (t, _) = apply_passes(&w, "REDTEST:ADDADD:CONSTFOLD:DCE", None).unwrap();
        let a = run_workload(&w, &UarchConfig::core2()).unwrap();
        let b = run_workload(&t, &UarchConfig::core2()).unwrap();
        assert_eq!(a.ret, b.ret);
    }

    #[test]
    fn failures_are_reported_not_panicked() {
        let broken = Workload {
            name: "broken".into(),
            asm: "frobnicate %eax\n".into(),
            entry: "f".into(),
            args: vec![],
        };
        let e = run_workload(&broken, &UarchConfig::core2()).unwrap_err();
        assert!(e.to_string().contains("does not parse"), "{e}");
        assert!(e.to_string().contains("frobnicate"), "{e}");
        let w = kernels::hashing(false, 100);
        let e = apply_passes(&w, "NOSUCHPASS", None).unwrap_err();
        assert!(e.to_string().contains("NOSUCHPASS"), "{e}");
    }
}
