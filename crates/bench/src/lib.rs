//! Shared harness for the experiment binaries and criterion benches.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper (see
//! DESIGN.md's per-experiment index); this library holds the common
//! plumbing: run a workload on a profile, apply a `--mao=` pass string,
//! and report the paper's improvement convention (positive = faster).

use mao::pass::{parse_invocations, run_pipeline, PipelineReport};
use mao::{MaoUnit, Profile};
use mao_corpus::Workload;
use mao_sim::{simulate, SimOptions, SimResult, UarchConfig};

/// Simulate a workload and return the result.
///
/// # Panics
///
/// Panics on parse or simulation failure — experiment inputs are
/// program-generated and must be valid; failing loudly beats silently
/// skewing a table.
pub fn run_workload(w: &Workload, config: &UarchConfig) -> SimResult {
    let unit = MaoUnit::parse(&w.asm)
        .unwrap_or_else(|e| panic!("workload {} does not parse: {e}", w.name));
    simulate(&unit, &w.entry, &w.args, config, &SimOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to simulate: {e}", w.name))
}

/// Apply a `--mao=` pass string to a workload, returning the transformed
/// workload and the pipeline report (for transformation counts).
pub fn apply_passes(w: &Workload, passes: &str, profile: Option<Profile>) -> (Workload, PipelineReport) {
    let mut unit = MaoUnit::parse(&w.asm)
        .unwrap_or_else(|e| panic!("workload {} does not parse: {e}", w.name));
    let invocations = parse_invocations(passes)
        .unwrap_or_else(|e| panic!("bad pass string `{passes}`: {e}"));
    let report = run_pipeline(&mut unit, &invocations, profile)
        .unwrap_or_else(|e| panic!("pipeline `{passes}` failed on {}: {e}", w.name));
    let transformed = Workload {
        name: format!("{}+{passes}", w.name),
        asm: unit.emit(),
        entry: w.entry.clone(),
        args: w.args.clone(),
    };
    (transformed, report)
}

/// The paper's improvement convention: positive percentage = speedup.
pub fn improvement_pct(baseline_cycles: u64, new_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    (baseline_cycles as f64 - new_cycles as f64) / baseline_cycles as f64 * 100.0
}

/// Run `workload` before and after `passes` on `config`; return
/// (improvement %, report).
pub fn pass_effect(
    w: &Workload,
    passes: &str,
    config: &UarchConfig,
) -> (f64, PipelineReport) {
    let base = run_workload(w, config);
    let (transformed, report) = apply_passes(w, passes, None);
    let after = run_workload(&transformed, config);
    assert_eq!(
        base.ret, after.ret,
        "pass `{passes}` changed the result of {}!",
        w.name
    );
    (improvement_pct(base.pmu.cycles, after.pmu.cycles), report)
}

/// Geometric mean of (1 + pct/100) values, returned as a percentage — the
/// aggregation Fig. 7 uses.
pub fn geomean_pct(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let product: f64 = pcts.iter().map(|p| 1.0 + p / 100.0).product();
    (product.powf(1.0 / pcts.len() as f64) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao_corpus::kernels;

    #[test]
    fn improvement_sign_convention() {
        assert!(improvement_pct(100, 90) > 0.0);
        assert!(improvement_pct(100, 110) < 0.0);
        assert_eq!(improvement_pct(0, 10), 0.0);
        assert!((improvement_pct(200, 190) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geomean() {
        assert!((geomean_pct(&[10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_pct(&[]), 0.0);
        let g = geomean_pct(&[21.0, 0.0]);
        assert!(g > 9.0 && g < 11.0);
    }

    #[test]
    fn end_to_end_pass_effect() {
        let w = kernels::hashing(false, 2000);
        let (pct, report) = pass_effect(&w, "SCHED", &UarchConfig::core2());
        assert!(report.total_transformations() > 0);
        assert!(pct > 5.0, "SCHED should speed the bad order up: {pct:.2}%");
    }

    #[test]
    fn apply_passes_preserves_behavior() {
        let w = kernels::mcf_fig1(false, 500);
        let (t, _) = apply_passes(&w, "REDTEST:ADDADD:CONSTFOLD:DCE", None);
        let a = run_workload(&w, &UarchConfig::core2());
        let b = run_workload(&t, &UarchConfig::core2());
        assert_eq!(a.ret, b.ret);
    }
}
