//! Experiment: §V.B SPEC 2006 tables.
//!
//! Regenerates the two SPEC2006 tables: the dealII/calculix REDMOV/REDTEST/
//! NOPKILL table (on the AMD-Opteron-like profile, where the paper found
//! the 20% swings and suspected "an LSD-like structure"), and the SCHED
//! table across five benchmarks (on the Intel profile).

use mao_bench::{or_exit, pass_effect};
use mao_corpus::spec::spec2006_benchmark;
use mao_sim::UarchConfig;

fn main() {
    let amd = UarchConfig::opteron();
    let intel = UarchConfig::core2();

    println!("== Table: REDMOV / REDTEST / NOPKILL on AMD-Opteron-like ==");
    println!(
        "{:<14} {:>9} {:>9} {:>9}   paper: REDMOV/REDTEST/NOPKILL",
        "benchmark", "REDMOV", "REDTEST", "NOPKILL"
    );
    let paper = [
        ("447.dealII", (2.78, 3.21, -0.12)),
        ("454.calculix", (20.12, 20.58, -8.81)),
    ];
    for (name, (p_m, p_t, p_n)) in paper {
        let w = spec2006_benchmark(name).expect("known benchmark");
        let (m, _) = or_exit(pass_effect(&w, "REDMOV", &amd));
        let (t, _) = or_exit(pass_effect(&w, "REDTEST", &amd));
        let (n, _) = or_exit(pass_effect(&w, "NOPKILL", &amd));
        println!(
            "{name:<14} {m:>+8.2}% {t:>+8.2}% {n:>+8.2}%   ({p_m:+.2}% / {p_t:+.2}% / {p_n:+.2}%)"
        );
    }

    println!("\n== Table: SCHED on Intel-Core-2-like ==");
    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "benchmark", "measured", "paper", "moved"
    );
    let paper_sched = [
        ("410.bwaves", 1.29),
        ("434.zeusmp", 1.20),
        ("483.xalancbmk", 1.25),
        ("429.mcf", 1.43),
        ("464.h264ref", 1.75),
    ];
    for (name, p) in paper_sched {
        let w = spec2006_benchmark(name).expect("known benchmark");
        let (pct, report) = or_exit(pass_effect(&w, "SCHED", &intel));
        let moved = report
            .stats("SCHED")
            .map(|s| s.transformations)
            .unwrap_or(0);
        println!("{name:<14} {pct:>+9.2}% {p:>+9.2}% {moved:>8}");
    }
}
