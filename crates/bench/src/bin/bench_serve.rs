//! `serve` benchmark mode: requests/sec through the daemon's [`Engine`]
//! across four regimes, written to `BENCH_serve.json`:
//!
//! * **cold** — empty caches, every request optimizes.
//! * **warm** — repeat traffic, every request a memory-tier hit.
//! * **restart_warm** — the engine is torn down and rebuilt over the same
//!   persistent cache directory; every request is a *disk*-tier hit with
//!   a byte-identical response. The speedup over cold — the measured value
//!   of surviving a restart — compares per-request *medians* over the
//!   faster of two fresh-engine replays (shared-hardware noise cannot
//!   poison a median the way it poisons a wall-clock total); the run
//!   fails below the gate (default 50x).
//! * **flood** — a burst far past the admission high-water mark against
//!   a deliberately tiny engine; reports the shed rate and proves
//!   `offered == accepted + shed` and that the pending queue stays
//!   bounded.
//!
//! The engine is driven in-process — the same code path `mao serve` and
//! `mao batch` use, minus socket framing — so the measured speedup is the
//! cache's, not the transport's.
//!
//! Usage: `bench_serve [--requests R] [--scale S] [--shards W] [--jobs J]
//! [--min-restart-speedup X] [--out FILE]` (defaults: R=32, S=0.1, W=2,
//! J=1, X=50, FILE=BENCH_serve.json).

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;
use std::time::Instant;

use mao_corpus::{generate, GeneratorConfig};
use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::protocol::{CacheOutcome, ErrorKind, OptimizeRequest, Request, Response};

/// The pipeline every request runs (the default function-level set).
const PIPELINE: &str = "REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD:DCE:SCHED";

const USAGE: &str = "usage: bench_serve [--requests R] [--scale S] [--shards W] [--jobs J]\n\
    [--min-restart-speedup X] [--out FILE]\n\
    (defaults: R=32, S=0.1, W=2, J=1, X=50, FILE=BENCH_serve.json)";

fn usage_error(message: &str) -> ! {
    eprintln!("bench_serve: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Median of per-request latencies, in microseconds.
fn median(durations_us: &[u64]) -> f64 {
    if durations_us.is_empty() {
        return 0.0;
    }
    let mut sorted = durations_us.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) as f64 / 2.0
    } else {
        sorted[mid] as f64
    }
}

fn main() {
    let mut requests = 32usize;
    let mut scale = 0.1f64;
    let mut shards = 2usize;
    let mut jobs = 1usize;
    let mut min_restart_speedup = 50.0f64;
    let mut out = String::from("BENCH_serve.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => requests = n,
                None => usage_error("--requests needs a numeric value"),
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale = s,
                None => usage_error("--scale needs a numeric value"),
            },
            "--shards" | "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w) => shards = w,
                None => usage_error("--shards needs a numeric value"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) => jobs = j,
                None => usage_error("--jobs needs a numeric value"),
            },
            "--min-restart-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_restart_speedup = x,
                None => usage_error("--min-restart-speedup needs a numeric value"),
            },
            "--out" => match it.next() {
                Some(f) => out = f.clone(),
                None => usage_error("--out needs a file name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if requests == 0 {
        usage_error("--requests must be at least 1");
    }

    let corpus = generate(&GeneratorConfig::core_library(scale));
    // R distinct inputs: a unique comment line changes the content hash but
    // not the optimization work, so every cold request pays the full
    // parse+optimize cost and every warm repeat is a pure cache hit.
    let inputs: Vec<String> = (0..requests)
        .map(|i| format!("# bench_serve request {i}\n{}", corpus.asm))
        .collect();
    eprintln!(
        "corpus: {} bytes/request (scale {scale}), {requests} distinct requests, \
         shards={shards}, jobs={jobs}",
        inputs[0].len()
    );

    let cache_dir = std::env::temp_dir().join(format!("bench-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = EngineConfig {
        shards,
        jobs,
        result_cache_capacity: requests * 2,
        cache_dir: Some(cache_dir.clone()),
        max_pending: 0, // measuring throughput, not shedding
        ..EngineConfig::default()
    };

    // Per-round timing keeps both the wall-clock total and the per-request
    // latencies: the speedup gate compares *medians*, which a transient
    // noisy-neighbor burst (host CPU steal, kernel writeback) cannot poison
    // the way it poisons a single wall-clock total.
    let run_round = |engine: &Engine, label: &str, outputs: Option<&mut Vec<String>>| {
        eprintln!("{label} round ...");
        let mut outputs = outputs;
        let mut durations_us = Vec::with_capacity(inputs.len());
        let t = Instant::now();
        for asm in &inputs {
            let request_t = Instant::now();
            let response = engine.handle(Request::Optimize(OptimizeRequest {
                asm: asm.clone(),
                passes: PIPELINE.to_string(),
                jobs: None,
                timeout_ms: Some(0), // no per-request deadline while measuring
                use_cache: true,
                isa: mao::isa::IsaId::X86_64,
            }));
            durations_us.push(request_t.elapsed().as_micros() as u64);
            match response {
                Response::Optimized { outcome, .. } => {
                    if let Some(outputs) = outputs.as_deref_mut() {
                        outputs.push(outcome.asm);
                    }
                }
                other => {
                    eprintln!("bench_serve: request failed: {}", other.to_json_text());
                    std::process::exit(1);
                }
            }
        }
        (t.elapsed().as_secs_f64(), durations_us)
    };

    let engine = Engine::new(config.clone());
    let mut cold_outputs: Vec<String> = Vec::with_capacity(requests);
    let (cold_seconds, cold_durations) = run_round(&engine, "cold", Some(&mut cold_outputs));
    let (warm_seconds, _) = run_round(&engine, "warm", None);
    let stats = engine.snapshot().result_cache;
    if stats.misses != requests as u64 || stats.hits != requests as u64 {
        eprintln!(
            "bench_serve: unexpected cache traffic (hits {}, misses {}) for {requests} requests",
            stats.hits, stats.misses
        );
        std::process::exit(1);
    }

    // Restart: tear the engine down entirely, rebuild over the same cache
    // directory, and replay the corpus. The memory tier starts empty, so
    // every response must come off disk — and match the cold run byte for
    // byte.
    engine.join_workers();
    drop(engine);
    // The cold round leaves the cache files dirty in the page cache; on a
    // single-core box the kernel's deferred writeback would otherwise land
    // mid-round and contaminate the read-path measurement. Flush first.
    let _ = std::process::Command::new("sync").status();
    // Each attempt is a genuinely fresh engine (empty memory tier) over
    // the same directory, so every request must come off disk and match
    // the cold run byte for byte. Two attempts, keeping the faster one,
    // suppress noisy-neighbor interference on shared hardware.
    let restart_round = |attempt: usize| {
        eprintln!("restart_warm round {attempt} (fresh engine, same cache dir) ...");
        let restarted = Engine::new(config.clone());
        let mut durations_us = Vec::with_capacity(inputs.len());
        let t = Instant::now();
        for (i, asm) in inputs.iter().enumerate() {
            let request_t = Instant::now();
            let response = restarted.handle(Request::Optimize(OptimizeRequest {
                asm: asm.clone(),
                passes: PIPELINE.to_string(),
                jobs: None,
                timeout_ms: Some(0),
                use_cache: true,
                isa: mao::isa::IsaId::X86_64,
            }));
            durations_us.push(request_t.elapsed().as_micros() as u64);
            match response {
                Response::Optimized { outcome, cache, .. } => {
                    if cache != CacheOutcome::DiskHit {
                        eprintln!(
                            "bench_serve: restart request {i} was {}, expected hit_disk",
                            cache.as_str()
                        );
                        std::process::exit(1);
                    }
                    if outcome.asm != cold_outputs[i] {
                        eprintln!("bench_serve: restart response {i} is not byte-identical");
                        std::process::exit(1);
                    }
                }
                other => {
                    eprintln!(
                        "bench_serve: restart request failed: {}",
                        other.to_json_text()
                    );
                    std::process::exit(1);
                }
            }
        }
        let seconds = t.elapsed().as_secs_f64();
        let disk = restarted
            .snapshot()
            .result_cache
            .disk
            .clone()
            .unwrap_or_default();
        restarted.join_workers();
        (seconds, durations_us, disk)
    };
    let first = restart_round(1);
    let second = restart_round(2);
    let (restart_seconds, restart_durations, disk) = if median(&second.1) < median(&first.1) {
        second
    } else {
        first
    };
    if disk.hits != requests as u64 {
        eprintln!(
            "bench_serve: expected {requests} disk hits after restart, saw {}",
            disk.hits
        );
        std::process::exit(1);
    }

    // Flood: a tiny engine (1 slow shard, low high-water mark) hit with a
    // burst an order of magnitude past capacity. Admission must shed with
    // BUSY, keep the pending gauge at or under the mark, and account for
    // every request.
    let max_pending = 4usize;
    let flood_requests = 48usize;
    eprintln!("flood round ({flood_requests} requests, high-water {max_pending}) ...");
    let flooded = Engine::new(EngineConfig {
        shards: 1,
        max_pending,
        timeout_ms: 0,
        cache_dir: None,
        ..EngineConfig::default()
    });
    let (tx, rx) = channel::<&'static str>();
    let peak_pending = AtomicU64::new(0);
    for i in 0..flood_requests {
        let tx = tx.clone();
        // A pure-sleep pass: each request holds its shard 25ms, so the
        // burst outruns service and the queue must fill.
        let _ = flooded.handle_async(
            Request::Optimize(OptimizeRequest {
                asm: format!("# flood {i}\nnop\n"),
                passes: "PANIC=sleep_ms[25],func[nosuch]".to_string(),
                jobs: None,
                timeout_ms: Some(0),
                use_cache: false,
                isa: mao::isa::IsaId::X86_64,
            }),
            move |response| {
                let kind = match response {
                    Response::Optimized { .. } => "ok",
                    Response::Error {
                        kind: ErrorKind::Busy,
                        ..
                    } => "busy",
                    _ => "other",
                };
                let _ = tx.send(kind);
            },
        );
        let pending = flooded.pending();
        peak_pending.fetch_max(pending, Ordering::SeqCst);
    }
    drop(tx);
    let mut flood_ok = 0u64;
    let mut flood_busy = 0u64;
    let mut flood_other = 0u64;
    while let Ok(kind) = rx.recv() {
        match kind {
            "ok" => flood_ok += 1,
            "busy" => flood_busy += 1,
            _ => flood_other += 1,
        }
    }
    let flood_snapshot = flooded.snapshot();
    let admission = flood_snapshot.admission;
    let peak = peak_pending.load(Ordering::SeqCst);
    if admission.offered != admission.accepted + admission.shed {
        eprintln!(
            "bench_serve: admission does not reconcile: offered {} != accepted {} + shed {}",
            admission.offered, admission.accepted, admission.shed
        );
        std::process::exit(1);
    }
    if flood_busy == 0 || admission.shed == 0 {
        eprintln!("bench_serve: flood produced no shed responses (busy {flood_busy})");
        std::process::exit(1);
    }
    if peak > max_pending as u64 {
        eprintln!(
            "bench_serve: pending gauge peaked at {peak}, above the {max_pending} high-water mark"
        );
        std::process::exit(1);
    }
    if flood_other != 0 {
        eprintln!("bench_serve: flood saw {flood_other} unexpected responses");
        std::process::exit(1);
    }
    if flood_ok + flood_busy != flood_requests as u64 {
        eprintln!(
            "bench_serve: flood responses do not reconcile: {flood_ok} ok + {flood_busy} busy != {flood_requests}"
        );
        std::process::exit(1);
    }
    flooded.join_workers();
    let shed_rate = admission.shed as f64 / admission.offered as f64;

    let cold_rps = requests as f64 / cold_seconds;
    let warm_rps = requests as f64 / warm_seconds;
    let restart_rps = requests as f64 / restart_seconds;
    let speedup = cold_seconds / warm_seconds;
    let cold_median_us = median(&cold_durations);
    let restart_median_us = median(&restart_durations);
    let restart_speedup = cold_median_us / restart_median_us.max(1.0);
    let json = format!(
        r#"{{
  "benchmark": "serve",
  "pipeline": "{PIPELINE}",
  "corpus": {{ "scale": {scale}, "bytes_per_request": {bytes} }},
  "requests": {requests},
  "shards": {shards},
  "jobs": {jobs},
  "cold": {{ "seconds": {cold_seconds:.6}, "requests_per_sec": {cold_rps:.1}, "median_request_us": {cold_median_us:.0} }},
  "warm": {{ "seconds": {warm_seconds:.6}, "requests_per_sec": {warm_rps:.1} }},
  "warm_speedup": {speedup:.3},
  "restart_warm": {{ "seconds": {restart_seconds:.6}, "requests_per_sec": {restart_rps:.1}, "median_request_us": {restart_median_us:.0}, "speedup_vs_cold": {restart_speedup:.3}, "disk_hits": {disk_hits}, "byte_identical": true }},
  "flood": {{ "offered": {offered}, "accepted": {accepted}, "shed": {shed}, "shed_rate": {shed_rate:.3}, "max_pending": {max_pending}, "peak_pending": {peak} }},
  "result_cache": {{ "hits": {hits}, "misses": {misses}, "evictions": {evictions} }}
}}
"#,
        bytes = inputs[0].len(),
        hits = stats.hits,
        misses = stats.misses,
        evictions = stats.evictions,
        disk_hits = disk.hits,
        offered = admission.offered,
        accepted = admission.accepted,
        shed = admission.shed,
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("bench_serve: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    println!("wrote {out}");
    println!(
        "summary: cold {cold_rps:.1} req/s, warm {warm_rps:.1} req/s ({speedup:.1}x), \
         restart-warm {restart_rps:.1} req/s ({restart_speedup:.1}x), \
         flood shed rate {shed_rate:.2}"
    );
    if restart_speedup < min_restart_speedup {
        eprintln!(
            "bench_serve: restart-warm speedup {restart_speedup:.1}x is below the \
             {min_restart_speedup:.0}x gate"
        );
        std::process::exit(1);
    }
}
