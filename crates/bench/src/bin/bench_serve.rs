//! `serve` benchmark mode: requests/sec through the daemon's [`Engine`]
//! with a cold result cache (every request optimizes) vs a warm one (every
//! request is a content-addressed hit). Writes `BENCH_serve.json`.
//!
//! The engine is driven in-process — the same code path `mao serve` and
//! `mao batch` use, minus socket framing — so the measured speedup is the
//! cache's, not the transport's.
//!
//! Usage: `bench_serve [--requests R] [--scale S] [--workers W] [--jobs J]
//! [--out FILE]` (defaults: R=32, S=0.1, W=2, J=1,
//! FILE=BENCH_serve.json).

use std::time::Instant;

use mao_corpus::{generate, GeneratorConfig};
use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::protocol::{OptimizeRequest, Request, Response};

/// The pipeline every request runs (the default function-level set).
const PIPELINE: &str = "REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD:DCE:SCHED";

const USAGE: &str =
    "usage: bench_serve [--requests R] [--scale S] [--workers W] [--jobs J] [--out FILE]\n\
    (defaults: R=32, S=0.1, W=2, J=1, FILE=BENCH_serve.json)";

fn usage_error(message: &str) -> ! {
    eprintln!("bench_serve: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut requests = 32usize;
    let mut scale = 0.1f64;
    let mut workers = 2usize;
    let mut jobs = 1usize;
    let mut out = String::from("BENCH_serve.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => requests = n,
                None => usage_error("--requests needs a numeric value"),
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale = s,
                None => usage_error("--scale needs a numeric value"),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w) => workers = w,
                None => usage_error("--workers needs a numeric value"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) => jobs = j,
                None => usage_error("--jobs needs a numeric value"),
            },
            "--out" => match it.next() {
                Some(f) => out = f.clone(),
                None => usage_error("--out needs a file name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if requests == 0 {
        usage_error("--requests must be at least 1");
    }

    let corpus = generate(&GeneratorConfig::core_library(scale));
    // R distinct inputs: a unique comment line changes the content hash but
    // not the optimization work, so every cold request pays the full
    // parse+optimize cost and every warm repeat is a pure cache hit.
    let inputs: Vec<String> = (0..requests)
        .map(|i| format!("# bench_serve request {i}\n{}", corpus.asm))
        .collect();
    eprintln!(
        "corpus: {} bytes/request (scale {scale}), {requests} distinct requests, \
         workers={workers}, jobs={jobs}",
        inputs[0].len()
    );

    let engine = Engine::new(EngineConfig {
        workers,
        jobs,
        result_cache_capacity: requests * 2,
        ..EngineConfig::default()
    });
    let run_round = |label: &str| -> f64 {
        eprintln!("{label} round ...");
        let t = Instant::now();
        for asm in &inputs {
            let response = engine.handle(Request::Optimize(OptimizeRequest {
                asm: asm.clone(),
                passes: PIPELINE.to_string(),
                jobs: None,
                timeout_ms: Some(0), // no per-request deadline while measuring
                use_cache: true,
            }));
            match response {
                Response::Optimized { .. } => {}
                other => {
                    eprintln!("bench_serve: request failed: {}", other.to_json_text());
                    std::process::exit(1);
                }
            }
        }
        t.elapsed().as_secs_f64()
    };

    let cold_seconds = run_round("cold");
    let warm_seconds = run_round("warm");
    let stats = engine.snapshot().result_cache;
    if stats.misses != requests as u64 || stats.hits != requests as u64 {
        eprintln!(
            "bench_serve: unexpected cache traffic (hits {}, misses {}) for {requests} requests",
            stats.hits, stats.misses
        );
        std::process::exit(1);
    }

    let cold_rps = requests as f64 / cold_seconds;
    let warm_rps = requests as f64 / warm_seconds;
    let speedup = cold_seconds / warm_seconds;
    let json = format!(
        r#"{{
  "benchmark": "serve",
  "pipeline": "{PIPELINE}",
  "corpus": {{ "scale": {scale}, "bytes_per_request": {bytes} }},
  "requests": {requests},
  "workers": {workers},
  "jobs": {jobs},
  "cold": {{ "seconds": {cold_seconds:.6}, "requests_per_sec": {cold_rps:.1} }},
  "warm": {{ "seconds": {warm_seconds:.6}, "requests_per_sec": {warm_rps:.1} }},
  "warm_speedup": {speedup:.3},
  "result_cache": {{ "hits": {hits}, "misses": {misses}, "evictions": {evictions} }}
}}
"#,
        bytes = inputs[0].len(),
        hits = stats.hits,
        misses = stats.misses,
        evictions = stats.evictions,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("bench_serve: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    println!("wrote {out}");
    println!(
        "summary: cold {cold_rps:.1} req/s, warm {warm_rps:.1} req/s, warm speedup {speedup:.1}x"
    );
}
