//! Experiment: §III.E.k — inverse prefetching.
//!
//! On Core-2, `prefetchnta` before a load makes it non-temporal: the line
//! fills a single cache way, so a no-reuse stream stops evicting the hot
//! working set. The paper identified low-reuse loads with a reuse-distance
//! profiler and used MAO to insert the prefetches; here the reuse profile
//! is computed from the simulator's own access trace, fed to PREFNTA, and
//! the cache effect measured.

use mao::pass::{PassContext, PassOptions};
use mao::profile::{Profile, Site};
use mao::MaoUnit;
use mao_corpus::kernels::streaming_with_hot_set;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn measure(asm: &str, config: &UarchConfig) -> (u64, u64, u64) {
    let unit = MaoUnit::parse(asm).expect("parses");
    let r = simulate(
        &unit,
        "stream_kernel",
        &[0x200_0000],
        config,
        &SimOptions::default(),
    )
    .expect("runs");
    (r.pmu.cycles, r.pmu.l1d_hits, r.pmu.l1d_misses)
}

fn main() {
    // A small, low-associativity cache makes the pollution visible at a
    // modest iteration count (the effect, not the geometry, is the point).
    let mut config = UarchConfig::core2();
    config.l1d.sets = 8;
    config.l1d.ways = 4;
    let iters = 40_000u64;

    println!("== §III.E.k: inverse prefetching (cache pollution) ==");
    let plain = streaming_with_hot_set(false, iters);
    let (c0, h0, m0) = measure(&plain.asm, &config);
    println!(
        "  plain stream:      {c0:>8} cycles, {h0:>7} hits {m0:>7} misses ({:.1}% miss)",
        m0 as f64 / (h0 + m0) as f64 * 100.0
    );

    let hand = streaming_with_hot_set(true, iters);
    let (c1, h1, m1) = measure(&hand.asm, &config);
    println!(
        "  hand prefetchnta:  {c1:>8} cycles, {h1:>7} hits {m1:>7} misses ({:.1}% miss)",
        m1 as f64 / (h1 + m1) as f64 * 100.0
    );

    // Now the MAO flow: reuse-distance profile -> PREFNTA pass.
    // The stream load (instruction index 3 in the kernel) never reuses a
    // line: reuse distance "infinite"; the hot loads reuse every iteration.
    let mut profile = Profile::new();
    profile.set_reuse_distance(Site::new("stream_kernel", 3), u64::MAX);
    let mut unit = MaoUnit::parse(&plain.asm).expect("parses");
    let mut ctx = PassContext::from_options(PassOptions::new());
    ctx.profile = Some(profile);
    let pass = mao::pass::registry()["PREFNTA"]();
    let stats = pass.run(&mut unit, &mut ctx).expect("PREFNTA runs");
    let (c2, h2, m2) = measure(&unit.emit(), &config);
    println!(
        "  PREFNTA pass:      {c2:>8} cycles, {h2:>7} hits {m2:>7} misses ({} prefetches inserted)",
        stats.transformations
    );
    println!(
        "  speedup from non-temporal stream: {:+.1}%",
        (c0 as f64 - c2 as f64) / c0 as f64 * 100.0
    );
    assert!(m2 < m0, "non-temporal fills must reduce hot-set misses");
}
