//! Experiment: §III.F — scheduling the hashing kernel.
//!
//! The paper found 21% of opportunity in a hashing microbenchmark from
//! instruction order alone: an `xorl` feeds three consumers, and result
//! forwarding has limited bandwidth, so which consumers issue in the
//! producer's completion cycle matters (`RESOURCE_STALLS:RS_FULL` tracked
//! the loss). The SCHED pass's critical-path priority recovers the good
//! order; the port-asymmetry kernel shows the machine-dependent side.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels::{hashing, port_contention};
use mao_sim::{simulate, SimOptions, UarchConfig};

fn run(asm: &str, entry: &str, config: &UarchConfig) -> (u64, u64) {
    let unit = MaoUnit::parse(asm).expect("parses");
    let r = simulate(&unit, entry, &[], config, &SimOptions::default()).expect("runs");
    (r.pmu.cycles, r.pmu.rs_full_stalls)
}

fn main() {
    let config = UarchConfig::core2();
    let iters = 200_000u64;
    println!("== §III.F: hashing kernel schedules ==");

    let bad = hashing(false, iters);
    let good = hashing(true, iters);
    let (bad_cycles, bad_stalls) = run(&bad.asm, "hash_kernel", &config);
    let (good_cycles, good_stalls) = run(&good.asm, "hash_kernel", &config);
    println!("  bad order:  {bad_cycles:>8} cycles, RS_FULL stalls {bad_stalls:>7}");
    println!("  good order: {good_cycles:>8} cycles, RS_FULL stalls {good_stalls:>7}");
    println!(
        "  hand-schedule speedup: {:+.1}%  (paper: 15% on the kernel, 21% opportunity)",
        (bad_cycles as f64 - good_cycles as f64) / bad_cycles as f64 * 100.0
    );
    assert!(
        bad_stalls > good_stalls,
        "the slow order shows more RS_FULL pressure, as the paper's PMU data did"
    );

    // SCHED recovers the good order from the bad one.
    let mut unit = MaoUnit::parse(&bad.asm).expect("parses");
    let report = run_pipeline(&mut unit, &parse_invocations("SCHED").expect("ok"), None)
        .expect("SCHED runs");
    let (sched_cycles, sched_stalls) = run(&unit.emit(), "hash_kernel", &config);
    let moved = report
        .stats("SCHED")
        .map(|s| s.transformations)
        .unwrap_or(0);
    println!(
        "  SCHED:      {sched_cycles:>8} cycles, RS_FULL stalls {sched_stalls:>7} ({moved} instructions moved, {:+.1}%)",
        (bad_cycles as f64 - sched_cycles as f64) / bad_cycles as f64 * 100.0
    );

    println!("\n== §III.F: lea/sarl port contention (machine-dependent) ==");
    let port = port_contention(iters);
    let (intel_cycles, _) = run(&port.asm, "port_kernel", &config);
    let (amd_cycles, _) = run(&port.asm, "port_kernel", &UarchConfig::opteron());
    println!(
        "  lea->sar chain: {intel_cycles} cycles on asymmetric-port Intel profile, {amd_cycles} on symmetric AMD profile"
    );
    println!("  (lea issues only on port 0, sarl on ports 0 and 5 — §III.F)");
}
