//! `relax` benchmark: the fragment-based relaxation engine vs the legacy
//! entry-at-a-time reference solver. Three comparisons over one corpus:
//!
//! 1. **Full solve** — one from-scratch layout, reference vs fragments.
//! 2. **Edit sequence** — a stream of single-NOP insertions, re-laying-out
//!    after each: legacy full re-relax vs fragment full re-relax vs
//!    incremental `LayoutCache::patch`.
//! 3. **Alignment pipeline** — `BRALIGN:LOOP16:LSDFIT` end to end with
//!    incremental layouts vs the same passes under `legacy-relax`; the
//!    emitted assembly must be byte-identical.
//!
//! Writes `BENCH_relax.json`.
//!
//! Usage: `bench_relax [--scale S] [--out FILE] [--smoke]`
//! (defaults: S=0.1, FILE=BENCH_relax.json; `--smoke` runs a small-scale
//! equivalence check and writes no file).

use std::time::Instant;

use mao::pass::{parse_invocations, run_pipeline_with, PipelineConfig};
use mao::relax::{relax, relax_reference, LayoutCache};
use mao::unit::{EditSet, EntryId};
use mao::MaoUnit;
use mao_asm::Entry;
use mao_corpus::kernels;
use mao_corpus::{generate, GeneratorConfig, Workload};
use mao_x86::Instruction;

const PIPELINE: &str = "BRALIGN:LOOP16:LSDFIT";
const LEGACY_PIPELINE: &str = "BRALIGN=legacy-relax:LOOP16=legacy-relax:LSDFIT=legacy-relax";
const SAMPLES: usize = 3;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median wall-clock seconds of `SAMPLES` runs of `f`.
fn time_median<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let out = f();
        times.push(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (median(times), last.unwrap())
}

/// Synthetic compiler output plus the paper's branch-heavy kernels. The
/// generator plants only forward branches, so the kernels supply the
/// back-branch/alignment work; labels and entry symbols are uniquified so
/// several instances coexist in one unit.
fn build_asm(scale: f64) -> String {
    let mut asm = generate(&GeneratorConfig::core_library(scale)).asm;
    let instances: Vec<Workload> = vec![
        kernels::mcf_fig1(false, 8),
        kernels::mcf_fig1(true, 8),
        kernels::eon_short_loop(10, 4, 4),
        kernels::eon_short_loop(3, 4, 4),
        kernels::hashing(true, 16),
        kernels::hashing(false, 16),
        kernels::port_contention(16),
        kernels::lsd_loop(10, 8),
        kernels::lsd_loop(2, 8),
        kernels::image_nest(12, 4),
        kernels::streaming_with_hot_set(false, 8),
    ];
    for (i, w) in instances.into_iter().enumerate() {
        let text = w
            .asm
            .replace(".L", &format!(".Lk{i}_"))
            .replace(&w.entry, &format!("{}_{i}", w.entry));
        asm.push_str(&text);
    }
    asm
}

/// Instruction ids to edit at, in descending order so earlier sites stay
/// valid while later ones are edited (inserts only shift ids above them).
fn edit_sites(unit: &MaoUnit, n: usize) -> Vec<EntryId> {
    let ids: Vec<EntryId> = (0..unit.len())
        .filter(|&id| unit.insn(id).is_some())
        .collect();
    let mut sites: Vec<EntryId> = (1..=n)
        .map(|k| ids[k * (ids.len() - 1) / (n + 1)])
        .collect();
    sites.sort_unstable();
    sites.dedup();
    sites.reverse();
    sites
}

fn nop_entry() -> Entry {
    Entry::Insn(Instruction::nop_of_len(1).into())
}

/// The edit sequence with a full re-layout after every insertion.
fn run_edit_full(base: &MaoUnit, sites: &[EntryId], reference: bool) -> (f64, MaoUnit) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let mut unit = base.clone();
        let t = Instant::now();
        std::hint::black_box(if reference {
            relax_reference(&unit).expect("corpus relaxes").end_addr(0)
        } else {
            relax(&unit).expect("corpus relaxes").end_addr(0)
        });
        for &site in sites {
            let mut edits = EditSet::new();
            edits.insert_before(site, vec![nop_entry()]);
            unit.apply(edits);
            std::hint::black_box(if reference {
                relax_reference(&unit).expect("corpus relaxes").end_addr(0)
            } else {
                relax(&unit).expect("corpus relaxes").end_addr(0)
            });
        }
        times.push(t.elapsed().as_secs_f64());
        last = Some(unit);
    }
    (median(times), last.unwrap())
}

/// The same edit sequence through the incremental layout cache.
fn run_edit_patch(base: &MaoUnit, sites: &[EntryId]) -> (f64, MaoUnit) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let mut unit = base.clone();
        let mut cache = LayoutCache::new();
        let t = Instant::now();
        std::hint::black_box(cache.layout(&unit).expect("corpus relaxes").end_addr(0));
        for &site in sites {
            let mut edits = EditSet::new();
            edits.insert_before(site, vec![nop_entry()]);
            cache.patch(&mut unit, edits).expect("patch applies");
        }
        std::hint::black_box(cache.layout(&unit).expect("cached layout").end_addr(0));
        times.push(t.elapsed().as_secs_f64());
        last = Some(unit);
    }
    (median(times), last.unwrap())
}

/// The alignment pipeline; returns the median time and the emitted text.
fn run_alignment_pipeline(base: &MaoUnit, spec: &str) -> (f64, String) {
    let invs = parse_invocations(spec).expect("pipeline spec parses");
    let mut times = Vec::with_capacity(SAMPLES);
    let mut emitted = None;
    for _ in 0..SAMPLES {
        let mut unit = base.clone();
        let t = Instant::now();
        run_pipeline_with(&mut unit, &invs, None, &PipelineConfig { jobs: 1 })
            .expect("pipeline runs");
        times.push(t.elapsed().as_secs_f64());
        emitted = Some(unit.emit());
    }
    (median(times), emitted.unwrap())
}

const USAGE: &str = "usage: bench_relax [--scale S] [--out FILE] [--smoke]\n\
    (defaults: S=0.1, FILE=BENCH_relax.json)";

fn usage_error(message: &str) -> ! {
    eprintln!("bench_relax: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut scale = 0.1f64;
    let mut out = String::from("BENCH_relax.json");
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale = s,
                None => usage_error("--scale needs a numeric value"),
            },
            "--out" => match it.next() {
                Some(f) => out = f.clone(),
                None => usage_error("--out needs a file name"),
            },
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if smoke {
        scale = scale.min(0.02);
    }

    let asm = build_asm(scale);
    let unit = MaoUnit::parse(&asm).expect("corpus parses");
    let _ = unit.functions_cached(); // build the index before cloning
    let functions = unit.functions().len();
    let entries = unit.len();

    // 1. Full solve: reference vs fragments, byte-identical layouts.
    let (t_ref, ref_layout) = time_median(|| relax_reference(&unit).expect("corpus relaxes"));
    let (t_frag, frag_layout) = time_median(|| relax(&unit).expect("corpus relaxes"));
    assert!(
        frag_layout.agrees_with(&ref_layout),
        "fragment layout diverges from the reference solver"
    );
    let branches = ref_layout.branch_form.iter().flatten().count();
    let metrics = frag_layout.metrics;
    eprintln!(
        "corpus: {functions} functions, {entries} entries, {branches} relaxable branches \
         (scale {scale}); {} fragments ({} variable)",
        metrics.fragments, metrics.variable_fragments
    );
    let full_speedup = t_ref / t_frag;
    eprintln!("full solve: reference {t_ref:.6}s, fragments {t_frag:.6}s ({full_speedup:.2}x)");

    // 2. Edit sequence: legacy full / fragment full / incremental patch.
    let n_edits = if smoke { 8 } else { 32 };
    let sites = edit_sites(&unit, n_edits);
    let (t_edit_ref, u_ref) = run_edit_full(&unit, &sites, true);
    let (t_edit_frag, u_frag) = run_edit_full(&unit, &sites, false);
    let (t_edit_patch, u_patch) = run_edit_patch(&unit, &sites);
    assert_eq!(u_ref.emit(), u_patch.emit(), "edit sequences must agree");
    assert_eq!(u_frag.emit(), u_patch.emit(), "edit sequences must agree");
    let final_ref = relax_reference(&u_patch).expect("final relaxes");
    let final_patch = relax(&u_patch).expect("final relaxes");
    assert!(
        final_patch.agrees_with(&final_ref),
        "patched unit's layout diverges from the reference solver"
    );
    let patch_speedup = t_edit_ref / t_edit_patch;
    eprintln!(
        "{} edits: legacy {t_edit_ref:.6}s, fragment full {t_edit_frag:.6}s, \
         patch {t_edit_patch:.6}s ({patch_speedup:.2}x vs legacy)",
        sites.len()
    );

    // 3. Alignment pipeline, byte-identical output required.
    let (t_pipe_legacy, out_legacy) = run_alignment_pipeline(&unit, LEGACY_PIPELINE);
    let (t_pipe_frag, out_frag) = run_alignment_pipeline(&unit, PIPELINE);
    assert_eq!(
        out_legacy, out_frag,
        "alignment pipeline output differs between legacy and fragment layouts"
    );
    let pipeline_speedup = t_pipe_legacy / t_pipe_frag;
    eprintln!(
        "pipeline {PIPELINE}: legacy {t_pipe_legacy:.6}s, fragments {t_pipe_frag:.6}s \
         ({pipeline_speedup:.2}x, byte-identical output)"
    );

    if smoke {
        println!("bench_relax smoke ok: full {full_speedup:.2}x, edits {patch_speedup:.2}x, pipeline {pipeline_speedup:.2}x, output byte-identical");
        return;
    }

    let totals = mao::relax_totals();
    let json = format!(
        r#"{{
  "benchmark": "relax",
  "corpus": {{ "scale": {scale}, "functions": {functions}, "entries": {entries}, "relaxable_branches": {branches} }},
  "fragments": {{ "total": {ftot}, "variable": {fvar}, "fixed_point_passes": {fpass}, "fit_rechecks": {frechecks} }},
  "full_solve": {{ "reference_seconds": {t_ref:.6}, "fragment_seconds": {t_frag:.6}, "speedup": {full_speedup:.3} }},
  "edit_sequence": {{
    "edits": {nsites},
    "legacy_full_relax_seconds": {t_edit_ref:.6},
    "fragment_full_relax_seconds": {t_edit_frag:.6},
    "incremental_patch_seconds": {t_edit_patch:.6},
    "patch_speedup_vs_legacy": {patch_speedup:.3},
    "patch_speedup_vs_fragment_full": {pvf:.3}
  }},
  "pipeline": {{
    "passes": "{PIPELINE}",
    "legacy_relax_seconds": {t_pipe_legacy:.6},
    "incremental_seconds": {t_pipe_frag:.6},
    "speedup": {pipeline_speedup:.3},
    "byte_identical_output": true
  }},
  "process_totals": {{ "layouts": {tl}, "patches": {tp}, "iterations": {ti}, "rechecks": {tr}, "fragments": {tf} }}
}}
"#,
        ftot = metrics.fragments,
        fvar = metrics.variable_fragments,
        fpass = metrics.passes,
        frechecks = metrics.rechecks,
        nsites = sites.len(),
        pvf = t_edit_frag / t_edit_patch,
        tl = totals.layouts,
        tp = totals.patches,
        ti = totals.iterations,
        tr = totals.rechecks,
        tf = totals.fragments,
    );
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("{json}");
    println!("wrote {out}");
    println!(
        "summary: full solve {full_speedup:.2}x, {n} edits {patch_speedup:.2}x, \
         pipeline {pipeline_speedup:.2}x (all outputs byte-identical)",
        n = sites.len()
    );
}
