//! Experiment: Figure 6 + §IV — micro-architectural parameter detection.
//!
//! Runs the paper's `InstructionLatency` procedure (CYCLE-dependence
//! microbenchmark) over a set of instruction templates on both simulated
//! processors, then the extended probes that semi-automatically discover
//! the LSD window and the branch-predictor index shift — the capabilities
//! §IV motivates. Ground truth comes from the simulator's configuration,
//! so every detection is checkable.

use mao_probe::{detect_lsd_window, detect_predictor_shift, instruction_latency, Processor};

fn main() {
    let procs = [Processor::core2(), Processor::opteron()];

    println!("== Figure 6: instruction latency detection ==");
    println!(
        "{:<24} {:>18} {:>18}",
        "template", procs[0].name, procs[1].name
    );
    for template in [
        "addl %r, %r",
        "imull %r, %r",
        "xorl %r, %r",
        "movl %r, %r",
        "subl %r, %r",
    ] {
        let a = instruction_latency(&procs[0], template).expect("probe runs");
        let b = instruction_latency(&procs[1], template).expect("probe runs");
        println!("{template:<24} {a:>15} cyc {b:>15} cyc");
    }

    println!("\n== §IV: semi-automatic feature discovery ==");
    for proc in &procs {
        let lsd = detect_lsd_window(proc).expect("probe runs");
        let shift = detect_predictor_shift(proc).expect("probe runs");
        println!(
            "  {:<18} loop-buffer window: {} decode line(s) (config: {}), predictor index: PC>>{} (config: PC>>{})",
            proc.name,
            lsd,
            proc.config.lsd.max_lines,
            shift,
            proc.config.predictor.index_shift,
        );
        assert_eq!(lsd, proc.config.lsd.max_lines, "LSD window detected");
        assert_eq!(
            shift, proc.config.predictor.index_shift,
            "predictor shift detected"
        );
    }
    println!("  (the paper's PC>>5 anecdote, discovered rather than documented)");
}
