//! Quick effect-shape sanity checks for the simulator (developer tool).

use mao::MaoUnit;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn cycles(text: &str) -> u64 {
    let unit = MaoUnit::parse(text).unwrap();
    simulate(
        &unit,
        "f",
        &[],
        &UarchConfig::core2(),
        &SimOptions::default(),
    )
    .unwrap()
    .pmu
    .cycles
}

fn main() {
    // LOOP16: the eon loop runs only 8 iterations per entry (below LSD
    // lock-on), re-entered from an outer loop. 15-byte inner body.
    let loop16 = |pad: usize| {
        let mut s = String::from(
            ".type f, @function\nf:\n\tmovl $30000, %ecx\n.Louter:\n\txorq %rax, %rax\n\tmovq $8, %rdx\n",
        );
        s.push_str(&"\tnop\n".repeat(pad));
        s.push_str(".Lloop:\n\tmovss %xmm0, (%rdi,%rax,4)\n\taddq $1, %rax\n\tsubq $1, %rdx\n\tjne .Lloop\n");
        s.push_str("\tsubl $1, %ecx\n\tjne .Louter\n\tret\n");
        s
    };
    // Entry to .Lloop: movl(5)+xor(3)+movq(7) = 15 bytes. pad 1 -> aligned.
    let aligned = cycles(&loop16(1));
    let crossing = cycles(&loop16(0));
    println!(
        "LOOP16: aligned={aligned} crossing={crossing} slowdown={:.3}",
        crossing as f64 / aligned as f64
    );

    // LSD: byte-dense loop of independent movabs (10 bytes each):
    // 5 movabs + subq + jne = 56 bytes, 7 insns. Aligned start -> 4 lines
    // (streams after 64 iterations); start at 10 -> 5 lines (never streams).
    let lsd = |pad: usize| {
        let mut s =
            String::from(".type f, @function\nf:\n\txorq %rax, %rax\n\tmovq $100000, %rcx\n");
        s.push_str(&"\tnop\n".repeat(pad));
        s.push_str(".Lloop:\n");
        for (i, r) in ["r8", "r9", "r10", "r11", "rdx"].iter().enumerate() {
            s.push_str(&format!("\tmovabs $0x123456789abcde{i}, %{r}\n"));
        }
        s.push_str("\tsubq $1, %rcx\n\tjne .Lloop\n\tret\n");
        s
    };
    let four = cycles(&lsd(6)); // start 16: [16,72) -> 4 lines, streams
    let five = cycles(&lsd(0)); // start 10: [10,66) -> 5 lines
    println!(
        "LSD: 4lines={four} 5lines={five} slowdown={:.3}",
        five as f64 / four as f64
    );

    // BRALIGN: inner loop trip count 1 (its back branch is never taken),
    // outer always taken. Same 32B bucket -> predictor conflict.
    let nest = |pad: usize| {
        let mut s = String::from(
            ".type f, @function\nf:\n\tmovl $100000, %eax\n.Louter:\n\tmovl $1, %ebx\n.Linner:\n\tsubl $1, %ebx\n\tjne .Linner\n",
        );
        s.push_str(&"\tnop\n".repeat(pad));
        s.push_str("\tsubl $1, %eax\n\tjne .Louter\n\tret\n");
        s
    };
    let aliased = cycles(&nest(0));
    let separated = cycles(&nest(24));
    println!(
        "BRALIGN: aliased={aliased} separated={separated} speedup={:.3}",
        aliased as f64 / separated as f64
    );

    // SCHED / forwarding: xorl feeding three consumers; critical path via
    // the shrl consumer. Bad order: critical consumer last (loses the
    // forwarding slot); good order: critical consumer first.
    let hash = |order: &[&str]| {
        let mut s =
            String::from(".type f, @function\nf:\n\tmovl $200000, %eax\n.L:\n\txorl %edi, %ebx\n");
        for line in order {
            s.push_str(line);
            s.push('\n');
        }
        s.push_str("\txorl %edi, %edx\n\tsubl $1, %eax\n\tjne .L\n\tret\n");
        s
    };
    let good = cycles(&hash(&[
        "\tmovl %ebx, %edi",
        "\tshrl $12, %edi",
        "\tsubl %ebx, %ecx",
        "\tsubl %ebx, %edx",
    ]));
    let bad = cycles(&hash(&[
        "\tsubl %ebx, %ecx",
        "\tsubl %ebx, %edx",
        "\tmovl %ebx, %edi",
        "\tshrl $12, %edi",
    ]));
    println!(
        "SCHED: good={good} bad={bad} slowdown={:.3}",
        bad as f64 / good as f64
    );
}
