//! Ablation study: which modeled hardware structure produces which paper
//! effect?
//!
//! DESIGN.md's substitution argument rests on each §III performance cliff
//! being the documented mechanism of one structure. This experiment turns
//! the structures off one at a time and shows the corresponding effect
//! disappear (and the unrelated ones survive) — evidence that the
//! reproduction reproduces the paper's *causes*, not just its numbers.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn cycles(asm: &str, entry: &str, args: &[u64], config: &UarchConfig) -> u64 {
    let unit = MaoUnit::parse(asm).expect("parses");
    simulate(&unit, entry, args, config, &SimOptions::default())
        .expect("runs")
        .pmu
        .cycles
}

fn effect(base: u64, variant: u64) -> f64 {
    (variant as f64 - base as f64) / base as f64 * 100.0
}

fn main() {
    let stock = UarchConfig::core2();
    let mut no_lsd = stock.clone();
    no_lsd.lsd.enabled = false;
    let mut no_bubble = stock.clone();
    no_bubble.taken_branch_bubble = 0;
    let mut wide_forward = stock.clone();
    wide_forward.backend.forward_bandwidth = 64;
    let mut coarse_predictor = stock.clone();
    coarse_predictor.predictor.index_shift = 12; // everything aliases

    println!("== Ablation: per-structure contribution to each paper effect ==");
    println!("(numbers are the slowdown of the \"bad\" variant over the \"good\" one)");
    println!();
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9}",
        "effect", "stock", "-LSD", "-bubble", "bw=64"
    );

    // Figures 4/5: 4-line vs 5-line loop — needs the LSD.
    let four = kernels::lsd_loop(6, 50_000);
    let five = kernels::lsd_loop(0, 50_000);
    let row = |cfg: &UarchConfig| {
        effect(
            cycles(&four.asm, &four.entry, &[], cfg),
            cycles(&five.asm, &five.entry, &[], cfg),
        )
    };
    println!(
        "{:<28} {:>+8.1}% {:>+8.1}% {:>+8.1}% {:>+8.1}%",
        "LSD window (figs 4/5)",
        row(&stock),
        row(&no_lsd),
        row(&no_bubble),
        row(&wide_forward)
    );

    // §III.F: bad vs good hashing schedule — needs forwarding bandwidth.
    let good = kernels::hashing(true, 50_000);
    let bad = kernels::hashing(false, 50_000);
    let row = |cfg: &UarchConfig| {
        effect(
            cycles(&good.asm, &good.entry, &[], cfg),
            cycles(&bad.asm, &bad.entry, &[], cfg),
        )
    };
    println!(
        "{:<28} {:>+8.1}% {:>+8.1}% {:>+8.1}% {:>+8.1}%",
        "schedule order (§III.F)",
        row(&stock),
        row(&no_lsd),
        row(&no_bubble),
        row(&wide_forward)
    );

    // §III.C.g: aliased vs separated back branches — needs the predictor's
    // PC>>5 indexing (shift 12 makes separation useless).
    let sep = kernels::image_nest(24, 30_000);
    let ali = kernels::image_nest(0, 30_000);
    let row = |cfg: &UarchConfig| {
        effect(
            cycles(&sep.asm, &sep.entry, &[], cfg),
            cycles(&ali.asm, &ali.entry, &[], cfg),
        )
    };
    println!(
        "{:<28} {:>+8.1}% {:>+8.1}% {:>+8.1}% {:>+8.1}%",
        "branch aliasing (§III.C.g)",
        row(&stock),
        row(&no_lsd),
        row(&no_bubble),
        row(&wide_forward)
    );
    let aliased_with_coarse = row(&coarse_predictor);
    println!(
        "{:<28} {:>+8.1}%   (separation cannot help when PC>>12 aliases everything)",
        "  ... with PC>>12 indexing", aliased_with_coarse
    );

    // Scheduler cost-function ablation: critical-path vs source-order.
    println!("\n== Ablation: SCHED cost function (the paper's pluggable heuristic) ==");
    let base = cycles(&bad.asm, &bad.entry, &[], &stock);
    for (label, passes) in [
        ("critical-path (paper)", "SCHED"),
        ("source-order baseline", "SCHED=policy[source-order]"),
    ] {
        let mut unit = MaoUnit::parse(&bad.asm).expect("parses");
        run_pipeline(&mut unit, &parse_invocations(passes).expect("valid"), None).expect("runs");
        let c = cycles(&unit.emit(), &bad.entry, &[], &stock);
        println!(
            "  {label:<24} {c:>8} cycles ({:+.1}% vs unscheduled)",
            (base as f64 - c as f64) / base as f64 * 100.0
        );
    }
}
