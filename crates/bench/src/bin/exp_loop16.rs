//! Experiment: §III.C.e — short-loop decode-line alignment (the 252.eon
//! 7% regression between GCC 4.2 and 4.3).
//!
//! The same short `movss/add/cmp/jne` loop is placed at every offset within
//! a 16-byte line; offsets where it crosses a line boundary decode from two
//! lines per iteration instead of one. The LOOP16 pass then fixes the worst
//! placement.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_sim::{simulate, SimOptions, UarchConfig};

/// The eon-like loop (15 bytes) at `offset` within its decode line,
/// re-entered `outer` times with trip count 8 (below LSD lock-on).
fn kernel(offset: usize, outer: u64) -> String {
    let mut s = String::from(".text\n.globl f\n.type f, @function\nf:\n");
    s.push_str(&format!("\tmovl ${outer}, %ecx\n"));
    s.push_str(".Louter:\n");
    s.push_str("\txorq %rax, %rax\n");
    s.push_str("\tmovq $8, %rdx\n");
    s.push_str("\t.p2align 4\n");
    s.push_str(&"\tnop\n".repeat(offset));
    s.push_str(".Lloop:\n");
    s.push_str("\tmovss %xmm0, (%rdi,%rax,4)\n");
    s.push_str("\taddq $1, %rax\n");
    s.push_str("\tsubq $1, %rdx\n");
    s.push_str("\tjne .Lloop\n");
    s.push_str("\tsubl $1, %ecx\n");
    s.push_str("\tjne .Louter\n");
    s.push_str("\tret\n");
    s.push_str(".size f, .-f\n");
    s
}

fn cycles(asm: &str, config: &UarchConfig) -> u64 {
    let unit = MaoUnit::parse(asm).expect("kernel parses");
    simulate(&unit, "f", &[0x300_0000], config, &SimOptions::default())
        .expect("kernel runs")
        .pmu
        .cycles
}

fn main() {
    let config = UarchConfig::core2();
    println!("== §III.C.e: 15-byte loop vs. placement within a 16-byte line ==");
    println!(
        "{:>8} {:>10} {:>12} {:>8}",
        "offset", "cycles", "cyc/iter", "lines"
    );
    let outer = 30_000u64;
    let iters = outer * 8;
    let mut best = u64::MAX;
    let mut worst = 0u64;
    let mut worst_offset = 0usize;
    for offset in 0..16 {
        let c = cycles(&kernel(offset, outer), &config);
        let lines = if (offset + 15 - 1) / 16 > offset / 16 {
            2
        } else {
            1
        };
        println!(
            "{offset:>8} {c:>10} {:>12.3} {lines:>8}",
            c as f64 / iters as f64
        );
        best = best.min(c);
        if c > worst {
            worst = c;
            worst_offset = offset;
        }
    }
    println!(
        "  crossing penalty: {:.1}%  (paper observed 7% at benchmark level)",
        (worst as f64 - best as f64) / best as f64 * 100.0
    );

    // Now let LOOP16 fix the worst placement.
    let mut unit = MaoUnit::parse(&kernel(worst_offset, outer)).expect("parses");
    let before = cycles(&unit.emit(), &config);
    let report = run_pipeline(
        &mut unit,
        &parse_invocations("LOOP16").expect("valid"),
        None,
    )
    .expect("LOOP16 runs");
    let after = cycles(&unit.emit(), &config);
    println!(
        "  LOOP16 on worst offset {worst_offset}: {before} -> {after} cycles ({:+.1}%), {} loops aligned",
        (before as f64 - after as f64) / before as f64 * 100.0,
        report.total_transformations()
    );
    // The pad NOPs that created the worst offset still execute after the
    // fix, so "after" cannot reach the offset-0 optimum exactly.
    assert!(after < before, "LOOP16 must improve the worst placement");
}
