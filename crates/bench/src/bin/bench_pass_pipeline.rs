//! `pass_throughput` benchmark mode: functions/sec through the default
//! function-level pipeline at jobs=1 vs jobs=N, plus the single-threaded
//! speedup of the incremental index + analysis cache over the pre-index
//! O(F²) driver. Writes `BENCH_pass_pipeline.json`.
//!
//! Usage: `bench_pass_pipeline [--jobs N] [--scale S] [--out FILE]`
//! (defaults: N=4, S=0.25 ≈ 200 functions, FILE=BENCH_pass_pipeline.json).

use std::sync::Arc;
use std::time::Instant;

use mao::cfg::Cfg;
use mao::dataflow::Liveness;
use mao::pass::{
    for_each_function_full_rebuild, parse_invocations, run_functions, run_pipeline_observed,
    run_pipeline_with, PassContext, PipelineConfig, PipelineReport,
};
use mao::unit::EditSet;
use mao::{AnalysisCache, MaoUnit, Obs};
use mao_corpus::{generate, GeneratorConfig};

/// The function-level pipeline every measurement runs.
const PIPELINE: &str = "REDZEXT:REDTEST:REDMOV:ADDADD:CONSTFOLD:DCE:SCHED";

/// How many times the analysis-only workload walks all functions (models a
/// pipeline of that many analysis passes over an unchanged unit).
const ANALYSIS_ROUNDS: usize = 8;

const SAMPLES: usize = 3;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median wall-clock seconds of `SAMPLES` runs of `f`.
fn time_median<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let out = f();
        times.push(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (median(times), last.unwrap())
}

/// Median wall-clock seconds of `SAMPLES` pipeline runs at the given job
/// count. Parsing and cloning the unit happen outside the timed region —
/// the benchmark measures pass throughput, not the (serial) parser.
fn run_pipeline_at(base: &MaoUnit, jobs: usize) -> (f64, PipelineReport) {
    let invs = parse_invocations(PIPELINE).unwrap();
    let mut times = Vec::with_capacity(SAMPLES);
    let mut last = None;
    for _ in 0..SAMPLES {
        let mut unit = base.clone();
        let t = Instant::now();
        let report = run_pipeline_with(&mut unit, &invs, None, &PipelineConfig { jobs })
            .expect("pipeline runs");
        times.push(t.elapsed().as_secs_f64());
        last = Some(report);
    }
    (median(times), last.unwrap())
}

/// The pre-index analysis workload: every round recomputes the function
/// views from scratch per function step (the old O(F²) driver) and builds
/// CFG + liveness fresh.
fn analysis_legacy(asm: &str) {
    let mut unit = MaoUnit::parse(asm).expect("corpus parses");
    for _ in 0..ANALYSIS_ROUNDS {
        for_each_function_full_rebuild(&mut unit, |unit, function| {
            let cfg = Cfg::build(unit, function);
            let live = Liveness::compute(unit, &cfg);
            std::hint::black_box((cfg.len(), live.live_in.len()));
            Ok(EditSet::new())
        })
        .unwrap();
    }
}

/// The same workload on the incremental index + analysis cache, still
/// single-threaded: round 1 fills the cache, later rounds hit it.
fn analysis_incremental(asm: &str) -> (u64, u64) {
    let mut unit = MaoUnit::parse(asm).expect("corpus parses");
    let mut ctx = PassContext::default();
    ctx.jobs = 1;
    for _ in 0..ANALYSIS_ROUNDS {
        run_functions(&mut unit, &mut ctx, |unit, function, fctx| {
            let cfg = fctx.cfg(unit, function);
            let live = fctx.liveness(unit, function);
            std::hint::black_box((cfg.len(), live.live_in.len()));
            Ok(EditSet::new())
        })
        .unwrap();
    }
    let stats = ctx.analyses.stats();
    (stats.hits, stats.misses)
}

const USAGE: &str = "usage: bench_pass_pipeline [--jobs N] [--scale S] [--out FILE]\n\
    \x20      bench_pass_pipeline --telemetry-guard [--jobs N] [--scale S]\n\
    (defaults: N=4, S=0.25, FILE=BENCH_pass_pipeline.json)\n\
    --telemetry-guard: assert that running the pipeline with aggregating\n\
    spans + metrics costs <3% over telemetry-off (plus a small absolute\n\
    noise allowance); exits 1 on regression instead of writing JSON";

/// Samples per arm of the telemetry-overhead guard (interleaved, median).
const GUARD_SAMPLES: usize = 5;

/// One timed pipeline run through the *observed* entry point with a fresh
/// analysis cache, as the daemon would run it.
fn observed_seconds(base: &MaoUnit, jobs: usize, obs: &Obs, attach: bool) -> f64 {
    let invs = parse_invocations(PIPELINE).unwrap();
    let mut unit = base.clone();
    let analyses = Arc::new(AnalysisCache::new());
    if attach {
        analyses.attach_metrics(&obs.metrics);
    }
    let t = Instant::now();
    run_pipeline_observed(
        &mut unit,
        &invs,
        None,
        &PipelineConfig { jobs },
        &analyses,
        obs,
    )
    .expect("pipeline runs");
    t.elapsed().as_secs_f64()
}

/// The telemetry-overhead guard: telemetry-on (aggregating recorder,
/// metrics registry attached everywhere) vs telemetry-off through the same
/// code path, interleaved to share thermal/scheduling noise. Exits nonzero
/// when the median overhead exceeds 3% beyond a small absolute allowance.
fn telemetry_guard(scale: f64, jobs: usize) -> ! {
    let corpus = generate(&GeneratorConfig::core_library(scale));
    let unit = MaoUnit::parse(&corpus.asm).expect("corpus parses");
    let _ = unit.functions_cached();
    let off = Obs::off();
    // Warm up both arms (page in code, fill allocator pools).
    let _ = observed_seconds(&unit, jobs, &off, false);
    let _ = observed_seconds(&unit, jobs, &Obs::aggregating(), true);
    let mut t_off = Vec::with_capacity(GUARD_SAMPLES);
    let mut t_on = Vec::with_capacity(GUARD_SAMPLES);
    for _ in 0..GUARD_SAMPLES {
        t_off.push(observed_seconds(&unit, jobs, &off, false));
        // A fresh aggregating bundle per sample: steady-state daemon shape,
        // no cross-sample accumulation.
        t_on.push(observed_seconds(&unit, jobs, &Obs::aggregating(), true));
    }
    let off_s = median(t_off);
    let on_s = median(t_on);
    let overhead_pct = (on_s - off_s) / off_s * 100.0;
    // Noise allowance: 3% relative plus 2ms absolute — tiny corpora finish
    // in single-digit milliseconds where scheduler jitter exceeds 3%.
    let allowed_s = off_s * 0.03 + 0.002;
    println!(
        "telemetry guard: off {off_s:.6}s, on {on_s:.6}s, overhead {overhead_pct:+.2}% \
         (allowance {allowed_s:.6}s, jobs={jobs}, scale={scale})"
    );
    if on_s - off_s > allowed_s {
        eprintln!(
            "bench_pass_pipeline: TELEMETRY OVERHEAD REGRESSION: enabled telemetry costs \
             {overhead_pct:.2}% (> 3% + noise allowance)"
        );
        std::process::exit(1);
    }
    println!("telemetry guard: OK");
    std::process::exit(0);
}

fn usage_error(message: &str) -> ! {
    eprintln!("bench_pass_pipeline: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut jobs = 4usize;
    let mut scale = 0.25f64;
    let mut out = String::from("BENCH_pass_pipeline.json");
    let mut guard = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--telemetry-guard" => guard = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => usage_error("--jobs needs a numeric value"),
            },
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale = s,
                None => usage_error("--scale needs a numeric value"),
            },
            "--out" => match it.next() {
                Some(f) => out = f.clone(),
                None => usage_error("--out needs a file name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if jobs == 0 {
        jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
    }
    if guard {
        telemetry_guard(scale, jobs);
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let corpus = generate(&GeneratorConfig::core_library(scale));
    let unit = MaoUnit::parse(&corpus.asm).expect("corpus parses");
    let functions = unit.functions().len();
    let entries = unit.len();
    eprintln!("corpus: {functions} functions, {entries} entries (scale {scale}); {cpus} cpu(s)");

    let _ = unit.functions_cached(); // build the index before cloning

    eprintln!("pipeline `{PIPELINE}` at jobs=1 ...");
    let (t1, report1) = run_pipeline_at(&unit, 1);
    eprintln!("pipeline at jobs={jobs} ...");
    let (tn, report_n) = run_pipeline_at(&unit, jobs);
    let fps1 = functions as f64 / t1;
    let fpsn = functions as f64 / tn;
    let parallel_speedup = t1 / tn;

    eprintln!("analysis workload, pre-index O(F^2) driver ...");
    let (t_legacy, _) = time_median(|| analysis_legacy(&corpus.asm));
    eprintln!("analysis workload, incremental index + cache ...");
    let (t_incr, (hits, misses)) = time_median(|| analysis_incremental(&corpus.asm));
    let single_thread_speedup = t_legacy / t_incr;
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let cache = report_n.cache;
    let json = format!(
        r#"{{
  "benchmark": "pass_throughput",
  "pipeline": "{PIPELINE}",
  "corpus": {{ "scale": {scale}, "functions": {functions}, "entries": {entries} }},
  "available_cpus": {cpus},
  "jobs1": {{ "seconds": {t1:.6}, "functions_per_sec": {fps1:.1} }},
  "jobsN": {{ "jobs": {jobs}, "seconds": {tn:.6}, "functions_per_sec": {fpsn:.1}, "speedup_vs_jobs1": {parallel_speedup:.3}, "speedup_bounded_by_cpus": {bounded} }},
  "single_thread_incremental": {{
    "legacy_full_rebuild_seconds": {t_legacy:.6},
    "incremental_cached_seconds": {t_incr:.6},
    "speedup": {single_thread_speedup:.3},
    "analysis_rounds": {ANALYSIS_ROUNDS},
    "cache_hits": {hits},
    "cache_misses": {misses},
    "cache_hit_rate": {hit_rate:.4}
  }},
  "pipeline_cache": {{ "hits": {ch}, "misses": {cm}, "hit_rate": {chr:.4} }}
}}
"#,
        bounded = cpus < jobs,
        ch = cache.hits,
        cm = cache.misses,
        chr = {
            let total = cache.hits + cache.misses;
            if total > 0 {
                cache.hits as f64 / total as f64
            } else {
                0.0
            }
        },
    );
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("{json}");
    println!("wrote {out}");
    if cpus < jobs {
        eprintln!(
            "note: only {cpus} cpu(s) available — the jobs={jobs} measurement cannot \
             exceed {cpus}x; re-run on a multi-core host to observe parallel speedup"
        );
    }
    println!(
        "summary: jobs={jobs} speedup {parallel_speedup:.2}x, \
         single-thread incremental speedup {single_thread_speedup:.2}x, \
         pipeline cache hit rate {:.1}%",
        {
            let total = cache.hits + cache.misses;
            if total > 0 {
                cache.hits as f64 / total as f64 * 100.0
            } else {
                0.0
            }
        }
    );
    drop(report1);
}
