//! Experiment: §III.B — static pattern counts on the synthetic core
//! library.
//!
//! The paper counts, on a Google core library of ~80 complex C++ files:
//! ~1000 redundant zero-extensions, 79763 test instructions of which 19272
//! (24%) are redundant, and 13362 redundant memory-access pairs. The
//! synthetic corpus plants the same patterns at the same rates; the passes
//! must then *find* what was planted (run in count-only mode).

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::compiler::{generate, GeneratorConfig};

fn main() {
    // Scale 1.0 = the full corpus size; pass --scale 0.1 for a quick run.
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let config = GeneratorConfig::core_library(scale);
    println!("== §III.B pattern counts (corpus scale {scale}) ==");
    let corpus = generate(&config);
    println!(
        "  corpus: {} functions, ~{} instructions",
        corpus.planted.functions, corpus.planted.instructions
    );

    let mut unit = MaoUnit::parse(&corpus.asm).expect("corpus parses");
    let report = run_pipeline(
        &mut unit,
        &parse_invocations(
            "REDZEXT=count-only:REDTEST=count-only:REDMOV=count-only:ADDADD=count-only",
        )
        .expect("valid"),
        None,
    )
    .expect("passes run");

    let found = |name: &str| report.stats(name).map(|s| s.matches).unwrap_or(0);
    let p = corpus.planted;
    let paper_scale = |full: f64| (full * scale).round() as usize;

    println!(
        "  {:<26} {:>9} {:>9} {:>12}",
        "pattern", "planted", "found", "paper(scaled)"
    );
    for (label, planted, pass, paper) in [
        (
            "redundant zero-extension",
            p.redundant_zext,
            "REDZEXT",
            paper_scale(1000.0),
        ),
        (
            "redundant test",
            p.redundant_tests,
            "REDTEST",
            paper_scale(19272.0),
        ),
        (
            "redundant memory access",
            p.redundant_loads,
            "REDMOV",
            paper_scale(13362.0),
        ),
        ("add/add sequence", p.addadd_pairs, "ADDADD", 0),
    ] {
        println!("  {label:<26} {planted:>9} {:>9} {paper:>12}", found(pass));
        assert_eq!(
            found(pass),
            planted,
            "{pass} must find exactly the planted {label} patterns"
        );
    }
    println!(
        "  total tests: {} ({}% redundant; paper: 79763 total, 24%)",
        p.total_tests,
        (p.redundant_tests as f64 / p.total_tests as f64 * 100.0).round()
    );
}
