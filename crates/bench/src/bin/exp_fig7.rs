//! Experiment: Figure 7 — transformation counts and aggregate performance
//! on SPEC 2000 int.
//!
//! The paper applies small-loop alignment (L), the Nopinizer (NOP),
//! redundant-mov removal (M), redundant-test removal (T) and scheduling
//! (SCHED) together, reporting per-benchmark transformation counts and the
//! aggregate performance delta on an Intel platform, with geomeans of
//! +0.38% (all twelve) and +0.61% excluding the 253.perlbmk regression.

use mao_bench::{geomean_pct, or_exit, pass_effect};
use mao_corpus::spec::{spec2000_benchmark, SPEC2000_NAMES};
use mao_sim::UarchConfig;

fn main() {
    let config = UarchConfig::core2();
    // The paper's combined pass set; NOPIN with a fixed seed and mild
    // density (the paper's table shows large NOP counts, i.e. it ran the
    // Nopinizer as part of the set).
    // Pass order matters (§II's phase-ordering discussion): the peepholes
    // shrink code first, then LOOP16 (with a slightly wider candidate size)
    // re-aligns the short loops they displaced, then the Nopinizer and the
    // scheduler run. This ordering is what lets the combination rescue
    // 252.eon even though REDTEST alone regresses it.
    let passes = "REDMOV:REDTEST:LOOP16=max-size[18]:NOPIN=seed[1],density[0.005],maxlen[1]:SCHED";

    println!("== Figure 7: combined pass set on SPEC2000-int-like suite ==");
    println!(
        "{:<14} {:>5} {:>6} {:>5} {:>5} {:>6} {:>9}",
        "benchmark", "L", "NOP", "M", "T", "SCHED", "Perf"
    );
    let paper: &[(&str, f64)] = &[
        ("164.gzip", 0.02),
        ("175.vpr", 1.06),
        ("176.gcc", 1.29),
        ("181.mcf", 0.13),
        ("186.crafty", 0.43),
        ("197.parser", 0.18),
        ("252.eon", 1.01),
        ("253.perlbmk", -2.14),
        ("254.gap", 0.12),
        ("255.vortex", 0.44),
        ("256.bzip2", 1.04),
        ("300.twolf", 0.97),
    ];
    let mut perfs = Vec::new();
    let mut perfs_wo_perl = Vec::new();
    for name in SPEC2000_NAMES {
        let w = spec2000_benchmark(name).expect("known benchmark");
        let (pct, report) = or_exit(pass_effect(&w, passes, &config));
        let count = |p: &str| report.stats(p).map(|s| s.transformations).unwrap_or(0);
        let paper_perf = paper
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        println!(
            "{name:<14} {:>5} {:>6} {:>5} {:>5} {:>6} {pct:>+8.2}%  (paper {paper_perf:+.2}%)",
            count("LOOP16"),
            count("NOPIN"),
            count("REDMOV"),
            count("REDTEST"),
            count("SCHED"),
        );
        perfs.push(pct);
        if name != "253.perlbmk" {
            perfs_wo_perl.push(pct);
        }
    }
    println!(
        "{:<14} {:>36} {:>+8.2}%  (paper +0.38%)",
        "geomean",
        "",
        geomean_pct(&perfs)
    );
    println!(
        "{:<14} {:>36} {:>+8.2}%  (paper +0.61%)",
        "geomean w/o 253.perlbmk",
        "",
        geomean_pct(&perfs_wo_perl)
    );
}
