//! Experiment: the §II relaxation listing.
//!
//! Reproduces the paper's worked example byte-for-byte: a forward `jmp`
//! over a 0x7f-byte body encodes as 2 bytes (`eb 7f`); inserting a single
//! NOP before the target forces the 5-byte `e9` form and moves the target
//! down by 4 bytes (1 NOP + 3 encoding growth), re-relaxing the backward
//! `jne` as well.

use mao::relax::relax;
use mao::MaoUnit;
use mao_x86::encode::encode;

fn listing(extra_nop: bool) -> String {
    let mut s = String::new();
    s.push_str("main:\n");
    s.push_str("\tpush %rbp\n");
    s.push_str("\tmov %rsp, %rbp\n");
    s.push_str("\tmovl $5, -4(%rbp)\n");
    s.push_str("\tjmp .Lc\n");
    s.push_str("\taddl $1, -4(%rbp)\n");
    s.push_str("\tsubl $1, -4(%rbp)\n");
    // <instructions> — pad to put .Lc at 0x8c.
    for _ in 0..0x77 {
        s.push_str("\tnop\n");
    }
    if extra_nop {
        s.push_str("\tnop\n");
    }
    s.push_str(".Lc:\n");
    s.push_str("\tcmpl $0, -4(%rbp)\n");
    s.push_str("\tjne .Ld\n");
    s.push_str("\tret\n");
    s
}

fn main() {
    println!("== §II relaxation listing ==");
    for extra in [false, true] {
        // The backward jne in the paper targets offset 0xd; give it a label.
        let asm = listing(extra).replace("\tjmp .Lc\n\taddl", "\tjmp .Lc\n.Ld:\n\taddl");
        let unit = MaoUnit::parse(&asm).expect("listing parses");
        let layout = relax(&unit).expect("listing relaxes");
        let jmp = unit
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.target_label() == Some(".Lc")))
            .expect("jmp exists");
        let lc = unit.find_label(".Lc").expect(".Lc exists");
        let delta = layout.addr[lc] as i64 - layout.end_addr(jmp) as i64;
        let bytes = encode(
            unit.insn(jmp).expect("jmp is insn"),
            layout.form(jmp),
            delta,
        )
        .expect("jmp encodes");
        println!(
            "  {}: jmp at {:#04x} is {} bytes [{}], .Lc at {:#04x}, {} relaxation iterations",
            if extra {
                "with extra NOP"
            } else {
                "original      "
            },
            layout.addr[jmp],
            layout.size[jmp],
            bytes
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" "),
            layout.addr[lc],
            layout.iterations,
        );
    }
    println!("  paper: 'eb 7f' / .Lc at 0x8c -> 'e9 80 00 00 00' / .Lc at 0x90");
}
