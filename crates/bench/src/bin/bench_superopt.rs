//! `superopt` benchmark mode: cold-search vs warm-cache window throughput
//! of the SUPEROPT pass over a generated corpus, plus the simulated cycle
//! delta on the paper kernel suite. Writes `BENCH_superopt.json`.
//!
//! Two gates (exit nonzero on failure):
//! * warm-cache throughput must be at least 10x cold-search throughput —
//!   the learned-rewrite cache must actually skip the search; and
//! * at least one paper kernel must get a measured cycle improvement with
//!   identical functional results.
//!
//! Usage: `bench_superopt [--scale S] [--seed N] [--jobs N] [--out FILE]
//! [--smoke]` (defaults: S=0.02, N=42, jobs=1, FILE=BENCH_superopt.json;
//! `--smoke` shrinks the corpus and skips the output file).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mao::pass::{parse_invocations, run_pipeline_observed, PipelineConfig};
use mao::{AnalysisCache, MaoUnit, Obs};
use mao_corpus::kernels;
use mao_corpus::{generate, GeneratorConfig};
use mao_sim::{simulate, SimOptions, UarchConfig};

/// Minimum warm/cold throughput ratio the cache must deliver.
const WARM_SPEEDUP_GATE: f64 = 10.0;

struct ThroughputSample {
    seconds: f64,
    windows: u64,
    searches: u64,
    cache_hits: u64,
    rewrites: u64,
}

impl ThroughputSample {
    fn windows_per_sec(&self) -> f64 {
        self.windows as f64 / self.seconds.max(1e-9)
    }
}

/// One SUPEROPT run over a clone of `base`, against `cache_dir`.
fn run_superopt(base: &MaoUnit, spec: &str, jobs: usize) -> (String, ThroughputSample) {
    let mut unit = base.clone();
    let invs = parse_invocations(spec).expect("valid pass spec");
    let obs = Obs::aggregating();
    let analyses = Arc::new(AnalysisCache::new());
    let t = Instant::now();
    run_pipeline_observed(
        &mut unit,
        &invs,
        None,
        &PipelineConfig { jobs },
        &analyses,
        &obs,
    )
    .expect("SUPEROPT runs");
    let seconds = t.elapsed().as_secs_f64();
    let counter = |name: &str| obs.metrics.counter_value(name);
    (
        unit.emit(),
        ThroughputSample {
            seconds,
            windows: counter("mao_superopt_windows_total"),
            searches: counter("mao_superopt_searches_total"),
            cache_hits: counter("mao_superopt_cache_hits_total"),
            rewrites: counter("mao_superopt_rewrites_total"),
        },
    )
}

struct KernelDelta {
    name: String,
    cycles_before: u64,
    cycles_after: u64,
    rewrites: u64,
}

fn main() {
    mao_superopt::register();
    let mut scale = 0.02_f64;
    let mut seed = 42_u64;
    let mut jobs = 1_usize;
    let mut out = String::from("BENCH_superopt.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale S"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--out" => out = args.next().expect("--out FILE"),
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "bench_superopt: unknown option `{other}`\n\
                     usage: bench_superopt [--scale S] [--seed N] [--jobs N] [--out FILE] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    if smoke {
        scale = scale.min(0.01);
    }

    // --- Cold vs warm window throughput over a generated corpus. ---
    let corpus = generate(&GeneratorConfig::core_library(scale));
    let base = MaoUnit::parse(&corpus.asm).expect("corpus parses");
    let cache_dir =
        std::env::temp_dir().join(format!("mao-bench-superopt-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let spec = format!(
        "SUPEROPT=seed[{seed}],max-window[6],diff-states[3],iters[24],max-candidates[48],cache-dir[{}]",
        cache_dir.display()
    );
    let (cold_asm, cold) = run_superopt(&base, &spec, jobs);
    let (warm_asm, warm) = run_superopt(&base, &spec, jobs);
    let _ = std::fs::remove_dir_all(&cache_dir);
    assert_eq!(
        cold_asm, warm_asm,
        "warm-cache output must be byte-identical to the cold run"
    );
    assert_eq!(
        warm.searches, 0,
        "a fully warmed cache must answer every window without searching"
    );
    let warm_speedup = warm.windows_per_sec() / cold.windows_per_sec().max(1e-9);

    // --- Cycle delta on the paper kernel suite. ---
    let uarch = UarchConfig::core2();
    let sim_opts = SimOptions::default();
    let kernel_spec = format!("SUPEROPT=seed[{seed}]");
    let mut deltas: Vec<KernelDelta> = Vec::new();
    for w in kernels::paper_suite(if smoke { 20 } else { 40 }) {
        let unit = MaoUnit::parse(&w.asm).expect("kernel parses");
        let before = simulate(&unit, &w.entry, &w.args, &uarch, &sim_opts).expect("kernel runs");
        let (after_asm, sample) = run_superopt(&unit, &kernel_spec, 1);
        let after_unit = MaoUnit::parse(&after_asm).expect("rewritten kernel parses");
        let after =
            simulate(&after_unit, &w.entry, &w.args, &uarch, &sim_opts).expect("rewritten runs");
        assert_eq!(
            before.ret, after.ret,
            "SUPEROPT changed the result of {}",
            w.name
        );
        deltas.push(KernelDelta {
            name: w.name.clone(),
            cycles_before: before.pmu.cycles,
            cycles_after: after.pmu.cycles,
            rewrites: sample.rewrites,
        });
    }
    let improved = deltas
        .iter()
        .filter(|d| d.cycles_after < d.cycles_before)
        .count();

    // --- Report. ---
    let mut kernel_json = String::new();
    for (i, d) in deltas.iter().enumerate() {
        let pct = 100.0 * (d.cycles_after as f64 - d.cycles_before as f64)
            / (d.cycles_before as f64).max(1.0);
        let _ = write!(
            kernel_json,
            "{}    {{ \"kernel\": \"{}\", \"cycles_before\": {}, \"cycles_after\": {}, \"delta_pct\": {:.3}, \"rewrites\": {} }}",
            if i == 0 { "" } else { ",\n" },
            d.name,
            d.cycles_before,
            d.cycles_after,
            pct,
            d.rewrites
        );
    }
    let json = format!(
        r#"{{
  "benchmark": "superopt",
  "seed": {seed},
  "jobs": {jobs},
  "corpus": {{ "scale": {scale}, "functions": {functions} }},
  "cold": {{ "seconds": {cold_s:.6}, "windows": {cold_w}, "searches": {cold_searches}, "rewrites": {cold_r}, "windows_per_sec": {cold_tp:.1} }},
  "warm": {{ "seconds": {warm_s:.6}, "windows": {warm_w}, "cache_hits": {warm_h}, "rewrites": {warm_r}, "windows_per_sec": {warm_tp:.1} }},
  "warm_speedup": {warm_speedup:.2},
  "warm_speedup_gate": {WARM_SPEEDUP_GATE},
  "byte_identical_warm_output": true,
  "kernels": [
{kernel_json}
  ],
  "kernels_improved": {improved}
}}
"#,
        functions = corpus.planted.functions,
        cold_s = cold.seconds,
        cold_w = cold.windows,
        cold_searches = cold.searches,
        cold_r = cold.rewrites,
        cold_tp = cold.windows_per_sec(),
        warm_s = warm.seconds,
        warm_w = warm.windows,
        warm_h = warm.cache_hits,
        warm_r = warm.rewrites,
        warm_tp = warm.windows_per_sec(),
    );
    if smoke {
        println!("{json}");
    } else {
        std::fs::write(&out, &json).expect("write benchmark JSON");
        println!("{json}");
        println!("wrote {out}");
    }

    let mut failed = false;
    if warm_speedup < WARM_SPEEDUP_GATE {
        eprintln!(
            "bench_superopt: GATE FAILED: warm throughput only {warm_speedup:.2}x cold \
             (need >= {WARM_SPEEDUP_GATE}x)"
        );
        failed = true;
    }
    if improved == 0 {
        eprintln!("bench_superopt: GATE FAILED: no paper kernel improved");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "superopt: warm cache {warm_speedup:.1}x cold search; {improved}/{} kernels improved",
        deltas.len()
    );
}
