//! Experiment: §III.C.g — branch de-aliasing (the 3% image-benchmark win).
//!
//! A two-deep nest of short-running loops places both back branches in one
//! `PC >> 5` predictor bucket; the shared 2-bit counter is constantly
//! confused. The BRALIGN pass moves the second branch into the next bucket.

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::kernels::image_nest;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn run(asm: &str, config: &UarchConfig) -> (u64, u64) {
    let unit = MaoUnit::parse(asm).expect("parses");
    let r = simulate(&unit, "image_kernel", &[], config, &SimOptions::default()).expect("runs");
    (r.pmu.cycles, r.pmu.branch_mispredictions)
}

fn main() {
    let config = UarchConfig::core2();
    let outer = 200_000u64;

    println!("== §III.C.g: back branches sharing a PC>>5 bucket ==");
    // Baseline: branches adjacent (same 32-byte bucket).
    let aliased = image_nest(0, outer);
    let (base_cycles, base_miss) = run(&aliased.asm, &config);
    println!(
        "  aliased:    {base_cycles:>9} cycles, {base_miss:>8} mispredicts ({:.1}% of branches)",
        base_miss as f64 / (2.0 * outer as f64) * 100.0
    );

    // Hand separation (what the paper did first by NOP insertion).
    let separated = image_nest(24, outer);
    let (sep_cycles, sep_miss) = run(&separated.asm, &config);
    println!(
        "  separated:  {sep_cycles:>9} cycles, {sep_miss:>8} mispredicts ({:.1}% of branches)",
        sep_miss as f64 / (2.0 * outer as f64) * 100.0
    );
    println!(
        "  manual NOP separation speedup: {:+.2}%  (paper: +3% full benchmark)",
        (base_cycles as f64 - sep_cycles as f64) / base_cycles as f64 * 100.0
    );

    // The BRALIGN pass finds and fixes the aliasing automatically.
    let mut unit = MaoUnit::parse(&aliased.asm).expect("parses");
    let report = run_pipeline(
        &mut unit,
        &parse_invocations("BRALIGN").expect("valid"),
        None,
    )
    .expect("BRALIGN runs");
    let (fixed_cycles, fixed_miss) = run(&unit.emit(), &config);
    println!(
        "  BRALIGN:    {fixed_cycles:>9} cycles, {fixed_miss:>8} mispredicts, {} pairs separated ({:+.2}%)",
        report.total_transformations(),
        (base_cycles as f64 - fixed_cycles as f64) / base_cycles as f64 * 100.0
    );
    assert!(fixed_miss < base_miss / 2, "BRALIGN removes the conflict");
}
