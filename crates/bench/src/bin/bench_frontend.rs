//! `frontend` benchmark mode: the zero-copy front end against the seed
//! parser, and snapshot loading against text parsing, written to
//! `BENCH_frontend.json`:
//!
//! * **reference** — the retired line-at-a-time seed parser
//!   (`mao_asm::parse_reference`), the baseline both gates divide by.
//! * **parse** — the zero-copy parser (`mao_asm::parse`); gated at ≥2x
//!   the reference by default.
//! * **parse_jobs** — the chunked parallel parser at `--jobs` workers
//!   (informational; the output is byte-identical by construction).
//! * **snapshot_load** — loading the binary IR snapshot of the same
//!   corpus (`mao_asm::snapshot::Snapshot::load`: container validation,
//!   checksum, string-table interning — everything paid before the first
//!   entry is usable); gated at ≥10x the reference *text parse* by
//!   default — the measured value of shipping mmap-style IR snapshots
//!   instead of re-parsing text.
//! * **snapshot_decode** — load plus full materialization of the entry
//!   list (`Snapshot::to_entries`, what the optimizer pipeline pays on a
//!   snapshot hit); informational, reported for transparency since full
//!   materialization is bounded by IR store bandwidth, not parsing.
//!
//! Every timed variant is differentially checked against the reference
//! entry list before any number is reported: a fast wrong parser must
//! fail the run, not win the gate.
//!
//! Usage: `bench_frontend [--scale S] [--iters N] [--jobs J]
//! [--min-parse-speedup X] [--min-snapshot-speedup Y] [--out FILE]
//! [--smoke]` (defaults: S=1.0, N=9, J=4, X=2, Y=10,
//! FILE=BENCH_frontend.json; --smoke shrinks to S=0.2, N=5).

use std::time::Instant;

use mao_asm::snapshot;
use mao_corpus::{generate, GeneratorConfig};

const USAGE: &str = "usage: bench_frontend [--scale S] [--iters N] [--jobs J]\n\
    [--min-parse-speedup X] [--min-snapshot-speedup Y] [--out FILE] [--smoke]\n\
    (defaults: S=1.0, N=9, J=4, X=2, Y=10, FILE=BENCH_frontend.json)";

fn usage_error(message: &str) -> ! {
    eprintln!("bench_frontend: {message}\n{USAGE}");
    std::process::exit(2);
}

/// Median of per-iteration latencies, in microseconds.
fn median(durations_us: &[u64]) -> f64 {
    if durations_us.is_empty() {
        return 0.0;
    }
    let mut sorted = durations_us.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) as f64 / 2.0
    } else {
        sorted[mid] as f64
    }
}

/// Time `iters` runs of `f`, returning per-iteration microseconds.
fn time_iters<T>(iters: usize, mut f: impl FnMut() -> T) -> Vec<u64> {
    let mut durations = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let value = f();
        durations.push(t.elapsed().as_micros() as u64);
        drop(value);
    }
    durations
}

fn main() {
    let mut scale = 1.0f64;
    let mut iters = 9usize;
    let mut jobs = 4usize;
    let mut min_parse_speedup = 2.0f64;
    let mut min_snapshot_speedup = 10.0f64;
    let mut out = String::from("BENCH_frontend.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale = s,
                None => usage_error("--scale needs a numeric value"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => iters = n,
                None => usage_error("--iters needs a numeric value"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(j) => jobs = j,
                None => usage_error("--jobs needs a numeric value"),
            },
            "--min-parse-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_parse_speedup = x,
                None => usage_error("--min-parse-speedup needs a numeric value"),
            },
            "--min-snapshot-speedup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_snapshot_speedup = x,
                None => usage_error("--min-snapshot-speedup needs a numeric value"),
            },
            "--out" => match it.next() {
                Some(f) => out = f.clone(),
                None => usage_error("--out needs a file name"),
            },
            // The CI stage: smaller corpus, fewer iterations, same gates.
            "--smoke" => {
                scale = 0.2;
                iters = 5;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if iters == 0 {
        usage_error("--iters must be at least 1");
    }

    let corpus = generate(&GeneratorConfig::core_library(scale));
    let text = corpus.asm;
    eprintln!(
        "corpus: {} bytes (scale {scale}), {iters} iterations, jobs={jobs}",
        text.len()
    );

    // Differential check first: all variants must agree with the reference
    // entry list before any of them is allowed to post a time.
    let reference = mao_asm::parse_reference(&text).unwrap_or_else(|e| {
        eprintln!("bench_frontend: reference parse failed: {e}");
        std::process::exit(1);
    });
    let parsed = mao_asm::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_frontend: zero-copy parse failed: {e}");
        std::process::exit(1);
    });
    if parsed != reference {
        eprintln!("bench_frontend: zero-copy parser disagrees with the reference parser");
        std::process::exit(1);
    }
    let parallel = mao_asm::parse_with_jobs(&text, jobs).unwrap_or_else(|e| {
        eprintln!("bench_frontend: parallel parse failed: {e}");
        std::process::exit(1);
    });
    if parallel != reference {
        eprintln!("bench_frontend: parallel parser disagrees with the reference parser");
        std::process::exit(1);
    }
    let key = snapshot::content_key(&text);
    let snapshot_bytes = snapshot::encode(&parsed, key);
    let decoded = snapshot::decode(&snapshot_bytes, Some(key)).unwrap_or_else(|e| {
        eprintln!("bench_frontend: snapshot decode failed: {e}");
        std::process::exit(1);
    });
    if decoded != reference {
        eprintln!("bench_frontend: snapshot round-trip disagrees with the reference parser");
        std::process::exit(1);
    }
    let streamed: Result<Vec<_>, _> = snapshot::Snapshot::load(&snapshot_bytes, Some(key))
        .unwrap_or_else(|e| {
            eprintln!("bench_frontend: snapshot load failed: {e}");
            std::process::exit(1);
        })
        .iter()
        .collect();
    if streamed.as_deref() != Ok(&reference[..]) {
        eprintln!("bench_frontend: streamed snapshot entries disagree with the reference parser");
        std::process::exit(1);
    }

    eprintln!("reference round ...");
    let reference_us = median(&time_iters(iters, || {
        mao_asm::parse_reference(&text).unwrap()
    }));
    eprintln!("parse round ...");
    let parse_us = median(&time_iters(iters, || mao_asm::parse(&text).unwrap()));
    eprintln!("parse_jobs round ...");
    let parallel_us = median(&time_iters(iters, || {
        mao_asm::parse_with_jobs(&text, jobs).unwrap()
    }));
    eprintln!("snapshot_load round ...");
    let snapshot_us = median(&time_iters(iters, || {
        snapshot::Snapshot::load(&snapshot_bytes, Some(key)).unwrap()
    }));
    eprintln!("snapshot_decode round ...");
    let decode_us = median(&time_iters(iters, || {
        snapshot::decode(&snapshot_bytes, Some(key)).unwrap()
    }));

    let parse_speedup = reference_us / parse_us.max(1.0);
    let parallel_speedup = reference_us / parallel_us.max(1.0);
    let snapshot_speedup = reference_us / snapshot_us.max(1.0);
    let decode_speedup = reference_us / decode_us.max(1.0);
    let snapshot_ratio = snapshot_bytes.len() as f64 / text.len() as f64;
    let json = format!(
        r#"{{
  "benchmark": "frontend",
  "corpus": {{ "scale": {scale}, "text_bytes": {text_bytes}, "entries": {entries}, "snapshot_bytes": {snap_bytes}, "snapshot_ratio": {snapshot_ratio:.3} }},
  "iters": {iters},
  "jobs": {jobs},
  "reference": {{ "median_us": {reference_us:.0} }},
  "parse": {{ "median_us": {parse_us:.0}, "speedup_vs_reference": {parse_speedup:.3} }},
  "parse_jobs": {{ "median_us": {parallel_us:.0}, "speedup_vs_reference": {parallel_speedup:.3} }},
  "snapshot_load": {{ "median_us": {snapshot_us:.0}, "speedup_vs_reference": {snapshot_speedup:.3} }},
  "snapshot_decode": {{ "median_us": {decode_us:.0}, "speedup_vs_reference": {decode_speedup:.3} }},
  "differential": {{ "parse": true, "parse_jobs": true, "snapshot_load": true, "snapshot_stream": true }},
  "gates": {{ "min_parse_speedup": {min_parse_speedup}, "min_snapshot_speedup": {min_snapshot_speedup} }}
}}
"#,
        text_bytes = text.len(),
        entries = reference.len(),
        snap_bytes = snapshot_bytes.len(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("bench_frontend: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("{json}");
    println!("wrote {out}");
    println!(
        "summary: reference {reference_us:.0}us, parse {parse_us:.0}us ({parse_speedup:.1}x), \
         jobs{jobs} {parallel_us:.0}us ({parallel_speedup:.1}x), \
         snapshot load {snapshot_us:.0}us ({snapshot_speedup:.1}x), \
         snapshot decode {decode_us:.0}us ({decode_speedup:.1}x)"
    );
    let mut failed = false;
    if parse_speedup < min_parse_speedup {
        eprintln!(
            "bench_frontend: parse speedup {parse_speedup:.2}x is below the \
             {min_parse_speedup:.0}x gate"
        );
        failed = true;
    }
    if snapshot_speedup < min_snapshot_speedup {
        eprintln!(
            "bench_frontend: snapshot-load speedup {snapshot_speedup:.2}x is below the \
             {min_snapshot_speedup:.0}x gate"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
