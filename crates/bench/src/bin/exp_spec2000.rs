//! Experiment: §V.B SPEC 2000 int tables.
//!
//! Regenerates three of the paper's tables on the synthetic SPEC2000-like
//! suite:
//!
//! 1. single-pass effects on 252.eon (NOPIN / NOPKILL / REDTEST);
//! 2. LOOP16 on the Intel-Core-2-like profile;
//! 3. LOOP16 on the AMD-Opteron-like profile.
//!
//! Paper reference values are printed alongside for comparison; see
//! EXPERIMENTS.md for the discussion.

use mao_bench::{or_exit, pass_effect};
use mao_corpus::spec::{spec2000_benchmark, SPEC2000_NAMES};
use mao_sim::UarchConfig;

fn main() {
    let intel = UarchConfig::core2();
    let amd = UarchConfig::opteron();

    println!("== Table: 252.eon single-pass effects (Intel profile) ==");
    println!("{:<14} {:>10} {:>10}", "pass", "measured", "paper");
    let eon = spec2000_benchmark("252.eon").expect("eon exists");
    // The Nopinizer is a random experiment: average over seeds, as the
    // paper's statistical methodology (§V.B) averages repeated runs.
    let nopin_mean: f64 = (1..=8)
        .map(|seed| {
            let pass = format!("NOPIN=seed[{seed}],density[0.25]");
            or_exit(pass_effect(&eon, &pass, &intel)).0
        })
        .sum::<f64>()
        / 8.0;
    println!(
        "{:<14} {nopin_mean:>+9.2}% {:>+9.2}%  (mean of 8 seeds)",
        "NOPIN", -9.23
    );
    for (pass, paper) in [("NOPKILL", -5.34), ("REDTEST", -5.97)] {
        let (pct, _) = or_exit(pass_effect(&eon, pass, &intel));
        println!("{pass:<14} {pct:>+9.2}% {paper:>+9.2}%");
    }

    let paper_loop16_intel: &[(&str, f64)] = &[
        ("252.eon", -4.43),
        ("175.vpr", 1.25),
        ("176.gcc", 1.41),
        ("300.twolf", 1.18),
    ];
    let paper_loop16_amd: &[(&str, f64)] =
        &[("252.eon", -5.86), ("181.mcf", 2.47), ("186.crafty", 2.45)];

    for (title, config, paper_rows) in [
        ("LOOP16 on Intel-Core-2-like", &intel, paper_loop16_intel),
        ("LOOP16 on AMD-Opteron-like", &amd, paper_loop16_amd),
    ] {
        println!("\n== Table: {title} ==");
        println!("{:<14} {:>10} {:>10}", "benchmark", "measured", "paper");
        for name in SPEC2000_NAMES {
            let w = spec2000_benchmark(name).expect("known benchmark");
            let (pct, report) = or_exit(pass_effect(&w, "LOOP16", config));
            let transforms = report
                .stats("LOOP16")
                .map(|s| s.transformations)
                .unwrap_or(0);
            let paper = paper_rows
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| format!("{p:>+9.2}%"))
                .unwrap_or_else(|| "        —".to_string());
            println!("{name:<14} {pct:>+9.2}% {paper} ({transforms} loops aligned)");
        }
    }
}
