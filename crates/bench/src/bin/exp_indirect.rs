//! Experiment: §II — indirect-branch resolution (the 246-of-320 anecdote).
//!
//! The paper: *"When we updated the internal compiler to a newer version,
//! we found that 246 out of 320 indirect branches could no longer be
//! resolved. After adding a single pattern that uses the data flow
//! framework's reaching definitions functionality, only 4 out of the 320
//! indirect branches (1.2%) remained unresolved."*
//!
//! We regenerate the code-base shape: 320 functions with `switch`-style
//! indirect jumps — 74 in the old compiler's direct `jmp *TAB(,%r,8)`
//! style, 242 in the newer compiler's load-then-`jmp *%reg` style (which
//! needs the reaching-definitions pattern), and 4 genuinely unresolvable
//! ("complex, uncommon cross-basic block scenarios").

use std::fmt::Write as _;

use mao::cfg::Cfg;
use mao::MaoUnit;

fn switch_function(idx: usize, style: u8) -> String {
    let mut s = String::new();
    let name = format!("dispatch_{idx}");
    let _ = writeln!(s, "\t.globl\t{name}");
    let _ = writeln!(s, "\t.type\t{name}, @function");
    let _ = writeln!(s, "{name}:");
    match style {
        // Old-compiler style: direct scaled table jump.
        0 => {
            let _ = writeln!(s, "\tjmp *.Ltab_{idx}(,%rdi,8)");
        }
        // New-compiler style: table load into a register (possibly moved
        // once), then an indirect register jump.
        1 => {
            let _ = writeln!(s, "\tmovq .Ltab_{idx}(,%rdi,8), %rax");
            if idx % 2 == 0 {
                let _ = writeln!(s, "\tmovq %rax, %rcx");
                let _ = writeln!(s, "\tjmp *%rcx");
            } else {
                let _ = writeln!(s, "\tjmp *%rax");
            }
        }
        // The unresolvable residue: the jump register comes out of opaque
        // arithmetic (a computed-goto chain no pattern covers).
        _ => {
            let _ = writeln!(s, "\tmovq .Ltab_{idx}(,%rdi,8), %rax");
            let _ = writeln!(s, "\taddq %rsi, %rax");
            let _ = writeln!(s, "\tjmp *%rax");
        }
    }
    for c in 0..3 {
        let _ = writeln!(s, ".Lcase_{idx}_{c}:");
        let _ = writeln!(s, "\tmovl ${}, %eax", c * 10);
        let _ = writeln!(s, "\tret");
    }
    let _ = writeln!(s, "\t.size\t{name}, .-{name}");
    let _ = writeln!(s, "\t.section\t.rodata");
    let _ = writeln!(s, ".Ltab_{idx}:");
    for c in 0..3 {
        let _ = writeln!(s, "\t.quad\t.Lcase_{idx}_{c}");
    }
    let _ = writeln!(s, "\t.text");
    s
}

fn main() {
    // 320 indirect branches: 74 direct, 242 register-style, 4 opaque.
    let mut asm = String::from("\t.text\n");
    let mut styles = Vec::new();
    for i in 0..320usize {
        let style = if i < 74 {
            0
        } else if i < 316 {
            1
        } else {
            2
        };
        styles.push(style);
        asm.push_str(&switch_function(i, style));
    }
    let unit = MaoUnit::parse(&asm).expect("corpus parses");
    let functions = unit.functions();
    assert_eq!(functions.len(), 320);

    let count_unresolved = |through_registers: bool| -> usize {
        functions
            .iter()
            .filter(|f| Cfg::build_with_options(&unit, f, through_registers).unresolved_indirect)
            .count()
    };

    let without = count_unresolved(false);
    let with = count_unresolved(true);
    println!("== §II: indirect-branch resolution on 320 switch functions ==");
    println!("  direct-pattern only:          {without:>3} / 320 unresolved   (paper: 246)");
    println!(
        "  + reaching-definitions pattern: {with:>3} / 320 unresolved   (paper: 4, i.e. 1.2%)"
    );
    println!(
        "  resolution rate with both patterns: {:.1}%",
        (320 - with) as f64 / 320.0 * 100.0
    );
    assert_eq!(without, 246);
    assert_eq!(with, 4);
}
