//! Experiment: Figures 4/5 — the Loop Stream Detector.
//!
//! The paper's three-basic-block loop initially spans six 16-byte decode
//! lines; inserting six NOPs in front moves it to four lines, the LSD takes
//! over, and the loop doubles in speed. This experiment sweeps the loop's
//! starting offset, reports decode lines vs. speed, and shows the LSDFIT
//! pass performing the paper's exact transformation (six NOP bytes).

use mao::pass::{parse_invocations, run_pipeline};
use mao::relax::{relax, Layout};
use mao::MaoUnit;
use mao_corpus::kernels::lsd_loop;
use mao_sim::{simulate, SimOptions, UarchConfig};

fn measure(asm: &str, config: &UarchConfig) -> (u64, u64) {
    let unit = MaoUnit::parse(asm).expect("parses");
    let r = simulate(&unit, "lsd_kernel", &[], config, &SimOptions::default()).expect("runs");
    (r.pmu.cycles, r.pmu.lsd_iterations)
}

fn loop_lines(asm: &str) -> u64 {
    let unit = MaoUnit::parse(asm).expect("parses");
    let layout = relax(&unit).expect("relaxes");
    let start = unit.find_label(".L0").expect(".L0");
    let end = unit
        .entries()
        .iter()
        .position(|e| e.insn().is_some_and(|i| i.target_label() == Some(".L0")))
        .expect("back branch");
    Layout::decode_lines(layout.addr[start], layout.end_addr(end))
}

fn main() {
    let config = UarchConfig::core2();
    let iters = 200_000u64;
    println!("== Figures 4/5: Loop Stream Detector vs. decode lines ==");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>9}",
        "pad", "lines", "cycles", "lsd-iters", "cyc/iter"
    );
    let mut by_lines: std::collections::BTreeMap<u64, u64> = Default::default();
    for pad in 0..16usize {
        let w = lsd_loop(pad, iters);
        let lines = loop_lines(&w.asm);
        let (cycles, lsd) = measure(&w.asm, &config);
        println!(
            "{pad:>6} {lines:>6} {cycles:>10} {lsd:>10} {:>9.2}",
            cycles as f64 / iters as f64
        );
        let e = by_lines.entry(lines).or_insert(cycles);
        *e = (*e).min(cycles);
    }
    if let (Some(&four), Some(&more)) = (
        by_lines.get(&4).or_else(|| by_lines.get(&3)),
        by_lines.get(&5).or_else(|| by_lines.get(&6)),
    ) {
        println!(
            "  speedup from fitting the 4-line window: {:.2}x  (paper: 'a factor of two')",
            more as f64 / four as f64
        );
    }

    // LSDFIT performs the Figure 4 -> Figure 5 transformation.
    let worst = lsd_loop(10, iters);
    let (before, _) = measure(&worst.asm, &config);
    let mut unit = MaoUnit::parse(&worst.asm).expect("parses");
    run_pipeline(&mut unit, &parse_invocations("LSDFIT").expect("ok"), None).expect("LSDFIT runs");
    let (after, lsd) = measure(&unit.emit(), &config);
    let nops_added = unit
        .emit()
        .matches("nop")
        .count()
        .saturating_sub(worst.asm.matches("nop").count());
    println!(
        "  LSDFIT: {before} -> {after} cycles ({:.2}x), inserted NOP entries: {nops_added}, lsd-iters {lsd}",
        before as f64 / after as f64
    );
}
