//! Experiment: Figure 1 — the high-impact NOP in the 181.mcf loop.
//!
//! The paper's motivating example: inserting a single NOP right before
//! `.L5` in a twice-unrolled mcf loop speeds it up ~5% on Core-2, traced to
//! a branch-predictor placement problem. Our model's predictor is indexed
//! by `(PC >> 5) & (entries-1)`, so two branches conflict when their
//! buckets coincide *modulo the table size* — including the cross-function
//! wrap-around aliasing of the paper's opening anecdote. This experiment
//! places a never-taken branch exactly one table-period away from the
//! loop's back branch; the NOP moves the back branch into the next bucket
//! and the conflict disappears.

use mao::MaoUnit;
use mao_sim::{simulate, SimOptions, UarchConfig};

/// Build the Figure-1 program. `with_nop` inserts the magic NOP before
/// `.L5`; `table_period` is `entries << shift` bytes (16 KiB on the
/// Core-2-like profile).
fn fig1(with_nop: bool, table_period: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "\t.text");
    let _ = writeln!(s, "\t.globl\tmcf_kernel");
    let _ = writeln!(s, "\t.type\tmcf_kernel, @function");
    let _ = writeln!(s, "mcf_kernel:");
    // Outer loop: each entry runs the unrolled inner loop for 10 iterations
    // (20 elements) — short-running, as mcf's inner loops are.
    let _ = writeln!(s, "\tmovl $12000, %r10d"); // 7 bytes (41 BA imm32 -> 6)
    let _ = writeln!(s, ".Louter:");
    let _ = writeln!(s, "\txorq %r8, %r8"); // 3
    let _ = writeln!(s, "\tmovl $10, %r9d"); // 6
    for _ in 0..7 {
        let _ = writeln!(s, "\tnop"); // tune jg to offset 31 mod 32
    }
    // The twice-unrolled Figure 1 loop.
    let _ = writeln!(s, ".L3:");
    let _ = writeln!(s, "\tmovsbl 1(%rdi,%r8,4), %edx");
    let _ = writeln!(s, "\tmovsbl (%rdi,%r8,4), %eax");
    let _ = writeln!(s, "\tmovl %edx, (%rsi,%r8,4)");
    let _ = writeln!(s, "\taddq $1, %r8");
    if with_nop {
        let _ = writeln!(s, "\tnop"); // the instruction that speeds up the loop
    }
    let _ = writeln!(s, ".L5:");
    let _ = writeln!(s, "\tmovsbl 1(%rdi,%r8,4), %edx");
    let _ = writeln!(s, "\tmovsbl (%rdi,%r8,4), %eax");
    let _ = writeln!(s, "\tmovl %edx, (%rsi,%r8,4)");
    let _ = writeln!(s, "\taddq $1, %r8");
    let _ = writeln!(s, "\tcmpl %r8d, %r9d");
    let _ = writeln!(s, "\tjg .L3");
    // Skip a table-period of dead bytes so the cross-"function" partner
    // branch lands one predictor wrap-around after the jg.
    let _ = writeln!(s, "\tjmp .Lafter");
    let _ = writeln!(s, "\t.zero {}", table_period - 80);
    let _ = writeln!(s, ".Lafter:");
    // Pad so the never-taken partner branch shares jg's bucket mod period.
    let _ = writeln!(s, "\t.p2align 5");
    // One more bucket of executed padding so the partner sits one full
    // table period after jg's bucket (and is immune to the +-1 byte shift:
    // the p2align above re-absorbs it).
    for _ in 0..5 {
        let _ = writeln!(s, "\tnopw 0(%rax,%rax,1)");
    }
    let _ = writeln!(s, "\tnopl (%rax)");
    let _ = writeln!(s, "\tnopl 0(%rax)"); // 4: partner lands mid-bucket
    let _ = writeln!(s, "\ttestl %r10d, %r10d");
    let _ = writeln!(s, "\tjs .Lnever"); // never taken: %r10d stays positive
    let _ = writeln!(s, ".Lnever:");
    // A little latency-bound ballast so the kernel-level delta lands ~5%.
    let _ = writeln!(s, "\tmovl $55, %ebx");
    let _ = writeln!(s, ".Ldil:");
    let _ = writeln!(s, "\timull $3, %r11d, %r11d");
    let _ = writeln!(s, "\tsubl $1, %ebx");
    let _ = writeln!(s, "\tjne .Ldil");
    let _ = writeln!(s, "\tsubl $1, %r10d");
    let _ = writeln!(s, "\tjne .Louter");
    let _ = writeln!(s, "\tmovq %r8, %rax");
    let _ = writeln!(s, "\tret");
    let _ = writeln!(s, "\t.size\tmcf_kernel, .-mcf_kernel");
    s
}

fn main() {
    let config = UarchConfig::core2();
    let period = (config.predictor_entries() as u64) << config.predictor.index_shift;

    let run = |with_nop: bool| {
        let asm = fig1(with_nop, period);
        let unit = MaoUnit::parse(&asm).expect("fig1 parses");
        // Report the branch geometry for transparency.
        let layout = mao::relax(&unit).expect("fig1 relaxes");
        let jg = unit
            .entries()
            .iter()
            .position(|e| e.insn().is_some_and(|i| i.target_label() == Some(".L3")))
            .expect("jg exists");
        let js = unit
            .entries()
            .iter()
            .position(|e| {
                e.insn()
                    .is_some_and(|i| i.target_label() == Some(".Lnever"))
            })
            .expect("js exists");
        let mask = config.predictor_entries() as u64 - 1;
        let bucket = |a: u64| (a >> config.predictor.index_shift) & mask;
        println!(
            "  with_nop={with_nop}: jg@{:#x} (bucket {}), partner js@{:#x} (bucket {}) {}",
            layout.addr[jg],
            bucket(layout.addr[jg]),
            layout.addr[js],
            bucket(layout.addr[js]),
            if bucket(layout.addr[jg]) == bucket(layout.addr[js]) {
                "<-- ALIASED"
            } else {
                ""
            }
        );
        simulate(
            &unit,
            "mcf_kernel",
            &[0x300_0000, 0x500_0000],
            &config,
            &SimOptions::default(),
        )
        .expect("fig1 runs")
    };

    println!("== Figure 1: single NOP before .L5 in the mcf loop ==");
    let base = run(false);
    let nopped = run(true);
    let speedup =
        (base.pmu.cycles as f64 - nopped.pmu.cycles as f64) / base.pmu.cycles as f64 * 100.0;
    println!(
        "  without NOP: {} cycles ({} mispredicts)",
        base.pmu.cycles, base.pmu.branch_mispredictions
    );
    println!(
        "  with NOP:    {} cycles ({} mispredicts)",
        nopped.pmu.cycles, nopped.pmu.branch_mispredictions
    );
    println!("  NOP speedup: {speedup:+.2}%   (paper: ~+5% on Core-2)");
    assert_eq!(base.ret, nopped.ret, "the NOP must not change results");
}
