//! Experiment: §III.E.m — PMU sample amplification by instruction
//! simulation.
//!
//! For the RACEZ race detector, each hardware sample carries one effective
//! address plus a register-file snapshot; MAO's forward/backward simulation
//! of a small instruction subset recovers the addresses of neighbouring
//! memory instructions. *"The number of sampled effective addresses could
//! be increased by factors ranging from 4.1 to 6.3."*
//!
//! We replay that setup hermetically: run synthetic benchmarks on the
//! simulator, sample every Nth memory instruction (collecting the register
//! file, as PEBS would), amplify with the SIMADDR machinery, and check the
//! recovered addresses against the simulator's ground truth.

use std::collections::HashMap;

use mao::passes::simaddr::amplify;
use mao::profile::{Profile, Sample, Site};
use mao::MaoUnit;
use mao_sim::{Machine, Program, Step};
use mao_x86::RegId;

/// A memory-heavy benchmark with address arithmetic the simulation subset
/// can follow (`name` selects the access pattern).
fn workload(name: &str) -> String {
    let body = match name {
        // Sequential struct-walk: fixed-stride loads/stores.
        "seq" => "\tmovq (%rdi), %rax\n\tmovq %rax, (%rsi)\n\taddq $16, %rdi\n\tmovq 8(%rdi), %rbx\n\taddq %rbx, %r8\n\tmovq %rbx, 8(%rsi)\n\taddq $16, %rsi\n",
        // Field accesses around a moving base.
        "fields" => "\tmovq (%rdi), %rax\n\tmovq 8(%rdi), %rbx\n\tmovq 16(%rdi), %rdx\n\taddq %rbx, %rax\n\tmovq %rax, 24(%rdi)\n\taddq $32, %rdi\n",
        // Stack spill traffic.
        _ => "\tmovq %r8, -8(%rsp)\n\tmovq %r9, -16(%rsp)\n\tmovq -8(%rsp), %rax\n\taddq $1, %r8\n\tmovq -16(%rsp), %rbx\n\taddq %rbx, %r9\n",
    };
    format!(
        ".text\n.globl f\n.type f, @function\nf:\n\tmovl $3000, %ecx\n.Lw:\n{body}\tsubl $1, %ecx\n\tjne .Lw\n\tret\n.size f, .-f\n"
    )
}

fn main() {
    println!("== §III.E.m: effective-address sample amplification ==");
    println!(
        "  {:<8} {:>9} {:>10} {:>8} {:>10}",
        "workload", "samples", "recovered", "factor", "verified"
    );
    for name in ["seq", "fields", "stack"] {
        let asm = workload(name);
        let unit = MaoUnit::parse(&asm).expect("parses");
        let program = Program::load(&unit).expect("loads");
        let mut machine = Machine::new(&program, "f", &[0x300_0000, 0x500_0000]).expect("init");

        // Ground truth: every memory instruction's address per (insn index).
        // Sample every 13th memory access, snapshotting the register file.
        let f = unit.find_function("f").expect("f exists");
        let insn_index: HashMap<usize, usize> = f
            .entry_ids()
            .filter(|&id| unit.insn(id).is_some())
            .enumerate()
            .map(|(k, id)| (id, k))
            .collect();

        let mut profile = Profile::new();
        let mut truth: HashMap<(usize, u64), ()> = HashMap::new();
        let mut mem_seen = 0u64;
        loop {
            let snapshot: HashMap<RegId, u64> = RegId::GPRS
                .iter()
                .map(|&r| (r, machine.gpr[r.encoding() as usize]))
                .collect();
            match machine.step(&program).expect("runs") {
                Step::Executed(info) => {
                    let addr = info.load.or(info.store).map(|(a, _)| a);
                    if let Some(addr) = addr {
                        let idx = insn_index[&info.entry];
                        truth.insert((idx, addr), ());
                        mem_seen += 1;
                        if mem_seen % 13 == 0 {
                            profile.add_sample(Sample {
                                site: Site::new("f", idx),
                                regs: snapshot,
                                address: Some(addr),
                            });
                        }
                    }
                }
                Step::Finished(_) => break,
            }
        }

        let sampled = profile.samples.len();
        let recovered = amplify(&unit, &profile);
        // Verify every recovered address against ground truth.
        let verified = recovered
            .iter()
            .filter(|r| truth.contains_key(&(r.site.insn_index, r.address)))
            .count();
        assert_eq!(
            verified,
            recovered.len(),
            "all recovered addresses must match ground truth"
        );
        let factor = (sampled + recovered.len()) as f64 / sampled as f64;
        println!(
            "  {name:<8} {sampled:>9} {:>10} {factor:>7.1}x {verified:>10}",
            recovered.len()
        );
    }
    println!("  paper: amplification factors 4.1x - 6.3x");
}
