//! Benchmark: §V.A compile-time performance.
//!
//! The paper: *"for a typical set of passes, MAO is about five times slower
//! than gas"* — gas makes one pass over the instructions (here: parse +
//! emit), MAO makes one per optimization pass plus relaxation. This bench
//! measures both pipelines over the synthetic core-library corpus and
//! prints the ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::compiler::{generate, GeneratorConfig};

fn corpus_text() -> String {
    generate(&GeneratorConfig::core_library(0.02)).asm
}

/// gas-equivalent: parse the file and write it back out (one pass).
fn gas_like(text: &str) -> usize {
    let unit = MaoUnit::parse(text).expect("corpus parses");
    unit.emit().len()
}

/// MAO: parse, run a typical pass set (the Fig. 7 set), relax, emit.
fn mao_like(text: &str) -> usize {
    let mut unit = MaoUnit::parse(text).expect("corpus parses");
    let invs = parse_invocations("REDMOV:REDTEST:LOOP16:SCHED").expect("valid");
    run_pipeline(&mut unit, &invs, None).expect("passes run");
    let _ = mao::relax(&unit).expect("relaxes");
    unit.emit().len()
}

fn bench_compile_time(c: &mut Criterion) {
    let text = corpus_text();
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    group.bench_function("gas_like_parse_emit", |b| {
        b.iter(|| gas_like(black_box(&text)))
    });
    group.bench_function("mao_typical_pass_set", |b| {
        b.iter(|| mao_like(black_box(&text)))
    });
    group.finish();

    // One-shot ratio print for EXPERIMENTS.md (criterion reports the raw
    // times; the paper's claim is the ratio).
    let t0 = std::time::Instant::now();
    let _ = gas_like(&text);
    let gas = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = mao_like(&text);
    let mao = t1.elapsed();
    println!(
        "\n[compile-time] gas-like {:.1?} vs MAO {:.1?}: {:.1}x slower (paper: ~5x)",
        gas,
        mao,
        mao.as_secs_f64() / gas.as_secs_f64()
    );
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
