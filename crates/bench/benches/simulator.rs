//! Benchmark: simulator throughput (instructions simulated per second).
//!
//! Not a paper table — the simulator is our hardware substitute, and its
//! speed bounds how large the §V experiments can be.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mao::MaoUnit;
use mao_corpus::kernels::{hashing, lsd_loop, mcf_fig1};
use mao_sim::{simulate, SimOptions, UarchConfig};

fn bench_simulator(c: &mut Criterion) {
    let config = UarchConfig::core2();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for w in [
        hashing(true, 20_000),
        lsd_loop(0, 10_000),
        mcf_fig1(false, 20_000),
    ] {
        let unit = MaoUnit::parse(&w.asm).expect("kernel parses");
        // Count dynamic instructions once for throughput reporting.
        let r = simulate(&unit, &w.entry, &w.args, &config, &SimOptions::default())
            .expect("kernel runs");
        group.throughput(Throughput::Elements(r.pmu.instructions));
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                simulate(
                    black_box(&unit),
                    &w.entry,
                    &w.args,
                    &config,
                    &SimOptions::default(),
                )
                .expect("kernel runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
