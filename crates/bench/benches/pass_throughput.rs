//! Benchmark: per-pass throughput over the synthetic corpus.
//!
//! Supports the §V.A discussion by attributing MAO's compile-time cost to
//! individual passes (pattern matchers are cheap; the alignment passes pay
//! for repeated relaxation; the scheduler pays for DAG construction).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mao::pass::{parse_invocations, run_pipeline};
use mao::MaoUnit;
use mao_corpus::compiler::{generate, GeneratorConfig};

fn bench_passes(c: &mut Criterion) {
    let text = generate(&GeneratorConfig::core_library(0.01)).asm;
    let unit = MaoUnit::parse(&text).expect("corpus parses");
    let mut group = c.benchmark_group("pass_throughput");
    group.sample_size(10);
    for pass in [
        "REDZEXT",
        "REDTEST",
        "REDMOV",
        "ADDADD",
        "CONSTFOLD",
        "DCE",
        "SCHED",
        "LOOP16",
        "NOPKILL",
    ] {
        group.bench_function(pass, |b| {
            let invs = parse_invocations(pass).expect("valid");
            b.iter(|| {
                let mut u = unit.clone();
                run_pipeline(black_box(&mut u), &invs, None).expect("pass runs")
            })
        });
    }
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let text = generate(&GeneratorConfig::core_library(0.01)).asm;
    let unit = MaoUnit::parse(&text).expect("corpus parses");
    let mut group = c.benchmark_group("analyses");
    group.sample_size(10);
    group.bench_function("relaxation", |b| {
        b.iter(|| mao::relax(black_box(&unit)).expect("relaxes"))
    });
    group.bench_function("cfg_all_functions", |b| {
        b.iter(|| {
            unit.functions()
                .iter()
                .map(|f| mao::cfg::Cfg::build(&unit, f).len())
                .sum::<usize>()
        })
    });
    group.bench_function("liveness_all_functions", |b| {
        b.iter(|| {
            unit.functions()
                .iter()
                .map(|f| {
                    let cfg = mao::cfg::Cfg::build(&unit, f);
                    mao::dataflow::Liveness::compute(&unit, &cfg).live_in.len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("havlak_all_functions", |b| {
        b.iter(|| {
            unit.functions()
                .iter()
                .map(|f| {
                    let cfg = mao::cfg::Cfg::build(&unit, f);
                    mao::loops::find_loops(&cfg).len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_passes, bench_analyses);
criterion_main!(benches);
