//! Vendored offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate provides the
//! slice of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_filter`, tuple
//! strategies, integer-range strategies, `prop::sample::select`,
//! `prop::option::of`, `prop::collection::vec`, `any::<T>()`, a
//! character-class string strategy (`"[ -~]{0,60}"`), and the [`proptest!`]
//! macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic runs) and failures are reported via panic without
//! shrinking — the failing value is printed instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategies from a character-class pattern such as
    /// `"[ -~]{0,60}"`: a `[lo-hi]` class followed by a `{min,max}` length.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string pattern `{self}` (shim handles `[a-b]{{m,n}}`)")
            });
            let len = rng.random_range(min..=max);
            (0..len)
                .map(|_| rng.random_range(lo as u32..=hi as u32))
                .filter_map(char::from_u32)
                .collect()
        }
    }

    /// Parse `[<lo>-<hi>]{<min>,<max>}` into its parts.
    fn parse_class_pattern(p: &str) -> Option<(char, char, usize, usize)> {
        let rest = p.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let lo = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi = chars.next()?;
        let rest = rest.strip_prefix('{')?;
        let body = rest.strip_suffix('}')?;
        let (min, max) = match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((lo, hi, min, max))
    }
}

/// The deterministic generator handed to strategies.
pub type TestRng = StdRng;

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $via:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let raw: u64 = rng.random();
                raw as $via as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod sample {
    //! `prop::sample` equivalents.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Uniformly select one of the given values.
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.random_range(0..self.choices.len())].clone()
        }
    }

    /// `prop::sample::select`: pick uniformly from `choices`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from an empty list");
        Select { choices }
    }
}

pub mod option {
    //! `prop::option` equivalents.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Strategy for `Option<T>` (3/4 `Some`, like proptest's default
    /// weighting toward interesting values).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of`: `None` or a value of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod collection {
    //! `prop::collection` equivalents.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        inner: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`: vectors of `inner` with length in `len`.
    pub fn vec<S: Strategy>(inner: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            inner,
            min: len.start,
            max: len.end - 1,
        }
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Seed a per-test generator; deterministic per test name.
pub fn test_rng(test_name: &str) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish() ^ 0x9e37_79b9_7f4a_7c15)
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module-path aliases.
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    // The user's own `#[test]` attribute is captured by the meta repetition
    // and re-emitted with the rest.
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = &($strat);)+
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_strings() {
        let mut rng = crate::test_rng("class_pattern_strings");
        let s: String = Strategy::generate(&"[a-c]{2,4}", &mut rng);
        assert!((2..=4).contains(&s.len()));
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Macro smoke test: tuple + range + select + map all compose.
        #[test]
        fn macro_generates(v in prop::collection::vec(0u8..10, 1..5),
                           x in (0usize..3).prop_map(|n| n * 2)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert_eq!(x % 2, 0);
        }
    }
}
