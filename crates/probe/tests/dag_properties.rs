//! Property tests for the dependence-DAG kernel generator.
//!
//! The sweep's measurements are only as good as the kernels: a CYCLE that
//! fails to close its ring measures throughput where the solver expects
//! latency, and a DISJOINT with a hidden cross-instruction dependence
//! deflates the throughput estimate. So rather than eyeballing emitted
//! text, these tests reparse every generated kernel through the real
//! front end and verify the *declared* dependence structure with def-use
//! walks over the decoded instructions:
//!
//! 1. every CHAIN/CYCLE/DISJOINT kernel for every catalog template
//!    reparses cleanly via `MaoUnit::parse` (scaffolding included);
//! 2. CYCLE bodies are RAW-serial rings — each instruction reads a
//!    register the previous one wrote, and the first reads the last's
//!    destination;
//! 3. CHAIN bodies (two-register templates) link each instruction to its
//!    predecessor the same way;
//! 4. DISJOINT bodies have no cross-instruction register RAW dependence
//!    at all;
//! 5. generation is deterministic per seed — the property that makes
//!    `.mpt` provenance (`generator`, `seed`) reproducible.

use mao::MaoUnit;
use mao_probe::{
    catalog, Benchmark, DagType, InstructionSequence, InstructionTemplate, ProbeSpec, Processor,
    StraightLineLoop,
};
use mao_x86::{def_use, Instruction};
use proptest::prelude::*;

/// Generate one kernel body and decode it through the real parser.
fn kernel(spec: &ProbeSpec, dag: DagType, len: usize, seed: u64) -> Vec<Instruction> {
    let proc = Processor::core2();
    let mut seq = InstructionSequence::new(&proc);
    seq.set_instruction_template(InstructionTemplate::parse(spec.template).expect("template"))
        .set_dag_type(dag)
        .set_length(len)
        .set_seed(seed)
        .generate(&proc);
    let text: String = seq.instructions.join("\n") + "\n";
    let unit = MaoUnit::parse(&text)
        .unwrap_or_else(|e| panic!("{} {dag:?} kernel must parse: {e}\n{text}", spec.name));
    unit.entries()
        .iter()
        .filter_map(|e| e.insn().cloned())
        .collect()
}

/// Does `user` read any register `producer` writes?
fn raw_dep(producer: &Instruction, user: &Instruction) -> bool {
    let defs = def_use(producer);
    let uses = def_use(user);
    defs.reg_defs.iter().any(|d| uses.uses_reg(d.id))
}

/// Kernel lengths stay within the scratch pool (9 GPRs / 9 XMMs) so
/// DISJOINT never recycles a register within one body.
fn body_len(seed: u64) -> usize {
    2 + (seed % 7) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every catalog template × every dependence shape, wrapped in the
    /// full benchmark scaffolding (trip-count setup, loop label, branch),
    /// parses through the same front end the optimizer uses.
    #[test]
    fn generated_kernels_reparse_cleanly(seed in any::<u64>()) {
        let proc = Processor::core2();
        let len = body_len(seed);
        for spec in catalog() {
            for dag in [DagType::Chain, DagType::Cycle, DagType::Disjoint] {
                let mut seq = InstructionSequence::new(&proc);
                seq.set_instruction_template(
                    InstructionTemplate::parse(spec.template).expect("template"),
                )
                .set_dag_type(dag)
                .set_length(len)
                .set_seed(seed)
                .generate(&proc);
                let asm = Benchmark::new(vec![
                    StraightLineLoop::new(vec![seq]).with_trip_count(10),
                ])
                .assembly();
                prop_assert!(
                    MaoUnit::parse(&asm).is_ok(),
                    "{} {:?} benchmark must parse:\n{}",
                    spec.name,
                    dag,
                    asm
                );
            }
        }
    }

    /// CYCLE kernels are closed RAW rings: instruction `i` reads what
    /// `i-1` wrote, and instruction 0 reads what the last one wrote. This
    /// is the structure that keeps exactly one link in flight, i.e. makes
    /// CPI equal latency.
    #[test]
    fn cycle_kernels_are_raw_serial_rings(seed in any::<u64>()) {
        let len = body_len(seed);
        for spec in catalog() {
            let insns = kernel(&spec, DagType::Cycle, len, seed);
            prop_assert_eq!(insns.len(), len, "{}", spec.name);
            for i in 0..insns.len() {
                let prev = &insns[(i + insns.len() - 1) % insns.len()];
                prop_assert!(
                    raw_dep(prev, &insns[i]),
                    "{}: cycle link {} broken: `{}` -> `{}`",
                    spec.name,
                    i,
                    prev,
                    insns[i]
                );
            }
        }
    }

    /// CHAIN kernels on two-register templates link each instruction to
    /// its predecessor (RAW), without requiring the ring to close.
    #[test]
    fn chain_kernels_link_each_instruction_to_its_predecessor(seed in any::<u64>()) {
        let len = body_len(seed);
        for spec in catalog().into_iter().filter(|s| s.two_reg) {
            let insns = kernel(&spec, DagType::Chain, len, seed);
            for w in insns.windows(2) {
                prop_assert!(
                    raw_dep(&w[0], &w[1]),
                    "{}: chain link broken: `{}` -> `{}`",
                    spec.name,
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// DISJOINT kernels have no cross-instruction register dependence:
    /// nothing any instruction reads was written by a *different*
    /// instruction in the body. (Reading your own destination is fine —
    /// read-modify-write templates do.)
    #[test]
    fn disjoint_kernels_have_no_cross_instruction_raw_deps(seed in any::<u64>()) {
        let len = body_len(seed);
        for spec in catalog() {
            let insns = kernel(&spec, DagType::Disjoint, len, seed);
            for (i, user) in insns.iter().enumerate() {
                for (j, producer) in insns.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    prop_assert!(
                        !raw_dep(producer, user),
                        "{}: disjoint body has a dep: `{}` (#{}) reads `{}` (#{})",
                        spec.name,
                        user,
                        i,
                        producer,
                        j
                    );
                }
            }
        }
    }

    /// Same seed, same kernel — byte for byte. The `.mpt` provenance
    /// records (generator, seed); this is what makes that record enough
    /// to regenerate the exact benchmark set.
    #[test]
    fn generation_is_deterministic_per_seed(seed in any::<u64>()) {
        let proc = Processor::core2();
        let len = body_len(seed);
        for spec in catalog() {
            for dag in [DagType::Chain, DagType::Cycle, DagType::Random, DagType::Disjoint] {
                let emit = || {
                    let mut seq = InstructionSequence::new(&proc);
                    seq.set_instruction_template(
                        InstructionTemplate::parse(spec.template).expect("template"),
                    )
                    .set_dag_type(dag)
                    .set_length(len)
                    .set_seed(seed)
                    .generate(&proc);
                    seq.instructions.clone()
                };
                prop_assert_eq!(emit(), emit(), "{} {:?} seed {}", spec.name, dag, seed);
            }
        }
    }
}
