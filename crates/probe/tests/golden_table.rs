//! Golden-table test: the committed `.mpt` fixture is the contract
//! between the calibration sweep and every consumer of measured costs.
//!
//! `tests/fixtures/core2.mpt` was produced by
//!
//! ```text
//! mao probe --sweep --profile core2 --seed 42 --trips 500 \
//!     --name golden-core2 -o crates/probe/tests/fixtures/core2.mpt
//! ```
//!
//! Three things must keep holding:
//!
//! 1. the fixture loads through [`CostModel::load_mpt`] with its recorded
//!    provenance intact (format stability — a container change that can't
//!    read old tables fails here first);
//! 2. the measured latencies in the fixture equal the hand-set core2
//!    profile *exactly*, for every catalog mnemonic (the sweep recovers
//!    the simulator's ground truth, no tolerance);
//! 3. replaying the sweep today with the recorded (generator, seed)
//!    reproduces the fixture byte-for-byte (same fingerprint) — the
//!    provenance block really is sufficient to regenerate the table.

use std::path::PathBuf;

use mao_obs::Obs;
use mao_probe::{catalog, run_sweep, Processor, SimBackend, SweepConfig};
use mao_x86::cost::CostModel;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("core2.mpt")
}

/// The exact configuration the fixture was generated with.
fn fixture_config() -> SweepConfig {
    SweepConfig {
        name: Some("golden-core2".to_string()),
        seed: 42,
        trip_count: 500,
        ..SweepConfig::default()
    }
}

#[test]
fn fixture_loads_with_provenance_intact() {
    let model = CostModel::load_mpt(&fixture_path()).expect("committed fixture must load");
    assert_eq!(model.name, "golden-core2");
    assert_eq!(model.provenance.source, "probe/sim");
    assert_eq!(model.provenance.target, "intel-core2-like");
    assert_eq!(model.provenance.seed, 42);
    assert!(!model.provenance.generator.is_empty());
    assert_eq!(model.len(), catalog().len(), "one entry per catalog spec");
}

#[test]
fn fixture_latencies_match_the_core2_profile_exactly() {
    let measured = CostModel::load_mpt(&fixture_path()).expect("committed fixture must load");
    let profile = CostModel::core2();
    for spec in catalog() {
        let got = measured.get(spec.mnemonic);
        let want = profile.get(spec.mnemonic);
        assert_eq!(
            got.latency, want.latency,
            "{}: measured latency {} != profile latency {}",
            spec.name, got.latency, want.latency
        );
    }
    // Machine parameters the sweep detects, not just per-mnemonic costs.
    assert_eq!(
        measured.machine.lsd_max_lines,
        profile.machine.lsd_max_lines
    );
    assert_eq!(
        measured.machine.predictor_shift,
        profile.machine.predictor_shift
    );
    assert_eq!(measured.machine.load_latency, profile.machine.load_latency);
}

#[test]
fn replaying_the_recorded_sweep_reproduces_the_fixture_bit_for_bit() {
    let committed = CostModel::load_mpt(&fixture_path()).expect("committed fixture must load");
    let report = run_sweep(
        &mut SimBackend,
        &Processor::core2(),
        &fixture_config(),
        &Obs::aggregating(),
    )
    .expect("replay sweep succeeds");
    assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
    assert_eq!(
        report.model.fingerprint(),
        committed.fingerprint(),
        "replayed sweep diverged from the committed table — either the \
         generator changed (regenerate the fixture and say so in the \
         commit) or determinism broke (a bug)"
    );
}
