//! Measurement backends (§IV.e's "execute the program on a target
//! architecture in isolation").
//!
//! The paper's framework drives real hardware through perf counters; this
//! reproduction's primary backend is the deterministic `mao-sim` model, with
//! a wall-clock path for hosts that can actually assemble and run the
//! generated x86-64. A backend consumes a rendered benchmark and returns
//! named counters; everything above it (sequence generation, the solver,
//! the sweep) is backend-agnostic, which is also what makes noise-injection
//! testable — see [`NoisyBackend`].

use std::collections::HashMap;

use mao::MaoUnit;
use mao_sim::{simulate, SimOptions};

use crate::benchmark::{Benchmark, BenchmarkError};
use crate::processor::Processor;

/// Something that can execute a microbenchmark and report PMU counters.
pub trait MeasureBackend {
    /// Short backend name for provenance records (`"sim"`, `"wall"`).
    fn name(&self) -> &'static str;

    /// Execute a rendered assembly program with entry `probe_main` and
    /// return the requested counters.
    fn run_asm(
        &mut self,
        asm: &str,
        proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError>;

    /// Execute a [`Benchmark`] (renders it and calls [`run_asm`]).
    ///
    /// [`run_asm`]: MeasureBackend::run_asm
    fn run(
        &mut self,
        bench: &Benchmark,
        proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError> {
        self.run_asm(&bench.assembly(), proc, events)
    }

    /// Repeated runs return identical counters (true for the simulator;
    /// false for anything touching a real clock).
    fn deterministic(&self) -> bool {
        false
    }
}

/// The deterministic backend: `mao-sim` with the processor's own profile.
#[derive(Debug, Default, Clone)]
pub struct SimBackend;

impl MeasureBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_asm(
        &mut self,
        asm: &str,
        proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError> {
        let unit = MaoUnit::parse(asm).map_err(|e| BenchmarkError::Parse(e.to_string()))?;
        let result = simulate(
            &unit,
            "probe_main",
            &[],
            &proc.config,
            &SimOptions::default(),
        )
        .map_err(|e| BenchmarkError::Sim(e.to_string()))?;
        let mut out = HashMap::new();
        for &event in events {
            let value = result
                .pmu
                .event(event)
                .ok_or_else(|| BenchmarkError::UnknownEvent(event.to_string()))?;
            out.insert(event.to_string(), value);
        }
        Ok(out)
    }

    fn deterministic(&self) -> bool {
        true
    }
}

/// A wall-clock backend for real hardware: assembles the benchmark with the
/// host C compiler, runs it, and reports elapsed nanoseconds under the
/// `CPU_CYCLES` event (the solver only consumes per-instruction *ratios*,
/// so an unknown constant scale cancels out of latency fits once the sweep
/// normalizes against a known-1-cycle chain).
///
/// Only usable on an x86-64 host with a `cc` in `PATH`; everywhere else
/// every run reports a structured [`BenchmarkError::Backend`] error.
#[derive(Debug, Default, Clone)]
pub struct WallClockBackend;

impl WallClockBackend {
    /// Can this host actually assemble and execute the generated x86-64?
    pub fn available() -> bool {
        if !cfg!(all(target_arch = "x86_64", target_os = "linux")) {
            return false;
        }
        std::process::Command::new("cc")
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    }
}

const WALL_DRIVER: &str = r#"
#include <stdio.h>
#include <time.h>
extern int probe_main(void);
int main(void) {
    struct timespec a, b;
    long best = -1;
    for (int rep = 0; rep < 5; rep++) {
        clock_gettime(CLOCK_MONOTONIC, &a);
        probe_main();
        clock_gettime(CLOCK_MONOTONIC, &b);
        long ns = (b.tv_sec - a.tv_sec) * 1000000000L + (b.tv_nsec - a.tv_nsec);
        if (best < 0 || ns < best) best = ns;
    }
    printf("%ld\n", best);
    return 0;
}
"#;

impl MeasureBackend for WallClockBackend {
    fn name(&self) -> &'static str {
        "wall"
    }

    fn run_asm(
        &mut self,
        asm: &str,
        _proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError> {
        if !WallClockBackend::available() {
            return Err(BenchmarkError::Backend(
                "wall-clock backend needs an x86-64 linux host with `cc`".to_string(),
            ));
        }
        for &event in events {
            if event != Processor::CPU_CYCLES {
                return Err(BenchmarkError::UnknownEvent(event.to_string()));
            }
        }
        let dir = std::env::temp_dir().join(format!(
            "mao-probe-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir)
            .map_err(|e| BenchmarkError::Backend(format!("mkdir: {e}")))?;
        let result = (|| {
            let asm_path = dir.join("probe.s");
            let c_path = dir.join("driver.c");
            let bin_path = dir.join("probe");
            std::fs::write(&asm_path, asm)
                .map_err(|e| BenchmarkError::Backend(format!("write asm: {e}")))?;
            std::fs::write(&c_path, WALL_DRIVER)
                .map_err(|e| BenchmarkError::Backend(format!("write driver: {e}")))?;
            let cc = std::process::Command::new("cc")
                .args(["-O0", "-o"])
                .arg(&bin_path)
                .arg(&c_path)
                .arg(&asm_path)
                .output()
                .map_err(|e| BenchmarkError::Backend(format!("cc: {e}")))?;
            if !cc.status.success() {
                return Err(BenchmarkError::Backend(format!(
                    "cc failed: {}",
                    String::from_utf8_lossy(&cc.stderr)
                )));
            }
            let run = std::process::Command::new(&bin_path)
                .output()
                .map_err(|e| BenchmarkError::Backend(format!("run: {e}")))?;
            if !run.status.success() {
                return Err(BenchmarkError::Backend(format!(
                    "probe exited with {}",
                    run.status
                )));
            }
            let nanos: u64 = String::from_utf8_lossy(&run.stdout)
                .trim()
                .parse()
                .map_err(|e| BenchmarkError::Backend(format!("bad driver output: {e}")))?;
            let mut out = HashMap::new();
            out.insert(Processor::CPU_CYCLES.to_string(), nanos.max(1));
            Ok(out)
        })();
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

/// A deterministic noise injector around another backend: every counter is
/// perturbed by a seeded multiplicative jitter of up to `amplitude_pct`
/// percent. Exists so stabilization failures ([`BenchmarkError::Unstable`])
/// have a reproducible test path.
#[derive(Debug)]
pub struct NoisyBackend<B> {
    inner: B,
    state: u64,
    amplitude_pct: u64,
}

impl<B: MeasureBackend> NoisyBackend<B> {
    /// Wrap `inner`, perturbing counters by up to `amplitude_pct`%.
    pub fn new(inner: B, seed: u64, amplitude_pct: u64) -> NoisyBackend<B> {
        NoisyBackend {
            inner,
            state: seed | 1,
            amplitude_pct,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — cheap, deterministic, good enough for jitter.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl<B: MeasureBackend> MeasureBackend for NoisyBackend<B> {
    fn name(&self) -> &'static str {
        "noisy"
    }

    fn run_asm(
        &mut self,
        asm: &str,
        proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError> {
        let mut counters = self.inner.run_asm(asm, proc, events)?;
        for value in counters.values_mut() {
            let jitter = self.next() % (2 * self.amplitude_pct + 1); // 0..=2a
            let scaled =
                (*value as u128) * (100 + jitter) as u128 / (100 + self.amplitude_pct) as u128;
            *value = (scaled as u64).max(1);
        }
        Ok(counters)
    }
}

/// Run `bench` up to `attempts` times and return per-event medians once the
/// spread of every event is within `tolerance_pct` percent of its median.
///
/// Deterministic backends short-circuit after a single run. If the spread
/// never settles, the result is a structured [`BenchmarkError::Unstable`]
/// naming the worst event — the caller decides whether to skip the
/// measurement or abort the sweep; nothing panics.
pub fn measure_stable(
    backend: &mut dyn MeasureBackend,
    bench: &Benchmark,
    proc: &Processor,
    events: &[&str],
    attempts: usize,
    tolerance_pct: u64,
) -> Result<HashMap<String, u64>, BenchmarkError> {
    if backend.deterministic() {
        return backend.run(bench, proc, events);
    }
    let attempts = attempts.max(3);
    let mut samples: HashMap<String, Vec<u64>> = HashMap::new();
    let mut worst: Option<(String, u64, u64)> = None;
    for round in 0..attempts {
        let counters = backend.run(bench, proc, events)?;
        for (event, value) in counters {
            samples.entry(event).or_default().push(value);
        }
        if round + 1 < 3 {
            continue; // need at least three samples to judge a spread
        }
        worst = None;
        let mut stable = true;
        for (event, values) in &samples {
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2].max(1);
            let min = *sorted.first().expect("non-empty samples");
            let max = *sorted.last().expect("non-empty samples");
            let spread_pct = (max - min) * 100 / median;
            if spread_pct > tolerance_pct {
                stable = false;
                if worst.as_ref().is_none_or(|&(_, _, w)| spread_pct > w) {
                    worst = Some((event.clone(), median, spread_pct));
                }
            }
        }
        if stable {
            let mut out = HashMap::new();
            for (event, values) in samples {
                let mut sorted = values;
                sorted.sort_unstable();
                out.insert(event.clone(), sorted[sorted.len() / 2]);
            }
            return Ok(out);
        }
    }
    let (event, median, spread_pct) = worst.unwrap_or_else(|| ("CPU_CYCLES".to_string(), 0, 0));
    Err(BenchmarkError::Unstable {
        event,
        median,
        spread_pct,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::InstructionTemplate;
    use crate::sequence::{DagType, InstructionSequence};
    use crate::StraightLineLoop;

    fn add_bench() -> Benchmark {
        let proc = Processor::core2();
        let mut seq = InstructionSequence::new(&proc);
        seq.set_instruction_template(InstructionTemplate::parse("addl %r, %r").unwrap())
            .set_dag_type(DagType::Cycle)
            .set_length(8)
            .generate(&proc);
        Benchmark::new(vec![StraightLineLoop::new(vec![seq]).with_trip_count(200)])
    }

    #[test]
    fn sim_backend_matches_benchmark_execute() {
        let proc = Processor::core2();
        let bench = add_bench();
        let direct = bench.execute(&proc, &[Processor::CPU_CYCLES]).unwrap();
        let via = SimBackend
            .run(&bench, &proc, &[Processor::CPU_CYCLES])
            .unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn measure_stable_short_circuits_on_deterministic_backend() {
        let proc = Processor::core2();
        let out = measure_stable(
            &mut SimBackend,
            &add_bench(),
            &proc,
            &[Processor::CPU_CYCLES],
            7,
            1,
        )
        .unwrap();
        assert!(out[Processor::CPU_CYCLES] > 0);
    }

    #[test]
    fn mild_noise_stabilizes_to_a_median() {
        let proc = Processor::core2();
        let mut noisy = NoisyBackend::new(SimBackend, 42, 2);
        let out = measure_stable(
            &mut noisy,
            &add_bench(),
            &proc,
            &[Processor::CPU_CYCLES],
            9,
            10,
        )
        .unwrap();
        let clean = SimBackend
            .run(&add_bench(), &proc, &[Processor::CPU_CYCLES])
            .unwrap();
        let (a, b) = (out[Processor::CPU_CYCLES], clean[Processor::CPU_CYCLES]);
        assert!(a.abs_diff(b) * 100 / b <= 5, "median {a} vs clean {b}");
    }

    #[test]
    fn heavy_noise_yields_structured_unstable_error() {
        let proc = Processor::core2();
        let mut noisy = NoisyBackend::new(SimBackend, 7, 60);
        let err = measure_stable(
            &mut noisy,
            &add_bench(),
            &proc,
            &[Processor::CPU_CYCLES],
            5,
            2,
        )
        .unwrap_err();
        match err {
            BenchmarkError::Unstable {
                event,
                spread_pct,
                attempts,
                ..
            } => {
                assert_eq!(event, "CPU_CYCLES");
                assert!(spread_pct > 2);
                assert_eq!(attempts, 5);
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_unavailability_is_an_error_not_a_panic() {
        if WallClockBackend::available() {
            return; // exercised by the (host-gated) sweep path instead
        }
        let proc = Processor::core2();
        let err = WallClockBackend
            .run(&add_bench(), &proc, &[Processor::CPU_CYCLES])
            .unwrap_err();
        assert!(matches!(err, BenchmarkError::Backend(_)));
    }

    #[test]
    fn wall_clock_rejects_simulator_only_events() {
        if !WallClockBackend::available() {
            return;
        }
        let proc = Processor::core2();
        let err = WallClockBackend
            .run(&add_bench(), &proc, &["LSD_ITERATIONS"])
            .unwrap_err();
        assert!(matches!(err, BenchmarkError::UnknownEvent(_)));
    }
}
