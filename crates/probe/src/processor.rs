//! The `Processor` and `Instruction` abstractions (§IV.a, §IV.b).
//!
//! A [`Processor`] *"encapsulates information specific to a target
//! architecture. This primarily consists of the set of registers and the
//! set of instructions."* An [`InstructionTemplate`] describes an
//! instruction shape (like the paper's `'add %r, %r'`) from which the
//! sequence generator instantiates concrete instructions with randomly
//! chosen valid operands.

use mao_sim::UarchConfig;
use mao_x86::RegId;

/// An instruction shape with operand placeholders.
///
/// Supported placeholder grammar (a subset of the paper's attribute
/// system, extensible the same way): `%r` = any scratch GPR (32-bit),
/// `%q` = any scratch GPR (64-bit), `%x` = any scratch XMM register,
/// `(%q)` = a register-indirect memory operand through a scratch GPR,
/// `$i` = a small immediate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionTemplate {
    /// AT&T mnemonic (`addl`, `imull`, `movl`, ...).
    pub mnemonic: String,
    /// Operand placeholders in AT&T order.
    pub operands: Vec<String>,
}

impl InstructionTemplate {
    /// Parse `"addl %r, %r"` into a template.
    pub fn parse(text: &str) -> Option<InstructionTemplate> {
        let text = text.trim();
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        if mnemonic.is_empty() {
            return None;
        }
        let operands = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(|o| o.trim().to_string()).collect()
        };
        Some(InstructionTemplate {
            mnemonic: mnemonic.to_string(),
            operands,
        })
    }

    /// Number of register placeholders (GPR, XMM, and memory-base slots all
    /// count: the generator assigns each one a register from the DAG shape).
    pub fn register_slots(&self) -> usize {
        self.operands
            .iter()
            .filter(|o| matches!(o.as_str(), "%r" | "%q" | "%x" | "(%q)"))
            .count()
    }

    /// Does the template use XMM registers anywhere?
    pub fn uses_xmm(&self) -> bool {
        self.operands.iter().any(|o| o == "%x")
    }

    /// Does the template touch memory anywhere?
    pub fn uses_memory(&self) -> bool {
        self.operands.iter().any(|o| o == "(%q)")
    }
}

/// The target processor: its register set plus the micro-architectural
/// model the generated benchmarks execute on.
#[derive(Debug, Clone)]
pub struct Processor {
    /// Display name.
    pub name: String,
    /// Scratch registers microbenchmarks may allocate (caller-saved,
    /// excluding the loop counter %rcx and argument registers).
    pub scratch: Vec<RegId>,
    /// The simulated micro-architecture this processor runs on.
    pub config: UarchConfig,
}

impl Processor {
    /// Processor over a simulation profile.
    pub fn new(config: UarchConfig) -> Processor {
        Processor {
            name: config.name.to_string(),
            scratch: vec![
                RegId::Rax,
                RegId::Rbx,
                RegId::Rdx,
                RegId::Rsi,
                RegId::Rdi,
                RegId::R8,
                RegId::R9,
                RegId::R10,
                RegId::R11,
            ],
            config,
        }
    }

    /// The Intel-Core-2-like processor.
    pub fn core2() -> Processor {
        Processor::new(UarchConfig::core2())
    }

    /// The AMD-Opteron-like processor.
    pub fn opteron() -> Processor {
        Processor::new(UarchConfig::opteron())
    }

    /// AT&T name of scratch register `i` at the template's width.
    pub fn scratch_name(&self, i: usize, wide: bool) -> String {
        let id = self.scratch[i % self.scratch.len()];
        let reg = if wide {
            mao_x86::Reg::q(id)
        } else {
            mao_x86::Reg::l(id)
        };
        reg.att_name().to_string()
    }

    /// AT&T name of scratch XMM register `i` (xmm0..xmm8, mirroring the
    /// GPR scratch count so DAG shapes index both files identically).
    pub fn xmm_name(&self, i: usize) -> String {
        let n = (i % self.scratch.len()) as u8;
        mao_x86::Reg::xmm(n).att_name().to_string()
    }

    /// The PMU event the latency probe reads.
    pub const CPU_CYCLES: &'static str = "CPU_CYCLES";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_parsing() {
        let t = InstructionTemplate::parse("addl %r, %r").unwrap();
        assert_eq!(t.mnemonic, "addl");
        assert_eq!(t.operands, vec!["%r", "%r"]);
        assert_eq!(t.register_slots(), 2);

        let t = InstructionTemplate::parse("imull $i, %r, %r").unwrap();
        assert_eq!(t.register_slots(), 2);
        assert_eq!(t.operands.len(), 3);

        let t = InstructionTemplate::parse("nop").unwrap();
        assert!(t.operands.is_empty());

        assert!(InstructionTemplate::parse("").is_none());
    }

    #[test]
    fn processor_scratch_names() {
        let p = Processor::core2();
        assert_eq!(p.scratch_name(0, false), "eax");
        assert_eq!(p.scratch_name(0, true), "rax");
        // Wraps around.
        let n = p.scratch.len();
        assert_eq!(p.scratch_name(n, false), "eax");
    }

    #[test]
    fn processors_carry_their_config() {
        assert_eq!(Processor::core2().config.decode_line, 16);
        assert_eq!(Processor::opteron().config.decode_line, 32);
    }
}
