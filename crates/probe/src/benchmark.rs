//! The `Loop` and `Benchmark` abstractions (§IV.d, §IV.e).
//!
//! A [`StraightLineLoop`] wraps instruction sequences in a loop with a
//! fixed trip count; a [`Benchmark`] assembles loops into a program,
//! "executes the program on a target architecture in isolation and
//! collects any specified PMU counters" — here the target architecture is
//! the `mao-sim` model.

use std::collections::HashMap;

use crate::processor::Processor;
use crate::sequence::InstructionSequence;

/// A loop with no internal control flow around one or more sequences.
#[derive(Debug, Clone)]
pub struct StraightLineLoop {
    /// The instruction sequences forming the body, in order.
    pub sequences: Vec<InstructionSequence>,
    /// Trip count.
    pub trip_count: u64,
}

impl StraightLineLoop {
    /// Wrap `sequences` in a loop (default trip count 10 000).
    pub fn new(sequences: Vec<InstructionSequence>) -> StraightLineLoop {
        StraightLineLoop {
            sequences,
            trip_count: 10_000,
        }
    }

    /// Set the trip count.
    pub fn with_trip_count(mut self, n: u64) -> StraightLineLoop {
        self.trip_count = n.max(1);
        self
    }

    /// Dynamic instructions executed by this loop (body + loop control).
    pub fn dynamic_instructions(&self) -> u64 {
        let body: u64 = self.sequences.iter().map(|s| s.len() as u64).sum();
        (body + 2) * self.trip_count
    }

    fn emit(&self, index: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "\tmovq ${}, %rcx", self.trip_count);
        let _ = writeln!(out, ".Lprobe_loop_{index}:");
        for seq in &self.sequences {
            for insn in &seq.instructions {
                let _ = writeln!(out, "{insn}");
            }
        }
        let _ = writeln!(out, "\tsubq $1, %rcx");
        let _ = writeln!(out, "\tjne .Lprobe_loop_{index}");
    }
}

/// Error from benchmark execution.
#[derive(Debug, Clone)]
pub enum BenchmarkError {
    /// Generated assembly failed to parse (a framework bug).
    Parse(String),
    /// Simulation failed.
    Sim(String),
    /// Requested counter does not exist.
    UnknownEvent(String),
    /// The backend itself failed (missing toolchain, compile error, ...).
    Backend(String),
    /// A noisy backend never settled within tolerance: after `attempts`
    /// runs, `event`'s min-to-max spread was still `spread_pct`% of its
    /// median. Structured so sweeps can skip or retry instead of dying.
    Unstable {
        /// The event that failed to stabilize.
        event: String,
        /// Median of the collected samples.
        median: u64,
        /// Spread (max − min) as a percentage of the median.
        spread_pct: u64,
        /// Number of runs performed.
        attempts: usize,
    },
}

impl std::fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkError::Parse(m) => write!(f, "generated assembly invalid: {m}"),
            BenchmarkError::Sim(m) => write!(f, "simulation failed: {m}"),
            BenchmarkError::UnknownEvent(e) => write!(f, "unknown PMU event `{e}`"),
            BenchmarkError::Backend(m) => write!(f, "measurement backend failed: {m}"),
            BenchmarkError::Unstable {
                event,
                median,
                spread_pct,
                attempts,
            } => write!(
                f,
                "event `{event}` did not stabilize after {attempts} runs \
                 (median {median}, spread {spread_pct}%)"
            ),
        }
    }
}

impl std::error::Error for BenchmarkError {}

/// An executable microbenchmark assembled from loops.
#[derive(Debug, Clone)]
pub struct Benchmark {
    loops: Vec<StraightLineLoop>,
}

impl Benchmark {
    /// Build a benchmark from a loop list (paper: `Benchmark(loop_list)`).
    pub fn new(loops: Vec<StraightLineLoop>) -> Benchmark {
        Benchmark { loops }
    }

    /// Total dynamic instructions inside the loops (the divisor of the
    /// Fig. 6 latency computation: `NumDynamicInstructions`).
    pub fn num_dynamic_instructions(&self) -> u64 {
        self.loops
            .iter()
            .map(StraightLineLoop::dynamic_instructions)
            .sum()
    }

    /// Render the benchmark as an assembly program.
    pub fn assembly(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "\t.text");
        let _ = writeln!(out, "\t.globl\tprobe_main");
        let _ = writeln!(out, "\t.type\tprobe_main, @function");
        let _ = writeln!(out, "probe_main:");
        for (i, l) in self.loops.iter().enumerate() {
            l.emit(i, &mut out);
        }
        let _ = writeln!(out, "\txorl %eax, %eax");
        let _ = writeln!(out, "\tret");
        let _ = writeln!(out, "\t.size\tprobe_main, .-probe_main");
        out
    }

    /// Assemble, execute in isolation on `proc`, and collect the named PMU
    /// counters (paper: `Execute(proc, [proc.CPU_CYCLES])`) — always on the
    /// deterministic simulator backend; use
    /// [`MeasureBackend::run`](crate::backend::MeasureBackend::run) to pick
    /// a different one.
    pub fn execute(
        &self,
        proc: &Processor,
        events: &[&str],
    ) -> Result<HashMap<String, u64>, BenchmarkError> {
        use crate::backend::MeasureBackend as _;
        crate::backend::SimBackend.run(self, proc, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::InstructionTemplate;
    use crate::sequence::DagType;

    fn simple_loop(trips: u64) -> StraightLineLoop {
        let proc = Processor::core2();
        let mut seq = InstructionSequence::new(&proc);
        seq.set_instruction_template(InstructionTemplate::parse("addl %r, %r").unwrap())
            .set_dag_type(DagType::Cycle)
            .set_length(8)
            .generate(&proc);
        StraightLineLoop::new(vec![seq]).with_trip_count(trips)
    }

    #[test]
    fn assembly_is_parseable_and_runs() {
        let bench = Benchmark::new(vec![simple_loop(100)]);
        let asm = bench.assembly();
        assert!(mao::MaoUnit::parse(&asm).is_ok(), "{asm}");
        let counters = bench
            .execute(
                &Processor::core2(),
                &[Processor::CPU_CYCLES, "INST_RETIRED"],
            )
            .unwrap();
        assert!(counters["CPU_CYCLES"] > 0);
        // 8 body + 2 control per iteration.
        assert!(counters["INST_RETIRED"] >= 1000);
    }

    #[test]
    fn dynamic_instruction_count() {
        let bench = Benchmark::new(vec![simple_loop(100)]);
        assert_eq!(bench.num_dynamic_instructions(), (8 + 2) * 100);
    }

    #[test]
    fn unknown_event_is_an_error() {
        let bench = Benchmark::new(vec![simple_loop(10)]);
        assert!(matches!(
            bench.execute(&Processor::core2(), &["BOGUS"]),
            Err(BenchmarkError::UnknownEvent(_))
        ));
    }

    #[test]
    fn multiple_loops_compose() {
        let bench = Benchmark::new(vec![simple_loop(50), simple_loop(60)]);
        let asm = bench.assembly();
        assert_eq!(asm.matches("probe_loop").count(), 4); // 2 labels + 2 jnes
        let counters = bench.execute(&Processor::core2(), &["BRANCHES"]).unwrap();
        assert_eq!(counters["BRANCHES"], 110);
    }
}
