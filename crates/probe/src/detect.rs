//! Parameter-detection procedures built on the framework.
//!
//! [`instruction_latency`] is a line-for-line transcription of the paper's
//! Figure 6; [`detect_lsd_window`] and [`detect_predictor_shift`] extend the
//! same methodology to two parameters the paper's passes depend on (the LSD
//! decode-line window of §III.C.f and the `PC >> 5` predictor indexing of
//! §III.C.g) — the semi-automatic discovery §IV motivates.

use crate::benchmark::{Benchmark, BenchmarkError, StraightLineLoop};
use crate::processor::{InstructionTemplate, Processor};
use crate::sequence::{DagType, InstructionSequence};

/// Figure 6: measure an instruction's latency.
///
/// *"Form a loop with a cycle of instructions, one dependent on the other.
/// Execute the chain, collect CPU cycles and obtain the latency."* The
/// CYCLE dependence shape keeps exactly one instruction executing per
/// cycle-of-the-chain, so `latency = CPU_CYCLES / dynamic instructions`.
pub fn instruction_latency(proc: &Processor, template: &str) -> Result<u64, BenchmarkError> {
    let template = InstructionTemplate::parse(template)
        .ok_or_else(|| BenchmarkError::Parse(format!("bad template `{template}`")))?;
    let mut seq = InstructionSequence::new(proc);
    seq.set_instruction_template(template)
        .set_dag_type(DagType::Cycle)
        .set_length(16)
        .generate(proc);
    let body_insns = seq.len() as u64;
    let trip_count = 5_000;
    let loop_list = vec![StraightLineLoop::new(vec![seq]).with_trip_count(trip_count)];
    let bench = Benchmark::new(loop_list);
    let results = bench.execute(proc, &[Processor::CPU_CYCLES])?;
    // Divide by the *chain* instructions only: the loop-control subtract and
    // branch run in parallel with the chain and must not dilute it.
    let chain_instructions = body_insns * trip_count;
    let cycles = results[Processor::CPU_CYCLES];
    Ok(((cycles as f64) / (chain_instructions as f64)).round() as u64)
}

/// Detect the loop-buffer window in decode lines: generate loops of
/// increasing byte size (DISJOINT bodies, so the front end is the
/// bottleneck) and find where the cycles-per-iteration cliff is.
///
/// Returns the largest number of decode lines that still streams.
pub fn detect_lsd_window(proc: &Processor) -> Result<u64, BenchmarkError> {
    let line = proc.config.decode_line;
    let mut last_streaming = 0u64;
    for lines in 1..=8u64 {
        // Body of `lines * line / 7`-ish byte-dense instructions: addl with
        // imm32 on distinct registers is 7 bytes and independent.
        let target_bytes = lines * line;
        let n = ((target_bytes.saturating_sub(6)) / 7).max(1) as usize;
        let mut seq = InstructionSequence::new(proc);
        seq.set_instruction_template(
            InstructionTemplate::parse("addl $305419896, %r").expect("valid"),
        )
        .set_dag_type(DagType::Disjoint)
        .set_length(n)
        .generate(proc);
        let bench = Benchmark::new(vec![
            StraightLineLoop::new(vec![seq]).with_trip_count(20_000)
        ]);
        let counters = bench.execute(proc, &["LSD_ITERATIONS"])?;
        if counters["LSD_ITERATIONS"] > 10_000 {
            last_streaming = lines;
        }
    }
    Ok(last_streaming)
}

/// Detect the branch-predictor index shift: place two conflicting branches
/// (one always taken, one never taken) at increasing distances and find the
/// distance at which the mispredictions collapse — the bucket size.
///
/// Returns `log2(bucket size)`, the `PC >> k` of §III.C.g.
pub fn detect_predictor_shift(proc: &Processor) -> Result<u32, BenchmarkError> {
    let mut collapse_at: Option<u64> = None;
    for gap_log in 1..=8u32 {
        let gap = 1u64 << gap_log;
        // Hand-built probe: inner never-taken branch and outer taken branch
        // `gap` bytes apart.
        let mut pad = String::new();
        let mut bytes = 0;
        while bytes + 7 <= gap.saturating_sub(5) {
            pad.push_str("\taddq $0x11111111, %r13\n");
            bytes += 7;
        }
        while bytes < gap.saturating_sub(5) {
            pad.push_str("\tnop\n");
            bytes += 1;
        }
        let asm = format!(
            "\t.text\n\t.globl\tprobe_main\n\t.type\tprobe_main, @function\nprobe_main:\n\
             \tmovl $20000, %eax\n.Louter:\n\
             \ttestl %eax, %eax\n\tjs .Lnever\n.Lnever:\n{pad}\
             \tsubl $1, %eax\n\tjne .Louter\n\tret\n\
             \t.size\tprobe_main, .-probe_main\n"
        );
        let unit = mao::MaoUnit::parse(&asm).map_err(|e| BenchmarkError::Parse(e.to_string()))?;
        let result = mao_sim::simulate(
            &unit,
            "probe_main",
            &[],
            &proc.config,
            &mao_sim::SimOptions::default(),
        )
        .map_err(|e| BenchmarkError::Sim(e.to_string()))?;
        let rate = result.pmu.mispredict_rate();
        if rate < 0.05 && collapse_at.is_none() {
            collapse_at = Some(gap);
        }
        if rate >= 0.05 {
            collapse_at = None; // still conflicting at this distance
        }
    }
    // The branches stop conflicting once they are in different buckets:
    // bucket size = the collapse distance.
    let bucket = collapse_at.unwrap_or(1 << 9);
    Ok(bucket.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_of_add_is_one() {
        let proc = Processor::core2();
        assert_eq!(instruction_latency(&proc, "addl %r, %r").unwrap(), 1);
    }

    #[test]
    fn latency_of_imul_is_three() {
        let proc = Processor::core2();
        assert_eq!(instruction_latency(&proc, "imull %r, %r").unwrap(), 3);
    }

    #[test]
    fn latency_ordering_matches_model() {
        let proc = Processor::core2();
        let add = instruction_latency(&proc, "addl %r, %r").unwrap();
        let imul = instruction_latency(&proc, "imull %r, %r").unwrap();
        assert!(imul > add);
    }

    #[test]
    fn lsd_window_detected_per_profile() {
        assert_eq!(detect_lsd_window(&Processor::core2()).unwrap(), 4);
        assert_eq!(detect_lsd_window(&Processor::opteron()).unwrap(), 1);
    }

    #[test]
    fn predictor_shift_detected() {
        assert_eq!(detect_predictor_shift(&Processor::core2()).unwrap(), 5);
        assert_eq!(detect_predictor_shift(&Processor::opteron()).unwrap(), 4);
    }
}
