//! Parameter-detection procedures built on the framework.
//!
//! [`instruction_latency`] is a line-for-line transcription of the paper's
//! Figure 6; [`detect_lsd_window`] and [`detect_predictor_shift`] extend the
//! same methodology to two parameters the paper's passes depend on (the LSD
//! decode-line window of §III.C.f and the `PC >> 5` predictor indexing of
//! §III.C.g) — the semi-automatic discovery §IV motivates.
//!
//! Every procedure is backend-parameterized (`*_with` variants) and returns
//! structured [`BenchmarkError`]s: a measurement that fails to stabilize on
//! a noisy backend surfaces as [`BenchmarkError::Unstable`] for the caller
//! to skip or retry — nothing in this module panics on measurement failure.

use crate::backend::{measure_stable, MeasureBackend, SimBackend};
use crate::benchmark::{Benchmark, BenchmarkError, StraightLineLoop};
use crate::processor::{InstructionTemplate, Processor};
use crate::sequence::{DagType, InstructionSequence};

/// Runs used per measurement before declaring instability.
const STABILIZE_ATTEMPTS: usize = 9;
/// Maximum min-to-max spread, in percent of the median, to accept.
const STABILIZE_TOLERANCE_PCT: u64 = 5;

fn read_event(
    counters: &std::collections::HashMap<String, u64>,
    event: &str,
) -> Result<u64, BenchmarkError> {
    counters
        .get(event)
        .copied()
        .ok_or_else(|| BenchmarkError::UnknownEvent(event.to_string()))
}

/// Figure 6: measure an instruction's latency.
///
/// *"Form a loop with a cycle of instructions, one dependent on the other.
/// Execute the chain, collect CPU cycles and obtain the latency."* The
/// CYCLE dependence shape keeps exactly one instruction executing per
/// cycle-of-the-chain, so `latency = CPU_CYCLES / dynamic instructions`.
pub fn instruction_latency(proc: &Processor, template: &str) -> Result<u64, BenchmarkError> {
    instruction_latency_with(&mut SimBackend, proc, template)
}

/// [`instruction_latency`] against an explicit measurement backend.
pub fn instruction_latency_with(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
    template: &str,
) -> Result<u64, BenchmarkError> {
    let template = InstructionTemplate::parse(template)
        .ok_or_else(|| BenchmarkError::Parse(format!("bad template `{template}`")))?;
    let mut seq = InstructionSequence::new(proc);
    seq.set_instruction_template(template)
        .set_dag_type(DagType::Cycle)
        .set_length(16)
        .generate(proc);
    let body_insns = seq.len() as u64;
    let trip_count = 5_000;
    let loop_list = vec![StraightLineLoop::new(vec![seq]).with_trip_count(trip_count)];
    let bench = Benchmark::new(loop_list);
    let results = measure_stable(
        backend,
        &bench,
        proc,
        &[Processor::CPU_CYCLES],
        STABILIZE_ATTEMPTS,
        STABILIZE_TOLERANCE_PCT,
    )?;
    // Divide by the *chain* instructions only: the loop-control subtract and
    // branch run in parallel with the chain and must not dilute it.
    let chain_instructions = body_insns * trip_count;
    let cycles = read_event(&results, Processor::CPU_CYCLES)?;
    Ok(((cycles as f64) / (chain_instructions as f64)).round() as u64)
}

/// Detect the loop-buffer window in decode lines: generate loops of
/// increasing byte size (DISJOINT bodies, so the front end is the
/// bottleneck) and find where the cycles-per-iteration cliff is.
///
/// Returns the largest number of decode lines that still streams.
pub fn detect_lsd_window(proc: &Processor) -> Result<u64, BenchmarkError> {
    detect_lsd_window_with(&mut SimBackend, proc)
}

/// [`detect_lsd_window`] against an explicit measurement backend. The
/// backend must expose the `LSD_ITERATIONS` event (the simulator does;
/// wall-clock backends report [`BenchmarkError::UnknownEvent`], which a
/// sweep treats as "parameter not measurable on this backend").
pub fn detect_lsd_window_with(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
) -> Result<u64, BenchmarkError> {
    let line = proc.config.decode_line;
    let mut last_streaming = 0u64;
    for lines in 1..=8u64 {
        // Body of `lines * line / 7`-ish byte-dense instructions: addl with
        // imm32 on distinct registers is 7 bytes and independent.
        let target_bytes = lines * line;
        let n = ((target_bytes.saturating_sub(6)) / 7).max(1) as usize;
        let template = InstructionTemplate::parse("addl $305419896, %r")
            .ok_or_else(|| BenchmarkError::Parse("lsd probe template".to_string()))?;
        let mut seq = InstructionSequence::new(proc);
        seq.set_instruction_template(template)
            .set_dag_type(DagType::Disjoint)
            .set_length(n)
            .generate(proc);
        // Enough iterations to dwarf the LSD lock-on threshold while
        // keeping the probe cheap (it runs inside every sweep).
        let trips = 4_000u64;
        let bench = Benchmark::new(vec![StraightLineLoop::new(vec![seq]).with_trip_count(trips)]);
        let counters = measure_stable(
            backend,
            &bench,
            proc,
            &["LSD_ITERATIONS"],
            STABILIZE_ATTEMPTS,
            STABILIZE_TOLERANCE_PCT,
        )?;
        if read_event(&counters, "LSD_ITERATIONS")? > trips / 2 {
            last_streaming = lines;
        }
    }
    Ok(last_streaming)
}

/// Detect the branch-predictor index shift: place two conflicting branches
/// (one always taken, one never taken) at increasing distances and find the
/// distance at which the mispredictions collapse — the bucket size.
///
/// Returns `log2(bucket size)`, the `PC >> k` of §III.C.g.
pub fn detect_predictor_shift(proc: &Processor) -> Result<u32, BenchmarkError> {
    detect_predictor_shift_with(&mut SimBackend, proc)
}

/// [`detect_predictor_shift`] against an explicit measurement backend. The
/// backend must expose the `BR_MISP_RETIRED` and `BRANCHES` events.
pub fn detect_predictor_shift_with(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
) -> Result<u32, BenchmarkError> {
    let mut collapse_at: Option<u64> = None;
    for gap_log in 1..=8u32 {
        let gap = 1u64 << gap_log;
        // Hand-built probe: inner never-taken branch and outer taken branch
        // `gap` bytes apart.
        let mut pad = String::new();
        let mut bytes = 0;
        while bytes + 7 <= gap.saturating_sub(5) {
            pad.push_str("\taddq $0x11111111, %r13\n");
            bytes += 7;
        }
        while bytes < gap.saturating_sub(5) {
            pad.push_str("\tnop\n");
            bytes += 1;
        }
        let asm = format!(
            "\t.text\n\t.globl\tprobe_main\n\t.type\tprobe_main, @function\nprobe_main:\n\
             \tmovl $4000, %eax\n.Louter:\n\
             \ttestl %eax, %eax\n\tjs .Lnever\n.Lnever:\n{pad}\
             \tsubl $1, %eax\n\tjne .Louter\n\tret\n\
             \t.size\tprobe_main, .-probe_main\n"
        );
        let counters = backend.run_asm(&asm, proc, &["BR_MISP_RETIRED", "BRANCHES"])?;
        let branches = read_event(&counters, "BRANCHES")?.max(1);
        let rate = read_event(&counters, "BR_MISP_RETIRED")? as f64 / branches as f64;
        if rate < 0.05 && collapse_at.is_none() {
            collapse_at = Some(gap);
        }
        if rate >= 0.05 {
            collapse_at = None; // still conflicting at this distance
        }
    }
    // The branches stop conflicting once they are in different buckets:
    // bucket size = the collapse distance.
    let bucket = collapse_at.unwrap_or(1 << 9);
    Ok(bucket.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NoisyBackend;

    #[test]
    fn latency_of_add_is_one() {
        let proc = Processor::core2();
        assert_eq!(instruction_latency(&proc, "addl %r, %r").unwrap(), 1);
    }

    #[test]
    fn latency_of_imul_is_three() {
        let proc = Processor::core2();
        assert_eq!(instruction_latency(&proc, "imull %r, %r").unwrap(), 3);
    }

    #[test]
    fn latency_ordering_matches_model() {
        let proc = Processor::core2();
        let add = instruction_latency(&proc, "addl %r, %r").unwrap();
        let imul = instruction_latency(&proc, "imull %r, %r").unwrap();
        assert!(imul > add);
    }

    #[test]
    fn lsd_window_detected_per_profile() {
        assert_eq!(detect_lsd_window(&Processor::core2()).unwrap(), 4);
        assert_eq!(detect_lsd_window(&Processor::opteron()).unwrap(), 1);
    }

    #[test]
    fn predictor_shift_detected() {
        assert_eq!(detect_predictor_shift(&Processor::core2()).unwrap(), 5);
        assert_eq!(detect_predictor_shift(&Processor::opteron()).unwrap(), 4);
    }

    #[test]
    fn bad_template_is_a_parse_error_not_a_panic() {
        let proc = Processor::core2();
        assert!(matches!(
            instruction_latency(&proc, ""),
            Err(BenchmarkError::Parse(_))
        ));
    }

    /// The regression the detect rewrite exists for: a backend that never
    /// stabilizes must produce a structured `Unstable` error, not a panic
    /// or a bogus latency.
    #[test]
    fn noisy_backend_yields_unstable_not_panic() {
        let proc = Processor::core2();
        let mut noisy = NoisyBackend::new(SimBackend, 3, 80);
        let err = instruction_latency_with(&mut noisy, &proc, "addl %r, %r").unwrap_err();
        assert!(
            matches!(err, BenchmarkError::Unstable { ref event, .. } if event == "CPU_CYCLES"),
            "{err:?}"
        );
    }

    /// Mildly noisy measurements still converge to the true latency.
    #[test]
    fn mild_noise_recovers_latency_via_median() {
        let proc = Processor::core2();
        let mut noisy = NoisyBackend::new(SimBackend, 11, 2);
        let lat = instruction_latency_with(&mut noisy, &proc, "imull %r, %r").unwrap();
        assert_eq!(lat, 3);
    }
}
