//! The calibration sweep: catalog × DAG shapes → a fitted [`CostModel`].
//!
//! For every [`ProbeSpec`](crate::catalog::ProbeSpec) the sweep measures
//! the CYCLE, DISJOINT and (for two-register templates) CHAIN shapes, fits
//! a per-mnemonic cost with [`solver::fit`](crate::solver::fit), measures
//! the machine parameters the alignment passes key off (LSD window,
//! predictor shift, load-to-use latency), and packages everything into a
//! [`CostModel`] ready to be written as a `.mpt` table.
//!
//! Specs whose measurements never stabilize are *skipped with a record*,
//! not fatal: on a noisy backend the sweep degrades to a partial table
//! (missing mnemonics fall back to the model's default cost) instead of
//! dying halfway. Telemetry flows through `mao-obs`: one `probe` span per
//! spec with its fitted numbers, plus the
//! `mao_probe_measurements_total` / `mao_probe_unstable_total` counters.

use mao_obs::Obs;
use mao_x86::cost::{CostModel, MnemonicCost, Provenance, MPT_ISA};

use crate::backend::{measure_stable, MeasureBackend};
use crate::benchmark::{Benchmark, BenchmarkError, StraightLineLoop};
use crate::catalog::{catalog, ProbeSpec};
use crate::detect::{detect_lsd_window_with, detect_predictor_shift_with};
use crate::processor::{InstructionTemplate, Processor};
use crate::sequence::{DagType, InstructionSequence};
use crate::solver::{fit, SpecMeasurement};

/// Knobs for one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Name of the produced model (default: `<target>-calibrated`).
    pub name: Option<String>,
    /// RNG seed for operand generation (recorded in provenance).
    pub seed: u64,
    /// CYCLE/CHAIN sequence length.
    pub chain_len: usize,
    /// DISJOINT sequence length (must not exceed the scratch-register
    /// count, or "independent" instructions silently collide).
    pub disjoint_len: usize,
    /// Loop trip count per benchmark.
    pub trip_count: u64,
    /// Runs per measurement before declaring instability.
    pub attempts: usize,
    /// Acceptable min-to-max spread, percent of the median.
    pub tolerance_pct: u64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            name: None,
            seed: 0,
            chain_len: 16,
            disjoint_len: 8,
            trip_count: 5_000,
            attempts: 9,
            tolerance_pct: 5,
        }
    }
}

/// A sweep-level failure (anything other than per-spec instability).
#[derive(Debug)]
pub enum SweepError {
    /// A spec's measurement failed for a non-noise reason.
    Benchmark {
        /// Which catalog spec.
        spec: String,
        /// The underlying error.
        error: BenchmarkError,
    },
    /// Every catalog spec was skipped — there is no table to write.
    Empty,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Benchmark { spec, error } => {
                write!(f, "sweep failed measuring `{spec}`: {error}")
            }
            SweepError::Empty => write!(f, "sweep produced no stable measurements"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Everything a sweep produced.
#[derive(Debug)]
pub struct SweepReport {
    /// The fitted model (write with
    /// [`CostModel::write_mpt`]).
    pub model: CostModel,
    /// Raw per-spec measurements (for reports and cross-checks).
    pub measurements: Vec<SpecMeasurement>,
    /// Specs skipped as unstable, with the error that killed them.
    pub skipped: Vec<(String, BenchmarkError)>,
}

/// Measure one (template, shape) CPI.
fn shape_cpi(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
    spec: &ProbeSpec,
    dag: DagType,
    len: usize,
    cfg: &SweepConfig,
) -> Result<f64, BenchmarkError> {
    let template = InstructionTemplate::parse(spec.template)
        .ok_or_else(|| BenchmarkError::Parse(format!("bad template `{}`", spec.template)))?;
    let mut seq = InstructionSequence::new(proc);
    seq.set_instruction_template(template)
        .set_dag_type(dag)
        .set_length(len)
        .set_seed(cfg.seed)
        .generate(proc);
    let body = seq.len() as u64;
    let bench = Benchmark::new(vec![
        StraightLineLoop::new(vec![seq]).with_trip_count(cfg.trip_count)
    ]);
    let counters = measure_stable(
        backend,
        &bench,
        proc,
        &[Processor::CPU_CYCLES],
        cfg.attempts,
        cfg.tolerance_pct,
    )?;
    let cycles = counters
        .get(Processor::CPU_CYCLES)
        .copied()
        .ok_or_else(|| BenchmarkError::UnknownEvent(Processor::CPU_CYCLES.to_string()))?;
    Ok(cycles as f64 / (body * cfg.trip_count) as f64)
}

/// Pointer-chase probe for the L1 load-to-use latency: memory at `[%rdx]`
/// holds its own address, so every load's address depends on the previous
/// load's result — a CYCLE through the cache.
fn load_to_use_cpi(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
    cfg: &SweepConfig,
) -> Result<f64, BenchmarkError> {
    let chain = "\tmovq (%rdx), %rdx\n".repeat(8);
    let asm = format!(
        "\t.text\n\t.globl\tprobe_main\n\t.type\tprobe_main, @function\nprobe_main:\n\
         \tleaq -128(%rsp), %rdx\n\tmovq %rdx, (%rdx)\n\
         \tmovq ${}, %rcx\n.Lprobe_load:\n{chain}\
         \tsubq $1, %rcx\n\tjne .Lprobe_load\n\txorl %eax, %eax\n\tret\n\
         \t.size\tprobe_main, .-probe_main\n",
        cfg.trip_count
    );
    let counters = backend.run_asm(&asm, proc, &[Processor::CPU_CYCLES])?;
    let cycles = counters
        .get(Processor::CPU_CYCLES)
        .copied()
        .ok_or_else(|| BenchmarkError::UnknownEvent(Processor::CPU_CYCLES.to_string()))?;
    Ok(cycles as f64 / (8 * cfg.trip_count) as f64)
}

/// Run the full calibration sweep on `backend` against `proc`.
pub fn run_sweep(
    backend: &mut dyn MeasureBackend,
    proc: &Processor,
    cfg: &SweepConfig,
    obs: &Obs,
) -> Result<SweepReport, SweepError> {
    let measurements_total = obs.metrics.counter("mao_probe_measurements_total");
    let unstable_total = obs.metrics.counter("mao_probe_unstable_total");
    let mut sweep_span = obs.recorder.span("probe", "sweep");
    sweep_span.arg("backend", backend.name());
    sweep_span.arg("target", &proc.name);

    let mut measurements: Vec<SpecMeasurement> = Vec::new();
    let mut skipped: Vec<(String, BenchmarkError)> = Vec::new();

    for spec in catalog() {
        let mut span = obs.recorder.span("probe", spec.name);
        let cycle_cpi = match shape_cpi(backend, proc, &spec, DagType::Cycle, cfg.chain_len, cfg) {
            Ok(v) => {
                measurements_total.inc();
                v
            }
            Err(err @ BenchmarkError::Unstable { .. }) => {
                unstable_total.inc();
                span.arg("skipped", "unstable");
                skipped.push((spec.name.to_string(), err));
                continue;
            }
            Err(error) => {
                return Err(SweepError::Benchmark {
                    spec: spec.name.to_string(),
                    error,
                })
            }
        };
        let disjoint_cpi = match shape_cpi(
            backend,
            proc,
            &spec,
            DagType::Disjoint,
            cfg.disjoint_len,
            cfg,
        ) {
            Ok(v) => {
                measurements_total.inc();
                v
            }
            Err(err @ BenchmarkError::Unstable { .. }) => {
                unstable_total.inc();
                span.arg("skipped", "unstable");
                skipped.push((spec.name.to_string(), err));
                continue;
            }
            Err(error) => {
                return Err(SweepError::Benchmark {
                    spec: spec.name.to_string(),
                    error,
                })
            }
        };
        // CHAIN is a cross-check only; instability here degrades the check,
        // not the fit.
        let chain_cpi = if spec.two_reg {
            match shape_cpi(backend, proc, &spec, DagType::Chain, cfg.chain_len, cfg) {
                Ok(v) => {
                    measurements_total.inc();
                    Some(v)
                }
                Err(BenchmarkError::Unstable { .. }) => {
                    unstable_total.inc();
                    None
                }
                Err(error) => {
                    return Err(SweepError::Benchmark {
                        spec: spec.name.to_string(),
                        error,
                    })
                }
            }
        } else {
            None
        };
        span.counter("cycle_cpi_x100", (cycle_cpi * 100.0).round() as u64);
        span.counter("disjoint_cpi_x100", (disjoint_cpi * 100.0).round() as u64);
        measurements.push(SpecMeasurement {
            spec,
            cycle_cpi,
            disjoint_cpi,
            chain_cpi,
        });
    }

    if measurements.is_empty() {
        return Err(SweepError::Empty);
    }

    // Wall-clock backends report time, not cycles; normalize so the 1-cycle
    // ALU chain defines the cycle. The simulator already reports cycles and
    // must not be re-scaled (the golden round-trip depends on exactness).
    if !backend.deterministic() {
        if let Some(unit) = measurements
            .iter()
            .find(|m| m.spec.name == "addl")
            .map(|m| m.cycle_cpi)
            .filter(|&u| u > 0.0)
        {
            if backend.name() == "wall" {
                for m in &mut measurements {
                    m.cycle_cpi /= unit;
                    m.disjoint_cpi /= unit;
                    if let Some(c) = m.chain_cpi.as_mut() {
                        *c /= unit;
                    }
                }
            }
        }
    }

    // Machine parameters: measured where a probe exists; structural
    // identity the probes cannot see (port count/shape, decode geometry,
    // store/load port masks) is inherited from the profile under
    // measurement.
    let mut machine = proc.config.cost.machine;
    let min_disjoint = measurements
        .iter()
        .map(|m| m.disjoint_cpi)
        .fold(f64::INFINITY, f64::min);
    if min_disjoint.is_finite() && min_disjoint > 0.0 {
        machine.issue_width = ((1.0 / min_disjoint).round() as u32).clamp(1, 8);
    }
    match load_to_use_cpi(backend, proc, cfg) {
        Ok(cpi) => {
            // The chase's CPI is mov latency + load-to-use; subtract the
            // fitted mov latency (1 when unmeasured).
            let mov_latency = measurements
                .iter()
                .find(|m| m.spec.name == "movl")
                .map(|m| m.cycle_cpi.round() as u32)
                .unwrap_or(1)
                .max(1);
            machine.load_latency = (cpi.round() as u32).saturating_sub(mov_latency).max(1);
        }
        Err(BenchmarkError::Unstable { .. } | BenchmarkError::UnknownEvent(_)) => {
            unstable_total.inc();
        }
        Err(error) => {
            return Err(SweepError::Benchmark {
                spec: "load-to-use".to_string(),
                error,
            })
        }
    }
    // LSD window and predictor shift need simulator-only events; on
    // backends without them the profile's values stand.
    if let Ok(lines) = detect_lsd_window_with(backend, proc) {
        machine.lsd_max_lines = lines as u32;
    }
    if let Ok(shift) = detect_predictor_shift_with(backend, proc) {
        machine.predictor_shift = shift;
    }

    let name = cfg
        .name
        .clone()
        .unwrap_or_else(|| format!("{}-calibrated", proc.name));
    // Unmeasured mnemonics default to a fitted plain-ALU cost.
    let default_cost = measurements
        .iter()
        .find(|m| m.spec.name == "addl")
        .map(|m| fit(m, machine.num_ports))
        .unwrap_or(MnemonicCost {
            latency: 1,
            recip_tp_x100: 34,
            port_mask: 0b111,
        });
    let mut model = CostModel::new(&name, machine, default_cost);
    for m in &measurements {
        model.set(m.spec.mnemonic, fit(m, machine.num_ports));
    }
    model.provenance = Provenance {
        source: format!("probe/{}", backend.name()),
        target: proc.name.clone(),
        generator: "mao-probe sweep v1".to_string(),
        seed: cfg.seed,
        isa: MPT_ISA.to_string(),
    };

    sweep_span.counter("mnemonics", model.len() as u64);
    sweep_span.counter("skipped", skipped.len() as u64);
    Ok(SweepReport {
        model,
        measurements,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NoisyBackend, SimBackend};

    /// Deterministic backend: shorter loops keep the suite fast without
    /// costing exactness (the CI sweep smoke runs the full default config).
    fn test_cfg() -> SweepConfig {
        SweepConfig {
            trip_count: 500,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sim_sweep_recovers_core2_latencies_exactly() {
        let proc = Processor::core2();
        let report = run_sweep(&mut SimBackend, &proc, &test_cfg(), &Obs::off()).unwrap();
        assert!(report.skipped.is_empty(), "skipped: {:?}", report.skipped);
        let truth = &proc.config.cost;
        for m in &report.measurements {
            let fitted = report.model.get(m.spec.mnemonic);
            let expected = truth.get(m.spec.mnemonic);
            assert_eq!(
                fitted.latency, expected.latency,
                "latency mismatch for {}",
                m.spec.name
            );
            assert!(
                m.chain_consistent(),
                "chain cross-check for {}",
                m.spec.name
            );
        }
    }

    #[test]
    fn sweep_measures_machine_parameters() {
        let proc = Processor::core2();
        let report = run_sweep(&mut SimBackend, &proc, &test_cfg(), &Obs::off()).unwrap();
        let m = report.model.machine;
        assert_eq!(m.lsd_max_lines, 4);
        assert_eq!(m.predictor_shift, 5);
        assert_eq!(m.load_latency, proc.config.cost.machine.load_latency);
    }

    #[test]
    fn sweep_emits_spans_and_counters() {
        let obs = Obs::aggregating();
        let proc = Processor::core2();
        run_sweep(&mut SimBackend, &proc, &test_cfg(), &obs).unwrap();
        assert!(obs.metrics.counter_value("mao_probe_measurements_total") > 0);
        assert_eq!(obs.metrics.counter_value("mao_probe_unstable_total"), 0);
        let totals = obs.recorder.totals();
        assert!(
            totals.iter().any(|t| t.cat == "probe" && t.name == "sweep"),
            "{totals:?}"
        );
    }

    #[test]
    fn unstable_specs_are_skipped_and_counted_not_fatal() {
        let proc = Processor::core2();
        let mut noisy = NoisyBackend::new(SimBackend, 5, 75);
        let obs = Obs::aggregating();
        let cfg = SweepConfig {
            attempts: 4,
            tolerance_pct: 1,
            trip_count: 200,
            ..SweepConfig::default()
        };
        match run_sweep(&mut noisy, &proc, &cfg, &obs) {
            Ok(report) => assert!(!report.skipped.is_empty()),
            Err(SweepError::Empty) => {}
            Err(other) => panic!("unexpected sweep failure: {other}"),
        }
        assert!(obs.metrics.counter_value("mao_probe_unstable_total") > 0);
    }

    #[test]
    fn provenance_records_backend_target_and_seed() {
        let proc = Processor::opteron();
        let cfg = SweepConfig {
            seed: 99,
            name: Some("my-box".to_string()),
            ..test_cfg()
        };
        let report = run_sweep(&mut SimBackend, &proc, &cfg, &Obs::off()).unwrap();
        assert_eq!(report.model.name, "my-box");
        assert_eq!(report.model.provenance.source, "probe/sim");
        assert_eq!(report.model.provenance.target, "amd-opteron-like");
        assert_eq!(report.model.provenance.seed, 99);
    }
}
