//! Fit per-mnemonic costs from dependence-DAG measurements.
//!
//! Three shapes, three numbers (§IV's methodology, extended):
//!
//! * **CYCLE** — every instruction RAW-depends on the previous through one
//!   register, so exactly one is in flight per link and cycles-per-
//!   instruction *is* the latency.
//! * **DISJOINT** — every instruction is independent, so CPI is bounded
//!   below by port pressure: CPI = reciprocal throughput, and `1/CPI`
//!   estimates how many ports can execute the shape concurrently.
//! * **CHAIN** — a non-closing chain; structurally between the two. Used
//!   only as a cross-check for templates with two distinct register slots
//!   (a chain of one-register templates degenerates to a cycle).
//!
//! Measurement can count *how many* ports execute a shape, but cannot tell
//! *which* physical ports they are; fitted port masks are therefore
//! synthesized as the lowest `k` bits. Latencies and throughputs are exact;
//! mask identity is not, and consumers that need physical-port identity
//! (none of the passes do) must use a hand-set table.

use mao_x86::cost::MnemonicCost;

use crate::catalog::ProbeSpec;

/// Raw per-spec measurements, in cycles per instruction.
#[derive(Debug, Clone)]
pub struct SpecMeasurement {
    /// What was measured.
    pub spec: ProbeSpec,
    /// CYCLE-shape CPI (the latency estimate).
    pub cycle_cpi: f64,
    /// DISJOINT-shape CPI (the reciprocal-throughput estimate).
    pub disjoint_cpi: f64,
    /// CHAIN-shape CPI, when the template supports a structural chain.
    pub chain_cpi: Option<f64>,
}

impl SpecMeasurement {
    /// Does the CHAIN cross-check agree with the CYCLE latency?
    ///
    /// A chain of N dependent instructions still serializes on RAW edges,
    /// so its CPI must be within one cycle of the CYCLE figure; a larger
    /// gap means the generated dependence structure was wrong (the property
    /// the DAG generator tests pin down statically, re-checked here
    /// dynamically).
    pub fn chain_consistent(&self) -> bool {
        match self.chain_cpi {
            Some(chain) => (chain - self.cycle_cpi).abs() <= 1.0,
            None => true,
        }
    }
}

/// Fit a [`MnemonicCost`] from one spec's measurements.
pub fn fit(m: &SpecMeasurement, num_ports: u32) -> MnemonicCost {
    let latency = (m.cycle_cpi.round() as u32).max(1);
    let recip_tp_x100 = ((m.disjoint_cpi * 100.0).round() as u32).max(1);
    let ports_est = if m.disjoint_cpi > 0.0 {
        ((1.0 / m.disjoint_cpi).round() as u32).clamp(1, num_ports.max(1))
    } else {
        1
    };
    MnemonicCost {
        latency,
        recip_tp_x100,
        // Lowest-k synthesized mask: k ports worth of capacity, identity
        // unknowable from timing alone (module docs).
        port_mask: (1u64 << ports_est) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;

    fn measurement(cycle: f64, disjoint: f64, chain: Option<f64>) -> SpecMeasurement {
        SpecMeasurement {
            spec: catalog().into_iter().next().unwrap(),
            cycle_cpi: cycle,
            disjoint_cpi: disjoint,
            chain_cpi: chain,
        }
    }

    #[test]
    fn latency_rounds_to_nearest_cycle() {
        assert_eq!(fit(&measurement(1.04, 0.34, None), 6).latency, 1);
        assert_eq!(fit(&measurement(2.96, 1.0, None), 6).latency, 3);
        assert_eq!(fit(&measurement(0.2, 0.2, None), 6).latency, 1, "floor 1");
    }

    #[test]
    fn throughput_and_ports_come_from_disjoint() {
        let c = fit(&measurement(1.0, 0.34, None), 6);
        assert_eq!(c.recip_tp_x100, 34);
        assert_eq!(c.port_mask, 0b111, "1/0.34 ≈ 3 ports, lowest bits");
        let c = fit(&measurement(12.0, 1.0, None), 6);
        assert_eq!(c.port_mask, 0b1, "fully serialized: one port");
    }

    #[test]
    fn ports_clamped_to_machine() {
        let c = fit(&measurement(1.0, 0.1, None), 4);
        assert_eq!(c.port_mask, 0b1111, "10 ports measured, 4 exist");
    }

    #[test]
    fn chain_cross_check() {
        assert!(measurement(3.0, 1.0, Some(3.2)).chain_consistent());
        assert!(measurement(3.0, 1.0, None).chain_consistent());
        assert!(!measurement(3.0, 1.0, Some(1.0)).chain_consistent());
    }
}
