//! The sweep catalog: which instruction shapes the calibration sweep
//! measures, and how.
//!
//! Each [`ProbeSpec`] pairs an AT&T template with the dependence shapes
//! that make its measurement meaningful: CYCLE for latency (one dependent
//! instruction in flight per link), DISJOINT for reciprocal throughput and
//! port-pressure (everything independent, the backend is the limit), CHAIN
//! as a cross-check for two-register templates. Templates that cannot close
//! a dependence cycle through their destination (stores, compares,
//! cross-file converts) are excluded — their latency would silently measure
//! throughput instead, the classic microbenchmark trap the paper's CYCLE
//! shape exists to avoid. `idiv`/`div` are also excluded: their implicit
//! `%rax`/`%rdx` operands collide with the loop scaffolding's scratch
//! allocation.

use mao_x86::{parse_mnemonic, Mnemonic};

/// One instruction shape the sweep measures.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// AT&T spelling used in reports (`"addl"`).
    pub name: &'static str,
    /// Template handed to the sequence generator.
    pub template: &'static str,
    /// The mnemonic family the fitted cost is recorded under.
    pub mnemonic: Mnemonic,
    /// Template has at least two distinct register slots, so CHAIN
    /// sequences are structurally different from CYCLE sequences and can
    /// serve as a cross-check.
    pub two_reg: bool,
}

/// Build the default sweep catalog.
///
/// The list covers every latency class in the built-in tables — 1-cycle
/// ALU, 3-cycle multiply, 3/4-cycle FP add/mul, 12-cycle FP divide and
/// square root, shifts with their port asymmetry — so a sweep against a
/// simulated profile can reconstruct that profile's whole table.
pub fn catalog() -> Vec<ProbeSpec> {
    const SPECS: &[(&str, &str, bool)] = &[
        ("addl", "addl %r, %r", true),
        ("subl", "subl %r, %r", true),
        ("andl", "andl %r, %r", true),
        ("orl", "orl %r, %r", true),
        ("xorl", "xorl %r, %r", true),
        ("movl", "movl %r, %r", true),
        ("leaq", "leaq (%q), %q", true),
        ("shll", "shll $i, %r", false),
        ("shrl", "shrl $i, %r", false),
        ("sarl", "sarl $i, %r", false),
        ("imull", "imull %r, %r", true),
        ("negl", "negl %r", false),
        ("notl", "notl %r", false),
        ("incl", "incl %r", false),
        ("addss", "addss %x, %x", true),
        ("subss", "subss %x, %x", true),
        ("addsd", "addsd %x, %x", true),
        ("mulss", "mulss %x, %x", true),
        ("mulsd", "mulsd %x, %x", true),
        ("divss", "divss %x, %x", true),
        ("divsd", "divsd %x, %x", true),
        ("sqrtss", "sqrtss %x, %x", true),
        ("sqrtsd", "sqrtsd %x, %x", true),
    ];
    SPECS
        .iter()
        .map(|&(name, template, two_reg)| ProbeSpec {
            name,
            template,
            mnemonic: parse_mnemonic(name)
                .unwrap_or_else(|| panic!("catalog mnemonic `{name}` must parse"))
                .mnemonic,
            two_reg,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_unique() {
        let specs = catalog();
        assert!(specs.len() >= 20, "catalog has {} specs", specs.len());
        let mut keys: Vec<u16> = specs
            .iter()
            .map(|s| mao_x86::cost::table_key(s.mnemonic))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), specs.len(), "duplicate table keys in catalog");
    }

    #[test]
    fn catalog_covers_every_builtin_latency_class() {
        let model = mao_x86::cost::CostModel::core2();
        let latencies: std::collections::BTreeSet<u32> = catalog()
            .iter()
            .map(|s| model.get(s.mnemonic).latency)
            .collect();
        // 1 (ALU), 3 (imul / FP add), 4 (FP mul), 12 (FP div/sqrt).
        assert!(latencies.len() >= 4, "classes covered: {latencies:?}");
        assert!(latencies.contains(&1) && latencies.contains(&12));
    }

    #[test]
    fn excluded_division_is_documented_not_accidental() {
        assert!(!catalog()
            .iter()
            .any(|s| matches!(s.mnemonic, Mnemonic::Idiv | Mnemonic::Div)));
    }
}
