//! Micro-architectural parameter detection (paper §IV).
//!
//! *"MAO contains a framework to simplify the creation and execution of
//! microbenchmarks"* built from five abstractions — Processor, Instruction,
//! InstructionSequence, Loop, Benchmark — that generate assembly programs,
//! run them in isolation, collect PMU counters, and infer hardware
//! parameters. The paper implements them as Python classes driving real
//! hardware; here they are Rust types driving the `mao-sim` model, so the
//! whole detection loop (Fig. 6's `InstructionLatency`, plus LSD-window and
//! predictor-shift probes) runs hermetically.

pub mod benchmark;
pub mod detect;
pub mod processor;
pub mod sequence;

pub use benchmark::{Benchmark, StraightLineLoop};
pub use detect::{detect_lsd_window, detect_predictor_shift, instruction_latency};
pub use processor::{InstructionTemplate, Processor};
pub use sequence::{DagType, InstructionSequence};
