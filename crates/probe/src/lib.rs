//! Micro-architectural parameter detection (paper §IV).
//!
//! *"MAO contains a framework to simplify the creation and execution of
//! microbenchmarks"* built from five abstractions — Processor, Instruction,
//! InstructionSequence, Loop, Benchmark — that generate assembly programs,
//! run them in isolation, collect PMU counters, and infer hardware
//! parameters. The paper implements them as Python classes driving real
//! hardware; here they are Rust types driving pluggable measurement
//! backends (the deterministic `mao-sim` model, or a wall-clock path on
//! capable hosts), so the whole detection loop (Fig. 6's
//! `InstructionLatency`, plus LSD-window and predictor-shift probes) runs
//! hermetically.
//!
//! On top of the detection primitives sits the calibration sweep
//! ([`run_sweep`]): the full catalog of instruction shapes measured across
//! CHAIN/CYCLE/DISJOINT dependence DAGs, solved into a versioned `.mpt`
//! cost table ([`mao_x86::cost::CostModel`]) that the simulator, the
//! scheduler and the alignment passes consume through the process-global
//! cost provider.

pub mod backend;
pub mod benchmark;
pub mod catalog;
pub mod detect;
pub mod processor;
pub mod sequence;
pub mod solver;
pub mod sweep;

pub use backend::{measure_stable, MeasureBackend, NoisyBackend, SimBackend, WallClockBackend};
pub use benchmark::{Benchmark, BenchmarkError, StraightLineLoop};
pub use catalog::{catalog, ProbeSpec};
pub use detect::{
    detect_lsd_window, detect_lsd_window_with, detect_predictor_shift, detect_predictor_shift_with,
    instruction_latency, instruction_latency_with,
};
pub use processor::{InstructionTemplate, Processor};
pub use sequence::{DagType, InstructionSequence};
pub use solver::{fit, SpecMeasurement};
pub use sweep::{run_sweep, SweepConfig, SweepError, SweepReport};
