//! Micro-architecture configuration.
//!
//! Every performance cliff the paper investigates is a documented mechanism
//! of a hardware structure; [`UarchConfig`] parameterizes those structures
//! so experiments can run against an Intel-Core-2-like and an
//! AMD-Opteron-like profile (the two platforms of §V).

/// Branch predictor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Right-shift applied to the branch PC before indexing — the paper:
    /// *"branch predictor structures are indexed by PC >> 5"*, so branches
    /// inside one 32-byte bucket alias.
    pub index_shift: u32,
    /// log2 of the number of predictor entries.
    pub table_bits: u32,
    /// Bits of global history XOR-ed into the index (gshare); 0 disables.
    pub history_bits: u32,
    /// Cycles lost on a mispredicted branch.
    pub mispredict_penalty: u64,
}

/// Loop Stream Detector configuration (§III.C.f).
#[derive(Debug, Clone, PartialEq)]
pub struct LsdConfig {
    /// Present at all? (No public LSD on the Opteron profile.)
    pub enabled: bool,
    /// Maximum 16-byte decode lines a streamed loop may span.
    pub max_lines: u64,
    /// Iterations before the LSD locks on.
    pub min_iterations: u64,
}

/// First-level data cache configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Line size in bytes.
    pub line_size: u64,
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency on a hit, in cycles.
    pub hit_latency: u64,
    /// Miss latency (to memory), in cycles.
    pub miss_latency: u64,
}

/// Out-of-order backend configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendConfig {
    /// Instructions decoded/renamed per cycle.
    pub decode_width: usize,
    /// Reservation-station entries.
    pub rs_size: usize,
    /// Results forwarded to consumers per cycle — the §III.F hypothesis:
    /// *"some bandwidth limitation while forwarding the values from an
    /// executed instruction to its dependent instructions"*.
    pub forward_bandwidth: usize,
    /// Number of execution ports.
    pub num_ports: usize,
    /// Decode-queue depth: how far (in instructions) the front end may run
    /// ahead of issue. Bounds fetch/execute decoupling.
    pub fetch_queue: usize,
    /// All ports identical (AMD-K8-style lanes) instead of the Intel
    /// asymmetric port bindings.
    pub symmetric_ports: bool,
}

/// A complete micro-architecture model.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Human-readable name (shown in experiment tables).
    pub name: &'static str,
    /// The instruction cost table the timing pipeline charges from
    /// (latencies and port bindings). Built-in profiles carry the matching
    /// built-in table; calibrated profiles carry a measured one.
    pub cost: mao_x86::cost::CostModel,
    /// Instruction fetch/decode chunk in bytes (16 on Core-2).
    pub decode_line: u64,
    /// Decode lines fetched per cycle.
    pub lines_per_cycle: u64,
    /// Fetch-redirect bubble (cycles) on a taken branch that is not being
    /// streamed from the loop buffer — the cost the LSD exists to remove.
    pub taken_branch_bubble: u64,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Loop stream detector.
    pub lsd: LsdConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Backend.
    pub backend: BackendConfig,
}

impl UarchConfig {
    /// An Intel Core-2-like profile: 16-byte decode lines, LSD with a
    /// 4-line window, PC>>5 predictor indexing, asymmetric ports.
    pub fn core2() -> UarchConfig {
        UarchConfig {
            name: "intel-core2-like",
            cost: mao_x86::cost::CostModel::core2(),
            decode_line: 16,
            lines_per_cycle: 1,
            taken_branch_bubble: 1,
            predictor: PredictorConfig {
                index_shift: 5,
                table_bits: 9,
                history_bits: 0,
                mispredict_penalty: 15,
            },
            lsd: LsdConfig {
                enabled: true,
                max_lines: 4,
                min_iterations: 64,
            },
            l1d: CacheConfig {
                line_size: 64,
                sets: 64,
                ways: 8,
                hit_latency: 3,
                miss_latency: 60,
            },
            backend: BackendConfig {
                decode_width: 4,
                rs_size: 32,
                forward_bandwidth: 2,
                num_ports: 6,
                fetch_queue: 24,
                symmetric_ports: false,
            },
        }
    }

    /// An AMD Opteron-like profile: 32-byte fetch window, no (public) LSD,
    /// different predictor indexing, symmetric 3-wide backend. §V.B found
    /// LOOP16 helps a *different* benchmark set here, and an LSD-like
    /// second-order effect the paper could not attribute — modeled as a
    /// narrower fetch benefit for small loops.
    pub fn opteron() -> UarchConfig {
        UarchConfig {
            name: "amd-opteron-like",
            cost: mao_x86::cost::CostModel::opteron(),
            decode_line: 32,
            lines_per_cycle: 1,
            taken_branch_bubble: 1,
            predictor: PredictorConfig {
                index_shift: 4,
                table_bits: 10,
                history_bits: 0,
                mispredict_penalty: 12,
            },
            lsd: LsdConfig {
                // The paper: "we are not aware of a published LSD-like
                // structure on AMD platforms, therefore this result points
                // to yet another unknown micro-architectural effect."
                // We model that unknown effect as a one-window loop buffer:
                // loops fully inside a single 32-byte fetch window replay
                // without fetch cost.
                enabled: true,
                max_lines: 1,
                min_iterations: 32,
            },
            l1d: CacheConfig {
                line_size: 64,
                sets: 512,
                ways: 2,
                hit_latency: 3,
                miss_latency: 70,
            },
            backend: BackendConfig {
                // Modeled wider than the K8's 3 macro-ops so that fetch-
                // window counts, not decode slots, are the front-end
                // constraint — the property the §V.B AMD results hinge on.
                decode_width: 4,
                rs_size: 24,
                forward_bandwidth: 3,
                num_ports: 4,
                fetch_queue: 18,
                symmetric_ports: true,
            },
        }
    }

    /// Number of predictor entries.
    pub fn predictor_entries(&self) -> usize {
        1 << self.predictor.table_bits
    }

    /// A profile built from a measured cost model (`mao probe
    /// --calibrate-profile`): the parameters the sweep recovers — decode
    /// geometry, LSD window, predictor shift, mispredict penalty,
    /// load-to-use latency, port shape and the per-mnemonic table — come
    /// from the model; structure sizes measurement cannot see (cache
    /// organization, RS depth, fetch-queue depth) are inherited from the
    /// Core-2-like baseline.
    pub fn from_cost_model(model: &mao_x86::cost::CostModel) -> UarchConfig {
        let mut c = UarchConfig::core2();
        // Calibrated profiles are built a handful of times per process;
        // leaking the name keeps `name` a plain `&'static str` everywhere.
        c.name = Box::leak(model.name.clone().into_boxed_str());
        c.decode_line = u64::from(model.machine.decode_line.max(1));
        c.predictor.index_shift = model.machine.predictor_shift;
        c.predictor.mispredict_penalty = u64::from(model.machine.mispredict_penalty);
        c.lsd.enabled = model.machine.lsd_max_lines > 0;
        c.lsd.max_lines = u64::from(model.machine.lsd_max_lines.max(1));
        c.l1d.hit_latency = u64::from(model.machine.load_latency);
        c.backend.num_ports = model.machine.num_ports.max(1) as usize;
        c.backend.symmetric_ports = model.machine.symmetric_ports;
        c.cost = model.clone();
        c
    }
}

impl Default for UarchConfig {
    fn default() -> UarchConfig {
        UarchConfig::core2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let intel = UarchConfig::core2();
        let amd = UarchConfig::opteron();
        assert_ne!(intel, amd);
        assert_eq!(intel.decode_line, 16);
        assert_eq!(amd.decode_line, 32);
        assert!(intel.lsd.enabled);
        assert_eq!(intel.lsd.max_lines, 4);
    }

    #[test]
    fn predictor_shift_matches_paper() {
        assert_eq!(UarchConfig::core2().predictor.index_shift, 5);
    }

    #[test]
    fn default_is_core2() {
        assert_eq!(UarchConfig::default().name, "intel-core2-like");
    }

    #[test]
    fn predictor_entries() {
        assert_eq!(UarchConfig::core2().predictor_entries(), 512);
    }

    #[test]
    fn profiles_carry_matching_cost_tables() {
        assert_eq!(UarchConfig::core2().cost.name, "intel-core2-like");
        assert_eq!(UarchConfig::opteron().cost.name, "amd-opteron-like");
        assert_eq!(UarchConfig::opteron().cost.machine.num_ports, 4);
    }

    #[test]
    fn calibrated_profile_takes_measured_parameters() {
        let mut model = mao_x86::cost::CostModel::opteron();
        model.name = "measured-box".to_string();
        let c = UarchConfig::from_cost_model(&model);
        assert_eq!(c.name, "measured-box");
        assert_eq!(c.decode_line, 32);
        assert_eq!(c.predictor.index_shift, 4);
        assert_eq!(c.lsd.max_lines, 1);
        assert_eq!(c.backend.num_ports, 4);
        assert!(c.backend.symmetric_ports);
        assert_eq!(c.cost, model);
        // Structure sizes measurement cannot see come from the baseline.
        assert_eq!(c.backend.rs_size, UarchConfig::core2().backend.rs_size);
    }
}
