//! The cycle-approximate timing model.
//!
//! The model is a dataflow timing approximation: the interpreter supplies
//! the dynamic instruction stream and this module assigns each instruction
//! a fetch time (front end: 16-byte decode lines, decode width, branch
//! redirects, the Loop Stream Detector), an issue time (operand readiness,
//! reservation-station capacity, execution ports) and a completion time
//! (latency, cache, forwarding bandwidth). Total cycles = the maximum
//! completion time.
//!
//! Each structure reproduces a specific effect from the paper:
//!
//! * decode lines → §III.C.e short-loop alignment;
//! * LSD window → §III.C.f / Figs. 4–5;
//! * `PC >> 5` predictor indexing → §III.C.g and Fig. 1;
//! * forwarding bandwidth + RS occupancy → §III.F
//!   (`RESOURCE_STALLS:RS_FULL`);
//! * non-temporal fills → §III.E.k inverse prefetching.

use std::collections::BTreeMap;

use mao_x86::{def_use, Instruction};

use crate::config::UarchConfig;
use crate::machine::ExecInfo;
use crate::memory::{Access, Cache};
use crate::pmu::Pmu;

/// Two-bit saturating counter branch predictor with configurable index
/// shift (the aliasing mechanism) and optional global history.
struct Predictor {
    table: Vec<u8>,
    shift: u32,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Predictor {
    fn new(config: &UarchConfig) -> Predictor {
        Predictor {
            table: vec![1; config.predictor_entries()], // weakly not-taken
            shift: config.predictor.index_shift,
            mask: (config.predictor_entries() - 1) as u64,
            history: 0,
            history_bits: config.predictor.history_bits,
        }
    }

    fn index(&self, va: u64) -> usize {
        let hist_mask = (1u64 << self.history_bits).wrapping_sub(1);
        (((va >> self.shift) ^ (self.history & hist_mask)) & self.mask) as usize
    }

    /// Predict and update; returns `true` if the prediction was correct.
    fn observe(&mut self, va: u64, taken: bool) -> bool {
        let idx = self.index(va);
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        if self.history_bits > 0 {
            self.history = (self.history << 1) | u64::from(taken);
        }
        predicted_taken == taken
    }
}

/// Loop Stream Detector state machine.
struct Lsd {
    enabled: bool,
    max_lines: u64,
    min_iterations: u64,
    line: u64,
    /// Current candidate back edge (branch VA, target VA).
    key: Option<(u64, u64)>,
    iterations: u64,
    streaming: bool,
}

impl Lsd {
    fn new(config: &UarchConfig) -> Lsd {
        Lsd {
            enabled: config.lsd.enabled,
            max_lines: config.lsd.max_lines,
            min_iterations: config.lsd.min_iterations,
            line: config.decode_line,
            key: None,
            iterations: 0,
            streaming: false,
        }
    }

    /// Observe a conditional branch; returns whether the *next* iteration
    /// streams from the LSD.
    ///
    /// Forward branches *within* the captured loop body are permitted (the
    /// Figure 4 loop has one); only leaving the body — the back edge
    /// falling through, or a branch jumping outside — ends the capture.
    fn observe_branch(&mut self, va: u64, end_va: u64, target: Option<u64>, taken: bool) -> bool {
        if !self.enabled {
            return false;
        }
        let backward = taken && target.is_some_and(|t| t < va);
        if backward {
            let t = target.expect("backward implies target");
            let key = (va, t);
            if self.key == Some(key) {
                self.iterations += 1;
            } else if let Some((bva, tva)) = self.key {
                if va < tva || va > bva {
                    // A different loop altogether: restart capture.
                    self.key = Some(key);
                    self.iterations = 1;
                    self.streaming = false;
                } else {
                    // A nested backward branch inside the body: the body is
                    // not a simple loop; give up on it.
                    self.key = None;
                    self.iterations = 0;
                    self.streaming = false;
                    return false;
                }
            } else {
                self.key = Some(key);
                self.iterations = 1;
            }
            let body_lines = if end_va > t {
                (end_va - 1) / self.line - t / self.line + 1
            } else {
                u64::MAX
            };
            if body_lines > self.max_lines {
                self.streaming = false;
            } else if self.iterations >= self.min_iterations {
                self.streaming = true;
            }
        } else {
            // A forward branch inside the captured body keeps the capture;
            // leaving the body (back edge fall-through, or a taken branch
            // whose target is outside) ends it.
            let Some((bva, tva)) = self.key else {
                return false;
            };
            let in_body = va >= tva && va <= bva;
            let leaves = taken && !target.is_some_and(|t| t >= tva && t <= bva);
            if !in_body || leaves || (!taken && va == bva) {
                self.key = None;
                self.iterations = 0;
                self.streaming = false;
            }
        }
        self.streaming
    }
}

/// Pipeline times assigned to one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireTimes {
    /// Cycle the front end delivered the instruction.
    pub fetch: u64,
    /// Cycle it issued to a port.
    pub issue: u64,
    /// Cycle its result completed.
    pub done: u64,
    /// Was it streamed from the LSD?
    pub streaming: bool,
}

/// The timing pipeline. Feed [`ExecInfo`] events in dynamic order; read the
/// accumulated [`Pmu`] at the end.
pub struct Timing<'a> {
    config: &'a UarchConfig,
    pmu: Pmu,
    predictor: Predictor,
    lsd: Lsd,
    cache: Cache,
    /// Lines marked non-temporal by an executed prefetchnta.
    nt_lines: std::collections::HashSet<u64>,
    // Front end.
    current_line: Option<u64>,
    next_line_cycle: u64,
    delivered_at: u64,
    delivered_count: usize,
    // Backend.
    reg_ready: [u64; 33],
    /// Registers whose current value was delayed by a forwarding conflict
    /// (directly or transitively) — the RS_FULL propagation taint.
    reg_late: [bool; 33],
    flags_ready: u64,
    last_store_done: u64,
    port_free: Vec<u64>,
    /// Completion times of the last `rs_size` instructions (ring buffer).
    rs_ring: Vec<u64>,
    rs_pos: usize,
    /// Issue times of the last `fetch_queue` instructions: the front end
    /// cannot fetch instruction i before instruction i - fetch_queue issued
    /// (the decode queue has bounded depth).
    fq_ring: Vec<u64>,
    fq_pos: usize,
    /// Forwarding-bandwidth accounting: consumers served per (producer
    /// completion cycle, register). The §III.F hypothesis is a limit on how
    /// many *dependents* can receive a just-produced value in one cycle.
    forwards: BTreeMap<(u64, usize), usize>,
    /// Highest completion time seen.
    horizon: u64,
}

impl<'a> Timing<'a> {
    /// Fresh pipeline for one run.
    pub fn new(config: &'a UarchConfig) -> Timing<'a> {
        Timing {
            config,
            pmu: Pmu::default(),
            predictor: Predictor::new(config),
            lsd: Lsd::new(config),
            cache: Cache::new(config.l1d.clone()),
            nt_lines: std::collections::HashSet::new(),
            current_line: None,
            next_line_cycle: 0,
            delivered_at: 0,
            delivered_count: 0,
            reg_ready: [0; 33],
            reg_late: [false; 33],
            flags_ready: 0,
            last_store_done: 0,
            port_free: vec![0; config.backend.num_ports],
            rs_ring: vec![0; config.backend.rs_size],
            rs_pos: 0,
            fq_ring: vec![0; config.backend.fetch_queue.max(1)],
            fq_pos: 0,
            forwards: BTreeMap::new(),
            horizon: 0,
        }
    }

    /// Front-end delivery time of an instruction at `va` of length `len`.
    fn fetch_time(&mut self, va: u64, len: u32, streaming: bool) -> u64 {
        // Decode-queue back-pressure: cannot run ahead of issue.
        let floor = self.fq_ring[self.fq_pos];
        if floor > self.delivered_at {
            self.delivered_at = floor;
            self.delivered_count = 0;
            self.next_line_cycle = self.next_line_cycle.max(floor);
        }
        let mut t = self.delivered_at;
        if streaming {
            self.pmu.lsd_instructions += 1;
        } else {
            let line_size = self.config.decode_line;
            let first = va / line_size;
            let last = (va + u64::from(len).max(1) - 1) / line_size;
            let start = match self.current_line {
                Some(cur) if cur >= first => cur + 1,
                _ => first,
            };
            for _ in start..=last.max(start).min(last) {
                // Each new line costs one front-end slot.
                self.pmu.decode_lines_fetched += 1;
                self.next_line_cycle += 1;
            }
            if last >= start {
                t = t.max(self.next_line_cycle.saturating_sub(1));
            }
            self.current_line = Some(last.max(self.current_line.unwrap_or(first)));
            t = t.max(self.next_line_cycle.saturating_sub(1));
        }
        // Decode width: at most N instructions per cycle.
        if t > self.delivered_at {
            self.delivered_at = t;
            self.delivered_count = 1;
        } else {
            self.delivered_count += 1;
            if self.delivered_count > self.config.backend.decode_width {
                self.delivered_at += 1;
                self.delivered_count = 1;
            }
        }
        self.delivered_at
    }

    /// Redirect the front end (taken branch or mispredict recovery).
    fn redirect(&mut self, cycle: u64) {
        self.current_line = None;
        self.next_line_cycle = self.next_line_cycle.max(cycle);
        if self.delivered_at < cycle {
            self.delivered_at = cycle;
            self.delivered_count = 0;
        }
    }

    /// A consumer wants register `reg` whose producer completes at `avail`.
    /// At most `forward_bandwidth` consumers can be served off the bypass
    /// network in the cycle a value is produced; extra consumers wait in the
    /// reservation stations (counted as RS_FULL pressure, matching the
    /// §III.F correlation).
    fn forward_ready(&mut self, reg: usize, avail: u64) -> u64 {
        let bw = self.config.backend.forward_bandwidth.max(1);
        let used = self.forwards.entry((avail, reg)).or_insert(0);
        if *used < bw {
            *used += 1;
            if self.forwards.len() > 8192 {
                let cutoff = avail.saturating_sub(4096);
                self.forwards = self.forwards.split_off(&(cutoff, 0));
            }
            return avail;
        }
        // One extra cycle: the value is read from the register file instead
        // of the bypass network, backing the consumer up in the RS. The
        // caller decides whether this actually delayed issue (and counts it).
        avail + 1
    }

    /// Process one executed instruction. Returns the assigned pipeline
    /// times (useful for tests and for debugging timing anomalies).
    pub fn retire(&mut self, insn: &Instruction, info: &ExecInfo) -> RetireTimes {
        self.pmu.instructions += 1;
        let streaming = self.lsd.streaming;
        if streaming && info.entry == 0 {
            // (entry 0 cannot be inside a loop body in practice; no-op.)
        }
        let fetch = self.fetch_time(info.va, info.len, streaming);

        // Operand readiness, through the bandwidth-limited bypass network.
        let du = def_use(insn);
        let mut ready = fetch;
        let mut late_binding = false;
        for u in &du.reg_uses {
            let avail = self.reg_ready[u.id.index()];
            let mut late = self.reg_late[u.id.index()];
            let got = if avail > fetch {
                // The value is still in flight: this consumer competes for a
                // forwarding slot in the producer's completion cycle.
                let t = self.forward_ready(u.id.index(), avail);
                if t > avail {
                    late = true;
                }
                t
            } else {
                avail
            };
            if got > ready {
                ready = got;
                late_binding = late;
            } else if got == ready {
                late_binding = late_binding || (late && got > fetch);
            }
        }
        if !du.flags_use.is_empty() {
            if self.flags_ready > ready {
                ready = self.flags_ready;
                late_binding = false;
            }
        }
        if du.mem_read && self.last_store_done > ready {
            ready = self.last_store_done;
            late_binding = false;
        }
        // RESOURCE_STALLS:RS_FULL semantics (§III.F): count when a value
        // that lost the forwarding race — directly or transitively — is what
        // holds this consumer in the reservation stations. The taint
        // propagates down the dependence chain, so a delayed critical path
        // shows proportionally more stalls than a delayed side chain.
        if late_binding && ready > fetch {
            self.pmu.rs_full_stalls += 1;
        }

        // Reservation-station admission.
        let admit = self.rs_ring[self.rs_pos];
        // The instruction leaves the decode queue once an RS entry is free —
        // waiting for *operands* happens inside the RS and must not hold a
        // decode-queue slot.
        let entered_rs = fetch.max(admit);
        if admit > ready {
            self.pmu.rs_admit_stalls += admit - ready;
            ready = admit;
        }

        // Port selection, from the profile's cost table (§III.F anecdote:
        // lea on port 0 only, shifts on ports 0 and 5; symmetric machines
        // and machines with three or fewer ports issue anywhere).
        let mask = self.config.cost.ports_for(
            insn,
            self.config.backend.num_ports,
            self.config.backend.symmetric_ports,
        );
        let mut best_port = 0usize;
        let mut best_time = u64::MAX;
        for p in 0..self.config.backend.num_ports {
            if mask & (1 << p) != 0 {
                let t = self.port_free[p].max(ready);
                if t < best_time {
                    best_time = t;
                    best_port = p;
                }
            }
        }
        let issue = best_time;
        self.port_free[best_port] = issue + 1;

        // Memory access latency.
        let mut extra = 0u64;
        if let Some(nt) = info.prefetch_nta {
            let line = nt / self.config.l1d.line_size;
            self.nt_lines.insert(line);
            // The prefetch performs a non-temporal fill itself.
            let _ = self.cache.access(nt, true);
        }
        if let Some((addr, _)) = info.load {
            self.pmu.loads += 1;
            let line = addr / self.config.l1d.line_size;
            let nt = self.nt_lines.remove(&line);
            match self.cache.access(addr, nt) {
                Access::Hit => {
                    self.pmu.l1d_hits += 1;
                    extra += self.config.l1d.hit_latency;
                }
                Access::Miss => {
                    self.pmu.l1d_misses += 1;
                    extra += self.config.l1d.miss_latency;
                }
            }
        }
        if let Some((addr, _)) = info.store {
            self.pmu.stores += 1;
            let line = addr / self.config.l1d.line_size;
            let nt = self.nt_lines.remove(&line);
            let _ = self.cache.access(addr, nt);
        }

        let done = issue + self.config.cost.latency(insn) + extra;

        // Writeback.
        for d in &du.reg_defs {
            self.reg_ready[d.id.index()] = done;
            self.reg_late[d.id.index()] = late_binding;
        }
        if !du.flags_killed().is_empty() {
            self.flags_ready = done;
        }
        if du.mem_write {
            self.last_store_done = done;
        }
        // RS entry frees at completion.
        self.rs_ring[self.rs_pos] = done;
        self.rs_pos = (self.rs_pos + 1) % self.rs_ring.len();
        // Decode-queue slot frees when the instruction enters the RS.
        self.fq_ring[self.fq_pos] = entered_rs;
        self.fq_pos = (self.fq_pos + 1) % self.fq_ring.len();
        self.horizon = self.horizon.max(done);

        let times = RetireTimes {
            fetch,
            issue,
            done,
            streaming,
        };

        // Branches: predictor + front-end redirect + LSD.
        if info.cond_branch {
            self.pmu.branches += 1;
            let correct = self.predictor.observe(info.va, info.taken);
            let was_streaming = self.lsd.streaming;
            let now_streaming = self.lsd.observe_branch(
                info.va,
                info.va + u64::from(info.len),
                info.target_va.or_else(|| {
                    // Not-taken branches still have a static target; for LSD
                    // purposes only taken-backward matters, so None is fine.
                    None
                }),
                info.taken,
            );
            if now_streaming && !was_streaming {
                // LSD lock-on.
            }
            if now_streaming {
                self.pmu.lsd_iterations += 1;
            }
            if !correct {
                self.pmu.branch_mispredictions += 1;
                let resume = done + self.config.predictor.mispredict_penalty;
                self.redirect(resume);
            } else if info.taken && !now_streaming {
                // Taken branches refetch from the target line, paying the
                // redirect bubble the LSD exists to remove.
                self.redirect(self.delivered_at + self.config.taken_branch_bubble);
            }
        } else if info.taken {
            self.pmu.branches += 1;
            if !self.lsd.streaming {
                self.redirect(self.delivered_at + self.config.taken_branch_bubble);
            }
        }
        times
    }

    /// Final counters (consumes accumulated state).
    pub fn finish(mut self) -> Pmu {
        self.pmu.cycles = self.horizon.max(self.delivered_at) + 1;
        self.pmu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UarchConfig;

    #[test]
    fn predictor_learns_loop() {
        let config = UarchConfig::core2();
        let mut p = Predictor::new(&config);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.observe(0x1000, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "steady taken branch learned: {wrong} wrong");
    }

    #[test]
    fn predictor_aliasing_in_same_bucket() {
        let config = UarchConfig::core2();
        // Two branches 8 bytes apart: same PC>>5 bucket -> they fight.
        let mut p = Predictor::new(&config);
        let mut wrong_aliased = 0;
        for _ in 0..200 {
            if !p.observe(0x1000, true) {
                wrong_aliased += 1;
            }
            if !p.observe(0x1008, false) {
                wrong_aliased += 1;
            }
        }
        // Same two branches 32 bytes apart: distinct buckets.
        let mut p = Predictor::new(&config);
        let mut wrong_separate = 0;
        for _ in 0..200 {
            if !p.observe(0x1000, true) {
                wrong_separate += 1;
            }
            if !p.observe(0x1020, false) {
                wrong_separate += 1;
            }
        }
        assert!(
            wrong_aliased > wrong_separate * 5,
            "aliased {wrong_aliased} vs separate {wrong_separate}"
        );
    }

    #[test]
    fn lsd_locks_after_min_iterations() {
        let config = UarchConfig::core2();
        let mut lsd = Lsd::new(&config);
        // 30-byte body: 2-3 lines, qualifies.
        for i in 0..100 {
            let streaming = lsd.observe_branch(0x1030, 0x1032, Some(0x1010), true);
            if i + 1 >= config.lsd.min_iterations {
                assert!(streaming, "iteration {i}");
            } else {
                assert!(!streaming, "iteration {i}");
            }
        }
        // Loop exit (not taken) drops streaming.
        assert!(!lsd.observe_branch(0x1030, 0x1032, None, false));
    }

    #[test]
    fn lsd_rejects_wide_loops() {
        let config = UarchConfig::core2();
        let mut lsd = Lsd::new(&config);
        // 90-byte body: 6+ lines, never qualifies.
        for _ in 0..200 {
            assert!(!lsd.observe_branch(0x1060, 0x1062, Some(0x1008), true));
        }
    }

    #[test]
    fn port_masks_come_from_the_cost_table() {
        let cost = UarchConfig::core2().cost;
        let lea = mao::MaoUnit::parse("leal (%rax), %ebx\n").unwrap();
        assert_eq!(cost.ports_for(lea.insn(0).unwrap(), 6, false), 0b00_0001);
        let sar = mao::MaoUnit::parse("sarl %eax\n").unwrap();
        assert_eq!(cost.ports_for(sar.insn(0).unwrap(), 6, false), 0b10_0001);
        // Clipping to fewer ports keeps a nonempty mask.
        assert_ne!(cost.ports_for(sar.insn(0).unwrap(), 3, false), 0);
    }

    #[test]
    fn latency_ranks() {
        let cost = UarchConfig::core2().cost;
        let mul = mao::MaoUnit::parse("imull %ecx, %eax\n").unwrap();
        let add = mao::MaoUnit::parse("addl %ecx, %eax\n").unwrap();
        assert!(cost.latency(mul.insn(0).unwrap()) > cost.latency(add.insn(0).unwrap()));
    }
}
