//! PMU-style performance counters.
//!
//! The counters mirror the hardware events the paper reads through
//! oprofile: cycles, instructions, branch mispredictions, the
//! `RESOURCE_STALLS:RS_FULL` event central to §III.F, front-end line
//! fetches, LSD activity, and cache hits/misses.

use std::fmt;

/// Counter values collected during one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pmu {
    /// Total cycles (`CPU_CYCLES`).
    pub cycles: u64,
    /// Instructions retired (`INST_RETIRED`).
    pub instructions: u64,
    /// Conditional/unconditional branches executed.
    pub branches: u64,
    /// Branch mispredictions (`BR_MISP_RETIRED`).
    pub branch_mispredictions: u64,
    /// 16-byte decode lines fetched by the front end.
    pub decode_lines_fetched: u64,
    /// Iterations delivered from the Loop Stream Detector.
    pub lsd_iterations: u64,
    /// Instructions delivered from the LSD (bypassing fetch/decode).
    pub lsd_instructions: u64,
    /// Consumers that waited in the reservation stations because the
    /// producer's forwarding bandwidth was exhausted — the event the paper
    /// correlates with bad schedules (`RESOURCE_STALLS:RS_FULL`, §III.F).
    pub rs_full_stalls: u64,
    /// Cycles lost waiting for a reservation-station entry to free.
    pub rs_admit_stalls: u64,
    /// L1D load hits.
    pub l1d_hits: u64,
    /// L1D load misses.
    pub l1d_misses: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads executed.
    pub loads: u64,
}

impl Pmu {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.branches as f64
        }
    }

    /// L1D miss rate over loads.
    pub fn l1d_miss_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }

    /// Look a counter up by its event name (for the probe framework).
    pub fn event(&self, name: &str) -> Option<u64> {
        Some(match name {
            "CPU_CYCLES" => self.cycles,
            "INST_RETIRED" => self.instructions,
            "BRANCHES" => self.branches,
            "BR_MISP_RETIRED" => self.branch_mispredictions,
            "DECODE_LINES" => self.decode_lines_fetched,
            "LSD_ITERATIONS" => self.lsd_iterations,
            "LSD_INSTS" => self.lsd_instructions,
            "RESOURCE_STALLS:RS_FULL" => self.rs_full_stalls,
            "RS_ADMIT_STALLS" => self.rs_admit_stalls,
            "L1D_HITS" => self.l1d_hits,
            "L1D_MISSES" => self.l1d_misses,
            "LOADS" => self.loads,
            "STORES" => self.stores,
            _ => return None,
        })
    }
}

impl fmt::Display for Pmu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:            {:>12}", self.cycles)?;
        writeln!(
            f,
            "instructions:      {:>12}  (ipc {:.2})",
            self.instructions,
            self.ipc()
        )?;
        writeln!(
            f,
            "branches:          {:>12}  (mispredict {:>6.2}%)",
            self.branches,
            self.mispredict_rate() * 100.0
        )?;
        writeln!(f, "decode lines:      {:>12}", self.decode_lines_fetched)?;
        writeln!(
            f,
            "lsd iterations:    {:>12}  ({} insts)",
            self.lsd_iterations, self.lsd_instructions
        )?;
        writeln!(f, "rs-full stalls:    {:>12}", self.rs_full_stalls)?;
        write!(
            f,
            "l1d hits/misses:   {:>12} / {}",
            self.l1d_hits, self.l1d_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let pmu = Pmu {
            cycles: 100,
            instructions: 250,
            branches: 50,
            branch_mispredictions: 5,
            l1d_hits: 90,
            l1d_misses: 10,
            ..Pmu::default()
        };
        assert!((pmu.ipc() - 2.5).abs() < 1e-9);
        assert!((pmu.mispredict_rate() - 0.1).abs() < 1e-9);
        assert!((pmu.l1d_miss_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_safe() {
        let pmu = Pmu::default();
        assert_eq!(pmu.ipc(), 0.0);
        assert_eq!(pmu.mispredict_rate(), 0.0);
        assert_eq!(pmu.l1d_miss_rate(), 0.0);
    }

    #[test]
    fn event_lookup() {
        let pmu = Pmu {
            cycles: 7,
            rs_full_stalls: 3,
            ..Pmu::default()
        };
        assert_eq!(pmu.event("CPU_CYCLES"), Some(7));
        assert_eq!(pmu.event("RESOURCE_STALLS:RS_FULL"), Some(3));
        assert_eq!(pmu.event("NO_SUCH_EVENT"), None);
    }

    #[test]
    fn display_contains_counters() {
        let pmu = Pmu {
            cycles: 42,
            ..Pmu::default()
        };
        assert!(pmu.to_string().contains("42"));
    }
}
