//! The equivalence oracle: run a unit in the `mao-sim` interpreter and
//! capture everything a semantics-preserving assembly rewrite must keep.
//!
//! Observable state at function return, per the SysV ABI:
//!
//! * the return value (`%rax`) and the dynamic result of the run;
//! * the callee-saved registers (`%rbx`, `%rsp`, `%rbp`, `%r12`–`%r15`) —
//!   caller-saved scratch is legitimately clobberable, so a pass deleting a
//!   dead write to `%r10` is not a miscompile;
//! * memory: the final bytes at every address either run stored to
//!   (initial memory is excluded on purpose — jump-table words contain
//!   code addresses that layout passes legitimately move);
//! * flag *discipline* rather than final flag bits: condition codes are
//!   dead across `ret`, but no retained conditional may read a flag left
//!   architecturally undefined per the `x86/effects.rs` tables.
//!
//! This lives in `mao-sim` (historically `mao-check`) so that both the
//! differential checker and the superoptimizer's verifier share one
//! definition of "observationally equivalent"; `mao_check::oracle`
//! re-exports it unchanged.

use std::collections::BTreeSet;

use mao::MaoUnit;
use mao_x86::{def_use, Flags, RegId};

use crate::{run_observed_init, Machine, Program, SimError};

/// Registers compared between original and optimized runs.
pub const OBSERVABLE_REGS: [RegId; 8] = [
    RegId::Rax,
    RegId::Rbx,
    RegId::Rsp,
    RegId::Rbp,
    RegId::R12,
    RegId::R13,
    RegId::R14,
    RegId::R15,
];

/// Everything the oracle captured from one run.
#[derive(Debug)]
pub struct Observation {
    /// `Ok((%rax, dynamic instruction count))` or the fault.
    pub result: Result<(u64, u64), SimError>,
    /// Final values of [`OBSERVABLE_REGS`], in order.
    pub regs: [u64; 8],
    /// Every address an executed store touched.
    pub store_addrs: BTreeSet<u64>,
    /// First instruction that read a flag left undefined by the preceding
    /// flag-writer (per the side-effect tables), if any.
    pub undef_flag_read: Option<String>,
    /// Final machine state (for memory readback during comparison).
    machine: Machine,
}

impl Observation {
    /// Final byte at `addr` (zero if never touched).
    pub fn byte_at(&self, addr: u64) -> u8 {
        self.machine.mem.peek_u8(addr)
    }
}

/// Parse, load, and run `asm` from `entry`, capturing an [`Observation`].
/// `Err` means the unit itself is unusable (parse/load/entry failure) as
/// opposed to a run that faulted mid-way.
pub fn observe(asm: &str, entry: &str, args: &[u64], budget: u64) -> Result<Observation, String> {
    let unit = MaoUnit::parse(asm).map_err(|e| format!("parse: {e}"))?;
    observe_unit(&unit, entry, args, budget)
}

/// [`observe`] for an already-parsed unit.
pub fn observe_unit(
    unit: &MaoUnit,
    entry: &str,
    args: &[u64],
    budget: u64,
) -> Result<Observation, String> {
    let program = Program::load(unit).map_err(|e| format!("load: {e}"))?;
    observe_program(unit, &program, entry, args, budget, |_| {})
}

/// [`observe_unit`] for an already-loaded program, with an init hook run on
/// the machine before the first instruction. The superoptimizer loads one
/// harness program and observes it under many seeded register states; the
/// checker path uses a no-op hook.
pub fn observe_program(
    unit: &MaoUnit,
    program: &Program,
    entry: &str,
    args: &[u64],
    budget: u64,
    init: impl FnOnce(&mut Machine),
) -> Result<Observation, String> {
    let mut store_addrs = BTreeSet::new();
    // Shadow flag state: which bits are currently *undefined* (killed with
    // unspecified values, e.g. CF after `imul`'s SF/ZF... per the tables).
    let mut undef = Flags::NONE;
    let mut undef_flag_read: Option<String> = None;
    let outcome = run_observed_init(program, entry, args, budget, init, |info| {
        if let Some((addr, size)) = info.store {
            for i in 0..u64::from(size) {
                store_addrs.insert(addr.wrapping_add(i));
            }
        }
        if let Some(insn) = unit.insn(info.entry) {
            let du = def_use(insn);
            let poisoned = du.flags_use & undef;
            if !poisoned.is_empty() && undef_flag_read.is_none() {
                undef_flag_read = Some(format!("{insn} reads undefined flag(s) {poisoned}"));
            }
            undef = (undef | du.flags_undef) & !du.flags_def;
        }
    })
    .map_err(|e| format!("entry: {e}"))?;
    let mut regs = [0u64; 8];
    for (i, r) in OBSERVABLE_REGS.iter().enumerate() {
        regs[i] = outcome.machine.gpr[r.encoding() as usize];
    }
    Ok(Observation {
        result: outcome.result,
        regs,
        store_addrs,
        undef_flag_read,
        machine: outcome.machine,
    })
}

/// Compare an original run against an optimized run. Returns a description
/// of the first divergence, or `None` when the optimized run is
/// observationally equivalent. The caller guarantees `original.result` is
/// `Ok` — unrunnable originals are skipped upstream.
pub fn compare(original: &Observation, optimized: &Observation) -> Option<String> {
    let (orig_ret, _) = match &original.result {
        Ok(v) => *v,
        Err(e) => return Some(format!("original run faulted ({e}) — caller should skip")),
    };
    let opt_ret = match &optimized.result {
        Ok((v, _)) => *v,
        Err(e) => return Some(format!("optimized run faulted: {e}")),
    };
    if orig_ret != opt_ret {
        return Some(format!(
            "return value differs: {orig_ret:#x} -> {opt_ret:#x}"
        ));
    }
    for (i, r) in OBSERVABLE_REGS.iter().enumerate() {
        if original.regs[i] != optimized.regs[i] {
            return Some(format!(
                "callee-saved %{} differs: {:#x} -> {:#x}",
                format!("{r:?}").to_lowercase(),
                original.regs[i],
                optimized.regs[i]
            ));
        }
    }
    // Memory: every byte either run stored must read back identically.
    // Union of addresses, so both a corrupted store and a dropped store
    // show up (the missing side reads its initial value).
    for &addr in original.store_addrs.union(&optimized.store_addrs) {
        let a = original.byte_at(addr);
        let b = optimized.byte_at(addr);
        if a != b {
            return Some(format!("memory at {addr:#x} differs: {a:#04x} -> {b:#04x}"));
        }
    }
    // Flag discipline: the rewrite must not introduce a read of an
    // architecturally-undefined flag. (If the original already does it,
    // the generator produced a degenerate case; not the pass's fault.)
    if original.undef_flag_read.is_none() {
        if let Some(read) = &optimized.undef_flag_read {
            return Some(format!("optimized code {read}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: &str =
        ".type f, @function\nf:\n\tmovl $40, %eax\n\taddl $2, %eax\n\tmovq %rax, 0x100000\n\tret\n";

    #[test]
    fn identical_units_are_equivalent() {
        let a = observe(F, "f", &[], 1000).unwrap();
        let b = observe(F, "f", &[], 1000).unwrap();
        assert_eq!(a.result.as_ref().unwrap().0, 42);
        assert!(!a.store_addrs.is_empty());
        assert_eq!(compare(&a, &b), None);
    }

    #[test]
    fn corrupted_immediate_is_caught() {
        let bad = F.replace("$2", "$3");
        let a = observe(F, "f", &[], 1000).unwrap();
        let b = observe(&bad, "f", &[], 1000).unwrap();
        let m = compare(&a, &b).expect("mismatch");
        assert!(m.contains("return value"), "{m}");
    }

    #[test]
    fn corrupted_store_is_caught() {
        // Same return value, different stored byte.
        let orig = ".type f, @function\nf:\n\tmovl $7, %ecx\n\tmovb %cl, 0x100000\n\tmovl $1, %eax\n\tret\n";
        let bad = orig.replace("$7", "$8");
        let a = observe(orig, "f", &[], 1000).unwrap();
        let b = observe(&bad, "f", &[], 1000).unwrap();
        let m = compare(&a, &b).expect("mismatch");
        assert!(m.contains("memory at"), "{m}");
    }

    #[test]
    fn dropped_store_is_caught_via_address_union() {
        let orig =
            ".type f, @function\nf:\n\tmovl $9, %ecx\n\tmovb %cl, 0x100000\n\tmovl $1, %eax\n\tret\n";
        let bad = orig.replace("\tmovb %cl, 0x100000\n", "");
        let a = observe(orig, "f", &[], 1000).unwrap();
        let b = observe(&bad, "f", &[], 1000).unwrap();
        assert!(compare(&a, &b).is_some());
    }

    #[test]
    fn caller_saved_scratch_is_not_observable() {
        let orig = ".type f, @function\nf:\n\tmovl $5, %r10d\n\tmovl $1, %eax\n\tret\n";
        let opt = ".type f, @function\nf:\n\tmovl $1, %eax\n\tret\n";
        let a = observe(orig, "f", &[], 1000).unwrap();
        let b = observe(opt, "f", &[], 1000).unwrap();
        assert_eq!(compare(&a, &b), None, "dead %r10 write may be deleted");
    }

    #[test]
    fn callee_saved_clobber_is_observable() {
        let orig = ".type f, @function\nf:\n\tmovl $1, %eax\n\tret\n";
        let bad = ".type f, @function\nf:\n\tmovl $5, %r12d\n\tmovl $1, %eax\n\tret\n";
        let a = observe(orig, "f", &[], 1000).unwrap();
        let b = observe(bad, "f", &[], 1000).unwrap();
        let m = compare(&a, &b).expect("mismatch");
        assert!(m.contains("r12"), "{m}");
    }

    #[test]
    fn init_hook_seeds_registers_before_execution() {
        let asm = ".type f, @function\nf:\n\tmovq %r11, %rax\n\tret\n";
        let unit = MaoUnit::parse(asm).unwrap();
        let program = Program::load(&unit).unwrap();
        let obs = observe_program(&unit, &program, "f", &[], 1000, |m| {
            m.gpr[RegId::R11.encoding() as usize] = 0xdead_beef;
        })
        .unwrap();
        assert_eq!(obs.result.as_ref().unwrap().0, 0xdead_beef);
    }
}
