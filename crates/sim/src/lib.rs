//! Execution-driven, cycle-approximate x86-64 micro-architecture simulator.
//!
//! This crate is the hardware substitute for the MAO reproduction: the
//! paper evaluates on Intel Core-2 and AMD Opteron machines with PMU
//! counters; we run the same assembly on a configurable CPU model whose
//! structures (16-byte decode lines, Loop Stream Detector, `PC >> 5`
//! branch-predictor indexing, asymmetric execution ports, forwarding
//! bandwidth, non-temporal cache fills) implement the documented mechanisms
//! behind every performance cliff in the paper. Absolute cycle counts are
//! not comparable to hardware; effect *shapes* are.
//!
//! # Example
//!
//! ```
//! use mao::MaoUnit;
//! use mao_sim::{simulate, SimOptions, UarchConfig};
//!
//! let unit = MaoUnit::parse(
//!     ".type f, @function\nf:\n\tmovl $10, %eax\n.L:\n\tsubl $1, %eax\n\tjne .L\n\tret\n",
//! ).unwrap();
//! let r = simulate(&unit, "f", &[], &UarchConfig::core2(), &SimOptions::default()).unwrap();
//! assert_eq!(r.ret, 0);
//! assert!(r.pmu.cycles > 0);
//! ```

pub mod config;
pub mod machine;
pub mod memory;
pub mod oracle;
pub mod pmu;
pub mod program;
pub mod timing;

pub use config::UarchConfig;
pub use machine::{
    run_functional, run_observed, run_observed_init, ExecInfo, Machine, RunOutcome, SimError, Step,
};
pub use memory::{Access, Cache, Memory};
pub use pmu::Pmu;
pub use program::{LoadError, Program};
pub use timing::Timing;

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Maximum dynamic instructions before aborting (runaway guard).
    pub max_instructions: u64,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            max_instructions: 20_000_000,
        }
    }
}

/// Result of a timed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// `%rax` at the top-level `ret`.
    pub ret: u64,
    /// Performance counters.
    pub pmu: Pmu,
}

/// Load `unit`, run `entry(args)` under `config`, and collect counters.
pub fn simulate(
    unit: &mao::MaoUnit,
    entry: &str,
    args: &[u64],
    config: &UarchConfig,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    let program = Program::load(unit).map_err(|e| SimError::ExternalTarget(e.to_string()))?;
    simulate_program(&program, entry, args, config, options)
}

/// Like [`simulate`] but reuses an already-loaded [`Program`] (amortizes
/// relaxation across runs — what the benchmark harness does).
pub fn simulate_program(
    program: &Program,
    entry: &str,
    args: &[u64],
    config: &UarchConfig,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    let mut machine = Machine::new(program, entry, args)?;
    let mut timing = Timing::new(config);
    let mut executed = 0u64;
    loop {
        if executed >= options.max_instructions {
            return Err(SimError::Budget);
        }
        match machine.step(program)? {
            Step::Executed(info) => {
                let insn = program
                    .unit
                    .insn(info.entry)
                    .expect("exec info references an instruction");
                timing.retire(insn, &info);
                executed += 1;
            }
            Step::Finished(ret) => {
                return Ok(SimResult {
                    ret,
                    pmu: timing.finish(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao::MaoUnit;

    fn sim(text: &str, entry: &str, args: &[u64]) -> SimResult {
        let unit = MaoUnit::parse(text).unwrap();
        simulate(
            &unit,
            entry,
            args,
            &UarchConfig::core2(),
            &SimOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn counts_instructions_and_cycles() {
        let r = sim(
            ".type f, @function\nf:\n\tmovl $1, %eax\n\taddl $2, %eax\n\tret\n",
            "f",
            &[],
        );
        assert_eq!(r.ret, 3);
        assert_eq!(r.pmu.instructions, 2); // top-level ret not retired
        assert!(r.pmu.cycles >= 2);
    }

    #[test]
    fn loop_exercises_predictor_and_lsd() {
        let text = r#"
	.type	f, @function
f:
	movl $1000, %ecx
	xorl %eax, %eax
.L:
	addl $1, %eax
	subl $1, %ecx
	jne .L
	ret
"#;
        let r = sim(text, "f", &[]);
        assert_eq!(r.ret, 1000);
        assert_eq!(r.pmu.branches, 1000);
        // The predictor learns the loop quickly.
        assert!(r.pmu.mispredict_rate() < 0.05, "{}", r.pmu);
        // A tiny loop streams from the LSD after 64 iterations.
        assert!(r.pmu.lsd_iterations > 800, "{}", r.pmu);
    }

    #[test]
    fn cache_hits_after_first_touch() {
        let text = r#"
	.type	f, @function
f:
	movl $100, %ecx
.L:
	movq -64(%rsp), %rax
	subl $1, %ecx
	jne .L
	ret
"#;
        let r = sim(text, "f", &[]);
        assert_eq!(r.pmu.l1d_misses, 1, "{}", r.pmu);
        assert_eq!(r.pmu.l1d_hits, 99);
    }

    #[test]
    fn budget_enforced() {
        let unit = MaoUnit::parse(".type f, @function\nf:\n.L:\n\tjmp .L\n").unwrap();
        let err = simulate(
            &unit,
            "f",
            &[],
            &UarchConfig::core2(),
            &SimOptions {
                max_instructions: 1000,
            },
        )
        .unwrap_err();
        assert_eq!(err, SimError::Budget);
    }

    #[test]
    fn deterministic() {
        let text = r#"
	.type	f, @function
f:
	movl $500, %ecx
	movl $1, %eax
.L:
	imull $3, %eax, %eax
	addl $1, %eax
	subl $1, %ecx
	jne .L
	ret
"#;
        let a = sim(text, "f", &[]);
        let b = sim(text, "f", &[]);
        assert_eq!(a.pmu, b.pmu);
        assert_eq!(a.ret, b.ret);
    }
}
