//! The architectural interpreter: executes the supported x86-64 subset.
//!
//! Execution is *functional* here — registers, flags, memory, control flow.
//! The timing model in [`crate::timing`] consumes the per-instruction
//! [`ExecInfo`] events this module produces and layers cycles on top.

use std::collections::HashMap;

use mao_x86::operand::{Disp, Mem, Operand};
use mao_x86::{Flags, Instruction, Mnemonic, Reg, RegId, Width};

use crate::memory::Memory;
use crate::program::{Program, STACK_TOP};

/// Runtime failure during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A call or jump targets a symbol not defined in the unit.
    ExternalTarget(String),
    /// An indirect branch landed on a VA with no instruction.
    WildBranch(u64),
    /// The instruction is not supported by the interpreter.
    Unsupported(String),
    /// Executed `ud2`/`hlt`.
    Trap(&'static str),
    /// Instruction budget exhausted (runaway loop guard).
    Budget,
    /// Division error.
    DivideError,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ExternalTarget(s) => write!(f, "branch/call to external symbol `{s}`"),
            SimError::WildBranch(va) => write!(f, "indirect branch to non-code address {va:#x}"),
            SimError::Unsupported(s) => write!(f, "unsupported instruction `{s}`"),
            SimError::Trap(m) => write!(f, "trap: {m}"),
            SimError::Budget => write!(f, "instruction budget exhausted"),
            SimError::DivideError => write!(f, "divide error"),
        }
    }
}

impl std::error::Error for SimError {}

/// What one executed instruction did (consumed by the timing model).
#[derive(Debug, Clone, Default)]
pub struct ExecInfo {
    /// Entry id of the instruction.
    pub entry: usize,
    /// Its virtual address.
    pub va: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// Was this a conditional branch?
    pub cond_branch: bool,
    /// Was this any taken control transfer?
    pub taken: bool,
    /// Target VA of a taken control transfer.
    pub target_va: Option<u64>,
    /// Data address and size of a load.
    pub load: Option<(u64, u8)>,
    /// Data address and size of a store.
    pub store: Option<(u64, u8)>,
    /// This was a `prefetchnta` to the given address.
    pub prefetch_nta: Option<u64>,
}

/// Outcome of a step.
#[derive(Debug, Clone)]
pub enum Step {
    /// An instruction executed.
    Executed(ExecInfo),
    /// Top-level `ret` executed: the program finished with `%rax`'s value.
    Finished(u64),
}

/// The architectural machine state.
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers, indexed by `RegId::encoding()`.
    pub gpr: [u64; 16],
    /// XMM registers (low 64 bits modeled; enough for scalar SSE).
    pub xmm: [u64; 16],
    /// Status flags.
    pub flags: Flags,
    /// Current instruction (entry id).
    pub pc: usize,
    /// Memory.
    pub mem: Memory,
    /// Call depth (0 = top level; `ret` at depth 0 finishes the program).
    pub depth: usize,
}

impl Machine {
    /// Machine ready to run `entry_label` of `program` with SysV argument
    /// registers from `args` (%rdi, %rsi, %rdx, %rcx, %r8, %r9).
    pub fn new(program: &Program, entry_label: &str, args: &[u64]) -> Result<Machine, SimError> {
        let pc = program
            .label_insn(entry_label)
            .ok_or_else(|| SimError::ExternalTarget(entry_label.to_string()))?;
        let mem = program
            .initial_memory()
            .map_err(|e| SimError::ExternalTarget(e.to_string()))?;
        let mut m = Machine {
            gpr: [0; 16],
            xmm: [0; 16],
            flags: Flags::NONE,
            pc,
            mem,
            depth: 0,
        };
        m.gpr[RegId::Rsp.encoding() as usize] = STACK_TOP;
        let arg_regs = [
            RegId::Rdi,
            RegId::Rsi,
            RegId::Rdx,
            RegId::Rcx,
            RegId::R8,
            RegId::R9,
        ];
        for (i, &v) in args.iter().take(6).enumerate() {
            m.gpr[arg_regs[i].encoding() as usize] = v;
        }
        Ok(m)
    }

    /// Read a register with width semantics.
    pub fn read_reg(&self, r: Reg) -> u64 {
        if r.id.is_xmm() {
            return self.xmm[r.id.encoding() as usize];
        }
        let full = self.gpr[r.id.encoding() as usize];
        if r.high8 {
            (full >> 8) & 0xff
        } else {
            full & r.width.mask()
        }
    }

    /// Write a register with width semantics (32-bit writes zero-extend;
    /// 8/16-bit writes merge).
    pub fn write_reg(&mut self, r: Reg, value: u64) {
        if r.id.is_xmm() {
            self.xmm[r.id.encoding() as usize] = value;
            return;
        }
        let slot = &mut self.gpr[r.id.encoding() as usize];
        match r.width {
            Width::B8 => *slot = value,
            Width::B4 => *slot = value & 0xffff_ffff,
            Width::B2 => *slot = (*slot & !0xffff) | (value & 0xffff),
            Width::B1 => {
                if r.high8 {
                    *slot = (*slot & !0xff00) | ((value & 0xff) << 8);
                } else {
                    *slot = (*slot & !0xff) | (value & 0xff);
                }
            }
            Width::B16 => *slot = value,
        }
    }

    fn reg_by_id(&self, id: RegId, width: Width) -> u64 {
        self.read_reg(Reg::new(id, width))
    }

    /// Effective address of a memory operand.
    fn ea(&self, mem: &Mem, program: &Program) -> Result<u64, SimError> {
        let disp = match &mem.disp {
            Disp::None => 0i64,
            Disp::Imm(v) => *v,
            Disp::Symbol { name, addend } => {
                let base = *program
                    .label_va
                    .get(name.as_str())
                    .ok_or_else(|| SimError::ExternalTarget(name.as_str().to_string()))?;
                base as i64 + addend
            }
        };
        let mut addr = disp as u64;
        if let Some(b) = mem.base {
            if b.id == RegId::Rip {
                // RIP-relative symbols resolve absolutely above; a numeric
                // RIP-relative displacement is not meaningful here.
            } else {
                addr = addr.wrapping_add(self.reg_by_id(b.id, Width::B8));
            }
        }
        if let Some(i) = mem.index {
            addr = addr.wrapping_add(
                self.reg_by_id(i.id, Width::B8)
                    .wrapping_mul(u64::from(mem.scale)),
            );
        }
        Ok(addr)
    }

    fn set_result_flags(&mut self, result: u64, width: Width) {
        let masked = result & width.mask();
        let mut f = self.flags;
        f = f - (Flags::ZF | Flags::SF | Flags::PF);
        if masked == 0 {
            f |= Flags::ZF;
        }
        if masked >> (width.bits() - 1) & 1 == 1 {
            f |= Flags::SF;
        }
        if (masked as u8).count_ones() % 2 == 0 {
            f |= Flags::PF;
        }
        self.flags = f;
    }

    fn set_flags_add(&mut self, a: u64, b: u64, carry_in: u64, width: Width) -> u64 {
        let mask = width.mask();
        let (a, b) = (a & mask, b & mask);
        let result = a.wrapping_add(b).wrapping_add(carry_in) & mask;
        let sign = 1u64 << (width.bits() - 1);
        let carry = (a as u128 + b as u128 + carry_in as u128) > mask as u128;
        let overflow = ((a ^ result) & (b ^ result) & sign) != 0;
        let mut f = Flags::NONE;
        if carry {
            f |= Flags::CF;
        }
        if overflow {
            f |= Flags::OF;
        }
        self.flags = f;
        self.set_result_flags(result, width);
        result
    }

    fn set_flags_sub(&mut self, a: u64, b: u64, borrow_in: u64, width: Width) -> u64 {
        let mask = width.mask();
        let (a, b) = (a & mask, b & mask);
        let result = a.wrapping_sub(b).wrapping_sub(borrow_in) & mask;
        let sign = 1u64 << (width.bits() - 1);
        let borrow = (a as u128) < (b as u128 + borrow_in as u128);
        let overflow = ((a ^ b) & (a ^ result) & sign) != 0;
        let mut f = Flags::NONE;
        if borrow {
            f |= Flags::CF;
        }
        if overflow {
            f |= Flags::OF;
        }
        self.flags = f;
        self.set_result_flags(result, width);
        result
    }

    fn set_flags_logic(&mut self, result: u64, width: Width) {
        self.flags = Flags::NONE; // CF=OF=0
        self.set_result_flags(result, width);
    }

    /// Read an operand's value (register, immediate, or memory load).
    /// Records the load in `info`.
    fn read_operand(
        &mut self,
        op: &Operand,
        width: Width,
        program: &Program,
        info: &mut ExecInfo,
    ) -> Result<u64, SimError> {
        match op {
            Operand::Imm(v) => Ok(*v as u64 & width.mask()),
            Operand::Reg(r) => Ok(self.read_reg(*r)),
            Operand::Mem(m) => {
                let addr = self.ea(m, program)?;
                info.load = Some((addr, width.bytes()));
                Ok(self.mem.read(addr, width.bytes()))
            }
            other => Err(SimError::Unsupported(format!("operand {other}"))),
        }
    }

    /// Write to a destination operand. Records the store in `info`.
    fn write_operand(
        &mut self,
        op: &Operand,
        width: Width,
        value: u64,
        program: &Program,
        info: &mut ExecInfo,
    ) -> Result<(), SimError> {
        match op {
            Operand::Reg(r) => {
                self.write_reg(Reg { width, ..*r }, value);
                Ok(())
            }
            Operand::Mem(m) => {
                let addr = self.ea(m, program)?;
                info.store = Some((addr, width.bytes()));
                self.mem.write(addr, value, width.bytes());
                Ok(())
            }
            other => Err(SimError::Unsupported(format!("destination {other}"))),
        }
    }

    fn push(&mut self, value: u64) {
        let rsp = self.gpr[RegId::Rsp.encoding() as usize].wrapping_sub(8);
        self.gpr[RegId::Rsp.encoding() as usize] = rsp;
        self.mem.write(rsp, value, 8);
    }

    fn pop(&mut self) -> u64 {
        let rsp = self.gpr[RegId::Rsp.encoding() as usize];
        let v = self.mem.read(rsp, 8);
        self.gpr[RegId::Rsp.encoding() as usize] = rsp.wrapping_add(8);
        v
    }

    fn branch_to_label(&mut self, label: &str, program: &Program) -> Result<u64, SimError> {
        let target = program
            .label_insn(label)
            .ok_or_else(|| SimError::ExternalTarget(label.to_string()))?;
        self.pc = target;
        Ok(program.entry_va[target])
    }

    /// Execute the instruction at `self.pc`, advancing `pc`.
    pub fn step(&mut self, program: &Program) -> Result<Step, SimError> {
        use Mnemonic as M;
        let entry = self.pc;
        let insn: &Instruction = program
            .unit
            .insn(entry)
            .expect("pc always points at an instruction");
        let w = insn.width();
        let mut info = ExecInfo {
            entry,
            va: program.entry_va[entry],
            len: program.insn_len(entry),
            ..ExecInfo::default()
        };
        // Default fall-through.
        let next = program.next_insn(entry + 1);
        let mut jumped = false;

        macro_rules! src {
            () => {{
                let op = insn
                    .operands
                    .first()
                    .cloned()
                    .ok_or_else(|| SimError::Unsupported(format!("{insn}: missing operand")))?;
                self.read_operand(&op, w, program, &mut info)?
            }};
        }
        macro_rules! dst_read {
            () => {{
                let op = insn
                    .operands
                    .last()
                    .cloned()
                    .ok_or_else(|| SimError::Unsupported(format!("{insn}: missing operand")))?;
                self.read_operand(&op, w, program, &mut info)?
            }};
        }
        macro_rules! dst_write {
            ($value:expr) => {{
                let op = insn
                    .operands
                    .last()
                    .cloned()
                    .ok_or_else(|| SimError::Unsupported(format!("{insn}: missing operand")))?;
                self.write_operand(&op, w, $value, program, &mut info)?
            }};
        }

        match insn.mnemonic {
            M::Nop | M::Pause | M::Endbr64 | M::Lfence | M::Mfence | M::Sfence => {}
            M::Mov | M::Movabs => {
                let v = src!();
                dst_write!(v);
            }
            M::Movsx => {
                let from = insn.src_width.unwrap_or(Width::B1);
                let op = insn.operands.first().cloned().unwrap();
                let raw = self.read_operand(&op, from, program, &mut info)?;
                let shifted = 64 - from.bits();
                let v = (((raw << shifted) as i64) >> shifted) as u64;
                dst_write!(v & w.mask());
            }
            M::Movzx => {
                let from = insn.src_width.unwrap_or(Width::B1);
                let op = insn.operands.first().cloned().unwrap();
                let raw = self.read_operand(&op, from, program, &mut info)?;
                dst_write!(raw & from.mask());
            }
            M::Lea => {
                let Some(Operand::Mem(m)) = insn.operands.first() else {
                    return Err(SimError::Unsupported(insn.to_string()));
                };
                let addr = self.ea(&m.clone(), program)?;
                dst_write!(addr & w.mask());
            }
            M::Add => {
                let a = dst_read!();
                let b = src!();
                let r = self.set_flags_add(a, b, 0, w);
                dst_write!(r);
            }
            M::Adc => {
                let cf = u64::from(self.flags.contains(Flags::CF));
                let a = dst_read!();
                let b = src!();
                let r = self.set_flags_add(a, b, cf, w);
                dst_write!(r);
            }
            M::Sub => {
                let a = dst_read!();
                let b = src!();
                let r = self.set_flags_sub(a, b, 0, w);
                dst_write!(r);
            }
            M::Sbb => {
                let cf = u64::from(self.flags.contains(Flags::CF));
                let a = dst_read!();
                let b = src!();
                let r = self.set_flags_sub(a, b, cf, w);
                dst_write!(r);
            }
            M::Cmp => {
                let a = dst_read!();
                let b = src!();
                let _ = self.set_flags_sub(a, b, 0, w);
            }
            M::And | M::Or | M::Xor => {
                let a = dst_read!();
                let b = src!();
                let r = match insn.mnemonic {
                    M::And => a & b,
                    M::Or => a | b,
                    _ => a ^ b,
                } & w.mask();
                self.set_flags_logic(r, w);
                dst_write!(r);
            }
            M::Test => {
                let a = dst_read!();
                let b = src!();
                self.set_flags_logic(a & b & w.mask(), w);
            }
            M::Not => {
                let a = dst_read!();
                dst_write!(!a & w.mask());
            }
            M::Neg => {
                let a = dst_read!();
                let r = self.set_flags_sub(0, a, 0, w);
                dst_write!(r);
            }
            M::Inc | M::Dec => {
                let a = dst_read!();
                let saved_cf = self.flags.contains(Flags::CF);
                let r = if insn.mnemonic == M::Inc {
                    self.set_flags_add(a, 1, 0, w)
                } else {
                    self.set_flags_sub(a, 1, 0, w)
                };
                // inc/dec preserve CF.
                if saved_cf {
                    self.flags |= Flags::CF;
                } else {
                    self.flags = self.flags - Flags::CF;
                }
                dst_write!(r);
            }
            M::Imul => match insn.operands.len() {
                1 => {
                    let b = src!();
                    let a = self.reg_by_id(RegId::Rax, w);
                    let wide = (a as i64 as i128) * (b as i64 as i128);
                    self.write_reg(Reg::new(RegId::Rax, w), wide as u64 & w.mask());
                    self.write_reg(
                        Reg::new(RegId::Rdx, w),
                        (wide >> w.bits()) as u64 & w.mask(),
                    );
                    self.flags = Flags::NONE;
                }
                2 => {
                    let b = src!();
                    let a = dst_read!();
                    let shifted = 64 - w.bits();
                    let sa = ((a << shifted) as i64 >> shifted) as i128;
                    let sb = ((b << shifted) as i64 >> shifted) as i128;
                    let r = (sa * sb) as u64 & w.mask();
                    self.flags = Flags::NONE;
                    dst_write!(r);
                }
                3 => {
                    let imm = insn.operands[0]
                        .imm()
                        .ok_or_else(|| SimError::Unsupported(insn.to_string()))?;
                    let op = insn.operands[1].clone();
                    let b = self.read_operand(&op, w, program, &mut info)?;
                    let shifted = 64 - w.bits();
                    let sb = ((b << shifted) as i64 >> shifted) as i128;
                    let r = (imm as i128 * sb) as u64 & w.mask();
                    self.flags = Flags::NONE;
                    dst_write!(r);
                }
                _ => return Err(SimError::Unsupported(insn.to_string())),
            },
            M::Mul => {
                let b = src!();
                let a = self.reg_by_id(RegId::Rax, w);
                let wide = (a as u128) * (b as u128);
                self.write_reg(Reg::new(RegId::Rax, w), wide as u64 & w.mask());
                self.write_reg(
                    Reg::new(RegId::Rdx, w),
                    (wide >> w.bits()) as u64 & w.mask(),
                );
                self.flags = Flags::NONE;
            }
            M::Idiv | M::Div => {
                let divisor = src!();
                if divisor & w.mask() == 0 {
                    return Err(SimError::DivideError);
                }
                let lo = self.reg_by_id(RegId::Rax, w) as u128;
                let hi = self.reg_by_id(RegId::Rdx, w) as u128;
                let dividend = (hi << w.bits()) | lo;
                let (q, r) = if insn.mnemonic == M::Div {
                    let d = (divisor & w.mask()) as u128;
                    (dividend / d, dividend % d)
                } else {
                    let shifted = 128 - u32::from(w.bytes()) * 16;
                    let sdividend = ((dividend << shifted) as i128) >> shifted;
                    let sshift = 64 - w.bits();
                    let sdiv = ((divisor << sshift) as i64 >> sshift) as i128;
                    ((sdividend / sdiv) as u128, (sdividend % sdiv) as u128)
                };
                self.write_reg(Reg::new(RegId::Rax, w), q as u64 & w.mask());
                self.write_reg(Reg::new(RegId::Rdx, w), r as u64 & w.mask());
            }
            M::Shl | M::Shr | M::Sar | M::Rol | M::Ror => {
                let (count, target_idx) = if insn.operands.len() == 1 {
                    (1u32, 0usize)
                } else {
                    let c = match &insn.operands[0] {
                        Operand::Imm(v) => *v as u32,
                        Operand::Reg(r) if r.id == RegId::Rcx => {
                            self.reg_by_id(RegId::Rcx, Width::B1) as u32
                        }
                        other => return Err(SimError::Unsupported(format!("shift count {other}"))),
                    };
                    (c, 1usize)
                };
                let count = count & if w == Width::B8 { 63 } else { 31 };
                let op = insn.operands[target_idx].clone();
                let a = self.read_operand(&op, w, program, &mut info)?;
                let bits = w.bits();
                let r = match insn.mnemonic {
                    M::Shl => a.wrapping_shl(count),
                    M::Shr => (a & w.mask()).wrapping_shr(count),
                    M::Sar => {
                        let shifted = 64 - bits;
                        (((a << shifted) as i64 >> shifted) >> count) as u64
                    }
                    M::Rol => {
                        let m = a & w.mask();
                        (m << (count % bits)) | (m >> ((bits - count % bits) % bits))
                    }
                    M::Ror => {
                        let m = a & w.mask();
                        (m >> (count % bits)) | (m << ((bits - count % bits) % bits))
                    }
                    _ => unreachable!(),
                } & w.mask();
                if count != 0 && matches!(insn.mnemonic, M::Shl | M::Shr | M::Sar) {
                    self.set_flags_logic(r, w);
                }
                self.write_operand(&op, w, r, program, &mut info)?;
            }
            M::Cltq => {
                let eax = self.reg_by_id(RegId::Rax, Width::B4);
                self.write_reg(Reg::q(RegId::Rax), eax as i32 as i64 as u64);
            }
            M::Cwtl => {
                let ax = self.reg_by_id(RegId::Rax, Width::B2);
                self.write_reg(Reg::l(RegId::Rax), (ax as i16 as i32) as u64);
            }
            M::Cltd => {
                let eax = self.reg_by_id(RegId::Rax, Width::B4) as i32;
                self.write_reg(Reg::l(RegId::Rdx), if eax < 0 { 0xffff_ffff } else { 0 });
            }
            M::Cqto => {
                let rax = self.reg_by_id(RegId::Rax, Width::B8) as i64;
                self.write_reg(Reg::q(RegId::Rdx), if rax < 0 { u64::MAX } else { 0 });
            }
            M::Push => {
                let v = src!();
                self.push(v);
                info.store = Some((self.gpr[RegId::Rsp.encoding() as usize], 8));
            }
            M::Pop => {
                info.load = Some((self.gpr[RegId::Rsp.encoding() as usize], 8));
                let v = self.pop();
                dst_write!(v);
            }
            M::Leave => {
                let rbp = self.gpr[RegId::Rbp.encoding() as usize];
                self.gpr[RegId::Rsp.encoding() as usize] = rbp;
                info.load = Some((rbp, 8));
                let v = self.pop();
                self.gpr[RegId::Rbp.encoding() as usize] = v;
            }
            M::Jmp => {
                info.taken = true;
                jumped = true;
                match insn.operands.first() {
                    Some(Operand::Label(l)) => {
                        info.target_va = Some(self.branch_to_label(l, program)?);
                    }
                    Some(Operand::IndirectReg(r)) => {
                        let va = self.read_reg(*r);
                        let t = program.entry_at_va(va).ok_or(SimError::WildBranch(va))?;
                        self.pc = t;
                        info.target_va = Some(va);
                    }
                    Some(Operand::IndirectMem(m)) => {
                        let addr = self.ea(&m.clone(), program)?;
                        info.load = Some((addr, 8));
                        let va = self.mem.read(addr, 8);
                        let t = program.entry_at_va(va).ok_or(SimError::WildBranch(va))?;
                        self.pc = t;
                        info.target_va = Some(va);
                    }
                    _ => return Err(SimError::Unsupported(insn.to_string())),
                }
            }
            M::Jcc(c) => {
                info.cond_branch = true;
                if c.eval(self.flags) {
                    info.taken = true;
                    jumped = true;
                    let l = insn
                        .target_label()
                        .ok_or_else(|| SimError::Unsupported(insn.to_string()))?
                        .to_string();
                    info.target_va = Some(self.branch_to_label(&l, program)?);
                }
            }
            M::Call => {
                info.taken = true;
                jumped = true;
                let ret_va = next.map(|n| program.entry_va[n]).unwrap_or(0);
                self.push(ret_va);
                info.store = Some((self.gpr[RegId::Rsp.encoding() as usize], 8));
                self.depth += 1;
                match insn.operands.first() {
                    Some(Operand::Label(l)) => {
                        info.target_va = Some(self.branch_to_label(l, program)?);
                    }
                    Some(Operand::IndirectReg(r)) => {
                        let va = self.read_reg(*r);
                        let t = program.entry_at_va(va).ok_or(SimError::WildBranch(va))?;
                        self.pc = t;
                        info.target_va = Some(va);
                    }
                    Some(Operand::IndirectMem(m)) => {
                        let addr = self.ea(&m.clone(), program)?;
                        let va = self.mem.read(addr, 8);
                        let t = program.entry_at_va(va).ok_or(SimError::WildBranch(va))?;
                        self.pc = t;
                        info.target_va = Some(va);
                    }
                    _ => return Err(SimError::Unsupported(insn.to_string())),
                }
            }
            M::Ret => {
                if self.depth == 0 {
                    return Ok(Step::Finished(self.gpr[RegId::Rax.encoding() as usize]));
                }
                info.load = Some((self.gpr[RegId::Rsp.encoding() as usize], 8));
                let va = self.pop();
                let t = program.entry_at_va(va).ok_or(SimError::WildBranch(va))?;
                self.depth -= 1;
                self.pc = t;
                info.taken = true;
                info.target_va = Some(va);
                jumped = true;
            }
            M::Setcc(c) => {
                let v = u64::from(c.eval(self.flags));
                let op = insn.operands.last().cloned().unwrap();
                self.write_operand(&op, Width::B1, v, program, &mut info)?;
            }
            M::Cmovcc(c) => {
                let v = src!();
                if c.eval(self.flags) {
                    dst_write!(v);
                }
            }
            M::Xchg => {
                let a_op = insn.operands[0].clone();
                let b_op = insn.operands[1].clone();
                let a = self.read_operand(&a_op, w, program, &mut info)?;
                let b = self.read_operand(&b_op, w, program, &mut info)?;
                self.write_operand(&a_op, w, b, program, &mut info)?;
                self.write_operand(&b_op, w, a, program, &mut info)?;
            }
            // Scalar SSE on the low 32/64 bits.
            M::Movss | M::Movd => {
                let op = insn.operands[0].clone();
                let v = self.read_operand(&op, Width::B4, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                self.write_operand(&dst, Width::B4, v, program, &mut info)?;
            }
            M::Movsd | M::Movaps | M::Movapd | M::Movups | M::Movdq => {
                let op = insn.operands[0].clone();
                let v = self.read_operand(&op, Width::B8, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                self.write_operand(&dst, Width::B8, v, program, &mut info)?;
            }
            M::Addss | M::Subss | M::Mulss | M::Divss | M::Sqrtss => {
                let op = insn.operands[0].clone();
                let b =
                    f32::from_bits(self.read_operand(&op, Width::B4, program, &mut info)? as u32);
                let dst = insn.operands.last().cloned().unwrap();
                let a =
                    f32::from_bits(self.read_operand(&dst, Width::B4, program, &mut info)? as u32);
                let r = match insn.mnemonic {
                    M::Addss => a + b,
                    M::Subss => a - b,
                    M::Mulss => a * b,
                    M::Divss => a / b,
                    M::Sqrtss => b.sqrt(),
                    _ => unreachable!(),
                };
                self.write_operand(&dst, Width::B4, u64::from(r.to_bits()), program, &mut info)?;
            }
            M::Addsd | M::Subsd | M::Mulsd | M::Divsd | M::Sqrtsd => {
                let op = insn.operands[0].clone();
                let b = f64::from_bits(self.read_operand(&op, Width::B8, program, &mut info)?);
                let dst = insn.operands.last().cloned().unwrap();
                let a = f64::from_bits(self.read_operand(&dst, Width::B8, program, &mut info)?);
                let r = match insn.mnemonic {
                    M::Addsd => a + b,
                    M::Subsd => a - b,
                    M::Mulsd => a * b,
                    M::Divsd => a / b,
                    M::Sqrtsd => b.sqrt(),
                    _ => unreachable!(),
                };
                self.write_operand(&dst, Width::B8, r.to_bits(), program, &mut info)?;
            }
            M::Ucomiss | M::Comiss | M::Ucomisd | M::Comisd => {
                let dbl = matches!(insn.mnemonic, M::Ucomisd | M::Comisd);
                let ww = if dbl { Width::B8 } else { Width::B4 };
                let op = insn.operands[0].clone();
                let braw = self.read_operand(&op, ww, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                let araw = self.read_operand(&dst, ww, program, &mut info)?;
                let (a, b) = if dbl {
                    (f64::from_bits(araw), f64::from_bits(braw))
                } else {
                    (
                        f64::from(f32::from_bits(araw as u32)),
                        f64::from(f32::from_bits(braw as u32)),
                    )
                };
                // ucomiss semantics: ZF/PF/CF set, others cleared.
                let mut f = Flags::NONE;
                if a.is_nan() || b.is_nan() {
                    f = Flags::ZF | Flags::PF | Flags::CF;
                } else if a == b {
                    f = Flags::ZF;
                } else if a < b {
                    f = Flags::CF;
                }
                self.flags = f;
            }
            M::Cvtsi2ss | M::Cvtsi2sd => {
                let op = insn.operands[0].clone();
                let iw = if insn.op_width == Some(Width::B8) {
                    Width::B8
                } else {
                    Width::B4
                };
                let raw = self.read_operand(&op, iw, program, &mut info)?;
                let shifted = 64 - iw.bits();
                let v = ((raw << shifted) as i64) >> shifted;
                let dst = insn.operands.last().cloned().unwrap();
                if insn.mnemonic == M::Cvtsi2ss {
                    self.write_operand(
                        &dst,
                        Width::B4,
                        u64::from((v as f32).to_bits()),
                        program,
                        &mut info,
                    )?;
                } else {
                    self.write_operand(&dst, Width::B8, (v as f64).to_bits(), program, &mut info)?;
                }
            }
            M::Cvttss2si | M::Cvttsd2si => {
                let op = insn.operands[0].clone();
                let fw = if insn.mnemonic == M::Cvttss2si {
                    Width::B4
                } else {
                    Width::B8
                };
                let raw = self.read_operand(&op, fw, program, &mut info)?;
                let v = if fw == Width::B4 {
                    f32::from_bits(raw as u32) as i64
                } else {
                    f64::from_bits(raw) as i64
                };
                dst_write!(v as u64 & w.mask());
            }
            M::Cvtss2sd => {
                let op = insn.operands[0].clone();
                let raw = self.read_operand(&op, Width::B4, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                let v = f64::from(f32::from_bits(raw as u32));
                self.write_operand(&dst, Width::B8, v.to_bits(), program, &mut info)?;
            }
            M::Cvtsd2ss => {
                let op = insn.operands[0].clone();
                let raw = self.read_operand(&op, Width::B8, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                let v = f64::from_bits(raw) as f32;
                self.write_operand(&dst, Width::B4, u64::from(v.to_bits()), program, &mut info)?;
            }
            M::Pxor | M::Xorps | M::Xorpd => {
                let op = insn.operands[0].clone();
                let b = self.read_operand(&op, Width::B8, program, &mut info)?;
                let dst = insn.operands.last().cloned().unwrap();
                let a = self.read_operand(&dst, Width::B8, program, &mut info)?;
                self.write_operand(&dst, Width::B8, a ^ b, program, &mut info)?;
            }
            M::Prefetchnta | M::Prefetcht0 | M::Prefetcht1 | M::Prefetcht2 => {
                if let Some(Operand::Mem(m)) = insn.operands.first() {
                    let addr = self.ea(&m.clone(), program)?;
                    if insn.mnemonic == M::Prefetchnta {
                        info.prefetch_nta = Some(addr);
                    }
                }
            }
            M::Ud2 => return Err(SimError::Trap("ud2")),
            M::Hlt => return Err(SimError::Trap("hlt")),
            M::Int3 => return Err(SimError::Trap("int3")),
            M::Cpuid | M::Rdtsc => {
                // Deterministic stub values.
                self.write_reg(Reg::q(RegId::Rax), 0);
                self.write_reg(Reg::q(RegId::Rdx), 0);
            }
        }

        if !jumped {
            match next {
                Some(n) => self.pc = n,
                None => return Ok(Step::Finished(self.gpr[RegId::Rax.encoding() as usize])),
            }
        }
        Ok(Step::Executed(info))
    }
}

/// Run the interpreter only (no timing): convenience for functional tests.
/// Returns (`%rax`, dynamic instruction count).
pub fn run_functional(
    program: &Program,
    entry: &str,
    args: &[u64],
    max_instructions: u64,
) -> Result<(u64, u64), SimError> {
    let mut m = Machine::new(program, entry, args)?;
    let mut count = 0u64;
    loop {
        if count >= max_instructions {
            return Err(SimError::Budget);
        }
        match m.step(program)? {
            Step::Executed(_) => count += 1,
            Step::Finished(v) => return Ok((v, count)),
        }
    }
}

/// Final state of an observed run: the machine (registers, flags, memory)
/// at the moment the program finished or faulted, plus the functional
/// result. Mid-run faults keep the machine state reached so far.
#[derive(Debug)]
pub struct RunOutcome {
    /// The machine after the last executed instruction.
    pub machine: Machine,
    /// `Ok((%rax, dynamic instruction count))` or the fault.
    pub result: Result<(u64, u64), SimError>,
}

/// Like [`run_functional`], but invokes `observer` after every executed
/// instruction and returns the final machine state alongside the result.
/// This is the differential checker's entry point: the observer sees each
/// [`ExecInfo`] (entry id, loads, stores, branches) and the caller can
/// compare architectural state (`gpr`, `flags`, `mem`) afterwards. Returns
/// `Err` only when the entry label or the unit's sections fail to load.
pub fn run_observed(
    program: &Program,
    entry: &str,
    args: &[u64],
    max_instructions: u64,
    observer: impl FnMut(&ExecInfo),
) -> Result<RunOutcome, SimError> {
    run_observed_init(program, entry, args, max_instructions, |_| {}, observer)
}

/// [`run_observed`] with an initialization hook applied to the freshly
/// constructed machine before the first step. The superoptimizer's
/// differential filter uses this to seed arbitrary register states without
/// materializing `movabs` preambles: the hook runs after argument setup, so
/// it may overwrite any register except the program text itself.
pub fn run_observed_init(
    program: &Program,
    entry: &str,
    args: &[u64],
    max_instructions: u64,
    init: impl FnOnce(&mut Machine),
    mut observer: impl FnMut(&ExecInfo),
) -> Result<RunOutcome, SimError> {
    let mut m = Machine::new(program, entry, args)?;
    init(&mut m);
    let mut count = 0u64;
    let result = loop {
        if count >= max_instructions {
            break Err(SimError::Budget);
        }
        match m.step(program) {
            Ok(Step::Executed(info)) => {
                count += 1;
                observer(&info);
            }
            Ok(Step::Finished(v)) => break Ok((v, count)),
            Err(e) => break Err(e),
        }
    };
    Ok(RunOutcome { machine: m, result })
}

/// Register snapshot type used by the probe crate.
pub type RegFile = HashMap<RegId, u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use mao::MaoUnit;

    fn run(text: &str, entry: &str, args: &[u64]) -> u64 {
        let unit = MaoUnit::parse(text).unwrap();
        let p = Program::load(&unit).unwrap();
        run_functional(&p, entry, args, 1_000_000).unwrap().0
    }

    #[test]
    fn arithmetic_and_return() {
        let v = run(
            ".type f, @function\nf:\n\tmovl $40, %eax\n\taddl $2, %eax\n\tret\n",
            "f",
            &[],
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn arguments_arrive_in_sysv_registers() {
        let v = run(
            ".type f, @function\nf:\n\tmovq %rdi, %rax\n\taddq %rsi, %rax\n\tret\n",
            "f",
            &[30, 12],
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn loop_with_counter() {
        // sum 1..=10 = 55
        let text = r#"
	.type	f, @function
f:
	movl $0, %eax
	movl $1, %ecx
.L:
	addl %ecx, %eax
	addl $1, %ecx
	cmpl $10, %ecx
	jle .L
	ret
"#;
        assert_eq!(run(text, "f", &[]), 55);
    }

    #[test]
    fn memory_store_load() {
        let text = r#"
	.type	f, @function
f:
	movq %rdi, -8(%rsp)
	movq -8(%rsp), %rax
	ret
"#;
        assert_eq!(run(text, "f", &[0xdeadbeef]), 0xdeadbeef);
    }

    #[test]
    fn call_and_ret() {
        let text = r#"
	.type	f, @function
f:
	call g
	addq $1, %rax
	ret
	.type	g, @function
g:
	movq $41, %rax
	ret
"#;
        assert_eq!(run(text, "f", &[]), 42);
    }

    #[test]
    fn signed_and_unsigned_branches() {
        // if (a < b) signed -> 1 else 0
        let text = r#"
	.type	f, @function
f:
	cmpq %rsi, %rdi
	jl .Lyes
	movq $0, %rax
	ret
.Lyes:
	movq $1, %rax
	ret
"#;
        assert_eq!(run(text, "f", &[u64::MAX /* -1 */, 1]), 1);
        assert_eq!(run(text, "f", &[2, 1]), 0);
        // unsigned: -1 is big
        let textu = text.replace("jl .Lyes", "jb .Lyes");
        assert_eq!(run(&textu, "f", &[u64::MAX, 1]), 0);
    }

    #[test]
    fn jump_table_dispatch() {
        let text = r#"
	.type	f, @function
f:
	jmp *.Ltab(,%rdi,8)
.Lc0:
	movl $100, %eax
	ret
.Lc1:
	movl $200, %eax
	ret
	.section	.rodata
.Ltab:
	.quad	.Lc0
	.quad	.Lc1
"#;
        assert_eq!(run(text, "f", &[0]), 100);
        assert_eq!(run(text, "f", &[1]), 200);
    }

    #[test]
    fn sse_scalar_float() {
        // 1.5f + 2.25f = 3.75f -> truncated to int 3
        let text = r#"
	.type	f, @function
f:
	movss .LCa(%rip), %xmm0
	addss .LCb(%rip), %xmm0
	cvttss2si %xmm0, %eax
	ret
	.section	.rodata
.LCa:
	.long	1069547520
.LCb:
	.long	1074790400
"#;
        // 1069547520 = 1.5f bits, 1074790400 = 2.25f bits
        assert_eq!(run(text, "f", &[]), 3);
    }

    #[test]
    fn movsx_movzx() {
        let text = r#"
	.type	f, @function
f:
	movq $0xff, %rdi
	movsbl %dil, %eax
	ret
"#;
        assert_eq!(run(text, "f", &[]) & 0xffff_ffff, 0xffff_ffff); // -1 sign-extended
        let text = text.replace("movsbl", "movzbl");
        assert_eq!(run(&text, "f", &[]), 0xff);
    }

    #[test]
    fn width_write_semantics() {
        let text = r#"
	.type	f, @function
f:
	movq $-1, %rax
	movl $0, %eax
	ret
"#;
        assert_eq!(run(text, "f", &[]), 0, "32-bit write zero-extends");
        let text = r#"
	.type	f, @function
f:
	movq $-1, %rax
	movw $0, %ax
	ret
"#;
        assert_eq!(run(text, "f", &[]), 0xffff_ffff_ffff_0000);
    }

    #[test]
    fn shifts_and_rotates() {
        let t = ".type f, @function\nf:\n\tmovl $1, %eax\n\tshll $4, %eax\n\tret\n";
        assert_eq!(run(t, "f", &[]), 16);
        let t = ".type f, @function\nf:\n\tmovl $-16, %eax\n\tsarl $2, %eax\n\tret\n";
        assert_eq!(run(t, "f", &[]) as u32 as i32, -4);
        let t = ".type f, @function\nf:\n\tmovl $0x80000001, %eax\n\troll $1, %eax\n\tret\n";
        assert_eq!(run(t, "f", &[]), 3);
    }

    #[test]
    fn mul_div() {
        let t = ".type f, @function\nf:\n\tmovl $6, %eax\n\timull $7, %eax, %eax\n\tret\n";
        assert_eq!(run(t, "f", &[]), 42);
        let t = ".type f, @function\nf:\n\tmovl $85, %eax\n\tcltd\n\tmovl $2, %ecx\n\tidivl %ecx\n\tret\n";
        assert_eq!(run(t, "f", &[]), 42);
    }

    #[test]
    fn divide_by_zero_traps() {
        let unit = MaoUnit::parse(
            ".type f, @function\nf:\n\tmovl $0, %ecx\n\tmovl $1, %eax\n\tcltd\n\tidivl %ecx\n\tret\n",
        )
        .unwrap();
        let p = Program::load(&unit).unwrap();
        assert_eq!(
            run_functional(&p, "f", &[], 100),
            Err(SimError::DivideError)
        );
    }

    #[test]
    fn budget_guard() {
        let unit = MaoUnit::parse(".type f, @function\nf:\n.L:\n\tjmp .L\n").unwrap();
        let p = Program::load(&unit).unwrap();
        assert_eq!(run_functional(&p, "f", &[], 100), Err(SimError::Budget));
    }

    #[test]
    fn external_call_is_an_error() {
        let unit = MaoUnit::parse(".type f, @function\nf:\n\tcall printf\n\tret\n").unwrap();
        let p = Program::load(&unit).unwrap();
        assert!(matches!(
            run_functional(&p, "f", &[], 100),
            Err(SimError::ExternalTarget(s)) if s == "printf"
        ));
    }

    #[test]
    fn cmov_and_setcc() {
        let t = r#"
	.type	f, @function
f:
	movl $5, %eax
	movl $9, %ecx
	cmpl $3, %eax
	cmovg %ecx, %eax
	ret
"#;
        assert_eq!(run(t, "f", &[]), 9);
        let t = r#"
	.type	f, @function
f:
	xorl %eax, %eax
	cmpl $0, %eax
	sete %al
	ret
"#;
        assert_eq!(run(t, "f", &[]), 1);
    }

    #[test]
    fn inc_preserves_carry() {
        let t = r#"
	.type	f, @function
f:
	movq $-1, %rax
	addq $1, %rax
	incq %rax
	jc .Lcarry
	movl $0, %eax
	ret
.Lcarry:
	movl $1, %eax
	ret
"#;
        assert_eq!(run(t, "f", &[]), 1, "CF survives the inc");
    }

    #[test]
    fn high_byte_registers() {
        let t = ".type f, @function\nf:\n\tmovl $0x1234, %eax\n\tmovzbl %ah, %eax\n\tret\n";
        assert_eq!(run(t, "f", &[]), 0x12);
    }
}
