//! Loaded program image: absolute addresses, label resolution, data
//! sections materialized into memory.
//!
//! The simulator executes a [`mao::MaoUnit`] directly (no object file): the
//! relaxation layout provides every instruction's size, each section gets a
//! base virtual address, and data directives (jump tables!) are written
//! into the initial memory image with symbols resolved to their absolute
//! addresses.

use std::collections::HashMap;

use mao::relax::{relax, Layout};
use mao::{EntryId, MaoUnit};
use mao_asm::{DataItem, Directive, Entry};

use crate::memory::Memory;

/// Base virtual address of the text section.
pub const TEXT_BASE: u64 = 0x0040_0000;
/// Base of the first non-text section; subsequent sections are spaced by
/// [`SECTION_STRIDE`].
pub const DATA_BASE: u64 = 0x1000_0000;
/// Virtual-address spacing between sections.
pub const SECTION_STRIDE: u64 = 0x0100_0000;
/// Initial stack pointer.
pub const STACK_TOP: u64 = 0x7fff_ff00;

/// Program loading error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Relaxation failed (unencodable instruction).
    Relax(String),
    /// A data directive references an undefined symbol.
    UndefinedSymbol(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Relax(m) => write!(f, "relaxation failed: {m}"),
            LoadError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A unit prepared for execution.
#[derive(Debug, Clone)]
pub struct Program {
    /// The IR being executed.
    pub unit: MaoUnit,
    /// Relaxation layout (sizes, section-relative addresses, branch forms).
    pub layout: Layout,
    /// Absolute virtual address of each entry.
    pub entry_va: Vec<u64>,
    /// Map from instruction/label VA to entry id.
    pub va_to_entry: HashMap<u64, EntryId>,
    /// Label name to VA.
    pub label_va: HashMap<String, u64>,
}

impl Program {
    /// Load a unit: relax, place sections, resolve labels.
    pub fn load(unit: &MaoUnit) -> Result<Program, LoadError> {
        let layout = relax(unit).map_err(|e| LoadError::Relax(e.to_string()))?;
        let names = unit.section_names();
        // Assign section bases in order of first appearance.
        let mut bases: HashMap<&str, u64> = HashMap::new();
        let mut next_data = DATA_BASE;
        for name in &names {
            if !bases.contains_key(name) {
                let base = if *name == ".text" || name.starts_with(".text.") {
                    TEXT_BASE
                } else {
                    let b = next_data;
                    next_data += SECTION_STRIDE;
                    b
                };
                bases.insert(name, base);
            }
        }
        let mut entry_va = Vec::with_capacity(unit.len());
        let mut va_to_entry = HashMap::new();
        let mut label_va = HashMap::new();
        for (id, e) in unit.entries().iter().enumerate() {
            let va = bases[names[id]] + layout.addr[id];
            entry_va.push(va);
            match e {
                Entry::Insn(_) => {
                    va_to_entry.entry(va).or_insert(id);
                }
                Entry::Label(l) => {
                    va_to_entry.entry(va).or_insert(id);
                    label_va.entry(l.as_str().to_string()).or_insert(va);
                }
                Entry::Directive(_) => {}
            }
        }
        Ok(Program {
            unit: unit.clone(),
            layout,
            entry_va,
            va_to_entry,
            label_va,
        })
    }

    /// Materialize data sections (and string/zero directives) into a fresh
    /// memory image, resolving symbolic items to absolute addresses.
    pub fn initial_memory(&self) -> Result<Memory, LoadError> {
        let mut mem = Memory::new();
        for (id, e) in self.unit.entries().iter().enumerate() {
            let Entry::Directive(d) = e else { continue };
            let va = self.entry_va[id];
            match d {
                Directive::Data { width, items } => {
                    let n = width.bytes() as u8;
                    for (k, item) in items.iter().enumerate() {
                        let value = match item {
                            DataItem::Imm(v) => *v as u64,
                            DataItem::Symbol(s) => {
                                *self.label_va.get(s.as_str()).ok_or_else(|| {
                                    LoadError::UndefinedSymbol(s.as_str().to_string())
                                })?
                            }
                        };
                        mem.write(va + k as u64 * u64::from(n), value, n);
                    }
                }
                Directive::Ascii(s) | Directive::Asciz(s) => {
                    for (k, b) in s.bytes().enumerate() {
                        mem.write_u8(va + k as u64, b);
                    }
                    if matches!(d, Directive::Asciz(_)) {
                        mem.write_u8(va + s.len() as u64, 0);
                    }
                }
                Directive::Zero(n) => {
                    for k in 0..*n {
                        mem.write_u8(va + k, 0);
                    }
                }
                _ => {}
            }
        }
        Ok(mem)
    }

    /// Entry id of the first *instruction* at or after `id`.
    pub fn next_insn(&self, mut id: EntryId) -> Option<EntryId> {
        while id < self.unit.len() {
            if self.unit.insn(id).is_some() {
                return Some(id);
            }
            id += 1;
        }
        None
    }

    /// Entry id of the instruction a label points at.
    pub fn label_insn(&self, label: &str) -> Option<EntryId> {
        let id = self.unit.find_label(label)?;
        self.next_insn(id)
    }

    /// Entry id for a branch-target VA (e.g. from a jump table or `ret`).
    pub fn entry_at_va(&self, va: u64) -> Option<EntryId> {
        self.va_to_entry.get(&va).and_then(|&id| self.next_insn(id))
    }

    /// Size in bytes of the instruction at `id`.
    pub fn insn_len(&self, id: EntryId) -> u32 {
        self.layout.size[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_places_sections() {
        let unit = MaoUnit::parse(
            ".text\nf:\n\tnop\n\tret\n.section .rodata\n.LC:\n\t.quad f\n\t.long 42\n",
        )
        .unwrap();
        let p = Program::load(&unit).unwrap();
        assert_eq!(p.label_va["f"], TEXT_BASE);
        assert_eq!(p.label_va[".LC"], DATA_BASE);
        let mut mem = p.initial_memory().unwrap();
        assert_eq!(
            mem.read(DATA_BASE, 8),
            TEXT_BASE,
            "jump-table slot holds f's VA"
        );
        assert_eq!(mem.read(DATA_BASE + 8, 4), 42);
    }

    #[test]
    fn string_and_zero_materialized() {
        let unit = MaoUnit::parse(".section .rodata\ns:\n\t.asciz \"hi\"\n\t.zero 4\n").unwrap();
        let p = Program::load(&unit).unwrap();
        let mut mem = p.initial_memory().unwrap();
        assert_eq!(mem.read_u8(DATA_BASE), b'h');
        assert_eq!(mem.read_u8(DATA_BASE + 1), b'i');
        assert_eq!(mem.read_u8(DATA_BASE + 2), 0);
    }

    #[test]
    fn undefined_symbol_in_data_errors() {
        let unit = MaoUnit::parse(".section .rodata\n\t.quad nowhere\n").unwrap();
        let p = Program::load(&unit).unwrap();
        assert!(matches!(
            p.initial_memory(),
            Err(LoadError::UndefinedSymbol(s)) if s == "nowhere"
        ));
    }

    #[test]
    fn va_to_entry_roundtrip() {
        let unit = MaoUnit::parse("f:\n\tnop\n\tnop\n\tret\n").unwrap();
        let p = Program::load(&unit).unwrap();
        // Second nop at TEXT_BASE+1.
        let id = p.entry_at_va(TEXT_BASE + 1).unwrap();
        assert_eq!(p.entry_va[id], TEXT_BASE + 1);
        assert!(p.entry_at_va(TEXT_BASE + 100).is_none());
    }

    #[test]
    fn label_insn_skips_to_instruction() {
        let unit = MaoUnit::parse("f:\ng:\n\tnop\n").unwrap();
        let p = Program::load(&unit).unwrap();
        let id = p.label_insn("f").unwrap();
        assert!(p.unit.insn(id).is_some());
    }
}
