//! Flat sparse memory and the set-associative L1 data cache model.

use std::collections::HashMap;

use crate::config::CacheConfig;

/// Sparse byte-addressable memory (4 KiB pages, zero-fill on first touch).
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; 4096]>>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&mut self, addr: u64) -> &mut [u8; 4096] {
        self.pages
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0; 4096]))
    }

    /// Read one byte.
    pub fn read_u8(&mut self, addr: u64) -> u8 {
        self.page(addr)[(addr & 0xfff) as usize]
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page(addr)[(addr & 0xfff) as usize] = value;
    }

    /// Read one byte without allocating a page (missing pages read zero).
    /// Lets post-run state comparison walk addresses from another run
    /// without perturbing this memory's footprint.
    pub fn peek_u8(&self, addr: u64) -> u8 {
        self.pages
            .get(&(addr >> 12))
            .map_or(0, |p| p[(addr & 0xfff) as usize])
    }

    /// Read `n <= 8` bytes little-endian.
    pub fn read(&mut self, addr: u64, n: u8) -> u64 {
        let mut out = 0u64;
        for i in 0..u64::from(n) {
            out |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        out
    }

    /// Write `n <= 8` bytes little-endian.
    pub fn write(&mut self, addr: u64, value: u64, n: u8) {
        for i in 0..u64::from(n) {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Number of touched pages (for tests / footprint checks).
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }
}

/// One cache line's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; filled from memory.
    Miss,
}

/// Set-associative L1 data cache with LRU replacement and non-temporal
/// fills (§III.E.k): a non-temporal access is constrained to a single way,
/// so streaming data cannot evict more than 1/ways of a set.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Option<Line>>>,
    stamp: u64,
}

impl Cache {
    /// Empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = vec![vec![None; config.ways]; config.sets];
        Cache {
            config,
            sets,
            stamp: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size;
        let set = (line % self.config.sets as u64) as usize;
        let tag = line / self.config.sets as u64;
        (set, tag)
    }

    /// Access `addr`; `non_temporal` restricts the fill to way 0.
    pub fn access(&mut self, addr: u64, non_temporal: bool) -> Access {
        self.stamp += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        // Hit?
        for slot in set.iter_mut() {
            if let Some(line) = slot {
                if line.tag == tag {
                    line.lru = self.stamp;
                    return Access::Hit;
                }
            }
        }
        // Miss: pick victim.
        if non_temporal {
            // Non-temporal data always replaces way 0 ("replacing a single
            // way in the associative caches").
            set[0] = Some(Line {
                tag,
                lru: self.stamp,
            });
        } else {
            let victim = (0..set.len())
                .min_by_key(|&w| set[w].map_or(0, |l| l.lru))
                .expect("cache has at least one way");
            set[victim] = Some(Line {
                tag,
                lru: self.stamp,
            });
        }
        Access::Miss
    }

    /// Is the line containing `addr` present (without touching LRU)?
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx]
            .iter()
            .flatten()
            .any(|line| line.tag == tag)
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig {
            line_size: 64,
            sets: 2,
            ways: 2,
            hit_latency: 3,
            miss_latency: 50,
        })
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = Memory::new();
        m.write(0x1000, 0x1122334455667788, 8);
        assert_eq!(m.read(0x1000, 8), 0x1122334455667788);
        assert_eq!(m.read(0x1000, 4), 0x55667788);
        assert_eq!(m.read(0x1004, 4), 0x11223344);
        assert_eq!(m.read(0x2000, 8), 0, "untouched memory reads zero");
    }

    #[test]
    fn memory_cross_page_access() {
        let mut m = Memory::new();
        m.write(0xffe, 0xaabbccdd, 4);
        assert_eq!(m.read(0xffe, 4), 0xaabbccdd);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn cache_hit_after_miss() {
        let mut c = small_cache();
        assert_eq!(c.access(0x100, false), Access::Miss);
        assert_eq!(c.access(0x100, false), Access::Hit);
        assert_eq!(c.access(0x13f, false), Access::Hit, "same 64B line");
        assert_eq!(c.access(0x140, false), Access::Miss, "next line");
    }

    #[test]
    fn lru_eviction() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 2 lines = 128B).
        let a = 0x0;
        let b = 0x80;
        let d = 0x100;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a more recent than b
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn non_temporal_fills_single_way() {
        let mut c = small_cache();
        let hot = 0x0;
        c.access(hot, false);
        // Promote hot out of way 0: touch it again after something lands in
        // way 0? With 2 ways: hot in victim-chosen way. Then stream many
        // non-temporal lines through the same set: hot must survive.
        for i in 1..100u64 {
            c.access(i * 128, true); // all map to set 0, non-temporal
        }
        assert!(c.contains(hot) || !c.contains(hot), "structure intact");
        // Precise claim: after NT streaming, at most way 0 was replaced, so
        // the number of distinct lines evicted from other ways is 0. `hot`
        // was in way 0 or way 1; if way 1, it survived.
        let mut c2 = small_cache();
        c2.access(hot, false); // fills some way (way 0, lru tie -> way 0)
        c2.access(0x80, false); // fills way 1
                                // hot is in way 0; streaming NT will evict it but never way 1.
        for i in 2..50u64 {
            c2.access(i * 128, true);
        }
        assert!(c2.contains(0x80), "non-way-0 line survives NT streaming");
    }

    #[test]
    fn normal_streaming_pollutes() {
        // Contrast: the same streaming without NT evicts everything.
        let mut c = small_cache();
        c.access(0x0, false);
        c.access(0x80, false);
        for i in 2..50u64 {
            c.access(i * 128, false);
        }
        assert!(!c.contains(0x0));
        assert!(!c.contains(0x80));
    }
}
