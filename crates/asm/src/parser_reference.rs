//! Reference (seed) parser — the pre-zero-copy baseline.
//!
//! This is the original allocating parser, kept verbatim modulo the `Sym`
//! field types of the IR it must now produce: it still walks `char`s,
//! materializes a `String` per token before interning, splits statements and
//! operands through intermediate `Vec`s, and re-runs width inference by
//! constructing a throwaway `Instruction`. It exists for two reasons:
//!
//! 1. **Honest benchmarking.** `bench_frontend` gates the zero-copy parser
//!    at >= 2x the *seed* algorithm; measuring the seed algorithm against the
//!    same IR types keeps the comparison apples-to-apples.
//! 2. **Differential testing.** `parse(text)` must agree with
//!    `parse_reference(text)` on every input (see the proptest in
//!    `tests/frontend.rs`), which pins the rewrite to the seed semantics.

use mao_x86::insn::Instruction;
use mao_x86::mnemonic::parse_mnemonic;
use mao_x86::operand::{Disp, Mem, Operand};
use mao_x86::reg::{parse_reg_name, Reg};
use mao_x86::sym::Sym;

use crate::entry::{Align, DataItem, DataWidth, Directive, Entry};

use crate::parser::ParseError;

/// Parse a complete assembly file with the seed algorithm.
pub fn parse_reference(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        for stmt in split_statements(line) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            // Helpers report line + message; the raw source line is only
            // known here, so attach it on the way out.
            parse_statement(stmt, lineno, &mut entries).map_err(|mut e| {
                if e.text.is_empty() {
                    e.text = raw_line.trim().to_string();
                }
                e
            })?;
        }
    }
    Ok(entries)
}

/// Remove a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Split on `;` statement separators, respecting string literals.
fn split_statements(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b';' if !in_str => {
                out.push(&line[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&line[start..]);
    out
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '@')
}

fn parse_statement(stmt: &str, lineno: usize, out: &mut Vec<Entry>) -> Result<(), ParseError> {
    // Leading labels: `name:` possibly repeated.
    let mut rest = stmt;
    loop {
        let sym_len = rest.chars().take_while(|&c| is_symbol_char(c)).count();
        if sym_len > 0 {
            let sym_bytes: usize = rest.chars().take(sym_len).map(char::len_utf8).sum();
            if rest[sym_bytes..].starts_with(':') {
                out.push(Entry::Label(Sym::intern(&rest[..sym_bytes].to_string())));
                rest = rest[sym_bytes + 1..].trim_start();
                if rest.is_empty() {
                    return Ok(());
                }
                continue;
            }
        }
        break;
    }

    if rest.starts_with('.') {
        out.push(Entry::Directive(parse_directive(rest, lineno)?));
        Ok(())
    } else {
        out.push(Entry::Insn(parse_instruction(rest, lineno)?.into()));
        Ok(())
    }
}

fn err(lineno: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line: lineno,
        message: message.into(),
        text: String::new(),
        offset: 0..0,
    }
}

/// Parse an integer literal: decimal, `0x` hex, `0` octal, with optional sign.
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, s),
    };
    let mag = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else if body.len() > 1 && body.starts_with('0') && body.chars().all(|c| c.is_digit(8)) {
        u64::from_str_radix(&body[1..], 8).ok()?
    } else {
        body.parse::<u64>().ok()?
    };
    if neg {
        Some((mag as i64).wrapping_neg())
    } else {
        Some(mag as i64)
    }
}

/// Parse `sym`, `sym+4`, `sym-8` into a symbolic displacement.
fn parse_symbol_expr(s: &str) -> Option<Disp> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let first = s.chars().next()?;
    if !(first.is_ascii_alphabetic() || matches!(first, '_' | '.' | '$')) {
        return None;
    }
    let split = s
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i);
    let (name, addend) = match split {
        Some(i) => {
            let (n, a) = s.split_at(i);
            (n.trim(), parse_int(a)?)
        }
        None => (s, 0),
    };
    if name.is_empty() || !name.chars().all(is_symbol_char) {
        return None;
    }
    Some(Disp::Symbol {
        name: Sym::intern(&name.to_string()),
        addend,
    })
}

/// Parse the memory operand `disp(base,index,scale)` or plain `disp`.
fn parse_mem(s: &str, lineno: usize) -> Result<Mem, ParseError> {
    let s = s.trim();
    let (disp_str, inner) = match s.find('(') {
        Some(open) => {
            let close = s
                .rfind(')')
                .ok_or_else(|| err(lineno, format!("missing `)` in `{s}`")))?;
            (&s[..open], Some(&s[open + 1..close]))
        }
        None => (s, None),
    };

    let disp = if disp_str.trim().is_empty() {
        Disp::None
    } else if let Some(v) = parse_int(disp_str) {
        Disp::Imm(v)
    } else if let Some(d) = parse_symbol_expr(disp_str) {
        d
    } else {
        return Err(err(lineno, format!("bad displacement `{disp_str}`")));
    };

    let mut mem = Mem {
        disp,
        base: None,
        index: None,
        scale: 1,
    };

    if let Some(inner) = inner {
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.len() > 3 {
            return Err(err(lineno, format!("too many parts in `({inner})`")));
        }
        let parse_r = |p: &str| -> Result<Reg, ParseError> {
            let name = p
                .strip_prefix('%')
                .ok_or_else(|| err(lineno, format!("expected register, got `{p}`")))?;
            parse_reg_name(name).ok_or_else(|| err(lineno, format!("unknown register `{p}`")))
        };
        if let Some(b) = parts.first() {
            if !b.is_empty() {
                mem.base = Some(parse_r(b)?);
            }
        }
        if let Some(i) = parts.get(1) {
            if !i.is_empty() {
                mem.index = Some(parse_r(i)?);
            }
        }
        if let Some(sc) = parts.get(2) {
            if !sc.is_empty() {
                let v = parse_int(sc).ok_or_else(|| err(lineno, format!("bad scale `{sc}`")))?;
                if ![1, 2, 4, 8].contains(&v) {
                    return Err(err(lineno, format!("invalid scale {v}")));
                }
                mem.scale = v as u8;
            }
        }
    }
    Ok(mem)
}

/// Split an operand list on top-level commas (commas inside `(...)` group).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out.iter()
        .map(|p| p.trim())
        .filter(|p| !p.is_empty())
        .collect()
}

fn parse_operand(s: &str, is_branch: bool, lineno: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(imm) = s.strip_prefix('$') {
        let v =
            parse_int(imm).ok_or_else(|| err(lineno, format!("unsupported immediate `{s}`")))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(reg) = s.strip_prefix('%') {
        let r =
            parse_reg_name(reg).ok_or_else(|| err(lineno, format!("unknown register `{s}`")))?;
        return Ok(Operand::Reg(r));
    }
    if let Some(ind) = s.strip_prefix('*') {
        let ind = ind.trim();
        if let Some(reg) = ind.strip_prefix('%') {
            let r = parse_reg_name(reg)
                .ok_or_else(|| err(lineno, format!("unknown register `{ind}`")))?;
            return Ok(Operand::IndirectReg(r));
        }
        return Ok(Operand::IndirectMem(parse_mem(ind, lineno)?));
    }
    if is_branch && !s.contains('(') && parse_int(s).is_none() {
        // Direct branch/call target.
        if s.chars().all(is_symbol_char) {
            return Ok(Operand::Label(Sym::intern(&s.to_string())));
        }
        return Err(err(lineno, format!("bad branch target `{s}`")));
    }
    Ok(Operand::Mem(parse_mem(s, lineno)?))
}

fn parse_instruction(s: &str, lineno: usize) -> Result<Instruction, ParseError> {
    let mut rest = s.trim();
    let mut lock = false;
    if let Some(r) = rest.strip_prefix("lock") {
        if r.starts_with(char::is_whitespace) {
            lock = true;
            rest = r.trim_start();
        }
    }
    let (mnem_str, ops_str) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let parsed = parse_mnemonic(mnem_str)
        .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mnem_str}`")))?;
    let is_branch = parsed.mnemonic.is_branch() || parsed.mnemonic == mao_x86::Mnemonic::Call;
    let mut operands = Vec::new();
    if !ops_str.is_empty() {
        for op in split_operands(ops_str) {
            operands.push(parse_operand(op, is_branch, lineno)?);
        }
    }
    let mut insn = Instruction {
        mnemonic: parsed.mnemonic,
        op_width: parsed.op_width,
        src_width: parsed.src_width,
        lock,
        operands: operands.into(),
    };
    if insn.op_width.is_none() {
        // Re-run width inference now that operands are attached.
        let inferred = Instruction::new(insn.mnemonic, insn.operands.clone()).op_width;
        insn.op_width = inferred;
    }
    Ok(insn)
}

fn unescape(s: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some(other) => {
                return Err(err(lineno, format!("unsupported escape `\\{other}`")));
            }
            None => return Err(err(lineno, "dangling backslash".to_string())),
        }
    }
    Ok(out)
}

/// Extract the quoted string from `"..."`.
fn quoted(s: &str, lineno: usize) -> Result<String, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected quoted string, got `{s}`")))?;
    unescape(inner, lineno)
}

fn parse_directive(s: &str, lineno: usize) -> Result<Directive, ParseError> {
    let (name, args) = match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let d = match name {
        ".text" | ".data" | ".bss" => Directive::Section {
            name: Sym::intern(&name.to_string()),
            args: vec![],
        },
        ".section" => {
            let mut parts = args.splitn(2, ',');
            let sec = parts.next().unwrap_or("").trim().to_string();
            let rest: Vec<String> = parts
                .next()
                .map(|r| r.split(',').map(|a| a.trim().to_string()).collect())
                .unwrap_or_default();
            if sec.is_empty() {
                return Err(err(lineno, ".section needs a name"));
            }
            Directive::Section {
                name: Sym::intern(&sec),
                args: rest,
            }
        }
        ".globl" | ".global" => Directive::Global(Sym::intern(&args.trim().to_string())),
        ".type" => {
            let (sym, kind) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".type needs `sym, @kind`"))?;
            let kind = kind.trim();
            let kind = kind
                .strip_prefix('@')
                .or_else(|| kind.strip_prefix('%'))
                .unwrap_or(kind);
            Directive::Type {
                symbol: Sym::intern(&sym.trim().to_string()),
                kind: Sym::intern(&kind.to_string()),
            }
        }
        ".size" => {
            let (sym, expr) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".size needs `sym, expr`"))?;
            Directive::Size {
                symbol: Sym::intern(&sym.trim().to_string()),
                expr: expr.trim().to_string(),
            }
        }
        ".align" | ".balign" | ".p2align" => {
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            let n = parse_int(parts.first().copied().unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad alignment in `{s}`")))?;
            if n < 0 {
                return Err(err(lineno, "negative alignment"));
            }
            let p2_form = name == ".p2align";
            let alignment = if p2_form {
                if n > 32 {
                    return Err(err(lineno, format!("p2align exponent {n} too large")));
                }
                1u64 << n
            } else {
                let n = n as u64;
                if !n.is_power_of_two() && n != 0 {
                    return Err(err(lineno, format!("alignment {n} is not a power of two")));
                }
                n.max(1)
            };
            let fill = parts
                .get(1)
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u8::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad fill `{p}`")))
                })
                .transpose()?;
            let max_skip = parts
                .get(2)
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad max-skip `{p}`")))
                })
                .transpose()?;
            Directive::Align(Align {
                alignment,
                fill,
                max_skip,
                p2_form,
            })
        }
        ".byte" | ".word" | ".value" | ".long" | ".int" | ".quad" => {
            let width = match name {
                ".byte" => DataWidth::Byte,
                ".word" | ".value" => DataWidth::Word,
                ".long" | ".int" => DataWidth::Long,
                ".quad" => DataWidth::Quad,
                _ => unreachable!(),
            };
            let mut items = Vec::new();
            for item in args.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                if let Some(v) = parse_int(item) {
                    items.push(DataItem::Imm(v));
                } else if item.chars().all(is_symbol_char) {
                    items.push(DataItem::Symbol(Sym::intern(&item.to_string())));
                } else {
                    return Err(err(lineno, format!("unsupported data item `{item}`")));
                }
            }
            Directive::Data { width, items }
        }
        ".ascii" => Directive::Ascii(quoted(args, lineno)?),
        ".asciz" | ".string" => Directive::Asciz(quoted(args, lineno)?),
        ".zero" | ".skip" | ".space" => {
            let n = parse_int(args.split(',').next().unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad size in `{s}`")))?;
            Directive::Zero(n.max(0) as u64)
        }
        ".comm" => {
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            if parts.len() < 2 {
                return Err(err(lineno, ".comm needs `sym, size`"));
            }
            let size = parse_int(parts[1])
                .ok_or_else(|| err(lineno, format!("bad .comm size `{}`", parts[1])))?;
            let align = parts
                .get(2)
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad .comm align `{p}`")))
                })
                .transpose()?;
            Directive::Comm {
                symbol: Sym::intern(&parts[0].to_string()),
                size: size.max(0) as u64,
                align,
            }
        }
        other => Directive::Other {
            name: Sym::intern(&other.to_string()),
            args: args.to_string(),
        },
    };
    Ok(d)
}
