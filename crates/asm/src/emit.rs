//! Textual assembly emission.
//!
//! MAO's output is another assembly file that flows through the standard
//! toolchain. Emission is the inverse of parsing: `parse(emit(entries))`
//! yields an equal entry list (the identity-transform property the paper
//! verifies by disassembling object files, §III.A).

use std::fmt::Write as _;

use crate::entry::Entry;

/// Render the entry list as an assembly file.
pub fn emit(entries: &[Entry]) -> String {
    let mut out = String::new();
    for e in entries {
        // Entry::Display already handles per-kind indentation.
        let _ = writeln!(out, "{e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SAMPLE: &str = r#"
	.text
	.globl	main
	.type	main, @function
main:
	push %rbp
	mov %rsp, %rbp
	movl $5, -4(%rbp)
	jmp .L2
.L1:
	addl $1, -4(%rbp)
	subl $1, -4(%rbp)
.L2:
	cmpl $0, -4(%rbp)
	jne .L1
	pop %rbp
	ret
	.size	main, .-main
	.section	.rodata,"a",@progbits
.LC0:
	.quad	.L1
	.string	"hi\n"
"#;

    #[test]
    fn parse_emit_parse_is_identity() {
        let first = parse(SAMPLE).unwrap();
        let text = emit(&first);
        let second = parse(&text).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn emit_emits_one_line_per_entry() {
        let entries = parse("nop\nnop\n").unwrap();
        let text = emit(&entries);
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn nop_length_survives_roundtrip() {
        use mao_x86::encode::{encoded_length, BranchForm};
        use mao_x86::Instruction;
        for len in 1..=6usize {
            let n = Instruction::nop_of_len(len);
            let text = emit(&[Entry::Insn(n.into())]);
            let back = parse(&text).unwrap();
            let i = back[0].insn().unwrap();
            assert_eq!(
                encoded_length(i, BranchForm::Rel32).unwrap(),
                len,
                "length {len} lost in {text:?}"
            );
        }
    }
}
