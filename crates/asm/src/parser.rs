//! AT&T-syntax assembly parser — zero-copy front end.
//!
//! Parses compiler-emitted assembly text (the same dialect gas accepts for
//! x86-64 ELF targets) into the flat [`Entry`] list. Unknown directives are
//! passed through verbatim; unknown *instructions* are an error, because MAO
//! must understand every instruction it may move or measure.
//!
//! This is the zero-copy rewrite of the seed parser (which is preserved as
//! [`crate::parser_reference::parse_reference`] for benchmarking and
//! differential testing). The differences that buy the front-end throughput:
//!
//! - **No per-token `String`s.** Tokens are `&str` slices of the input
//!   buffer; symbol-shaped tokens intern directly into the global [`Sym`]
//!   table without an intermediate allocation.
//! - **Byte-level scanning.** Line splitting, comment stripping, statement
//!   splitting, label scans and operand splitting walk `&[u8]` with a fast
//!   path for lines containing no `#`/`"`/`;`. Slices are only taken at
//!   ASCII delimiter positions, which are always UTF-8 char boundaries.
//! - **No intermediate `Vec`s.** Statements and operands are processed as
//!   they are found instead of being collected per line.
//! - **Width inference without cloning.** [`Instruction::infer_width_of`]
//!   runs on the operand slice instead of round-tripping through a
//!   throwaway `Instruction`.
//! - **Parallel parsing.** [`parse_with_jobs`] splits the input at line
//!   boundaries (the grammar is line-local; all cross-line state lives in
//!   `MaoUnit`), parses chunks on scoped threads, and concatenates in input
//!   order — byte-identical results at any job count, and the first error in
//!   input order is reported exactly as the sequential parse would.
//!
//! Errors carry the 1-based line, the offending source line text, and the
//! byte-offset range of the offending statement within the input buffer.

use std::fmt;
use std::ops::Range;

use mao_isa::IsaId;
use mao_x86::insn::Instruction;
use mao_x86::mnemonic::parse_mnemonic;
use mao_x86::operand::{Disp, Mem, Operand, Operands};
use mao_x86::reg::{parse_reg_name, Reg};
use mao_x86::sym::Sym;

use crate::entry::{Align, DataItem, DataWidth, Directive, Entry};

/// Parse failure, with the 1-based source line, the offending text, and the
/// byte range of the offending statement in the input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
    /// The source line that failed, trimmed (empty if unavailable).
    pub text: String,
    /// Byte range of the offending (trimmed) statement within the input
    /// buffer; `0..0` if unavailable.
    pub offset: Range<usize>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.text.is_empty() {
            write!(f, " in `{}`", self.text)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Minimum input size before [`parse_with_jobs`] bothers spawning threads.
const PARALLEL_MIN_BYTES: usize = 64 * 1024;

/// Parse a complete assembly file into the flat entry list.
///
/// # Examples
///
/// ```
/// let entries = mao_asm::parse(".text\nfoo:\n\tpush %rbp\n\tret\n").unwrap();
/// assert_eq!(entries.len(), 4);
/// ```
pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    parse_chunk(text, 1, 0, IsaId::X86_64)
}

/// Parse a complete assembly file for the given ISA.
///
/// The grammar above the instruction level (labels, directives, statement
/// separators) is shared; instruction statements dispatch to the ISA's
/// parser, and the comment syntax follows the ISA's assembler dialect
/// (`#` on x86, `//` on AArch64 — where `#` introduces immediates).
pub fn parse_isa(text: &str, isa: IsaId) -> Result<Vec<Entry>, ParseError> {
    parse_chunk(text, 1, 0, isa)
}

/// Parse with up to `jobs` threads, splitting at line boundaries.
///
/// Byte-identical to [`parse`] at any job count: the grammar is line-local,
/// chunks are merged in input order, and the first error in input order wins.
pub fn parse_with_jobs(text: &str, jobs: usize) -> Result<Vec<Entry>, ParseError> {
    parse_with_jobs_isa(text, jobs, IsaId::X86_64)
}

/// [`parse_with_jobs`] for the given ISA (see [`parse_isa`]).
pub fn parse_with_jobs_isa(text: &str, jobs: usize, isa: IsaId) -> Result<Vec<Entry>, ParseError> {
    let jobs = jobs.max(1);
    if jobs == 1 || text.len() < PARALLEL_MIN_BYTES {
        return parse_chunk(text, 1, 0, isa);
    }
    let bytes = text.as_bytes();
    // Chunk boundaries: the next line start at or after each even split
    // point. Dedup keeps chunks non-empty when lines are huge.
    let mut bounds: Vec<usize> = vec![0];
    for k in 1..jobs {
        let target = text.len() * k / jobs;
        let next_line = match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(off) => target + off + 1,
            None => text.len(),
        };
        if next_line > *bounds.last().unwrap() && next_line < text.len() {
            bounds.push(next_line);
        }
    }
    bounds.push(text.len());
    if bounds.len() <= 2 {
        return parse_chunk(text, 1, 0, isa);
    }

    // First line number of each chunk = 1 + newlines before its start.
    let mut first_lines = Vec::with_capacity(bounds.len() - 1);
    let mut line = 1usize;
    for w in bounds.windows(2) {
        first_lines.push(line);
        line += bytes[w[0]..w[1]].iter().filter(|&&b| b == b'\n').count();
    }

    let results: Vec<Result<Vec<Entry>, ParseError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .zip(&first_lines)
            .map(|(w, &first_line)| {
                let (start, end) = (w[0], w[1]);
                let chunk = &text[start..end];
                scope.spawn(move || parse_chunk(chunk, first_line, start, isa))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut chunks = Vec::with_capacity(results.len());
    for r in results {
        // Input-order scan: the first failing chunk holds the first error in
        // input order, because every earlier chunk parsed to completion.
        chunks.push(r?);
    }
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut c in chunks {
        out.append(&mut c);
    }
    Ok(out)
}

/// Sequential parse of `text`, which starts at 1-based line `first_line` and
/// byte offset `base` of the original input (both used for error reporting).
fn parse_chunk(
    text: &str,
    first_line: usize,
    base: usize,
    isa: IsaId,
) -> Result<Vec<Entry>, ParseError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(text.len() / 12 + 4);
    let mut pos = 0usize;
    let mut lineno = first_line;
    while pos < bytes.len() {
        // One fused (vectorizable) scan finds the line end and whether the
        // line contains a comment/string/separator byte; most lines have
        // none and go straight to the statement parser. The comment byte is
        // dialect-specific: `#` starts a comment in x86 gas but introduces
        // immediates on AArch64, whose comments are `//`.
        let mut special = false;
        let hit = if isa == IsaId::X86_64 {
            bytes[pos..]
                .iter()
                .position(|&b| matches!(b, b'\n' | b'#' | b'"' | b';'))
        } else {
            bytes[pos..]
                .iter()
                .position(|&b| matches!(b, b'\n' | b'/' | b'"' | b';'))
        };
        let line_end = match hit {
            Some(off) if bytes[pos + off] == b'\n' => pos + off,
            Some(off) => {
                special = true;
                match bytes[pos + off..].iter().position(|&b| b == b'\n') {
                    Some(o2) => pos + off + o2,
                    None => bytes.len(),
                }
            }
            None => bytes.len(),
        };
        let line = &text[pos..line_end];
        if special {
            parse_line_special(line, lineno, base + pos, isa, &mut out)?;
        } else {
            parse_segment(line, 0, line, lineno, base + pos, isa, &mut out)?;
        }
        pos = line_end + 1;
        lineno += 1;
    }
    Ok(out)
}

/// Parse one source line known to contain a `#`, `"`, or `;`: strip the
/// comment and split on `;` statement separators (both
/// string-literal-aware), then parse each statement.
fn parse_line_special(
    line: &str,
    lineno: usize,
    line_base: usize,
    isa: IsaId,
    out: &mut Vec<Entry>,
) -> Result<(), ParseError> {
    let bytes = line.as_bytes();
    // One string-aware scan handles both comment stripping and
    // statement splitting (identical state machine to the seed parser's
    // `strip_comment` + `split_statements` passes).
    let mut in_str = false;
    let mut escaped = false;
    let mut stmt_start = 0usize;
    let mut k = 0usize;
    while k < bytes.len() {
        let comment_here = if isa == IsaId::X86_64 {
            bytes[k] == b'#'
        } else {
            bytes[k] == b'/' && bytes.get(k + 1) == Some(&b'/')
        };
        if comment_here && !in_str {
            return parse_segment(
                &line[stmt_start..k],
                stmt_start,
                line,
                lineno,
                line_base,
                isa,
                out,
            );
        }
        match bytes[k] {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b';' if !in_str => {
                parse_segment(
                    &line[stmt_start..k],
                    stmt_start,
                    line,
                    lineno,
                    line_base,
                    isa,
                    out,
                )?;
                stmt_start = k + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
        k += 1;
    }
    parse_segment(
        &line[stmt_start..],
        stmt_start,
        line,
        lineno,
        line_base,
        isa,
        out,
    )
}

/// Trim one statement segment and parse it, annotating any error with the
/// full source line text and the statement's byte range.
fn parse_segment(
    seg: &str,
    seg_off: usize,
    raw_line: &str,
    lineno: usize,
    line_base: usize,
    isa: IsaId,
    out: &mut Vec<Entry>,
) -> Result<(), ParseError> {
    let stmt = fast_trim(seg);
    if stmt.is_empty() {
        return Ok(());
    }
    parse_statement(stmt, lineno, isa, out).map_err(|mut e| {
        if e.text.is_empty() {
            e.text = raw_line.trim().to_string();
        }
        if e.offset == (0..0) {
            let lead = seg.len() - fast_trim_start(seg).len();
            let start = line_base + seg_off + lead;
            e.offset = start..start + stmt.len();
        }
        e
    })
}

#[inline]
fn is_symbol_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'$' | b'@')
}

fn parse_statement(
    stmt: &str,
    lineno: usize,
    isa: IsaId,
    out: &mut Vec<Entry>,
) -> Result<(), ParseError> {
    // Leading labels: `name:` possibly repeated. Scanning stops at the first
    // non-symbol byte, which is always a char boundary (multi-byte UTF-8
    // sequences start with a non-symbol byte).
    let mut rest = stmt;
    let head_len = loop {
        let b = rest.as_bytes();
        let mut n = 0;
        while n < b.len() && is_symbol_byte(b[n]) {
            n += 1;
        }
        if n > 0 && n < b.len() && b[n] == b':' {
            out.push(Entry::Label(Sym::intern(&rest[..n])));
            rest = fast_trim_start(&rest[n + 1..]);
            if rest.is_empty() {
                return Ok(());
            }
            continue;
        }
        // `n` is the symbol-byte prefix of the head token — the mnemonic or
        // directive-name boundary, reused below instead of a fresh scan.
        break n;
    };

    if rest.as_bytes().first() == Some(&b'.') {
        out.push(Entry::Directive(parse_directive(rest, lineno)?));
        Ok(())
    } else if isa == IsaId::X86_64 {
        out.push(Entry::Insn(
            parse_instruction(rest, head_len, lineno)?.into(),
        ));
        Ok(())
    } else {
        let insn = mao_aarch64::parse_insn(rest).map_err(|m| err(lineno, m))?;
        out.push(Entry::Insn(insn.into()));
        Ok(())
    }
}

/// Is `b` one of the six ASCII whitespace bytes `char::is_whitespace` accepts?
#[inline]
fn is_ascii_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | 0x0b | 0x0c | b'\r')
}

fn err(lineno: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line: lineno,
        message: message.into(),
        text: String::new(),
        offset: 0..0,
    }
}

/// Parse an integer literal: decimal, `0x` hex, `0` octal, with optional sign.
fn parse_int(s: &str) -> Option<i64> {
    let s = fast_trim(s);
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, fast_trim(b)),
        None => (false, s),
    };
    let mag = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else if body.len() > 1
        && body.starts_with('0')
        && body.bytes().all(|b| (b'0'..=b'7').contains(&b))
    {
        u64::from_str_radix(&body[1..], 8).ok()?
    } else {
        body.parse::<u64>().ok()?
    };
    if neg {
        Some((mag as i64).wrapping_neg())
    } else {
        Some(mag as i64)
    }
}

/// Parse `sym`, `sym+4`, `sym-8` into a symbolic displacement.
fn parse_symbol_expr(s: &str) -> Option<Disp> {
    let s = fast_trim(s);
    let b = s.as_bytes();
    let first = *b.first()?;
    if !(first.is_ascii_alphabetic() || matches!(first, b'_' | b'.' | b'$')) {
        return None;
    }
    let split = b
        .iter()
        .skip(1)
        .position(|&c| c == b'+' || c == b'-')
        .map(|i| i + 1);
    let (name, addend) = match split {
        Some(i) => {
            let (n, a) = s.split_at(i);
            (fast_trim(n), parse_int(a)?)
        }
        None => (s, 0),
    };
    if name.is_empty() || !name.bytes().all(is_symbol_byte) {
        return None;
    }
    Some(Disp::Symbol {
        name: Sym::intern(name),
        addend,
    })
}

/// Parse the memory operand `disp(base,index,scale)` or plain `disp`.
// `s` arrives trimmed from `parse_operand`.
fn parse_mem(s: &str, lineno: usize) -> Result<Mem, ParseError> {
    let (disp_str, inner) = match s.find('(') {
        Some(open) => {
            let close = s
                .rfind(')')
                .ok_or_else(|| err(lineno, format!("missing `)` in `{s}`")))?;
            (&s[..open], Some(&s[open + 1..close]))
        }
        None => (s, None),
    };

    let disp = if fast_trim(disp_str).is_empty() {
        Disp::None
    } else if let Some(v) = parse_int(disp_str) {
        Disp::Imm(v)
    } else if let Some(d) = parse_symbol_expr(disp_str) {
        d
    } else {
        return Err(err(lineno, format!("bad displacement `{disp_str}`")));
    };

    let mut mem = Mem {
        disp,
        base: None,
        index: None,
        scale: 1,
    };

    if let Some(inner) = inner {
        let mut parts = inner.split(',');
        let base = parts.next().map(fast_trim);
        let index = parts.next().map(fast_trim);
        let scale = parts.next().map(fast_trim);
        if parts.next().is_some() {
            return Err(err(lineno, format!("too many parts in `({inner})`")));
        }
        let parse_r = |p: &str| -> Result<Reg, ParseError> {
            let name = p
                .strip_prefix('%')
                .ok_or_else(|| err(lineno, format!("expected register, got `{p}`")))?;
            parse_reg_name(name).ok_or_else(|| err(lineno, format!("unknown register `{p}`")))
        };
        if let Some(b) = base {
            if !b.is_empty() {
                mem.base = Some(parse_r(b)?);
            }
        }
        if let Some(i) = index {
            if !i.is_empty() {
                mem.index = Some(parse_r(i)?);
            }
        }
        if let Some(sc) = scale {
            if !sc.is_empty() {
                let v = parse_int(sc).ok_or_else(|| err(lineno, format!("bad scale `{sc}`")))?;
                if ![1, 2, 4, 8].contains(&v) {
                    return Err(err(lineno, format!("invalid scale {v}")));
                }
                mem.scale = v as u8;
            }
        }
    }
    Ok(mem)
}

// `s` arrives trimmed from `parse_instruction`'s operand split.
fn parse_operand(s: &str, is_branch: bool, lineno: usize) -> Result<Operand, ParseError> {
    if let Some(imm) = s.strip_prefix('$') {
        let v =
            parse_int(imm).ok_or_else(|| err(lineno, format!("unsupported immediate `{s}`")))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(reg) = s.strip_prefix('%') {
        let r =
            parse_reg_name(reg).ok_or_else(|| err(lineno, format!("unknown register `{s}`")))?;
        return Ok(Operand::Reg(r));
    }
    if let Some(ind) = s.strip_prefix('*') {
        let ind = fast_trim(ind);
        if let Some(reg) = ind.strip_prefix('%') {
            let r = parse_reg_name(reg)
                .ok_or_else(|| err(lineno, format!("unknown register `{ind}`")))?;
            return Ok(Operand::IndirectReg(r));
        }
        return Ok(Operand::IndirectMem(parse_mem(ind, lineno)?));
    }
    if is_branch && !s.as_bytes().contains(&b'(') && parse_int(s).is_none() {
        // Direct branch/call target.
        if s.bytes().all(is_symbol_byte) {
            return Ok(Operand::Label(Sym::intern(s)));
        }
        return Err(err(lineno, format!("bad branch target `{s}`")));
    }
    Ok(Operand::Mem(parse_mem(s, lineno)?))
}

/// Byte-wise `str::trim`, falling back to the char-based trim whenever an
/// edge byte could be (part of) Unicode whitespace — `0x0b` (vertical tab,
/// not ASCII whitespace to `trim_ascii` but whitespace to `char`) or any
/// non-ASCII lead byte. Always equivalent to `s.trim()`.
#[inline]
fn fast_trim(s: &str) -> &str {
    let t = s.trim_ascii();
    let b = t.as_bytes();
    match (b.first(), b.last()) {
        (Some(&f), Some(&l)) if f >= 0x80 || l >= 0x80 || f == 0x0b || l == 0x0b => t.trim(),
        _ => t,
    }
}

/// Byte-wise `str::trim_start`; see [`fast_trim`].
#[inline]
fn fast_trim_start(s: &str) -> &str {
    let t = s.trim_ascii_start();
    match t.as_bytes().first() {
        Some(&f) if f >= 0x80 || f == 0x0b => t.trim_start(),
        _ => t,
    }
}

/// Byte-wise `s.find(char::is_whitespace)`, falling back to the char-based
/// scan on the first non-ASCII byte so Unicode whitespace is still honored
/// exactly like the seed parser.
#[inline]
fn find_ws(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if is_ascii_ws(b) {
            return Some(i);
        }
        if b >= 0x80 {
            return s[i..].find(char::is_whitespace).map(|j| i + j);
        }
    }
    None
}

#[inline]
// `s` arrives trimmed from `parse_statement`; `head_len` is the length of
// its symbol-byte prefix (already scanned by the label loop) — on the fast
// path this is exactly the mnemonic boundary, so no re-scan is needed.
fn parse_instruction(s: &str, head_len: usize, lineno: usize) -> Result<Instruction, ParseError> {
    let mut rest = s;
    let mut head = head_len;
    let mut lock = false;
    if let Some(r) = rest.strip_prefix("lock") {
        if r.starts_with(char::is_whitespace) {
            lock = true;
            rest = fast_trim_start(r);
            // The prefix invalidated the pre-scanned boundary; re-scan.
            let b = rest.as_bytes();
            head = 0;
            while head < b.len() && is_symbol_byte(b[head]) {
                head += 1;
            }
        }
    }
    // Symbol bytes are never whitespace, so the first whitespace is at
    // `head` (the common case, checked without a scan) or beyond it.
    let (mnem_str, ops_str) = if head == rest.len() {
        (rest, "")
    } else if is_ascii_ws(rest.as_bytes()[head]) {
        (&rest[..head], fast_trim(&rest[head..]))
    } else {
        // Head token continues with a non-symbol, non-whitespace byte
        // (always a char boundary): fall back to the full whitespace scan
        // so malformed input errors exactly like the seed parser.
        match find_ws(rest) {
            Some(i) => (&rest[..i], fast_trim(&rest[i..])),
            None => (rest, ""),
        }
    };
    let parsed = parse_mnemonic(mnem_str)
        .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mnem_str}`")))?;
    let is_branch = parsed.mnemonic.is_branch() || parsed.mnemonic == mao_x86::Mnemonic::Call;
    let mut operands = Operands::new();
    if !ops_str.is_empty() {
        // Split on top-level commas (commas inside `(...)` group), parsing
        // each operand as it is found.
        let ob = ops_str.as_bytes();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (k, &c) in ob.iter().enumerate() {
            match c {
                b'(' => depth += 1,
                b')' => depth = depth.saturating_sub(1),
                b',' if depth == 0 => {
                    let part = fast_trim(&ops_str[start..k]);
                    if !part.is_empty() {
                        operands.push(parse_operand(part, is_branch, lineno)?);
                    }
                    start = k + 1;
                }
                _ => {}
            }
        }
        let part = fast_trim(&ops_str[start..]);
        if !part.is_empty() {
            operands.push(parse_operand(part, is_branch, lineno)?);
        }
    }
    let op_width = parsed
        .op_width
        .or_else(|| Instruction::infer_width_of(&operands));
    Ok(Instruction {
        mnemonic: parsed.mnemonic,
        op_width,
        src_width: parsed.src_width,
        lock,
        operands,
    })
}

fn unescape(s: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some(other) => {
                return Err(err(lineno, format!("unsupported escape `\\{other}`")));
            }
            None => return Err(err(lineno, "dangling backslash".to_string())),
        }
    }
    Ok(out)
}

/// Extract the quoted string from `"..."`.
fn quoted(s: &str, lineno: usize) -> Result<String, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected quoted string, got `{s}`")))?;
    unescape(inner, lineno)
}

fn parse_directive(s: &str, lineno: usize) -> Result<Directive, ParseError> {
    let (name, args) = match find_ws(s) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let d = match name {
        ".text" | ".data" | ".bss" => Directive::Section {
            name: Sym::intern(name),
            args: vec![],
        },
        ".section" => {
            let mut parts = args.splitn(2, ',');
            let sec = parts.next().unwrap_or("").trim();
            let rest: Vec<String> = parts
                .next()
                .map(|r| r.split(',').map(|a| a.trim().to_string()).collect())
                .unwrap_or_default();
            if sec.is_empty() {
                return Err(err(lineno, ".section needs a name"));
            }
            Directive::Section {
                name: Sym::intern(sec),
                args: rest,
            }
        }
        ".globl" | ".global" => Directive::Global(Sym::intern(args.trim())),
        ".type" => {
            let (sym, kind) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".type needs `sym, @kind`"))?;
            let kind = kind.trim();
            let kind = kind
                .strip_prefix('@')
                .or_else(|| kind.strip_prefix('%'))
                .unwrap_or(kind);
            Directive::Type {
                symbol: Sym::intern(sym.trim()),
                kind: Sym::intern(kind),
            }
        }
        ".size" => {
            let (sym, expr) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".size needs `sym, expr`"))?;
            Directive::Size {
                symbol: Sym::intern(sym.trim()),
                expr: expr.trim().to_string(),
            }
        }
        ".align" | ".balign" | ".p2align" => {
            let mut parts = args.split(',');
            let p0 = parts.next().map(str::trim);
            let p1 = parts.next().map(str::trim);
            let p2 = parts.next().map(str::trim);
            let n = parse_int(p0.unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad alignment in `{s}`")))?;
            if n < 0 {
                return Err(err(lineno, "negative alignment"));
            }
            let p2_form = name == ".p2align";
            let alignment = if p2_form {
                if n > 32 {
                    return Err(err(lineno, format!("p2align exponent {n} too large")));
                }
                1u64 << n
            } else {
                let n = n as u64;
                if !n.is_power_of_two() && n != 0 {
                    return Err(err(lineno, format!("alignment {n} is not a power of two")));
                }
                n.max(1)
            };
            let fill = p1
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u8::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad fill `{p}`")))
                })
                .transpose()?;
            let max_skip = p2
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad max-skip `{p}`")))
                })
                .transpose()?;
            Directive::Align(Align {
                alignment,
                fill,
                max_skip,
                p2_form,
            })
        }
        ".byte" | ".word" | ".value" | ".long" | ".int" | ".quad" => {
            let width = match name {
                ".byte" => DataWidth::Byte,
                ".word" | ".value" => DataWidth::Word,
                ".long" | ".int" => DataWidth::Long,
                ".quad" => DataWidth::Quad,
                _ => unreachable!(),
            };
            let mut items = Vec::new();
            for item in args.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                if let Some(v) = parse_int(item) {
                    items.push(DataItem::Imm(v));
                } else if item.bytes().all(is_symbol_byte) {
                    items.push(DataItem::Symbol(Sym::intern(item)));
                } else {
                    return Err(err(lineno, format!("unsupported data item `{item}`")));
                }
            }
            Directive::Data { width, items }
        }
        ".ascii" => Directive::Ascii(quoted(args, lineno)?),
        ".asciz" | ".string" => Directive::Asciz(quoted(args, lineno)?),
        ".zero" | ".skip" | ".space" => {
            let n = parse_int(args.split(',').next().unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad size in `{s}`")))?;
            Directive::Zero(n.max(0) as u64)
        }
        ".comm" => {
            let mut parts = args.split(',');
            let sym = parts.next().map(str::trim);
            let size_str = parts.next().map(str::trim);
            let align_str = parts.next().map(str::trim);
            let (Some(sym), Some(size_str)) = (sym, size_str) else {
                return Err(err(lineno, ".comm needs `sym, size`"));
            };
            let size = parse_int(size_str)
                .ok_or_else(|| err(lineno, format!("bad .comm size `{size_str}`")))?;
            let align = align_str
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad .comm align `{p}`")))
                })
                .transpose()?;
            Directive::Comm {
                symbol: Sym::intern(sym),
                size: size.max(0) as u64,
                align,
            }
        }
        other => Directive::Other {
            name: Sym::intern(other),
            args: args.to_string(),
        },
    };
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao_x86::mnemonic::Mnemonic;
    use mao_x86::reg::{RegId, Width};

    #[test]
    fn parse_paper_figure1_loop() {
        let text = r#"
.L3:    movsbl 1(%rdi,%r8,4),%edx
        movsbl (%rdi,%r8,4),%eax
        movl %edx, (%rsi,%r8,4)
        addq $1, %r8
        nop
.L5:    movsbl 1(%rdi,%r8,4),%edx
        cmpl %r8d, %r9d
        jg .L3
"#;
        let entries = parse(text).unwrap();
        let labels: Vec<_> = entries.iter().filter_map(Entry::label).collect();
        assert_eq!(labels, vec![".L3", ".L5"]);
        let insns: Vec<_> = entries.iter().filter_map(Entry::insn).collect();
        assert_eq!(insns.len(), 8);
        assert_eq!(insns[0].mnemonic, Mnemonic::Movsx);
        assert_eq!(insns[7].target_label(), Some(".L3"));
    }

    #[test]
    fn comments_and_separators() {
        let entries = parse("nop # trailing comment\nnop; nop\n# full line\n").unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn hash_inside_string_not_comment() {
        let entries = parse(".ascii \"a#b\"\n").unwrap();
        assert_eq!(
            entries[0].directive(),
            Some(&Directive::Ascii("a#b".into()))
        );
    }

    #[test]
    fn integer_forms() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-42"), Some(-42));
        assert_eq!(parse_int("0x2a"), Some(42));
        assert_eq!(parse_int("-0x1"), Some(-1));
        assert_eq!(parse_int("010"), Some(8));
        assert_eq!(parse_int("0"), Some(0));
        assert_eq!(parse_int("foo"), None);
        // 64-bit unsigned magnitude wraps into i64 space.
        assert_eq!(parse_int("0xffffffffffffffff"), Some(-1));
    }

    #[test]
    fn memory_operand_forms() {
        let i = parse("movq 24(%rsp), %rdx").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::Imm(24));
        assert_eq!(m.base.unwrap().id, RegId::Rsp);

        let i = parse("movl %eax, (,%rbx,8)").unwrap();
        let m = i[0].insn().unwrap().operands[1].mem().unwrap().clone();
        assert!(m.base.is_none());
        assert_eq!(m.index.unwrap().id, RegId::Rbx);
        assert_eq!(m.scale, 8);

        let i = parse("movq glob(%rip), %rax").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert!(m.is_rip_relative());

        let i = parse("movl %eax, tbl+4(,%rcx,4)").unwrap();
        let m = i[0].insn().unwrap().operands[1].mem().unwrap().clone();
        assert_eq!(
            m.disp,
            Disp::Symbol {
                name: "tbl".into(),
                addend: 4
            }
        );
    }

    #[test]
    fn explicit_zero_disp_roundtrip() {
        let i = parse("nopl 0(%rax,%rax,1)").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::Imm(0));
        let i = parse("nopl (%rax)").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::None);
    }

    #[test]
    fn indirect_branches() {
        let i = parse("jmp *%rax").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
        let i = parse("jmp *.Ltab(,%rdx,8)").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
        let i = parse("call *16(%rbx)").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
    }

    #[test]
    fn branch_targets_are_labels() {
        let i = parse("jne .L5").unwrap();
        assert_eq!(i[0].insn().unwrap().target_label(), Some(".L5"));
        let i = parse("call memcpy").unwrap();
        assert_eq!(i[0].insn().unwrap().target_label(), Some("memcpy"));
    }

    #[test]
    fn lock_prefix() {
        let i = parse("lock addl $1, (%rdi)").unwrap();
        assert!(i[0].insn().unwrap().lock);
    }

    #[test]
    fn width_suffix_and_inference() {
        let i = parse("movl $5, -4(%rbp)").unwrap();
        assert_eq!(i[0].insn().unwrap().op_width, Some(Width::B4));
        let i = parse("mov %rsp, %rbp").unwrap();
        assert_eq!(i[0].insn().unwrap().width(), Width::B8);
    }

    #[test]
    fn directives() {
        let text = r#"
	.file	"x.c"
	.text
	.globl	main
	.type	main, @function
	.p2align 4,,15
	.section	.rodata,"a",@progbits
	.align 8
.LC0:
	.quad	.L4
	.quad	.L5
	.long	42
	.string	"hi"
	.zero	16
	.size	main, .-main
"#;
        let entries = parse(text).unwrap();
        let dirs: Vec<_> = entries
            .iter()
            .filter_map(Entry::directive)
            .cloned()
            .collect();
        assert!(matches!(&dirs[0], Directive::Other { name, .. } if name == ".file"));
        assert!(matches!(&dirs[1], Directive::Section { name, .. } if name == ".text"));
        assert_eq!(dirs[2], Directive::Global("main".into()));
        assert!(matches!(&dirs[3], Directive::Type { kind, .. } if kind == "function"));
        assert!(
            matches!(&dirs[4], Directive::Align(a) if a.alignment == 16 && a.max_skip == Some(15))
        );
        assert!(
            matches!(&dirs[5], Directive::Section { name, args } if name == ".rodata" && args.len() == 2)
        );
        assert!(matches!(&dirs[6], Directive::Align(a) if a.alignment == 8 && !a.p2_form));
        assert!(
            matches!(&dirs[7], Directive::Data { width: DataWidth::Quad, items } if items[0] == DataItem::Symbol(".L4".into()))
        );
        assert!(matches!(&dirs[10], Directive::Asciz(s) if s == "hi"));
        assert_eq!(dirs[11], Directive::Zero(16));
        assert!(matches!(&dirs[12], Directive::Size { expr, .. } if expr == ".-main"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("nop\nfrobnicate %eax\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = parse("movl $5, 4(%bogus)\n").unwrap_err();
        assert!(e.message.contains("bogus"));
        let e = parse(".align 3\n").unwrap_err();
        assert!(e.message.contains("power of two"));
    }

    #[test]
    fn unknown_mnemonic_error_carries_line_and_text() {
        let e = parse("nop\nnop\nfrobnicate %eax, %ebx\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "frobnicate %eax, %ebx");
        let rendered = e.to_string();
        assert!(rendered.contains("line 3"), "{rendered}");
        assert!(rendered.contains("frobnicate %eax, %ebx"), "{rendered}");
    }

    #[test]
    fn bad_register_error_carries_line_and_text() {
        let e = parse("\tret\n\tmovl %eax, %exx\n").unwrap_err();
        assert_eq!(e.line, 2);
        // The offending line is reported trimmed, without the leading tab.
        assert_eq!(e.text, "movl %eax, %exx");
        assert!(e.message.contains("%exx"), "{}", e.message);
    }

    #[test]
    fn bad_memory_operand_error_carries_line_and_text() {
        let e = parse("movq 8(%rsp, %rax\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, "movq 8(%rsp, %rax");
        assert!(e.message.contains("missing `)`"), "{}", e.message);
        let e = parse("nop\nmovl $1, 8(%rsp,%rax,3)\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid scale 3"), "{}", e.message);
        assert_eq!(e.text, "movl $1, 8(%rsp,%rax,3)");
    }

    #[test]
    fn bad_directive_error_carries_line_and_text() {
        let e = parse(".text\n.type main\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.text, ".type main");
        assert!(e.message.contains(".type"), "{}", e.message);
        let e = parse(".ascii unquoted\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, ".ascii unquoted");
        assert!(e.message.contains("quoted"), "{}", e.message);
    }

    #[test]
    fn bad_immediate_and_branch_target_carry_line_and_text() {
        let e = parse("addl $banana, %eax\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, "addl $banana, %eax");
        assert!(e.message.contains("$banana"), "{}", e.message);
        let e = parse("nop\nnop\njmp foo(bar\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "jmp foo(bar");
    }

    #[test]
    fn error_text_is_per_statement_line_not_whole_input() {
        // Multi-statement lines still report the full source line, and the
        // error points at the right line of a longer file.
        let text = ".text\nmain:\n\tpush %rbp; frobnicate\n\tret\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "push %rbp; frobnicate");
    }

    #[test]
    fn multiple_labels_one_line() {
        let entries = parse("a: b: nop").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].label(), Some("a"));
        assert_eq!(entries[1].label(), Some("b"));
    }

    #[test]
    fn setcc_and_cmov() {
        let i = parse("sete %al").unwrap();
        assert_eq!(
            i[0].insn().unwrap().mnemonic,
            Mnemonic::Setcc(mao_x86::Cond::E)
        );
        let i = parse("cmovge %eax, %ebx").unwrap();
        assert_eq!(
            i[0].insn().unwrap().mnemonic,
            Mnemonic::Cmovcc(mao_x86::Cond::Ge)
        );
    }
}

#[cfg(test)]
mod directive_roundtrip_tests {
    use super::*;
    use crate::emit::emit;

    /// Every modeled directive must survive parse -> emit -> parse.
    #[test]
    fn all_directive_kinds_roundtrip() {
        let text = "\t.text\n\t.globl sym\n\t.type sym, @object\n\t.size sym, 8\n\t.p2align 4,,7\n\t.align 8\n\t.balign 16\n\t.byte 1, 2, 3\n\t.word 256\n\t.value 257\n\t.long 70000\n\t.int 70001\n\t.quad sym\n\t.ascii \"ab\"\n\t.asciz \"cd\"\n\t.string \"ef\"\n\t.zero 4\n\t.skip 8\n\t.space 2\n\t.comm buf,64,32\n\t.section .data.rel,\"aw\"\n\t.ident \"whatever trailing text\"\n";
        let first = parse(text).expect("parses");
        let second = parse(&emit(&first)).expect("re-parses");
        assert_eq!(first, second);
    }

    #[test]
    fn comm_sizes() {
        let entries = parse("\t.comm buf,64,32\n").unwrap();
        assert_eq!(
            entries[0].directive(),
            Some(&Directive::Comm {
                symbol: "buf".into(),
                size: 64,
                align: Some(32),
            })
        );
        assert!(parse("\t.comm buf\n").is_err());
    }

    #[test]
    fn balign_is_byte_alignment() {
        let entries = parse("\t.balign 32\n").unwrap();
        match entries[0].directive() {
            Some(Directive::Align(a)) => {
                assert_eq!(a.alignment, 32);
                assert!(!a.p2_form);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn align_fill_and_skip_fields() {
        let entries = parse("\t.p2align 4,0x90,7\n").unwrap();
        match entries[0].directive() {
            Some(Directive::Align(a)) => {
                assert_eq!(a.alignment, 16);
                assert_eq!(a.fill, Some(0x90));
                assert_eq!(a.max_skip, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_directives_pass_through_verbatim() {
        let text = "\t.cfi_startproc\n\t.file \"x.c\"\n\t.cfi_def_cfa_offset 16\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(matches!(e.directive(), Some(Directive::Other { .. })));
        }
        let second = parse(&emit(&entries)).unwrap();
        assert_eq!(entries, second);
    }

    #[test]
    fn empty_and_whitespace_lines_ignored() {
        assert!(parse("\n\n   \n\t\n").unwrap().is_empty());
        assert_eq!(parse(" ; ; nop ; \n").unwrap().len(), 1);
    }
}

#[cfg(test)]
mod zero_copy_tests {
    use super::*;
    use crate::parser_reference::parse_reference;

    #[test]
    fn agrees_with_reference_parser() {
        let text = "\t.text\n\t.globl main\nmain:\n\tpush %rbp; movq %rsp, %rbp\n\tmovl \
                    $0, -4(%rbp) # init\n\tlock addl $1, (%rdi)\n.L2:\n\tcmpl $9, -4(%rbp)\n\tjle \
                    .L3\n\tjmp *tab(,%rax,8)\n.L3:\n\t.quad .L2, 0x10\n\t.string \"hi;# there\"\n\t\
                    .comm buf,64,32\n\t.p2align 4,,15\n\tret\n";
        assert_eq!(parse(text).unwrap(), parse_reference(text).unwrap());
    }

    #[test]
    fn error_offsets_point_at_the_statement() {
        let text = "nop\nfrobnicate %eax\n";
        let e = parse(text).unwrap_err();
        assert_eq!(&text[e.offset.clone()], "frobnicate %eax");
        assert_eq!(e.line, 2);

        // Offsets survive statement splitting and leading whitespace.
        let text = ".text\nmain:\n\tpush %rbp; frobnicate\n";
        let e = parse(text).unwrap_err();
        assert_eq!(&text[e.offset.clone()], "frobnicate");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn parallel_parse_is_byte_identical() {
        // Build an input comfortably above the parallel threshold.
        let block = ".text\nf:\n\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl $1, %eax # c\n\
                     \tcmpl %eax, %ebx; jne .Lx\n.Lx:\n\tleave\n\tret\n\t.quad .Lx\n";
        let text = block.repeat(2000);
        assert!(text.len() >= super::PARALLEL_MIN_BYTES);
        let seq = parse(&text).unwrap();
        for jobs in [2, 3, 4, 7] {
            let par = parse_with_jobs(&text, jobs).unwrap();
            assert_eq!(seq, par, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn parallel_parse_reports_first_error_like_sequential() {
        let good = "nop\n".repeat(40_000);
        let text = format!("{good}frobnicate %eax\n{}", "nop\n".repeat(40_000));
        let seq = parse(&text).unwrap_err();
        for jobs in [2, 4] {
            let par = parse_with_jobs(&text, jobs).unwrap_err();
            assert_eq!(seq, par, "jobs={jobs} error diverged");
        }
        assert_eq!(seq.line, 40_001);
        assert_eq!(&text[seq.offset.clone()], "frobnicate %eax");
    }

    #[test]
    fn small_inputs_skip_threading() {
        let text = "nop\nnop\n";
        assert_eq!(parse_with_jobs(text, 8).unwrap(), parse(text).unwrap());
    }

    #[test]
    fn crlf_line_endings_parse() {
        let entries = parse(".text\r\nf:\r\n\tret\r\n").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].label(), Some("f"));
    }
}

#[cfg(test)]
mod aarch64_tests {
    use super::*;
    use crate::emit::emit;
    use mao_isa::Insn;

    const A64_SAMPLE: &str = "\t.text\n\t.globl f // comment\nf:\n\tsub\tsp, sp, #16\n\tstr\t\
                              x19, [sp, #8]\n\tcmp\tx0, #0\n\tb.eq\t.L2\n\tbl\tg; mov\tx1, \
                              x0\n.L2:\n\tldr\tx19, [sp, #8]\n\tadd\tsp, sp, #16\n\tret\n";

    #[test]
    fn a64_statements_parse_through_the_shared_front_end() {
        let entries = parse_isa(A64_SAMPLE, IsaId::Aarch64).unwrap();
        let insns: Vec<_> = entries.iter().filter_map(|e| e.insn_any()).collect();
        assert_eq!(insns.len(), 9);
        assert!(insns.iter().all(|i| i.isa() == IsaId::Aarch64));
        assert_eq!(insns[3].target_label(), Some(".L2"));
        // Labels and directives flow through the generic layer.
        assert_eq!(entries.iter().filter_map(Entry::label).count(), 2);
        // The x86-only view sees no instructions at all.
        assert_eq!(entries.iter().filter_map(Entry::insn).count(), 0);
    }

    #[test]
    fn hash_is_not_a_comment_on_aarch64() {
        let entries = parse_isa("\tmov\tx0, #42 // set answer\n", IsaId::Aarch64).unwrap();
        let Some(Insn::A64(i)) = entries[0].insn_any() else {
            panic!("expected an A64 insn");
        };
        assert_eq!(i.to_string(), "mov\tx0, #42");
    }

    #[test]
    fn a64_parse_emit_parse_is_identity() {
        let first = parse_isa(A64_SAMPLE, IsaId::Aarch64).unwrap();
        let second = parse_isa(&emit(&first), IsaId::Aarch64).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn a64_errors_carry_line_numbers() {
        let e = parse_isa("\tnop\n\tfrobnicate x0\n", IsaId::Aarch64).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"), "{}", e.message);
        let e = parse_isa("\tmov\tx0\n", IsaId::Aarch64).unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn x86_dialect_still_owns_hash_comments() {
        let entries = parse(".text\r\nf:\r\n\tret\r\n").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].label(), Some("f"));
    }
}
