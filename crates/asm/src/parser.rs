//! AT&T-syntax assembly parser.
//!
//! Parses compiler-emitted assembly text (the same dialect gas accepts for
//! x86-64 ELF targets) into the flat [`Entry`] list. Unknown directives are
//! passed through verbatim; unknown *instructions* are an error, because MAO
//! must understand every instruction it may move or measure.

use std::fmt;

use mao_x86::insn::Instruction;
use mao_x86::mnemonic::parse_mnemonic;
use mao_x86::operand::{Disp, Mem, Operand};
use mao_x86::reg::{parse_reg_name, Reg};

use crate::entry::{Align, DataItem, DataWidth, Directive, Entry};

/// Parse failure, with the 1-based source line and the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
    /// The source line that failed, trimmed (empty if unavailable).
    pub text: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.text.is_empty() {
            write!(f, " in `{}`", self.text)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete assembly file into the flat entry list.
///
/// # Examples
///
/// ```
/// let entries = mao_asm::parse(".text\nfoo:\n\tpush %rbp\n\tret\n").unwrap();
/// assert_eq!(entries.len(), 4);
/// ```
pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        for stmt in split_statements(line) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            // Helpers report line + message; the raw source line is only
            // known here, so attach it on the way out.
            parse_statement(stmt, lineno, &mut entries).map_err(|mut e| {
                if e.text.is_empty() {
                    e.text = raw_line.trim().to_string();
                }
                e
            })?;
        }
    }
    Ok(entries)
}

/// Remove a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Split on `;` statement separators, respecting string literals.
fn split_statements(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\\' if in_str => escaped = !escaped,
            b'"' if !escaped => in_str = !in_str,
            b';' if !in_str => {
                out.push(&line[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&line[start..]);
    out
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '@')
}

fn parse_statement(stmt: &str, lineno: usize, out: &mut Vec<Entry>) -> Result<(), ParseError> {
    // Leading labels: `name:` possibly repeated.
    let mut rest = stmt;
    loop {
        let sym_len = rest.chars().take_while(|&c| is_symbol_char(c)).count();
        if sym_len > 0 {
            let sym_bytes: usize = rest.chars().take(sym_len).map(char::len_utf8).sum();
            if rest[sym_bytes..].starts_with(':') {
                out.push(Entry::Label(rest[..sym_bytes].to_string()));
                rest = rest[sym_bytes + 1..].trim_start();
                if rest.is_empty() {
                    return Ok(());
                }
                continue;
            }
        }
        break;
    }

    if rest.starts_with('.') {
        out.push(Entry::Directive(parse_directive(rest, lineno)?));
        Ok(())
    } else {
        out.push(Entry::Insn(parse_instruction(rest, lineno)?));
        Ok(())
    }
}

fn err(lineno: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line: lineno,
        message: message.into(),
        text: String::new(),
    }
}

/// Parse an integer literal: decimal, `0x` hex, `0` octal, with optional sign.
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, s),
    };
    let mag = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else if body.len() > 1 && body.starts_with('0') && body.chars().all(|c| c.is_digit(8)) {
        u64::from_str_radix(&body[1..], 8).ok()?
    } else {
        body.parse::<u64>().ok()?
    };
    if neg {
        Some((mag as i64).wrapping_neg())
    } else {
        Some(mag as i64)
    }
}

/// Parse `sym`, `sym+4`, `sym-8` into a symbolic displacement.
fn parse_symbol_expr(s: &str) -> Option<Disp> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let first = s.chars().next()?;
    if !(first.is_ascii_alphabetic() || matches!(first, '_' | '.' | '$')) {
        return None;
    }
    let split = s
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i);
    let (name, addend) = match split {
        Some(i) => {
            let (n, a) = s.split_at(i);
            (n.trim(), parse_int(a)?)
        }
        None => (s, 0),
    };
    if name.is_empty() || !name.chars().all(is_symbol_char) {
        return None;
    }
    Some(Disp::Symbol {
        name: name.to_string(),
        addend,
    })
}

/// Parse the memory operand `disp(base,index,scale)` or plain `disp`.
fn parse_mem(s: &str, lineno: usize) -> Result<Mem, ParseError> {
    let s = s.trim();
    let (disp_str, inner) = match s.find('(') {
        Some(open) => {
            let close = s
                .rfind(')')
                .ok_or_else(|| err(lineno, format!("missing `)` in `{s}`")))?;
            (&s[..open], Some(&s[open + 1..close]))
        }
        None => (s, None),
    };

    let disp = if disp_str.trim().is_empty() {
        Disp::None
    } else if let Some(v) = parse_int(disp_str) {
        Disp::Imm(v)
    } else if let Some(d) = parse_symbol_expr(disp_str) {
        d
    } else {
        return Err(err(lineno, format!("bad displacement `{disp_str}`")));
    };

    let mut mem = Mem {
        disp,
        base: None,
        index: None,
        scale: 1,
    };

    if let Some(inner) = inner {
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.len() > 3 {
            return Err(err(lineno, format!("too many parts in `({inner})`")));
        }
        let parse_r = |p: &str| -> Result<Reg, ParseError> {
            let name = p
                .strip_prefix('%')
                .ok_or_else(|| err(lineno, format!("expected register, got `{p}`")))?;
            parse_reg_name(name).ok_or_else(|| err(lineno, format!("unknown register `{p}`")))
        };
        if let Some(b) = parts.first() {
            if !b.is_empty() {
                mem.base = Some(parse_r(b)?);
            }
        }
        if let Some(i) = parts.get(1) {
            if !i.is_empty() {
                mem.index = Some(parse_r(i)?);
            }
        }
        if let Some(sc) = parts.get(2) {
            if !sc.is_empty() {
                let v = parse_int(sc).ok_or_else(|| err(lineno, format!("bad scale `{sc}`")))?;
                if ![1, 2, 4, 8].contains(&v) {
                    return Err(err(lineno, format!("invalid scale {v}")));
                }
                mem.scale = v as u8;
            }
        }
    }
    Ok(mem)
}

/// Split an operand list on top-level commas (commas inside `(...)` group).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out.iter()
        .map(|p| p.trim())
        .filter(|p| !p.is_empty())
        .collect()
}

fn parse_operand(s: &str, is_branch: bool, lineno: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(imm) = s.strip_prefix('$') {
        let v =
            parse_int(imm).ok_or_else(|| err(lineno, format!("unsupported immediate `{s}`")))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(reg) = s.strip_prefix('%') {
        let r =
            parse_reg_name(reg).ok_or_else(|| err(lineno, format!("unknown register `{s}`")))?;
        return Ok(Operand::Reg(r));
    }
    if let Some(ind) = s.strip_prefix('*') {
        let ind = ind.trim();
        if let Some(reg) = ind.strip_prefix('%') {
            let r = parse_reg_name(reg)
                .ok_or_else(|| err(lineno, format!("unknown register `{ind}`")))?;
            return Ok(Operand::IndirectReg(r));
        }
        return Ok(Operand::IndirectMem(parse_mem(ind, lineno)?));
    }
    if is_branch && !s.contains('(') && parse_int(s).is_none() {
        // Direct branch/call target.
        if s.chars().all(is_symbol_char) {
            return Ok(Operand::Label(s.to_string()));
        }
        return Err(err(lineno, format!("bad branch target `{s}`")));
    }
    Ok(Operand::Mem(parse_mem(s, lineno)?))
}

fn parse_instruction(s: &str, lineno: usize) -> Result<Instruction, ParseError> {
    let mut rest = s.trim();
    let mut lock = false;
    if let Some(r) = rest.strip_prefix("lock") {
        if r.starts_with(char::is_whitespace) {
            lock = true;
            rest = r.trim_start();
        }
    }
    let (mnem_str, ops_str) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let parsed = parse_mnemonic(mnem_str)
        .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mnem_str}`")))?;
    let is_branch = parsed.mnemonic.is_branch() || parsed.mnemonic == mao_x86::Mnemonic::Call;
    let mut operands = Vec::new();
    if !ops_str.is_empty() {
        for op in split_operands(ops_str) {
            operands.push(parse_operand(op, is_branch, lineno)?);
        }
    }
    let mut insn = Instruction {
        mnemonic: parsed.mnemonic,
        op_width: parsed.op_width,
        src_width: parsed.src_width,
        lock,
        operands,
    };
    if insn.op_width.is_none() {
        // Re-run width inference now that operands are attached.
        let inferred = Instruction::new(insn.mnemonic, insn.operands.clone()).op_width;
        insn.op_width = inferred;
    }
    Ok(insn)
}

fn unescape(s: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some(other) => {
                return Err(err(lineno, format!("unsupported escape `\\{other}`")));
            }
            None => return Err(err(lineno, "dangling backslash".to_string())),
        }
    }
    Ok(out)
}

/// Extract the quoted string from `"..."`.
fn quoted(s: &str, lineno: usize) -> Result<String, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected quoted string, got `{s}`")))?;
    unescape(inner, lineno)
}

fn parse_directive(s: &str, lineno: usize) -> Result<Directive, ParseError> {
    let (name, args) = match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let d = match name {
        ".text" | ".data" | ".bss" => Directive::Section {
            name: name.to_string(),
            args: vec![],
        },
        ".section" => {
            let mut parts = args.splitn(2, ',');
            let sec = parts.next().unwrap_or("").trim().to_string();
            let rest: Vec<String> = parts
                .next()
                .map(|r| r.split(',').map(|a| a.trim().to_string()).collect())
                .unwrap_or_default();
            if sec.is_empty() {
                return Err(err(lineno, ".section needs a name"));
            }
            Directive::Section {
                name: sec,
                args: rest,
            }
        }
        ".globl" | ".global" => Directive::Global(args.trim().to_string()),
        ".type" => {
            let (sym, kind) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".type needs `sym, @kind`"))?;
            let kind = kind.trim();
            let kind = kind
                .strip_prefix('@')
                .or_else(|| kind.strip_prefix('%'))
                .unwrap_or(kind);
            Directive::Type {
                symbol: sym.trim().to_string(),
                kind: kind.to_string(),
            }
        }
        ".size" => {
            let (sym, expr) = args
                .split_once(',')
                .ok_or_else(|| err(lineno, ".size needs `sym, expr`"))?;
            Directive::Size {
                symbol: sym.trim().to_string(),
                expr: expr.trim().to_string(),
            }
        }
        ".align" | ".balign" | ".p2align" => {
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            let n = parse_int(parts.first().copied().unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad alignment in `{s}`")))?;
            if n < 0 {
                return Err(err(lineno, "negative alignment"));
            }
            let p2_form = name == ".p2align";
            let alignment = if p2_form {
                if n > 32 {
                    return Err(err(lineno, format!("p2align exponent {n} too large")));
                }
                1u64 << n
            } else {
                let n = n as u64;
                if !n.is_power_of_two() && n != 0 {
                    return Err(err(lineno, format!("alignment {n} is not a power of two")));
                }
                n.max(1)
            };
            let fill = parts
                .get(1)
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u8::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad fill `{p}`")))
                })
                .transpose()?;
            let max_skip = parts
                .get(2)
                .filter(|p| !p.is_empty())
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad max-skip `{p}`")))
                })
                .transpose()?;
            Directive::Align(Align {
                alignment,
                fill,
                max_skip,
                p2_form,
            })
        }
        ".byte" | ".word" | ".value" | ".long" | ".int" | ".quad" => {
            let width = match name {
                ".byte" => DataWidth::Byte,
                ".word" | ".value" => DataWidth::Word,
                ".long" | ".int" => DataWidth::Long,
                ".quad" => DataWidth::Quad,
                _ => unreachable!(),
            };
            let mut items = Vec::new();
            for item in args.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                if let Some(v) = parse_int(item) {
                    items.push(DataItem::Imm(v));
                } else if item.chars().all(is_symbol_char) {
                    items.push(DataItem::Symbol(item.to_string()));
                } else {
                    return Err(err(lineno, format!("unsupported data item `{item}`")));
                }
            }
            Directive::Data { width, items }
        }
        ".ascii" => Directive::Ascii(quoted(args, lineno)?),
        ".asciz" | ".string" => Directive::Asciz(quoted(args, lineno)?),
        ".zero" | ".skip" | ".space" => {
            let n = parse_int(args.split(',').next().unwrap_or(""))
                .ok_or_else(|| err(lineno, format!("bad size in `{s}`")))?;
            Directive::Zero(n.max(0) as u64)
        }
        ".comm" => {
            let parts: Vec<&str> = args.split(',').map(str::trim).collect();
            if parts.len() < 2 {
                return Err(err(lineno, ".comm needs `sym, size`"));
            }
            let size = parse_int(parts[1])
                .ok_or_else(|| err(lineno, format!("bad .comm size `{}`", parts[1])))?;
            let align = parts
                .get(2)
                .map(|p| {
                    parse_int(p)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| err(lineno, format!("bad .comm align `{p}`")))
                })
                .transpose()?;
            Directive::Comm {
                symbol: parts[0].to_string(),
                size: size.max(0) as u64,
                align,
            }
        }
        other => Directive::Other {
            name: other.to_string(),
            args: args.to_string(),
        },
    };
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mao_x86::mnemonic::Mnemonic;
    use mao_x86::reg::{RegId, Width};

    #[test]
    fn parse_paper_figure1_loop() {
        let text = r#"
.L3:    movsbl 1(%rdi,%r8,4),%edx
        movsbl (%rdi,%r8,4),%eax
        movl %edx, (%rsi,%r8,4)
        addq $1, %r8
        nop
.L5:    movsbl 1(%rdi,%r8,4),%edx
        cmpl %r8d, %r9d
        jg .L3
"#;
        let entries = parse(text).unwrap();
        let labels: Vec<_> = entries.iter().filter_map(Entry::label).collect();
        assert_eq!(labels, vec![".L3", ".L5"]);
        let insns: Vec<_> = entries.iter().filter_map(Entry::insn).collect();
        assert_eq!(insns.len(), 8);
        assert_eq!(insns[0].mnemonic, Mnemonic::Movsx);
        assert_eq!(insns[7].target_label(), Some(".L3"));
    }

    #[test]
    fn comments_and_separators() {
        let entries = parse("nop # trailing comment\nnop; nop\n# full line\n").unwrap();
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn hash_inside_string_not_comment() {
        let entries = parse(".ascii \"a#b\"\n").unwrap();
        assert_eq!(
            entries[0].directive(),
            Some(&Directive::Ascii("a#b".into()))
        );
    }

    #[test]
    fn integer_forms() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-42"), Some(-42));
        assert_eq!(parse_int("0x2a"), Some(42));
        assert_eq!(parse_int("-0x1"), Some(-1));
        assert_eq!(parse_int("010"), Some(8));
        assert_eq!(parse_int("0"), Some(0));
        assert_eq!(parse_int("foo"), None);
        // 64-bit unsigned magnitude wraps into i64 space.
        assert_eq!(parse_int("0xffffffffffffffff"), Some(-1));
    }

    #[test]
    fn memory_operand_forms() {
        let i = parse("movq 24(%rsp), %rdx").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::Imm(24));
        assert_eq!(m.base.unwrap().id, RegId::Rsp);

        let i = parse("movl %eax, (,%rbx,8)").unwrap();
        let m = i[0].insn().unwrap().operands[1].mem().unwrap().clone();
        assert!(m.base.is_none());
        assert_eq!(m.index.unwrap().id, RegId::Rbx);
        assert_eq!(m.scale, 8);

        let i = parse("movq glob(%rip), %rax").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert!(m.is_rip_relative());

        let i = parse("movl %eax, tbl+4(,%rcx,4)").unwrap();
        let m = i[0].insn().unwrap().operands[1].mem().unwrap().clone();
        assert_eq!(
            m.disp,
            Disp::Symbol {
                name: "tbl".into(),
                addend: 4
            }
        );
    }

    #[test]
    fn explicit_zero_disp_roundtrip() {
        let i = parse("nopl 0(%rax,%rax,1)").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::Imm(0));
        let i = parse("nopl (%rax)").unwrap();
        let m = i[0].insn().unwrap().operands[0].mem().unwrap().clone();
        assert_eq!(m.disp, Disp::None);
    }

    #[test]
    fn indirect_branches() {
        let i = parse("jmp *%rax").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
        let i = parse("jmp *.Ltab(,%rdx,8)").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
        let i = parse("call *16(%rbx)").unwrap();
        assert!(i[0].insn().unwrap().is_indirect_branch());
    }

    #[test]
    fn branch_targets_are_labels() {
        let i = parse("jne .L5").unwrap();
        assert_eq!(i[0].insn().unwrap().target_label(), Some(".L5"));
        let i = parse("call memcpy").unwrap();
        assert_eq!(i[0].insn().unwrap().target_label(), Some("memcpy"));
    }

    #[test]
    fn lock_prefix() {
        let i = parse("lock addl $1, (%rdi)").unwrap();
        assert!(i[0].insn().unwrap().lock);
    }

    #[test]
    fn width_suffix_and_inference() {
        let i = parse("movl $5, -4(%rbp)").unwrap();
        assert_eq!(i[0].insn().unwrap().op_width, Some(Width::B4));
        let i = parse("mov %rsp, %rbp").unwrap();
        assert_eq!(i[0].insn().unwrap().width(), Width::B8);
    }

    #[test]
    fn directives() {
        let text = r#"
	.file	"x.c"
	.text
	.globl	main
	.type	main, @function
	.p2align 4,,15
	.section	.rodata,"a",@progbits
	.align 8
.LC0:
	.quad	.L4
	.quad	.L5
	.long	42
	.string	"hi"
	.zero	16
	.size	main, .-main
"#;
        let entries = parse(text).unwrap();
        let dirs: Vec<_> = entries
            .iter()
            .filter_map(Entry::directive)
            .cloned()
            .collect();
        assert!(matches!(&dirs[0], Directive::Other { name, .. } if name == ".file"));
        assert!(matches!(&dirs[1], Directive::Section { name, .. } if name == ".text"));
        assert_eq!(dirs[2], Directive::Global("main".into()));
        assert!(matches!(&dirs[3], Directive::Type { kind, .. } if kind == "function"));
        assert!(
            matches!(&dirs[4], Directive::Align(a) if a.alignment == 16 && a.max_skip == Some(15))
        );
        assert!(
            matches!(&dirs[5], Directive::Section { name, args } if name == ".rodata" && args.len() == 2)
        );
        assert!(matches!(&dirs[6], Directive::Align(a) if a.alignment == 8 && !a.p2_form));
        assert!(
            matches!(&dirs[7], Directive::Data { width: DataWidth::Quad, items } if items[0] == DataItem::Symbol(".L4".into()))
        );
        assert!(matches!(&dirs[10], Directive::Asciz(s) if s == "hi"));
        assert_eq!(dirs[11], Directive::Zero(16));
        assert!(matches!(&dirs[12], Directive::Size { expr, .. } if expr == ".-main"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("nop\nfrobnicate %eax\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = parse("movl $5, 4(%bogus)\n").unwrap_err();
        assert!(e.message.contains("bogus"));
        let e = parse(".align 3\n").unwrap_err();
        assert!(e.message.contains("power of two"));
    }

    #[test]
    fn unknown_mnemonic_error_carries_line_and_text() {
        let e = parse("nop\nnop\nfrobnicate %eax, %ebx\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "frobnicate %eax, %ebx");
        let rendered = e.to_string();
        assert!(rendered.contains("line 3"), "{rendered}");
        assert!(rendered.contains("frobnicate %eax, %ebx"), "{rendered}");
    }

    #[test]
    fn bad_register_error_carries_line_and_text() {
        let e = parse("\tret\n\tmovl %eax, %exx\n").unwrap_err();
        assert_eq!(e.line, 2);
        // The offending line is reported trimmed, without the leading tab.
        assert_eq!(e.text, "movl %eax, %exx");
        assert!(e.message.contains("%exx"), "{}", e.message);
    }

    #[test]
    fn bad_memory_operand_error_carries_line_and_text() {
        let e = parse("movq 8(%rsp, %rax\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, "movq 8(%rsp, %rax");
        assert!(e.message.contains("missing `)`"), "{}", e.message);
        let e = parse("nop\nmovl $1, 8(%rsp,%rax,3)\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid scale 3"), "{}", e.message);
        assert_eq!(e.text, "movl $1, 8(%rsp,%rax,3)");
    }

    #[test]
    fn bad_directive_error_carries_line_and_text() {
        let e = parse(".text\n.type main\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.text, ".type main");
        assert!(e.message.contains(".type"), "{}", e.message);
        let e = parse(".ascii unquoted\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, ".ascii unquoted");
        assert!(e.message.contains("quoted"), "{}", e.message);
    }

    #[test]
    fn bad_immediate_and_branch_target_carry_line_and_text() {
        let e = parse("addl $banana, %eax\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.text, "addl $banana, %eax");
        assert!(e.message.contains("$banana"), "{}", e.message);
        let e = parse("nop\nnop\njmp foo(bar\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "jmp foo(bar");
    }

    #[test]
    fn error_text_is_per_statement_line_not_whole_input() {
        // Multi-statement lines still report the full source line, and the
        // error points at the right line of a longer file.
        let text = ".text\nmain:\n\tpush %rbp; frobnicate\n\tret\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.text, "push %rbp; frobnicate");
    }

    #[test]
    fn multiple_labels_one_line() {
        let entries = parse("a: b: nop").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].label(), Some("a"));
        assert_eq!(entries[1].label(), Some("b"));
    }

    #[test]
    fn setcc_and_cmov() {
        let i = parse("sete %al").unwrap();
        assert_eq!(
            i[0].insn().unwrap().mnemonic,
            Mnemonic::Setcc(mao_x86::Cond::E)
        );
        let i = parse("cmovge %eax, %ebx").unwrap();
        assert_eq!(
            i[0].insn().unwrap().mnemonic,
            Mnemonic::Cmovcc(mao_x86::Cond::Ge)
        );
    }
}

#[cfg(test)]
mod directive_roundtrip_tests {
    use super::*;
    use crate::emit::emit;

    /// Every modeled directive must survive parse -> emit -> parse.
    #[test]
    fn all_directive_kinds_roundtrip() {
        let text = "\t.text\n\t.globl sym\n\t.type sym, @object\n\t.size sym, 8\n\t.p2align 4,,7\n\t.align 8\n\t.balign 16\n\t.byte 1, 2, 3\n\t.word 256\n\t.value 257\n\t.long 70000\n\t.int 70001\n\t.quad sym\n\t.ascii \"ab\"\n\t.asciz \"cd\"\n\t.string \"ef\"\n\t.zero 4\n\t.skip 8\n\t.space 2\n\t.comm buf,64,32\n\t.section .data.rel,\"aw\"\n\t.ident \"whatever trailing text\"\n";
        let first = parse(text).expect("parses");
        let second = parse(&emit(&first)).expect("re-parses");
        assert_eq!(first, second);
    }

    #[test]
    fn comm_sizes() {
        let entries = parse("\t.comm buf,64,32\n").unwrap();
        assert_eq!(
            entries[0].directive(),
            Some(&Directive::Comm {
                symbol: "buf".into(),
                size: 64,
                align: Some(32),
            })
        );
        assert!(parse("\t.comm buf\n").is_err());
    }

    #[test]
    fn balign_is_byte_alignment() {
        let entries = parse("\t.balign 32\n").unwrap();
        match entries[0].directive() {
            Some(Directive::Align(a)) => {
                assert_eq!(a.alignment, 32);
                assert!(!a.p2_form);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn align_fill_and_skip_fields() {
        let entries = parse("\t.p2align 4,0x90,7\n").unwrap();
        match entries[0].directive() {
            Some(Directive::Align(a)) => {
                assert_eq!(a.alignment, 16);
                assert_eq!(a.fill, Some(0x90));
                assert_eq!(a.max_skip, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_directives_pass_through_verbatim() {
        let text = "\t.cfi_startproc\n\t.file \"x.c\"\n\t.cfi_def_cfa_offset 16\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 3);
        for e in &entries {
            assert!(matches!(e.directive(), Some(Directive::Other { .. })));
        }
        let second = parse(&emit(&entries)).unwrap();
        assert_eq!(entries, second);
    }

    #[test]
    fn empty_and_whitespace_lines_ignored() {
        assert!(parse("\n\n   \n\t\n").unwrap().is_empty());
        assert_eq!(parse(" ; ; nop ; \n").unwrap().len(), 1);
    }
}
