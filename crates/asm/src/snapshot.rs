//! Binary IR snapshots: a compact, content-addressed serialization of the
//! parsed entry list.
//!
//! A snapshot lets repeated builds of mostly-unchanged assembly skip text
//! parsing entirely: the CLI (`mao --emit-snapshot` / `--snapshot-dir`) and
//! `maod` key snapshots by the input's content hash and load the IR straight
//! from bytes. The format follows the same discipline as the PR 6/7 disk
//! caches — versioned magic, embedded content key, checksummed body — so a
//! corrupt, truncated, or version-skewed file is *detected and rejected*,
//! never served (the stores evict such files on sight; `mao check`'s
//! snapshot execution path proves byte-identical results against the text
//! path).
//!
//! Layout (all integers little-endian; `varint`/`zigzag` are LEB128):
//!
//! ```text
//! magic    8B  b"MAOSNAP\x01"
//! version  u32
//! isa_tag  u32             which ISA the unit's instructions belong to
//! body_len u64
//! body:
//!   key          u128      content hash of the source text (0 if unkeyed)
//!   strtab_count varint    distinct strings, then per string: len + bytes
//!   entry_count  varint    then per entry: tag byte + payload
//! checksum u64             word-wise FNV-1a over body
//! ```
//!
//! Strings are deduplicated through a string table; symbol-typed fields
//! intern each table entry exactly once at decode, so a snapshot load does
//! one hash probe per *distinct* symbol instead of one per occurrence.
//! Mnemonics and registers serialize through stable numeric codes
//! ([`mao_x86::Mnemonic::snapshot_code`], [`mao_x86::RegId::index`],
//! [`mao_aarch64::A64Mnemonic::snapshot_code`]); any table reordering
//! requires a [`SNAPSHOT_VERSION`] bump.
//!
//! Version history: v1 was x86-only (the pre-ISA-boundary format; its
//! `isa_tag` slot was a reserved zero). v2 stamps the unit's [`IsaId`] in
//! the header and adds the AArch64 instruction entry tag. v1 files are
//! rejected as [`SnapshotError::StaleVersion`] and evicted by the stores,
//! exactly like any other version skew.

use std::fmt;

use mao_aarch64::{A64Insn, A64Mnemonic, A64Operand, A64Reg};
use mao_isa::{Insn, IsaId};
use mao_x86::insn::Instruction;
use mao_x86::operand::{Disp, Mem, Operand, Operands};
use mao_x86::reg::{Reg, RegId, Width};
use mao_x86::sym::Sym;
use mao_x86::Mnemonic;

use crate::entry::{Align, DataItem, DataWidth, Directive, Entry};

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MAOSNAP\x01";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Fixed header length (magic + version + reserved + body_len).
const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Structurally invalid: bad magic, truncation, unknown tag, bad UTF-8.
    Malformed(&'static str),
    /// Valid container written by a different format version.
    StaleVersion(u32),
    /// Embedded content key does not match the expected key.
    WrongKey,
    /// Checksum mismatch: bit rot or a torn write.
    Corrupt,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::StaleVersion(v) => {
                write!(f, "snapshot version {v} != {SNAPSHOT_VERSION}")
            }
            SnapshotError::WrongKey => write!(f, "snapshot content key mismatch"),
            SnapshotError::Corrupt => write!(f, "snapshot checksum mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// 128-bit FNV-1a content hash of source text — the snapshot store key.
pub fn content_key(text: &str) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in text.as_bytes() {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Word-wise FNV-1a over `bytes`: 8 bytes per round so checksumming does not
/// dominate snapshot load time (the byte-wise variant the result cache uses
/// costs about a cycle per byte, which would eat the 10x load budget).
fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        tail[7] = rest.len() as u8; // disambiguate zero-padding from zeros
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
    strings: std::collections::HashMap<&'static str, u32>,
    // Table in insertion order; everything goes through the interner so the
    // map key and the table entry can share one `&'static str`.
    table: Vec<&'static str>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
    }

    fn zigzag(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    fn sym(&mut self, s: Sym) {
        let idx = match self.strings.get(s.as_str()) {
            Some(&i) => i,
            None => {
                let i = self.table.len() as u32;
                self.strings.insert(s.as_str(), i);
                self.table.push(s.as_str());
                i
            }
        };
        self.varint(u64::from(idx));
    }

    fn string(&mut self, s: &str) {
        let idx = match self.strings.get(s) {
            Some(&i) => i,
            None => {
                let i = self.table.len() as u32;
                // Free-text strings (args, exprs, literals) are interned too:
                // they are rare enough that the interner growth is bounded in
                // practice, and sharing one `&'static str` table beats
                // keeping a second owned-key map.
                let stat = Sym::intern(s).as_str();
                self.strings.insert(stat, i);
                self.table.push(stat);
                i
            }
        };
        self.varint(u64::from(idx));
    }

    fn reg(&mut self, r: Reg) {
        self.u8(r.id.index() as u8);
        self.u8(width_code(Some(r.width)) | if r.high8 { 0x80 } else { 0 });
    }

    fn mem(&mut self, m: &Mem) {
        let scale_code = m.scale.trailing_zeros() as u8; // 1,2,4,8 -> 0..3
        let disp_kind = match m.disp {
            Disp::None => 0u8,
            Disp::Imm(_) => 1,
            Disp::Symbol { .. } => 2,
        };
        let flags = u8::from(m.base.is_some())
            | u8::from(m.index.is_some()) << 1
            | scale_code << 2
            | disp_kind << 4;
        self.u8(flags);
        if let Some(b) = m.base {
            self.reg(b);
        }
        if let Some(i) = m.index {
            self.reg(i);
        }
        match &m.disp {
            Disp::None => {}
            Disp::Imm(v) => self.zigzag(*v),
            Disp::Symbol { name, addend } => {
                self.sym(*name);
                self.zigzag(*addend);
            }
        }
    }

    fn operand(&mut self, op: &Operand) {
        match op {
            Operand::Imm(v) => {
                self.u8(0);
                self.zigzag(*v);
            }
            Operand::Reg(r) => {
                self.u8(1);
                self.reg(*r);
            }
            Operand::Mem(m) => {
                self.u8(2);
                self.mem(m);
            }
            Operand::Label(l) => {
                self.u8(3);
                self.sym(*l);
            }
            Operand::IndirectReg(r) => {
                self.u8(4);
                self.reg(*r);
            }
            Operand::IndirectMem(m) => {
                self.u8(5);
                self.mem(m);
            }
        }
    }

    fn insn(&mut self, i: &Instruction) {
        self.u16(i.mnemonic.snapshot_code());
        let flags = width_code(i.op_width) | width_code(i.src_width) << 3 | u8::from(i.lock) << 6;
        self.u8(flags);
        self.varint(i.operands.len() as u64);
        for op in &i.operands {
            self.operand(op);
        }
    }

    fn a64_reg(&mut self, r: A64Reg) {
        self.u8(r.num | u8::from(r.is64) << 6 | u8::from(r.sp) << 7);
    }

    fn a64_operand(&mut self, op: &A64Operand) {
        match op {
            A64Operand::Reg(r) => {
                self.u8(0);
                self.a64_reg(*r);
            }
            A64Operand::Imm(v) => {
                self.u8(1);
                self.zigzag(*v);
            }
            A64Operand::Mem { base, offset } => {
                self.u8(2);
                self.a64_reg(*base);
                self.zigzag(*offset);
            }
            A64Operand::Label(l) => {
                self.u8(3);
                self.sym(*l);
            }
        }
    }

    fn a64_insn(&mut self, i: &A64Insn) {
        self.u16(i.mnemonic.snapshot_code());
        self.varint(i.operands.len() as u64);
        for op in &i.operands {
            self.a64_operand(op);
        }
    }

    fn entry(&mut self, e: &Entry) {
        match e {
            Entry::Label(l) => {
                self.u8(0);
                self.sym(*l);
            }
            Entry::Insn(Insn::X86(i)) => {
                self.u8(1);
                self.insn(i);
            }
            Entry::Insn(Insn::A64(i)) => {
                self.u8(13);
                self.a64_insn(i);
            }
            Entry::Directive(d) => self.directive(d),
        }
    }

    fn directive(&mut self, d: &Directive) {
        match d {
            Directive::Section { name, args } => {
                self.u8(2);
                self.sym(*name);
                self.varint(args.len() as u64);
                for a in args {
                    self.string(a);
                }
            }
            Directive::Global(s) => {
                self.u8(3);
                self.sym(*s);
            }
            Directive::Type { symbol, kind } => {
                self.u8(4);
                self.sym(*symbol);
                self.sym(*kind);
            }
            Directive::Size { symbol, expr } => {
                self.u8(5);
                self.sym(*symbol);
                self.string(expr);
            }
            Directive::Align(a) => {
                self.u8(6);
                let flags = u8::from(a.fill.is_some())
                    | u8::from(a.max_skip.is_some()) << 1
                    | u8::from(a.p2_form) << 2;
                self.u8(flags);
                self.varint(a.alignment);
                if let Some(f) = a.fill {
                    self.u8(f);
                }
                if let Some(m) = a.max_skip {
                    self.varint(m);
                }
            }
            Directive::Data { width, items } => {
                self.u8(7);
                self.u8(data_width_code(*width));
                self.varint(items.len() as u64);
                for item in items {
                    match item {
                        DataItem::Imm(v) => {
                            self.u8(0);
                            self.zigzag(*v);
                        }
                        DataItem::Symbol(s) => {
                            self.u8(1);
                            self.sym(*s);
                        }
                    }
                }
            }
            Directive::Ascii(s) => {
                self.u8(8);
                self.string(s);
            }
            Directive::Asciz(s) => {
                self.u8(9);
                self.string(s);
            }
            Directive::Zero(n) => {
                self.u8(10);
                self.varint(*n);
            }
            Directive::Comm {
                symbol,
                size,
                align,
            } => {
                self.u8(11);
                self.sym(*symbol);
                self.varint(*size);
                match align {
                    Some(a) => {
                        self.u8(1);
                        self.varint(*a);
                    }
                    None => self.u8(0),
                }
            }
            Directive::Other { name, args } => {
                self.u8(12);
                self.sym(*name);
                self.string(args);
            }
        }
    }
}

fn width_code(w: Option<Width>) -> u8 {
    match w {
        None => 0,
        Some(Width::B1) => 1,
        Some(Width::B2) => 2,
        Some(Width::B4) => 3,
        Some(Width::B8) => 4,
        Some(Width::B16) => 5,
    }
}

fn width_from_code(c: u8) -> Result<Option<Width>, SnapshotError> {
    Ok(match c {
        0 => None,
        1 => Some(Width::B1),
        2 => Some(Width::B2),
        3 => Some(Width::B4),
        4 => Some(Width::B8),
        5 => Some(Width::B16),
        _ => return Err(SnapshotError::Malformed("width code")),
    })
}

fn data_width_code(w: DataWidth) -> u8 {
    match w {
        DataWidth::Byte => 0,
        DataWidth::Word => 1,
        DataWidth::Long => 2,
        DataWidth::Quad => 3,
    }
}

fn data_width_from_code(c: u8) -> Result<DataWidth, SnapshotError> {
    Ok(match c {
        0 => DataWidth::Byte,
        1 => DataWidth::Word,
        2 => DataWidth::Long,
        3 => DataWidth::Quad,
        _ => return Err(SnapshotError::Malformed("data width code")),
    })
}

/// The ISA a unit's instructions belong to, inferred from the first
/// instruction entry (directive-only units are tagged x86-64, the
/// historical default — their decode is ISA-independent anyway).
pub fn unit_isa(entries: &[Entry]) -> IsaId {
    entries
        .iter()
        .find_map(Entry::insn_any)
        .map(Insn::isa)
        .unwrap_or(IsaId::X86_64)
}

/// Serialize `entries` into a self-contained snapshot keyed by `key`.
pub fn encode(entries: &[Entry], key: u128) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(entries.len() * 12 + 64),
        strings: std::collections::HashMap::new(),
        table: Vec::new(),
    };
    // Entries are encoded first (into a scratch) so the string table they
    // populate can be written ahead of them in the body.
    w.varint(entries.len() as u64);
    for e in entries {
        w.entry(e);
    }
    let entry_bytes = std::mem::take(&mut w.buf);

    let mut body = Vec::with_capacity(entry_bytes.len() + w.table.len() * 12 + 32);
    body.extend_from_slice(&key.to_le_bytes());
    let mut head = Writer {
        buf: body,
        strings: std::collections::HashMap::new(),
        table: Vec::new(),
    };
    head.varint(w.table.len() as u64);
    for &s in &w.table {
        head.varint(s.len() as u64);
        head.buf.extend_from_slice(s.as_bytes());
    }
    let mut body = head.buf;
    body.extend_from_slice(&entry_bytes);

    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&unit_isa(entries).tag().to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&checksum64(&body).to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decode cursor. The hot path decodes ~10 bytes per entry, so the
/// primitives are slice-splitting (`split_first`/`split_first_chunk`) with
/// `#[inline(always)]`: one compare per read, no position arithmetic, and
/// the compiler keeps the cursor in registers across an entry.
struct Reader<'a, 's> {
    rest: &'a [u8],
    syms: &'s [Sym],
}

impl<'a, 's> Reader<'a, 's> {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.rest.len() {
            return Err(SnapshotError::Malformed("truncated body"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    #[inline(always)]
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        match self.rest.split_first() {
            Some((&b, tail)) => {
                self.rest = tail;
                Ok(b)
            }
            None => Err(SnapshotError::Malformed("truncated body")),
        }
    }

    #[inline(always)]
    fn varint(&mut self) -> Result<u64, SnapshotError> {
        // Single-byte fast path: the overwhelming majority of varints in a
        // snapshot (operand counts, string indices, small displacements).
        if let Some((&b, tail)) = self.rest.split_first() {
            if b < 0x80 {
                self.rest = tail;
                return Ok(u64::from(b));
            }
        }
        self.varint_multi()
    }

    fn varint_multi(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(SnapshotError::Malformed("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    #[inline(always)]
    fn zigzag(&mut self) -> Result<i64, SnapshotError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    #[inline(always)]
    fn sym(&mut self) -> Result<Sym, SnapshotError> {
        let idx = self.varint()? as usize;
        self.syms
            .get(idx)
            .copied()
            .ok_or(SnapshotError::Malformed("string index out of range"))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        Ok(self.sym()?.as_str().to_owned())
    }

    #[inline(always)]
    fn reg(&mut self) -> Result<Reg, SnapshotError> {
        let (id, wb) = match self.rest.split_first_chunk::<2>() {
            Some((&[id, wb], tail)) => {
                self.rest = tail;
                (id, wb)
            }
            None => return Err(SnapshotError::Malformed("truncated body")),
        };
        let id = RegId::from_index(id as usize).ok_or(SnapshotError::Malformed("register id"))?;
        let width =
            width_from_code(wb & 0x7f)?.ok_or(SnapshotError::Malformed("register width"))?;
        Ok(Reg {
            id,
            width,
            high8: wb & 0x80 != 0,
        })
    }

    #[inline]
    fn mem(&mut self) -> Result<Mem, SnapshotError> {
        let flags = self.u8()?;
        let base = if flags & 1 != 0 {
            Some(self.reg()?)
        } else {
            None
        };
        let index = if flags & 2 != 0 {
            Some(self.reg()?)
        } else {
            None
        };
        let scale = 1u8 << ((flags >> 2) & 0x3);
        let disp = match (flags >> 4) & 0x3 {
            0 => Disp::None,
            1 => Disp::Imm(self.zigzag()?),
            2 => Disp::Symbol {
                name: self.sym()?,
                addend: self.zigzag()?,
            },
            _ => return Err(SnapshotError::Malformed("displacement kind")),
        };
        Ok(Mem {
            disp,
            base,
            index,
            scale,
        })
    }

    #[inline]
    fn operand(&mut self) -> Result<Operand, SnapshotError> {
        Ok(match self.u8()? {
            0 => Operand::Imm(self.zigzag()?),
            1 => Operand::Reg(self.reg()?),
            2 => Operand::Mem(self.mem()?),
            3 => Operand::Label(self.sym()?),
            4 => Operand::IndirectReg(self.reg()?),
            5 => Operand::IndirectMem(self.mem()?),
            _ => return Err(SnapshotError::Malformed("operand tag")),
        })
    }

    #[inline]
    fn a64_reg(&mut self) -> Result<A64Reg, SnapshotError> {
        let b = self.u8()?;
        let num = b & 0x3f;
        if num > 31 {
            return Err(SnapshotError::Malformed("a64 register number"));
        }
        Ok(A64Reg {
            num,
            is64: b & 0x40 != 0,
            sp: b & 0x80 != 0,
        })
    }

    #[inline]
    fn a64_operand(&mut self) -> Result<A64Operand, SnapshotError> {
        Ok(match self.u8()? {
            0 => A64Operand::Reg(self.a64_reg()?),
            1 => A64Operand::Imm(self.zigzag()?),
            2 => A64Operand::Mem {
                base: self.a64_reg()?,
                offset: self.zigzag()?,
            },
            3 => A64Operand::Label(self.sym()?),
            _ => return Err(SnapshotError::Malformed("a64 operand tag")),
        })
    }

    #[inline]
    fn a64_insn(&mut self) -> Result<A64Insn, SnapshotError> {
        let code = match self.rest.split_first_chunk::<2>() {
            Some((&[c0, c1], tail)) => {
                self.rest = tail;
                u16::from_le_bytes([c0, c1])
            }
            None => return Err(SnapshotError::Malformed("truncated body")),
        };
        let mnemonic = A64Mnemonic::from_snapshot_code(code)
            .ok_or(SnapshotError::Malformed("a64 mnemonic code"))?;
        let n = self.varint()? as usize;
        if n > 4 {
            return Err(SnapshotError::Malformed("a64 operand count"));
        }
        let mut operands = Vec::with_capacity(n);
        for _ in 0..n {
            operands.push(self.a64_operand()?);
        }
        Ok(A64Insn { mnemonic, operands })
    }

    #[inline]
    fn insn(&mut self) -> Result<Instruction, SnapshotError> {
        // One 3-byte chunk read for the fixed head (code + flags).
        let (code, flags) = match self.rest.split_first_chunk::<3>() {
            Some((&[c0, c1, flags], tail)) => {
                self.rest = tail;
                (u16::from_le_bytes([c0, c1]), flags)
            }
            None => return Err(SnapshotError::Malformed("truncated body")),
        };
        let mnemonic =
            Mnemonic::from_snapshot_code(code).ok_or(SnapshotError::Malformed("mnemonic code"))?;
        let op_width = width_from_code(flags & 0x7)?;
        let src_width = width_from_code((flags >> 3) & 0x7)?;
        let lock = flags & 0x40 != 0;
        let n = self.varint()? as usize;
        if n > 8 {
            return Err(SnapshotError::Malformed("operand count"));
        }
        let mut operands = Operands::new();
        for _ in 0..n {
            operands.push(self.operand()?);
        }
        Ok(Instruction {
            mnemonic,
            op_width,
            src_width,
            lock,
            operands,
        })
    }

    /// Decode one entry directly into `out` (pushing rather than returning
    /// keeps the ~112-byte `Entry` from being moved through two stack
    /// copies per entry on the hot decode path).
    fn entry_into(&mut self, out: &mut Vec<Entry>) -> Result<(), SnapshotError> {
        out.push(match self.u8()? {
            0 => Entry::Label(self.sym()?),
            1 => Entry::Insn(Insn::X86(self.insn()?)),
            13 => Entry::Insn(Insn::A64(self.a64_insn()?)),
            2 => {
                let name = self.sym()?;
                let n = self.varint()? as usize;
                if n > 64 {
                    return Err(SnapshotError::Malformed("section arg count"));
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.string()?);
                }
                Entry::Directive(Directive::Section { name, args })
            }
            3 => Entry::Directive(Directive::Global(self.sym()?)),
            4 => Entry::Directive(Directive::Type {
                symbol: self.sym()?,
                kind: self.sym()?,
            }),
            5 => Entry::Directive(Directive::Size {
                symbol: self.sym()?,
                expr: self.string()?,
            }),
            6 => {
                let flags = self.u8()?;
                let alignment = self.varint()?;
                let fill = if flags & 1 != 0 {
                    Some(self.u8()?)
                } else {
                    None
                };
                let max_skip = if flags & 2 != 0 {
                    Some(self.varint()?)
                } else {
                    None
                };
                Entry::Directive(Directive::Align(Align {
                    alignment,
                    fill,
                    max_skip,
                    p2_form: flags & 4 != 0,
                }))
            }
            7 => {
                let width = data_width_from_code(self.u8()?)?;
                let n = self.varint()? as usize;
                if n > 1 << 24 {
                    return Err(SnapshotError::Malformed("data item count"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(match self.u8()? {
                        0 => DataItem::Imm(self.zigzag()?),
                        1 => DataItem::Symbol(self.sym()?),
                        _ => return Err(SnapshotError::Malformed("data item tag")),
                    });
                }
                Entry::Directive(Directive::Data { width, items })
            }
            8 => Entry::Directive(Directive::Ascii(self.string()?)),
            9 => Entry::Directive(Directive::Asciz(self.string()?)),
            10 => Entry::Directive(Directive::Zero(self.varint()?)),
            11 => {
                let symbol = self.sym()?;
                let size = self.varint()?;
                let align = match self.u8()? {
                    0 => None,
                    1 => Some(self.varint()?),
                    _ => return Err(SnapshotError::Malformed("comm align flag")),
                };
                Entry::Directive(Directive::Comm {
                    symbol,
                    size,
                    align,
                })
            }
            12 => Entry::Directive(Directive::Other {
                name: self.sym()?,
                args: self.string()?,
            }),
            _ => return Err(SnapshotError::Malformed("entry tag")),
        });
        Ok(())
    }
}

/// The content key embedded in a snapshot, without a full decode.
///
/// Validates magic/version/length/checksum (the cheap part) so callers can
/// reject junk before trusting the key.
pub fn snapshot_key(bytes: &[u8]) -> Result<u128, SnapshotError> {
    let (body, _) = validate(bytes)?;
    Ok(u128::from_le_bytes(body[..16].try_into().unwrap()))
}

/// The ISA tag stamped in a snapshot's header, without a full decode.
pub fn snapshot_isa(bytes: &[u8]) -> Result<IsaId, SnapshotError> {
    let (_, isa) = validate(bytes)?;
    Ok(isa)
}

/// Validate container framing and checksum, returning the body slice and
/// the header's ISA tag.
fn validate(bytes: &[u8]) -> Result<(&[u8], IsaId), SnapshotError> {
    if bytes.len() < HEADER_LEN + 16 + 8 {
        return Err(SnapshotError::Malformed("too short"));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Malformed("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::StaleVersion(version));
    }
    let isa_tag = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let isa = IsaId::from_tag(isa_tag).ok_or(SnapshotError::Malformed("isa tag"))?;
    let body_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let Some(total) = HEADER_LEN
        .checked_add(body_len)
        .and_then(|n| n.checked_add(8))
    else {
        return Err(SnapshotError::Malformed("length overflow"));
    };
    if bytes.len() != total {
        return Err(SnapshotError::Malformed("length mismatch"));
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    let expect = u64::from_le_bytes(bytes[HEADER_LEN + body_len..].try_into().unwrap());
    if checksum64(body) != expect {
        return Err(SnapshotError::Corrupt);
    }
    if body.len() < 16 {
        return Err(SnapshotError::Malformed("body too short"));
    }
    Ok((body, isa))
}

/// A loaded (validated, indexed) snapshot whose entries decode on demand.
///
/// This is the mmap-style load boundary: [`Snapshot::load`] verifies the
/// container (magic, version, length, checksum), checks the content key,
/// and interns the string table — everything a consumer must pay *before
/// the first entry* — but touches none of the entry region. Entries are
/// then decoded straight out of the borrowed byte buffer, either streamed
/// one at a time ([`Snapshot::iter`], constant memory) or materialized in
/// full ([`Snapshot::to_entries`]). Load cost is therefore proportional to
/// the string table, not the unit, which is what makes a snapshot hit
/// cheap even for units whose entry list is tens of megabytes in IR form.
pub struct Snapshot<'a> {
    key: u128,
    isa: IsaId,
    syms: Vec<Sym>,
    entry_bytes: &'a [u8],
    nentries: usize,
}

impl<'a> Snapshot<'a> {
    /// Validate a snapshot and index its string table, without decoding
    /// entries.
    ///
    /// When `expected_key` is given, the embedded content key must match —
    /// protecting content-addressed stores from hash-collision filename
    /// mixups, exactly like the result cache's `WrongKey` check.
    pub fn load(
        bytes: &'a [u8],
        expected_key: Option<u128>,
    ) -> Result<Snapshot<'a>, SnapshotError> {
        let (body, isa) = validate(bytes)?;
        let key = u128::from_le_bytes(body[..16].try_into().unwrap());
        if let Some(expect) = expected_key {
            if key != expect {
                return Err(SnapshotError::WrongKey);
            }
        }
        let mut r = Reader {
            rest: &body[16..],
            syms: &[],
        };
        let nstrings = r.varint()? as usize;
        if nstrings > 1 << 24 {
            return Err(SnapshotError::Malformed("string table size"));
        }
        // Every string costs at least one body byte, so a lying count cannot
        // force an allocation larger than the snapshot itself.
        let mut syms = Vec::with_capacity(nstrings.min(r.rest.len()));
        for _ in 0..nstrings {
            let len = r.varint()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| SnapshotError::Malformed("string not UTF-8"))?;
            syms.push(Sym::intern(s));
        }
        let nentries = r.varint()? as usize;
        if nentries > 1 << 28 {
            return Err(SnapshotError::Malformed("entry count"));
        }
        Ok(Snapshot {
            key,
            isa,
            syms,
            entry_bytes: r.rest,
            nentries,
        })
    }

    /// The content key embedded at encode time.
    pub fn key(&self) -> u128 {
        self.key
    }

    /// The ISA tag stamped at encode time.
    pub fn isa(&self) -> IsaId {
        self.isa
    }

    /// Number of entries in the snapshot.
    pub fn len(&self) -> usize {
        self.nentries
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.nentries == 0
    }

    /// Decode every entry into a `Vec` (the eager path the optimizer
    /// pipeline uses — it needs the whole unit).
    pub fn to_entries(&self) -> Result<Vec<Entry>, SnapshotError> {
        let mut r = Reader {
            rest: self.entry_bytes,
            syms: &self.syms,
        };
        // One body byte per entry minimum bounds the reservation even if
        // the count lies.
        let mut entries = Vec::with_capacity(self.nentries.min(r.rest.len()));
        for _ in 0..self.nentries {
            r.entry_into(&mut entries)?;
        }
        if !r.rest.is_empty() {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(entries)
    }

    /// Stream entries one at a time without materializing the unit.
    ///
    /// Constant memory: suited to consumers that fold over the entry list
    /// (counting, re-emission, differential comparison).
    pub fn iter(&self) -> SnapshotEntries<'a, '_> {
        SnapshotEntries {
            r: Reader {
                rest: self.entry_bytes,
                syms: &self.syms,
            },
            remaining: self.nentries,
            scratch: Vec::with_capacity(1),
        }
    }
}

/// Streaming entry iterator over a loaded [`Snapshot`].
///
/// Yields `Err` at most once (on a malformed entry region) and then stops;
/// a fully consumed iterator that never errored has decoded exactly the
/// entries `to_entries` would have produced.
pub struct SnapshotEntries<'a, 's> {
    r: Reader<'a, 's>,
    remaining: usize,
    scratch: Vec<Entry>,
}

impl Iterator for SnapshotEntries<'_, '_> {
    type Item = Result<Entry, SnapshotError>;

    fn next(&mut self) -> Option<Result<Entry, SnapshotError>> {
        if self.remaining == 0 {
            if !self.r.rest.is_empty() {
                self.r.rest = &[];
                return Some(Err(SnapshotError::Malformed("trailing bytes")));
            }
            return None;
        }
        self.remaining -= 1;
        self.scratch.clear();
        match self.r.entry_into(&mut self.scratch) {
            Ok(()) => self.scratch.pop().map(Ok),
            Err(e) => {
                self.remaining = 0;
                self.r.rest = &[];
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining + 1))
    }
}

/// Decode a snapshot back into the entry list (load + full materialization).
pub fn decode(bytes: &[u8], expected_key: Option<u128>) -> Result<Vec<Entry>, SnapshotError> {
    Snapshot::load(bytes, expected_key)?.to_entries()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const SAMPLE: &str = "\t.text\n\t.globl main\n\t.type main, @function\nmain:\n\tpushq \
                          %rbp\n\tmovq %rsp, %rbp\n\tmovl $0, -4(%rbp)\n.L2:\n\tcmpl $9, \
                          -4(%rbp)\n\tjg .L4\n\tlock addl $1, counter(%rip)\n\taddl $1, \
                          -4(%rbp)\n\tjmp .L2\n.L4:\n\tleave\n\tret\n\t.size main, \
                          .-main\n\t.section .rodata,\"a\",@progbits\n.LC0:\n\t.quad .L2\n\t\
                          .quad .L4, 8\n\t.long 42\n\t.string \"hi\\n\"\n\t.ascii \"raw\"\n\t\
                          .zero 16\n\t.comm buf,64,32\n\t.p2align 4,,15\n\t.align 8\n\t.byte \
                          1, 2, 3\n\tsete %al\n\tcmovge %eax, %ebx\n\tjmp *tab(,%rax,8)\n\t\
                          call *%rdx\n\tmovsbl 1(%rdi,%r8,4), %edx\n\t.ident \"x\"\n";

    #[test]
    fn roundtrip_paper_style_unit() {
        let entries = parse(SAMPLE).unwrap();
        let key = content_key(SAMPLE);
        let bytes = encode(&entries, key);
        assert_eq!(snapshot_key(&bytes).unwrap(), key);
        let back = decode(&bytes, Some(key)).unwrap();
        assert_eq!(entries, back);
    }

    #[test]
    fn snapshot_is_more_compact_than_text() {
        let entries = parse(SAMPLE).unwrap();
        let bytes = encode(&entries, 0);
        assert!(
            bytes.len() < SAMPLE.len(),
            "snapshot {}B not smaller than text {}B",
            bytes.len(),
            SAMPLE.len()
        );
    }

    #[test]
    fn wrong_key_is_rejected() {
        let entries = parse("nop\n").unwrap();
        let bytes = encode(&entries, 7);
        assert_eq!(decode(&bytes, Some(8)), Err(SnapshotError::WrongKey));
        assert!(decode(&bytes, Some(7)).is_ok());
        assert!(decode(&bytes, None).is_ok());
    }

    #[test]
    fn corruption_is_detected() {
        let entries = parse(SAMPLE).unwrap();
        let mut bytes = encode(&entries, 1);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            decode(&bytes, None),
            Err(SnapshotError::Corrupt) | Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let entries = parse(SAMPLE).unwrap();
        let bytes = encode(&entries, 1);
        for cut in [0, 4, HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut], None).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn version_skew_is_detected() {
        let entries = parse("nop\n").unwrap();
        let mut bytes = encode(&entries, 1);
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&bytes, None),
            Err(SnapshotError::StaleVersion(SNAPSHOT_VERSION + 1))
        );
    }

    #[test]
    fn bad_magic_is_detected() {
        let entries = parse("nop\n").unwrap();
        let mut bytes = encode(&entries, 1);
        bytes[0] = b'X';
        assert_eq!(
            decode(&bytes, None),
            Err(SnapshotError::Malformed("bad magic"))
        );
    }

    #[test]
    fn mnemonic_codes_roundtrip_all_families() {
        use mao_x86::flags::Cond;
        for m in Mnemonic::ALL {
            match m {
                Mnemonic::Jcc(_) | Mnemonic::Setcc(_) | Mnemonic::Cmovcc(_) => {
                    for c in Cond::ALL {
                        let v = m.with_cond(c);
                        assert_eq!(Mnemonic::from_snapshot_code(v.snapshot_code()), Some(v));
                    }
                }
                other => {
                    assert_eq!(
                        Mnemonic::from_snapshot_code(other.snapshot_code()),
                        Some(other)
                    );
                }
            }
        }
        assert_eq!(Mnemonic::from_snapshot_code(0x9999), None);
    }

    #[test]
    fn a64_units_round_trip_with_isa_tag() {
        let text = "// leaf function\nf:\n\tsub\tsp, sp, #16\n\tstr\tx19, [sp, #8]\n\tmov\tx19, \
                    x0\n.L1:\n\tcmp\tx19, #0\n\tb.eq\t.L2\n\tsub\tx19, x19, #1\n\tb\t.L1\n.L2:\n\t\
                    ldr\tx19, [sp, #8]\n\tadd\tsp, sp, #16\n\tret\n";
        let entries = crate::parse_isa(text, IsaId::Aarch64).unwrap();
        let key = content_key(text);
        let bytes = encode(&entries, key);
        assert_eq!(snapshot_isa(&bytes).unwrap(), IsaId::Aarch64);
        let snap = Snapshot::load(&bytes, Some(key)).unwrap();
        assert_eq!(snap.isa(), IsaId::Aarch64);
        assert_eq!(snap.to_entries().unwrap(), entries);
    }

    #[test]
    fn x86_units_carry_the_x86_isa_tag() {
        let entries = parse("nop\n").unwrap();
        let bytes = encode(&entries, 0);
        assert_eq!(snapshot_isa(&bytes).unwrap(), IsaId::X86_64);
        // Directive-only units default to the x86 tag.
        let entries = parse(".text\n").unwrap();
        assert_eq!(snapshot_isa(&encode(&entries, 0)).unwrap(), IsaId::X86_64);
    }

    #[test]
    fn unknown_isa_tag_is_rejected() {
        let entries = parse("nop\n").unwrap();
        let mut bytes = encode(&entries, 0);
        bytes[12..16].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode(&bytes, None),
            Err(SnapshotError::Malformed("isa tag"))
        );
    }

    #[test]
    fn content_key_is_stable_and_sensitive() {
        let a = content_key("nop\n");
        assert_eq!(a, content_key("nop\n"));
        assert_ne!(a, content_key("nop \n"));
    }
}
