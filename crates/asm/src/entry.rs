//! Assembly-file entries: the node type of the "one long list" IR.
//!
//! The paper: *"After parsing, all assembly directives and instructions form
//! one long list of MAO IR nodes."* An [`Entry`] is one such node — a label,
//! an instruction, or a directive. The `mao` crate layers sections,
//! functions and iterators on top of a `Vec<Entry>`.

use std::fmt;

use mao_isa::Insn;
use mao_x86::sym::Sym;
use mao_x86::Instruction;

/// A value inside a data directive (`.long 4`, `.quad .L42`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataItem {
    /// Constant value.
    Imm(i64),
    /// Symbol reference (jump tables are `.quad .Lnn` lists).
    Symbol(Sym),
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataItem::Imm(v) => write!(f, "{v}"),
            DataItem::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Width of a data directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataWidth {
    /// `.byte`
    Byte,
    /// `.word` / `.value` (2 bytes)
    Word,
    /// `.long` / `.int` (4 bytes)
    Long,
    /// `.quad` (8 bytes)
    Quad,
}

impl DataWidth {
    /// Size in bytes of one item.
    pub fn bytes(self) -> u64 {
        match self {
            DataWidth::Byte => 1,
            DataWidth::Word => 2,
            DataWidth::Long => 4,
            DataWidth::Quad => 8,
        }
    }

    /// Directive spelling.
    pub fn name(self) -> &'static str {
        match self {
            DataWidth::Byte => ".byte",
            DataWidth::Word => ".word",
            DataWidth::Long => ".long",
            DataWidth::Quad => ".quad",
        }
    }
}

/// An alignment request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Align {
    /// Alignment in bytes (always a power of two).
    pub alignment: u64,
    /// Optional fill byte (x86 text sections default to NOP fill).
    pub fill: Option<u8>,
    /// Maximum bytes to skip; alignment is abandoned if it would need more.
    pub max_skip: Option<u64>,
    /// Was this written as `.p2align` (exponent form) or `.align`?
    pub p2_form: bool,
}

impl Align {
    /// A plain `.p2align n` request for 2^n-byte alignment.
    pub fn p2(n: u32) -> Align {
        Align {
            alignment: 1 << n,
            fill: None,
            max_skip: None,
            p2_form: true,
        }
    }
}

/// An assembly directive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Directive {
    /// `.text`, `.data`, `.bss`, `.section name[,flags]`.
    Section {
        /// Section name (`.text`, `.rodata`, ...).
        name: Sym,
        /// Raw flag arguments, passed through verbatim.
        args: Vec<String>,
    },
    /// `.globl sym` / `.global sym`.
    Global(Sym),
    /// `.type sym, @kind`.
    Type {
        /// Symbol name.
        symbol: Sym,
        /// Kind (`function`, `object`, ...), without the `@`.
        kind: Sym,
    },
    /// `.size sym, expr` (expression kept verbatim).
    Size {
        /// Symbol name.
        symbol: Sym,
        /// Size expression, e.g. `.-main`.
        expr: String,
    },
    /// `.align` / `.p2align` / `.balign`.
    Align(Align),
    /// `.byte`/`.word`/`.long`/`.quad` with one or more items.
    Data {
        /// Item width.
        width: DataWidth,
        /// The values.
        items: Vec<DataItem>,
    },
    /// `.ascii "..."` (no trailing NUL).
    Ascii(String),
    /// `.asciz`/`.string "..."` (NUL-terminated).
    Asciz(String),
    /// `.zero n` / `.skip n`.
    Zero(u64),
    /// `.comm sym, size[, align]`.
    Comm {
        /// Symbol name.
        symbol: Sym,
        /// Size in bytes.
        size: u64,
        /// Optional alignment.
        align: Option<u64>,
    },
    /// Any directive MAO does not interpret (`.file`, `.ident`, `.cfi_*`,
    /// ...), passed through verbatim.
    Other {
        /// Directive name including the leading dot.
        name: Sym,
        /// Raw argument text.
        args: String,
    },
}

impl Directive {
    /// Does this directive change the current section?
    pub fn section_name(&self) -> Option<&str> {
        match self {
            Directive::Section { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// Size contribution in bytes for address computation, if statically
    /// known (data, strings, zero-fill; alignment is handled separately).
    pub fn data_size(&self) -> Option<u64> {
        match self {
            Directive::Data { width, items } => Some(width.bytes() * items.len() as u64),
            Directive::Ascii(s) => Some(s.len() as u64),
            Directive::Asciz(s) => Some(s.len() as u64 + 1),
            Directive::Zero(n) => Some(*n),
            _ => None,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Section { name, args } => {
                if matches!(name.as_str(), ".text" | ".data" | ".bss") && args.is_empty() {
                    write!(f, "{name}")
                } else {
                    write!(f, ".section {name}")?;
                    for a in args {
                        write!(f, ",{a}")?;
                    }
                    Ok(())
                }
            }
            Directive::Global(s) => write!(f, ".globl {s}"),
            Directive::Type { symbol, kind } => write!(f, ".type {symbol}, @{kind}"),
            Directive::Size { symbol, expr } => write!(f, ".size {symbol}, {expr}"),
            Directive::Align(a) => {
                if a.p2_form {
                    write!(f, ".p2align {}", a.alignment.trailing_zeros())?;
                } else {
                    write!(f, ".align {}", a.alignment)?;
                }
                match (a.fill, a.max_skip) {
                    (None, None) => Ok(()),
                    (Some(fill), None) => write!(f, ",{fill}"),
                    (None, Some(max)) => write!(f, ",,{max}"),
                    (Some(fill), Some(max)) => write!(f, ",{fill},{max}"),
                }
            }
            Directive::Data { width, items } => {
                write!(f, "{} ", width.name())?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            Directive::Ascii(s) => write!(f, ".ascii \"{}\"", escape(s)),
            Directive::Asciz(s) => write!(f, ".asciz \"{}\"", escape(s)),
            Directive::Zero(n) => write!(f, ".zero {n}"),
            Directive::Comm {
                symbol,
                size,
                align,
            } => {
                write!(f, ".comm {symbol},{size}")?;
                if let Some(a) = align {
                    write!(f, ",{a}")?;
                }
                Ok(())
            }
            Directive::Other { name, args } => {
                if args.is_empty() {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name} {args}")
                }
            }
        }
    }
}

/// One node of the parsed assembly file.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Entry {
    /// `name:`
    Label(Sym),
    /// A machine instruction (any ISA; see [`mao_isa::Insn`]).
    Insn(Insn),
    /// An assembler directive.
    Directive(Directive),
}

impl Entry {
    /// The x86 instruction, if this entry is one. Entries from other
    /// ISAs return `None` — x86-only passes see through this accessor
    /// and naturally skip foreign instructions.
    pub fn insn(&self) -> Option<&Instruction> {
        match self {
            Entry::Insn(Insn::X86(i)) => Some(i),
            _ => None,
        }
    }

    /// Mutable x86 instruction access (see [`Entry::insn`]).
    pub fn insn_mut(&mut self) -> Option<&mut Instruction> {
        match self {
            Entry::Insn(Insn::X86(i)) => Some(i),
            _ => None,
        }
    }

    /// The instruction of any ISA, if this entry is one.
    pub fn insn_any(&self) -> Option<&Insn> {
        match self {
            Entry::Insn(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable ISA-neutral instruction access.
    pub fn insn_any_mut(&mut self) -> Option<&mut Insn> {
        match self {
            Entry::Insn(i) => Some(i),
            _ => None,
        }
    }

    /// The label name, if this entry is a label.
    pub fn label(&self) -> Option<&str> {
        match self {
            Entry::Label(l) => Some(l.as_str()),
            _ => None,
        }
    }

    /// The directive, if this entry is one.
    pub fn directive(&self) -> Option<&Directive> {
        match self {
            Entry::Directive(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entry::Label(l) => write!(f, "{l}:"),
            Entry::Insn(i) => write!(f, "\t{i}"),
            Entry::Directive(d) => write!(f, "\t{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_display() {
        let d = Directive::Section {
            name: ".text".into(),
            args: vec![],
        };
        assert_eq!(d.to_string(), ".text");
        let d = Directive::Section {
            name: ".rodata".into(),
            args: vec![],
        };
        assert_eq!(d.to_string(), ".section .rodata");
        let d = Directive::Align(Align::p2(4));
        assert_eq!(d.to_string(), ".p2align 4");
        let d = Directive::Align(Align {
            alignment: 16,
            fill: None,
            max_skip: Some(15),
            p2_form: true,
        });
        assert_eq!(d.to_string(), ".p2align 4,,15");
    }

    #[test]
    fn data_directive() {
        let d = Directive::Data {
            width: DataWidth::Quad,
            items: vec![DataItem::Symbol(".L4".into()), DataItem::Imm(0)],
        };
        assert_eq!(d.to_string(), ".quad .L4, 0");
        assert_eq!(d.data_size(), Some(16));
    }

    #[test]
    fn string_escaping() {
        let d = Directive::Asciz("a\"b\n".into());
        assert_eq!(d.to_string(), ".asciz \"a\\\"b\\n\"");
        assert_eq!(d.data_size(), Some(5));
    }

    #[test]
    fn entry_accessors() {
        let e = Entry::Label(".L1".into());
        assert_eq!(e.label(), Some(".L1"));
        assert!(e.insn().is_none());
        let e = Entry::Insn(Instruction::nop().into());
        assert!(e.insn().is_some());
        assert!(e.insn_any().is_some());
        let a64 = Entry::Insn(mao_aarch64::A64Insn::nop().into());
        assert!(a64.insn().is_none(), "x86 view must skip A64 entries");
        assert_eq!(
            a64.insn_any().map(|i| i.isa()),
            Some(mao_isa::IsaId::Aarch64)
        );
        assert_eq!(a64.to_string(), "\tnop");
    }
}
