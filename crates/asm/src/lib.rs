//! AT&T-syntax x86-64 assembly parsing and emission.
//!
//! This crate replaces the gas front end the original MAO wrapped: it parses
//! compiler-emitted assembly into a flat list of [`Entry`] nodes (labels,
//! instructions, directives) and re-emits legible textual assembly. The
//! `mao` crate builds its sections/functions IR on top of this list.
//!
//! ```
//! let entries = mao_asm::parse("foo:\n\tpush %rbp\n\tret\n").unwrap();
//! let text = mao_asm::emit(&entries);
//! assert_eq!(mao_asm::parse(&text).unwrap(), entries);
//! ```

pub mod emit;
pub mod entry;
pub mod parser;
pub mod parser_reference;
pub mod snapshot;

pub use emit::emit;
pub use entry::{Align, DataItem, DataWidth, Directive, Entry};
/// The neutral instruction enum and ISA registry, re-exported so front-end
/// consumers name one crate.
pub use mao_isa::{Insn, IsaId};
/// The global symbol interner the zero-copy parser and snapshot codec
/// share, re-exported for consumers that report its size.
pub use mao_x86::sym::Sym;
pub use parser::{parse, parse_isa, parse_with_jobs, parse_with_jobs_isa, ParseError};
pub use parser_reference::parse_reference;
