//! AT&T-syntax x86-64 assembly parsing and emission.
//!
//! This crate replaces the gas front end the original MAO wrapped: it parses
//! compiler-emitted assembly into a flat list of [`Entry`] nodes (labels,
//! instructions, directives) and re-emits legible textual assembly. The
//! `mao` crate builds its sections/functions IR on top of this list.
//!
//! ```
//! let entries = mao_asm::parse("foo:\n\tpush %rbp\n\tret\n").unwrap();
//! let text = mao_asm::emit(&entries);
//! assert_eq!(mao_asm::parse(&text).unwrap(), entries);
//! ```

pub mod emit;
pub mod entry;
pub mod parser;

pub use emit::emit;
pub use entry::{Align, DataItem, DataWidth, Directive, Entry};
pub use parser::{parse, ParseError};
