//! Differential and round-trip properties of the zero-copy front end.
//!
//! The zero-copy parser ([`mao_asm::parse`]) must agree entry-for-entry
//! with the retired seed parser ([`mao_asm::parse_reference`]) on every
//! input, and the binary IR snapshot must round-trip the parse exactly:
//! `parse(text) == load(snapshot(parse(text)))` along both the eager and
//! the streaming decode paths. Inputs are drawn from a deterministic
//! pseudo-random assembly generator (no external proptest dependency), so
//! failures reproduce from the printed seed.

use mao_asm::snapshot::{content_key, decode, encode, Snapshot};
use mao_asm::{parse, parse_reference, parse_with_jobs, Entry};

/// Deterministic xorshift64* generator: property inputs reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

/// One pseudo-random statement line, drawn from the grammar the corpus
/// generator exercises plus edge cases it does not (comments mid-line,
/// `;` statement separators, odd spacing, string escapes).
fn random_line(rng: &mut Rng, out: &mut String) {
    const REGS: &[&str] = &[
        "%rax", "%rbx", "%rcx", "%rdi", "%rsi", "%r8", "%r13", "%eax", "%ebx",
    ];
    const MNEMS: &[&str] = &[
        "movq", "addq", "subl", "xorl", "testl", "cmpq", "imulq", "leaq",
    ];
    match rng.below(12) {
        0 => {
            out.push_str(".L");
            out.push_str(&rng.below(500).to_string());
            out.push(':');
        }
        1 => {
            out.push('\t');
            out.push_str(rng.pick(MNEMS));
            out.push(' ');
            out.push_str(rng.pick(REGS));
            out.push_str(", ");
            out.push_str(rng.pick(REGS));
        }
        2 => {
            out.push('\t');
            out.push_str(rng.pick(&["movq", "movl", "addq"]));
            out.push_str(" $");
            out.push_str(&(rng.next() as i32).to_string());
            out.push_str(", ");
            out.push_str(rng.pick(REGS));
        }
        3 => {
            out.push('\t');
            out.push_str(rng.pick(MNEMS));
            out.push(' ');
            out.push_str(&(rng.below(256) as i64 - 128).to_string());
            out.push_str("(%rbp), ");
            out.push_str(rng.pick(REGS));
        }
        4 => {
            out.push('\t');
            out.push_str(rng.pick(&["je", "jne", "jg", "jmp"]));
            out.push_str(" .L");
            out.push_str(&rng.below(500).to_string());
        }
        5 => {
            out.push('\t');
            out.push_str(rng.pick(&[".text", ".data", ".globl foo", ".align 8", ".p2align 4,,15"]));
        }
        6 => {
            out.push('\t');
            out.push_str(".quad ");
            out.push_str(&rng.below(1 << 30).to_string());
            out.push_str(", .L");
            out.push_str(&rng.below(500).to_string());
        }
        7 => {
            out.push('\t');
            out.push_str(".string \"s");
            out.push_str(&rng.below(100).to_string());
            out.push_str("\\n\"");
        }
        8 => {
            // Comment tail after a statement.
            out.push_str("\tmovq %rax, %rbx # trailing ");
            out.push_str(&rng.below(100).to_string());
        }
        9 => {
            // Multiple statements on one line.
            out.push_str("nop; nop;\tincq %rax");
        }
        10 => {
            out.push_str("\tmovq tbl");
            if rng.below(2) == 0 {
                out.push('+');
                out.push_str(&rng.below(64).to_string());
            }
            out.push_str("(%rip), ");
            out.push_str(rng.pick(REGS));
        }
        _ => {
            // Blank-ish line with stray whitespace.
            out.push_str("   \t  ");
        }
    }
    out.push('\n');
}

fn random_unit(seed: u64, lines: usize) -> String {
    let mut rng = Rng(seed | 1);
    let mut text = String::with_capacity(lines * 24);
    text.push_str("\t.text\nf:\n");
    for _ in 0..lines {
        random_line(&mut rng, &mut text);
    }
    text.push_str("\tret\n");
    text
}

#[test]
fn zero_copy_parse_matches_reference_on_random_units() {
    for seed in 1..=40u64 {
        let text = random_unit(seed, 120);
        let fast = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}"));
        let slow =
            parse_reference(&text).unwrap_or_else(|e| panic!("seed {seed}: reference failed: {e}"));
        assert_eq!(fast, slow, "seed {seed}: parsers disagree");
    }
}

#[test]
fn snapshot_roundtrips_random_units_eagerly_and_streaming() {
    for seed in 1..=40u64 {
        let text = random_unit(seed, 120);
        let entries = parse(&text).unwrap();
        let key = content_key(&text);
        let bytes = encode(&entries, key);

        // parse(text) == load(snapshot(parse(text))), eager path.
        let eager = decode(&bytes, Some(key)).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(entries, eager, "seed {seed}: eager round-trip diverged");

        // Streaming path: the lazy iterator yields the same entries.
        let snap = Snapshot::load(&bytes, Some(key)).unwrap();
        assert_eq!(snap.len(), entries.len(), "seed {seed}: entry count");
        let streamed: Result<Vec<Entry>, _> = snap.iter().collect();
        assert_eq!(
            streamed.as_deref(),
            Ok(&entries[..]),
            "seed {seed}: streaming round-trip diverged"
        );
    }
}

#[test]
fn parallel_parse_is_byte_identical_on_random_units() {
    for seed in [3u64, 17, 29] {
        // Large enough to clear the parallel threshold (64 KiB).
        let text = random_unit(seed, 4000);
        assert!(text.len() >= 64 * 1024);
        let sequential = parse(&text).unwrap();
        for jobs in [2, 3, 8] {
            let parallel = parse_with_jobs(&text, jobs).unwrap();
            assert_eq!(sequential, parallel, "seed {seed}: jobs={jobs} diverged");
        }
    }
}

#[test]
fn parser_errors_agree_with_reference() {
    // Both parsers must reject the same junk, on the same line.
    for junk in [
        "\tnotamnemonic %rax\n",
        "f:\n\tmovq %nosuchreg, %rax\n",
        "\tmovq $x, %rax\n",
        "\tjmp 1+2\n",
        "\t.string \"unterminated\n",
        "\tmovq 4(%rbp, %rax, 3), %rdx\n",
    ] {
        let fast = parse(junk);
        let slow = parse_reference(junk);
        match (&fast, &slow) {
            (Err(a), Err(b)) => assert_eq!(a.line, b.line, "line differs for {junk:?}"),
            _ => panic!("acceptance differs for {junk:?}: fast={fast:?} slow={slow:?}"),
        }
    }
}

#[test]
fn parse_errors_carry_byte_offsets() {
    let text = "\tnop\n\tbogusinsn %rax\n";
    let e = parse(text).unwrap_err();
    assert_eq!(e.line, 2);
    let r = e.offset.clone();
    assert_eq!(&text[r.start..r.end], "bogusinsn %rax");
}
