//! x86-64 ISA model for the MAO reproduction.
//!
//! This crate is the stand-in for the parts of GNU binutils that the
//! original MAO (CGO 2011) reused: a single-struct instruction
//! representation, register/flag models, a table-driven side-effect
//! database generated from a tiny configuration language, and a binary
//! encoder that yields real x86-64 instruction lengths — the property the
//! relaxation and alignment machinery in the `mao` crate depends on.
//!
//! # Quick tour
//!
//! ```
//! use mao_x86::insn::{build, Instruction};
//! use mao_x86::reg::{Reg, RegId, Width};
//! use mao_x86::encode::{encoded_length, BranchForm};
//! use mao_x86::effects::def_use;
//!
//! // push %rbp
//! let push = Instruction::from_att("push", vec![Reg::q(RegId::Rbp).into()]).unwrap();
//! assert_eq!(encoded_length(&push, BranchForm::Rel32).unwrap(), 1);
//!
//! // addl %eax, %ebx — reads eax+ebx, writes ebx, defines all six flags.
//! let add = build::add(Width::B4, Reg::l(RegId::Rax), Reg::l(RegId::Rbx));
//! let du = def_use(&add);
//! assert!(du.defs_reg(RegId::Rbx));
//! assert!(!du.flags_def.is_empty());
//! ```

pub mod cost;
pub mod effects;
pub mod encode;
pub mod flags;
pub mod insn;
pub mod mnemonic;
pub mod operand;
pub mod reg;
pub mod sym;

pub use cost::{CostModel, MachineParams, MnemonicCost, MptError};
pub use effects::{def_use, effects, DefUse, Effects};
pub use encode::{encode, encoded_length, BranchForm, EncodeError};
pub use flags::{Cond, Flags};
pub use insn::Instruction;
pub use mnemonic::{parse_mnemonic, Mnemonic};
pub use operand::{Disp, Mem, Operand, Operands};
pub use reg::{Reg, RegId, Width};
pub use sym::Sym;
