//! Table-driven instruction side-effect model.
//!
//! The paper: *"MAO uses a table-driven approach to model side effects. A
//! tiny configuration language specifies opcodes, operands being modified,
//! flags set, and other potential side effects. A generator program
//! constructs C tables for use by MAO."*
//!
//! This module is the Rust equivalent: [`EFFECTS_DEF`] is the configuration
//! text, [`build_table`] is the generator (run once, lazily, at first use),
//! and [`effects`]/[`def_use`] are the lookup API the analyses consume.
//!
//! ## Configuration language
//!
//! One entry per line: `key: directive(args) directive(args) ...`
//!
//! | directive | meaning |
//! |---|---|
//! | `use(src)` / `use(dst)` / `use(src,dst)` | which explicit operands are read |
//! | `def(dst)` | the destination operand is written |
//! | `iuse(rax,...)` / `idef(rdx,...)` | implicit register reads/writes |
//! | `fdef(ZF,SF,...)` | flags defined (written with a meaningful value) |
//! | `fundef(AF,...)` | flags left undefined |
//! | `fuse(CF)` / `fuse(cc)` | flags read; `cc` = per the condition code |
//! | `nomem` | memory operands are address-only (lea, prefetch) |
//! | `imem(r)` / `imem(w)` | implicit memory access (push/pop/call/ret) |
//! | `barrier` | full clobber: calls and other opaque control transfers |
//!
//! Lines starting with `#` are comments.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::flags::Flags;
use crate::insn::Instruction;
use crate::mnemonic::Mnemonic;
use crate::operand::Operand;
use crate::reg::{parse_reg_name, Reg, RegId, Width};

/// The side-effect configuration, in the format documented on the module.
pub const EFFECTS_DEF: &str = r#"
# Data movement.
mov:     use(src) def(dst)
movabs:  use(src) def(dst)
movsx:   use(src) def(dst)
movzx:   use(src) def(dst)
lea:     use(src) def(dst) nomem
xchg:    use(src,dst) def(src,dst)
push:    use(src) iuse(rsp) idef(rsp) imem(w)
pop:     def(dst) iuse(rsp) idef(rsp) imem(r)

# Integer ALU: full arithmetic flag set.
add:     use(src,dst) def(dst) fdef(CF,PF,AF,ZF,SF,OF)
sub:     use(src,dst) def(dst) fdef(CF,PF,AF,ZF,SF,OF)
adc:     use(src,dst) def(dst) fuse(CF) fdef(CF,PF,AF,ZF,SF,OF)
sbb:     use(src,dst) def(dst) fuse(CF) fdef(CF,PF,AF,ZF,SF,OF)
cmp:     use(src,dst) fdef(CF,PF,AF,ZF,SF,OF)
neg:     use(dst) def(dst) fdef(CF,PF,AF,ZF,SF,OF)

# Logic: CF/OF cleared (still 'defined'), AF undefined.
and:     use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
or:      use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
xor:     use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
test:    use(src,dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
not:     use(dst) def(dst)

# inc/dec preserve CF.
inc:     use(dst) def(dst) fdef(PF,AF,ZF,SF,OF)
dec:     use(dst) def(dst) fdef(PF,AF,ZF,SF,OF)

# Shifts and rotates: flag behaviour depends on the (possibly dynamic) count;
# model conservatively as defining CF/OF/result flags, AF undefined.
shl:     use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
shr:     use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
sar:     use(src,dst) def(dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
rol:     use(src,dst) def(dst) fdef(CF,OF)
ror:     use(src,dst) def(dst) fdef(CF,OF)

# Multiply / divide.
imul:    use(src,dst) def(dst) fdef(CF,OF) fundef(PF,AF,ZF,SF)
mul:     use(src) iuse(rax) idef(rax,rdx) fdef(CF,OF) fundef(PF,AF,ZF,SF)
idiv:    use(src) iuse(rax,rdx) idef(rax,rdx) fundef(CF,PF,AF,ZF,SF,OF)
div:     use(src) iuse(rax,rdx) idef(rax,rdx) fundef(CF,PF,AF,ZF,SF,OF)

# Sign-extension idioms.
cltq:    iuse(rax) idef(rax)
cltd:    iuse(rax) idef(rdx)
cqto:    iuse(rax) idef(rdx)
cwtl:    iuse(rax) idef(rax)

# Control flow.
jmp:     use(src)
jcc:     use(src) fuse(cc)
call:    use(src) iuse(rsp) idef(rsp) imem(w) barrier
ret:     iuse(rsp) idef(rsp) imem(r) barrier
leave:   iuse(rbp) idef(rsp,rbp) imem(r)
setcc:   def(dst) fuse(cc)
cmovcc:  use(src,dst) def(dst) fuse(cc)

# NOPs have no architectural effect; memory operands are address-only.
nop:     nomem
pause:   nomem

# SSE scalar subset.
movss:   use(src) def(dst)
movsd:   use(src) def(dst)
movaps:  use(src) def(dst)
movapd:  use(src) def(dst)
movups:  use(src) def(dst)
movd:    use(src) def(dst)
movdq:   use(src) def(dst)
addss:   use(src,dst) def(dst)
addsd:   use(src,dst) def(dst)
subss:   use(src,dst) def(dst)
subsd:   use(src,dst) def(dst)
mulss:   use(src,dst) def(dst)
mulsd:   use(src,dst) def(dst)
divss:   use(src,dst) def(dst)
divsd:   use(src,dst) def(dst)
sqrtss:  use(src) def(dst)
sqrtsd:  use(src) def(dst)
ucomiss: use(src,dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
ucomisd: use(src,dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
comiss:  use(src,dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
comisd:  use(src,dst) fdef(CF,PF,ZF,SF,OF) fundef(AF)
cvtsi2ss:  use(src) def(dst)
cvtsi2sd:  use(src) def(dst)
cvttss2si: use(src) def(dst)
cvttsd2si: use(src) def(dst)
cvtss2sd:  use(src) def(dst)
cvtsd2ss:  use(src) def(dst)
pxor:    use(src,dst) def(dst)
xorps:   use(src,dst) def(dst)
xorpd:   use(src,dst) def(dst)

# Prefetch hints read the address only; no architectural side effect.
prefetchnta: use(src) nomem
prefetcht0:  use(src) nomem
prefetcht1:  use(src) nomem
prefetcht2:  use(src) nomem

# Traps / misc.
ud2:     barrier
int3:    barrier
hlt:     barrier
cpuid:   iuse(rax,rcx) idef(rax,rbx,rcx,rdx) barrier
rdtsc:   idef(rax,rdx)
mfence:  imem(r) imem(w)
lfence:
sfence:  imem(w)
endbr64:
"#;

/// Parsed side effects for one mnemonic family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Explicit source operands (all but the last) are read.
    pub reads_src: bool,
    /// The destination operand (the last) is read.
    pub reads_dst: bool,
    /// The first (source-position) operand is also written (xchg).
    pub writes_src: bool,
    /// The destination operand is written.
    pub writes_dst: bool,
    /// Implicit register reads.
    pub implicit_reads: Vec<RegId>,
    /// Implicit register writes.
    pub implicit_writes: Vec<RegId>,
    /// Flags written with meaningful values.
    pub flags_def: Flags,
    /// Flags left with undefined values (still killed for liveness).
    pub flags_undef: Flags,
    /// Flags read (fixed part; conditional mnemonics add the cc's flags).
    pub flags_use: Flags,
    /// Flags read according to the instruction's condition code.
    pub flags_use_cond: bool,
    /// Memory operands are address-only (no load/store).
    pub no_mem_access: bool,
    /// Implicit memory read (pop/ret).
    pub implicit_mem_read: bool,
    /// Implicit memory write (push/call).
    pub implicit_mem_write: bool,
    /// Opaque clobber: treat as reading and writing everything.
    pub barrier: bool,
}

/// Error produced when the configuration text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number in the config text.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "effects config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parse the configuration language into a lookup table.
///
/// This is the "generator program" of the paper, except it runs at startup
/// instead of emitting C source.
pub fn build_table(config: &str) -> Result<HashMap<String, Effects>, ConfigError> {
    let mut table = HashMap::new();
    for (idx, raw_line) in config.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = match line.split_once('#') {
            Some((before, _)) => before.trim(),
            None => line,
        };
        let (key, rest) = line.split_once(':').ok_or_else(|| ConfigError {
            line: lineno,
            message: "missing `:` after mnemonic key".to_string(),
        })?;
        let key = key.trim().to_string();
        let mut eff = Effects::default();
        for directive in split_directives(rest) {
            apply_directive(&mut eff, &directive).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
        }
        if table.insert(key.clone(), eff).is_some() {
            return Err(ConfigError {
                line: lineno,
                message: format!("duplicate entry for `{key}`"),
            });
        }
    }
    Ok(table)
}

/// Split `use(src,dst) def(dst) fdef(ZF)` into individual directives.
fn split_directives(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn apply_directive(eff: &mut Effects, directive: &str) -> Result<(), String> {
    let (name, args) = match directive.split_once('(') {
        Some((n, rest)) => {
            let args = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unterminated `(` in `{directive}`"))?;
            (n, args)
        }
        None => (directive, ""),
    };
    let args: Vec<&str> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    };
    match name {
        "use" | "def" => {
            for a in &args {
                match (*a, name) {
                    ("src", "use") => eff.reads_src = true,
                    ("dst", "use") => eff.reads_dst = true,
                    ("src", "def") => eff.writes_src = true,
                    ("dst", "def") => eff.writes_dst = true,
                    _ => return Err(format!("bad operand role `{a}` in `{name}`")),
                }
            }
        }
        "iuse" | "idef" => {
            for a in &args {
                let reg = parse_reg_name(a).ok_or_else(|| format!("unknown register `{a}`"))?;
                if name == "iuse" {
                    eff.implicit_reads.push(reg.id);
                } else {
                    eff.implicit_writes.push(reg.id);
                }
            }
        }
        "fdef" | "fundef" | "fuse" => {
            for a in &args {
                if *a == "cc" && name == "fuse" {
                    eff.flags_use_cond = true;
                    continue;
                }
                let flag = Flags::from_name(a).ok_or_else(|| format!("unknown flag `{a}`"))?;
                match name {
                    "fdef" => eff.flags_def |= flag,
                    "fundef" => eff.flags_undef |= flag,
                    "fuse" => eff.flags_use |= flag,
                    _ => unreachable!(),
                }
            }
        }
        "nomem" => eff.no_mem_access = true,
        "imem" => {
            for a in &args {
                match *a {
                    "r" => eff.implicit_mem_read = true,
                    "w" => eff.implicit_mem_write = true,
                    _ => return Err(format!("bad imem mode `{a}`")),
                }
            }
        }
        "barrier" => eff.barrier = true,
        _ => return Err(format!("unknown directive `{name}`")),
    }
    Ok(())
}

/// Table key for a mnemonic: conditional families collapse onto one entry.
fn table_key(m: Mnemonic) -> String {
    match m {
        Mnemonic::Jcc(_) => "jcc".to_string(),
        Mnemonic::Setcc(_) => "setcc".to_string(),
        Mnemonic::Cmovcc(_) => "cmovcc".to_string(),
        // att_base for these is the suffix-less stem; the table uses the
        // Intel-style family name.
        Mnemonic::Movsx => "movsx".to_string(),
        Mnemonic::Movzx => "movzx".to_string(),
        Mnemonic::Movdq => "movdq".to_string(),
        other => other.att_base(),
    }
}

fn global_table() -> &'static HashMap<String, Effects> {
    static TABLE: OnceLock<HashMap<String, Effects>> = OnceLock::new();
    TABLE.get_or_init(|| build_table(EFFECTS_DEF).expect("builtin effects config must parse"))
}

/// Look up the side effects of a mnemonic family.
///
/// Returns `None` for mnemonics absent from the table (which would indicate
/// a gap in [`EFFECTS_DEF`]; a test asserts full coverage).
pub fn effects(m: Mnemonic) -> Option<&'static Effects> {
    global_table().get(&table_key(m))
}

/// Fully resolved defs/uses of one concrete instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefUse {
    /// Registers read.
    pub reg_uses: Vec<Reg>,
    /// Registers written.
    pub reg_defs: Vec<Reg>,
    /// Flags written with defined values.
    pub flags_def: Flags,
    /// Flags clobbered with undefined values.
    pub flags_undef: Flags,
    /// Flags read.
    pub flags_use: Flags,
    /// Performs an explicit or implicit load.
    pub mem_read: bool,
    /// Performs an explicit or implicit store.
    pub mem_write: bool,
    /// Opaque clobber (calls etc.).
    pub barrier: bool,
}

impl DefUse {
    /// All flags killed (defined or undefined) by the instruction.
    pub fn flags_killed(&self) -> Flags {
        self.flags_def | self.flags_undef
    }

    /// Does the instruction write to register id `id` (any width)?
    pub fn defs_reg(&self, id: RegId) -> bool {
        self.reg_defs.iter().any(|r| r.id == id)
    }

    /// Does the instruction read register id `id` (any width)?
    pub fn uses_reg(&self, id: RegId) -> bool {
        self.reg_uses.iter().any(|r| r.id == id)
    }
}

/// Compute the defs/uses of an instruction by combining the side-effect
/// table with the instruction's concrete operands.
pub fn def_use(insn: &Instruction) -> DefUse {
    let mut du = DefUse::default();
    let Some(eff) = effects(insn.mnemonic) else {
        // Unknown instruction: treat as a barrier (conservative).
        du.barrier = true;
        du.mem_read = true;
        du.mem_write = true;
        return du;
    };

    let n = insn.operands.len();
    // One-operand imul (`imul src` -> rdx:rax) has implicit operands the
    // table's 2/3-operand entry does not describe.
    let imul_one_op = insn.mnemonic == Mnemonic::Imul && n == 1;

    for (i, op) in insn.operands.iter().enumerate() {
        let is_dst = i + 1 == n && n > 1;
        let (read, written) = if n == 1 {
            // Single-operand instructions: the table's dst role applies when
            // the operand is written (neg/not/inc/dec/pop/setcc), the src
            // role when only read (push/jmp/mul/idiv).
            (
                eff.reads_src || eff.reads_dst,
                eff.writes_dst && !imul_one_op,
            )
        } else if is_dst {
            (eff.reads_dst, eff.writes_dst)
        } else {
            (eff.reads_src, i == 0 && eff.writes_src)
        };

        match op {
            Operand::Imm(_) | Operand::Label(_) => {}
            Operand::Reg(r) => {
                if read {
                    du.reg_uses.push(*r);
                }
                if written {
                    du.reg_defs.push(*r);
                }
            }
            Operand::IndirectReg(r) => du.reg_uses.push(*r),
            Operand::Mem(m) | Operand::IndirectMem(m) => {
                du.reg_uses.extend(m.regs_used());
                if !eff.no_mem_access && !matches!(op, Operand::IndirectMem(_)) {
                    if read {
                        du.mem_read = true;
                    }
                    if written {
                        du.mem_write = true;
                    }
                }
                if matches!(op, Operand::IndirectMem(_)) {
                    du.mem_read = true; // jump-table load
                }
            }
        }
    }

    let implicit_width = insn.op_width.unwrap_or(Width::B8);
    for id in &eff.implicit_reads {
        du.reg_uses
            .push(Reg::new(*id, Width::B8.min(implicit_width.max(Width::B4))));
    }
    for id in &eff.implicit_writes {
        du.reg_defs.push(Reg::new(*id, Width::B8));
    }
    if imul_one_op {
        du.reg_uses.push(Reg::new(RegId::Rax, insn.width()));
        du.reg_defs.push(Reg::new(RegId::Rax, Width::B8));
        du.reg_defs.push(Reg::new(RegId::Rdx, Width::B8));
    }

    du.flags_def = eff.flags_def;
    du.flags_undef = eff.flags_undef;
    du.flags_use = eff.flags_use;
    if eff.flags_use_cond {
        if let Some(c) = insn.cond() {
            du.flags_use |= c.flags_read();
        }
    }
    du.mem_read |= eff.implicit_mem_read;
    du.mem_write |= eff.implicit_mem_write;
    du.barrier = eff.barrier;
    du
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cond;
    use crate::insn::build;
    use crate::operand::Mem;

    #[test]
    fn builtin_config_parses() {
        let table = build_table(EFFECTS_DEF).unwrap();
        assert!(table.contains_key("add"));
        assert!(table.contains_key("jcc"));
    }

    #[test]
    fn every_mnemonic_is_covered() {
        // Registry-driven audit: walk `Mnemonic::ALL` instead of a
        // hand-maintained copy of the enum, so a new mnemonic without a
        // side-effect entry fails here rather than silently becoming a
        // conservative barrier in every dataflow client.
        for m in Mnemonic::ALL {
            assert!(effects(m).is_some(), "no effects entry for {m:?}");
        }
    }

    #[test]
    fn flag_sets_stay_inside_the_legal_universe() {
        // Consistency audit of the side-effect tables themselves: for every
        // mnemonic, the def/undef/use flag sets must be subsets of the legal
        // flag universe, an instruction must not declare the same flag both
        // defined and undefined, and conditional mnemonics must get their
        // flag reads from the condition code, not a fixed set.
        for m in Mnemonic::ALL {
            let eff = effects(m).expect("covered above");
            assert!(
                Flags::ALL.contains(eff.flags_def),
                "{m:?}: flags_def outside the flag universe"
            );
            assert!(
                Flags::ALL.contains(eff.flags_undef),
                "{m:?}: flags_undef outside the flag universe"
            );
            assert!(
                Flags::ALL.contains(eff.flags_use),
                "{m:?}: flags_use outside the flag universe"
            );
            assert!(
                (eff.flags_def & eff.flags_undef).is_empty(),
                "{m:?}: a flag cannot be both defined and undefined"
            );
            if m.cond().is_some() {
                assert!(
                    eff.flags_use_cond,
                    "{m:?}: conditional mnemonic must read via its cc"
                );
            }
        }
    }

    #[test]
    fn all_list_has_no_duplicates() {
        // `Mnemonic::ALL` feeds the audits above; a duplicate entry would
        // shadow a missing one.
        for (i, a) in Mnemonic::ALL.iter().enumerate() {
            for b in &Mnemonic::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate entry in Mnemonic::ALL");
            }
        }
    }

    #[test]
    fn add_def_use() {
        use crate::reg::{Reg, RegId, Width};
        let i = build::add(Width::B4, Reg::l(RegId::Rax), Reg::l(RegId::Rbx));
        let du = def_use(&i);
        assert!(du.uses_reg(RegId::Rax));
        assert!(du.uses_reg(RegId::Rbx)); // add reads its destination
        assert!(du.defs_reg(RegId::Rbx));
        assert!(!du.defs_reg(RegId::Rax));
        assert_eq!(du.flags_def, Flags::ALL);
        assert!(!du.mem_read && !du.mem_write);
    }

    #[test]
    fn mov_does_not_read_dest() {
        use crate::reg::{Reg, RegId, Width};
        let i = build::mov(Width::B4, Reg::l(RegId::Rax), Reg::l(RegId::Rbx));
        let du = def_use(&i);
        assert!(du.uses_reg(RegId::Rax));
        assert!(!du.uses_reg(RegId::Rbx));
        assert!(du.defs_reg(RegId::Rbx));
        assert!(du.flags_def.is_empty());
    }

    #[test]
    fn store_and_load() {
        use crate::reg::{Reg, RegId, Width};
        let store = build::mov(
            Width::B8,
            Reg::q(RegId::Rdx),
            Mem::base_disp(Reg::q(RegId::Rsp), 24),
        );
        let du = def_use(&store);
        assert!(du.mem_write && !du.mem_read);
        assert!(du.uses_reg(RegId::Rsp)); // address

        let load = build::mov(
            Width::B8,
            Mem::base_disp(Reg::q(RegId::Rsp), 24),
            Reg::q(RegId::Rdx),
        );
        let du = def_use(&load);
        assert!(du.mem_read && !du.mem_write);
        assert!(du.defs_reg(RegId::Rdx));
    }

    #[test]
    fn lea_is_not_a_load() {
        use crate::reg::{Reg, RegId, Width};
        let i = Instruction::with_width(
            Mnemonic::Lea,
            Width::B8,
            vec![
                Operand::Mem(Mem::base_index(Reg::q(RegId::R8), Reg::q(RegId::Rdi), 1, 0)),
                Operand::Reg(Reg::l(RegId::Rbx)),
            ],
        );
        let du = def_use(&i);
        assert!(!du.mem_read && !du.mem_write);
        assert!(du.uses_reg(RegId::R8) && du.uses_reg(RegId::Rdi));
        assert!(du.defs_reg(RegId::Rbx));
    }

    #[test]
    fn jcc_reads_cond_flags() {
        let j = build::jcc(Cond::G, ".L1");
        let du = def_use(&j);
        assert_eq!(du.flags_use, Cond::G.flags_read());
        let j = build::jcc(Cond::E, ".L1");
        assert_eq!(def_use(&j).flags_use, Flags::ZF);
    }

    #[test]
    fn push_pop_rsp_and_memory() {
        use crate::reg::{Reg, RegId};
        let p = Instruction::new(Mnemonic::Push, vec![Operand::Reg(Reg::q(RegId::Rbp))]);
        let du = def_use(&p);
        assert!(du.uses_reg(RegId::Rbp));
        assert!(du.uses_reg(RegId::Rsp) && du.defs_reg(RegId::Rsp));
        assert!(du.mem_write);

        let p = Instruction::new(Mnemonic::Pop, vec![Operand::Reg(Reg::q(RegId::Rbp))]);
        let du = def_use(&p);
        assert!(du.defs_reg(RegId::Rbp));
        assert!(du.mem_read);
    }

    #[test]
    fn call_is_barrier() {
        let c = Instruction::new(Mnemonic::Call, vec![Operand::Label("f".into())]);
        assert!(def_use(&c).barrier);
    }

    #[test]
    fn one_operand_imul() {
        use crate::reg::{Reg, RegId};
        let i = Instruction::new(Mnemonic::Imul, vec![Operand::Reg(Reg::l(RegId::Rbx))]);
        let du = def_use(&i);
        assert!(du.uses_reg(RegId::Rbx) && du.uses_reg(RegId::Rax));
        assert!(du.defs_reg(RegId::Rax) && du.defs_reg(RegId::Rdx));
        assert!(!du.defs_reg(RegId::Rbx));
    }

    #[test]
    fn inc_preserves_cf() {
        use crate::reg::{Reg, RegId};
        let i = Instruction::new(Mnemonic::Inc, vec![Operand::Reg(Reg::l(RegId::Rax))]);
        let du = def_use(&i);
        assert!(!du.flags_killed().contains(Flags::CF));
        assert!(du.flags_def.contains(Flags::ZF));
    }

    #[test]
    fn indirect_jump_reads_table() {
        use crate::reg::{Reg, RegId};
        let i = Instruction::new(
            Mnemonic::Jmp,
            vec![Operand::IndirectMem(Mem {
                disp: crate::operand::Disp::Symbol {
                    name: ".Ltable".into(),
                    addend: 0,
                },
                base: None,
                index: Some(Reg::q(RegId::Rax)),
                scale: 8,
            })],
        );
        let du = def_use(&i);
        assert!(du.mem_read);
        assert!(du.uses_reg(RegId::Rax));
    }

    #[test]
    fn config_errors_are_reported() {
        assert!(build_table("add use(src)").is_err()); // missing colon
        assert!(build_table("add: use(bogus)").is_err());
        assert!(build_table("add: fdef(QF)").is_err());
        assert!(build_table("add:\nadd:").is_err()); // duplicate
        let err = build_table("x: frob(1)").unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn unknown_mnemonic_conservative() {
        // def_use falls back to barrier semantics via the missing-entry path;
        // simulate by querying a mnemonic we deliberately keep unmapped.
        let table = build_table("mov: use(src) def(dst)").unwrap();
        assert!(!table.contains_key("add"));
    }
}
