//! EFLAGS condition-code model.
//!
//! The paper stresses that MAO "precisely models the x86/64 condition codes",
//! which is what makes the redundant-`test` removal pass sound. [`Flags`] is a
//! small bitset over the six arithmetic flags; [`Cond`] describes the sixteen
//! condition codes used by `jcc`/`setcc`/`cmovcc` together with the exact set
//! of flags each one reads.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

/// A set of x86 arithmetic status flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(u8);

impl Flags {
    /// Carry flag.
    pub const CF: Flags = Flags(1 << 0);
    /// Parity flag.
    pub const PF: Flags = Flags(1 << 1);
    /// Auxiliary-carry flag.
    pub const AF: Flags = Flags(1 << 2);
    /// Zero flag.
    pub const ZF: Flags = Flags(1 << 3);
    /// Sign flag.
    pub const SF: Flags = Flags(1 << 4);
    /// Overflow flag.
    pub const OF: Flags = Flags(1 << 5);
    /// Direction flag (string ops).
    pub const DF: Flags = Flags(1 << 6);

    /// The empty set.
    pub const NONE: Flags = Flags(0);
    /// All six arithmetic flags.
    pub const ALL: Flags = Flags(0b0011_1111);
    /// The flags computed from a result value (by both logic and arithmetic
    /// instructions): SF, ZF and PF.
    pub const RESULT: Flags = Flags(Flags::SF.0 | Flags::ZF.0 | Flags::PF.0);

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Does `self` contain every flag in `other`?
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Does `self` share any flag with `other`?
    pub fn intersects(self, other: Flags) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate over the individual flags in the set.
    pub fn iter(self) -> impl Iterator<Item = Flags> {
        (0..7)
            .map(|i| Flags(1 << i))
            .filter(move |f| self.contains(*f))
    }

    /// Parse a single flag name as used by the side-effect config language.
    pub fn from_name(name: &str) -> Option<Flags> {
        match name {
            "CF" => Some(Flags::CF),
            "PF" => Some(Flags::PF),
            "AF" => Some(Flags::AF),
            "ZF" => Some(Flags::ZF),
            "SF" => Some(Flags::SF),
            "OF" => Some(Flags::OF),
            "DF" => Some(Flags::DF),
            "all" => Some(Flags::ALL),
            "result" => Some(Flags::RESULT),
            _ => None,
        }
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Flags {
    type Output = Flags;
    fn bitand(self, rhs: Flags) -> Flags {
        Flags(self.0 & rhs.0)
    }
}

impl Sub for Flags {
    type Output = Flags;
    fn sub(self, rhs: Flags) -> Flags {
        Flags(self.0 & !rhs.0)
    }
}

impl Not for Flags {
    type Output = Flags;
    fn not(self) -> Flags {
        Flags(!self.0 & Flags::ALL.0)
    }
}

impl fmt::Debug for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        let names = [
            (Flags::CF, "CF"),
            (Flags::PF, "PF"),
            (Flags::AF, "AF"),
            (Flags::ZF, "ZF"),
            (Flags::SF, "SF"),
            (Flags::OF, "OF"),
            (Flags::DF, "DF"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The sixteen x86 condition codes, with their hardware encoding values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`o`).
    O = 0x0,
    /// Not overflow (`no`).
    No = 0x1,
    /// Below / carry (`b`, `c`, `nae`).
    B = 0x2,
    /// Above or equal / not carry (`ae`, `nc`, `nb`).
    Ae = 0x3,
    /// Equal / zero (`e`, `z`).
    E = 0x4,
    /// Not equal / not zero (`ne`, `nz`).
    Ne = 0x5,
    /// Below or equal (`be`, `na`).
    Be = 0x6,
    /// Above (`a`, `nbe`).
    A = 0x7,
    /// Sign (`s`).
    S = 0x8,
    /// Not sign (`ns`).
    Ns = 0x9,
    /// Parity (`p`, `pe`).
    P = 0xa,
    /// Not parity (`np`, `po`).
    Np = 0xb,
    /// Less (`l`, `nge`).
    L = 0xc,
    /// Greater or equal (`ge`, `nl`).
    Ge = 0xd,
    /// Less or equal (`le`, `ng`).
    Le = 0xe,
    /// Greater (`g`, `nle`).
    G = 0xf,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Hardware encoding nibble (the `cc` field of `0F 8x`, `0F 4x`, `0F 9x`).
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// The exact set of flags this condition reads.
    pub fn flags_read(self) -> Flags {
        match self {
            Cond::O | Cond::No => Flags::OF,
            Cond::B | Cond::Ae => Flags::CF,
            Cond::E | Cond::Ne => Flags::ZF,
            Cond::Be | Cond::A => Flags::CF | Flags::ZF,
            Cond::S | Cond::Ns => Flags::SF,
            Cond::P | Cond::Np => Flags::PF,
            Cond::L | Cond::Ge => Flags::SF | Flags::OF,
            Cond::Le | Cond::G => Flags::SF | Flags::OF | Flags::ZF,
        }
    }

    /// The logically inverted condition (`e` <-> `ne`, `l` <-> `ge`, ...).
    pub fn invert(self) -> Cond {
        // Conditions pair up as even/odd encoding neighbours.
        let enc = self.encoding() ^ 1;
        Cond::ALL[enc as usize]
    }

    /// Canonical AT&T suffix for this condition (`e`, `ne`, `l`, ...).
    pub fn att_suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }

    /// Parse an AT&T condition suffix, accepting all aliases
    /// (`z` for `e`, `nae` for `b`, ...).
    pub fn from_att_suffix(s: &str) -> Option<Cond> {
        Some(match s {
            "o" => Cond::O,
            "no" => Cond::No,
            "b" | "c" | "nae" => Cond::B,
            "ae" | "nb" | "nc" => Cond::Ae,
            "e" | "z" => Cond::E,
            "ne" | "nz" => Cond::Ne,
            "be" | "na" => Cond::Be,
            "a" | "nbe" => Cond::A,
            "s" => Cond::S,
            "ns" => Cond::Ns,
            "p" | "pe" => Cond::P,
            "np" | "po" => Cond::Np,
            "l" | "nge" => Cond::L,
            "ge" | "nl" => Cond::Ge,
            "le" | "ng" => Cond::Le,
            "g" | "nle" => Cond::G,
            _ => return None,
        })
    }

    /// Evaluate the condition against a concrete flag state.
    pub fn eval(self, flags: Flags) -> bool {
        let cf = flags.contains(Flags::CF);
        let zf = flags.contains(Flags::ZF);
        let sf = flags.contains(Flags::SF);
        let of = flags.contains(Flags::OF);
        let pf = flags.contains(Flags::PF);
        match self {
            Cond::O => of,
            Cond::No => !of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
            Cond::S => sf,
            Cond::Ns => !sf,
            Cond::P => pf,
            Cond::Np => !pf,
            Cond::L => sf != of,
            Cond::Ge => sf == of,
            Cond::Le => zf || (sf != of),
            Cond::G => !zf && (sf == of),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.att_suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let s = Flags::ZF | Flags::SF;
        assert!(s.contains(Flags::ZF));
        assert!(!s.contains(Flags::CF));
        assert!(s.intersects(Flags::SF | Flags::OF));
        assert_eq!(s - Flags::ZF, Flags::SF);
        assert_eq!((!Flags::NONE), Flags::ALL);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn cond_flags_read() {
        assert_eq!(Cond::E.flags_read(), Flags::ZF);
        assert_eq!(Cond::L.flags_read(), Flags::SF | Flags::OF);
        assert_eq!(Cond::A.flags_read(), Flags::CF | Flags::ZF);
        assert_eq!(Cond::G.flags_read(), Flags::SF | Flags::OF | Flags::ZF);
    }

    #[test]
    fn cond_invert_pairs() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
            assert_eq!(c.flags_read(), c.invert().flags_read());
        }
        assert_eq!(Cond::E.invert(), Cond::Ne);
        assert_eq!(Cond::L.invert(), Cond::Ge);
    }

    #[test]
    fn cond_suffix_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_att_suffix(c.att_suffix()), Some(c));
        }
        assert_eq!(Cond::from_att_suffix("z"), Some(Cond::E));
        assert_eq!(Cond::from_att_suffix("nae"), Some(Cond::B));
        assert_eq!(Cond::from_att_suffix("xyz"), None);
    }

    #[test]
    fn cond_eval_inversion() {
        let states = [
            Flags::NONE,
            Flags::ZF,
            Flags::SF,
            Flags::OF,
            Flags::CF,
            Flags::SF | Flags::OF,
            Flags::ZF | Flags::CF,
            Flags::ALL,
        ];
        for c in Cond::ALL {
            for s in states {
                assert_eq!(c.eval(s), !c.invert().eval(s), "{c:?} on {s:?}");
            }
        }
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", Flags::ZF | Flags::CF), "CF|ZF");
        assert_eq!(format!("{}", Flags::NONE), "{}");
    }
}
