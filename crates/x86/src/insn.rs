//! The single instruction struct.
//!
//! Like the paper's gas-derived IR, every x86 instruction is represented by
//! one struct ([`Instruction`]) regardless of opcode: mnemonic family,
//! optional explicit operand widths, prefixes, and operands in AT&T order.

use std::fmt;

use crate::flags::Cond;
use crate::mnemonic::{parse_mnemonic, Mnemonic};
use crate::operand::{Disp, Mem, Operand, Operands};
use crate::reg::{Reg, RegId, Width};
use crate::sym::Sym;

/// One x86-64 instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Opcode family.
    pub mnemonic: Mnemonic,
    /// Operand (destination) width, from an explicit AT&T suffix or inferred
    /// from register operands.
    pub op_width: Option<Width>,
    /// Source width for `movsx`/`movzx`.
    pub src_width: Option<Width>,
    /// `lock` prefix present.
    pub lock: bool,
    /// Operands in AT&T order (sources first, destination last), stored
    /// inline in the instruction (see [`Operands`]).
    pub operands: Operands,
}

impl Instruction {
    /// Create an instruction with no explicit widths.
    pub fn new(mnemonic: Mnemonic, operands: impl Into<Operands>) -> Instruction {
        let mut insn = Instruction {
            mnemonic,
            op_width: None,
            src_width: None,
            lock: false,
            operands: operands.into(),
        };
        insn.op_width = insn.infer_width();
        insn
    }

    /// Create an instruction with an explicit operand width.
    pub fn with_width(
        mnemonic: Mnemonic,
        width: Width,
        operands: impl Into<Operands>,
    ) -> Instruction {
        Instruction {
            mnemonic,
            op_width: Some(width),
            src_width: None,
            lock: false,
            operands: operands.into(),
        }
    }

    /// Parse a full AT&T instruction mnemonic and attach operands.
    ///
    /// Convenience for building instructions in tests and generators; the
    /// assembly parser in `mao-asm` goes through the same path.
    pub fn from_att(mnemonic: &str, operands: impl Into<Operands>) -> Option<Instruction> {
        let parsed = parse_mnemonic(mnemonic)?;
        let mut insn = Instruction {
            mnemonic: parsed.mnemonic,
            op_width: parsed.op_width,
            src_width: parsed.src_width,
            lock: false,
            operands: operands.into(),
        };
        if insn.op_width.is_none() {
            insn.op_width = insn.infer_width();
        }
        Some(insn)
    }

    /// Infer the operand width from register operands when no suffix was
    /// given (`mov %eax, %ebx` is 32-bit).
    fn infer_width(&self) -> Option<Width> {
        if let Some(w) = self.op_width {
            return Some(w);
        }
        Instruction::infer_width_of(&self.operands)
    }

    /// Width inference over an operand list alone (destination register
    /// wins; else any GPR operand). Exposed so the parser can infer widths
    /// without constructing a throwaway `Instruction`.
    pub fn infer_width_of(operands: &[Operand]) -> Option<Width> {
        for op in operands.iter().rev() {
            if let Operand::Reg(r) = op {
                if r.id.is_gpr() {
                    return Some(r.width);
                }
            }
        }
        None
    }

    /// The effective operand width (explicit suffix, else inferred, else
    /// 32-bit — the x86-64 default operand size).
    pub fn width(&self) -> Width {
        self.op_width
            .or_else(|| self.infer_width())
            .unwrap_or(Width::B4)
    }

    /// Destination operand (AT&T: the last), if the instruction has operands.
    pub fn dest(&self) -> Option<&Operand> {
        self.operands.last()
    }

    /// First source operand.
    pub fn src(&self) -> Option<&Operand> {
        self.operands.first()
    }

    /// The branch-target label, for direct branches/calls.
    pub fn target_label(&self) -> Option<&str> {
        if self.mnemonic.is_branch() || self.mnemonic == Mnemonic::Call {
            self.operands.first().and_then(Operand::label)
        } else {
            None
        }
    }

    /// Is this an indirect branch or call (`jmp *...` / `call *...`)?
    pub fn is_indirect_branch(&self) -> bool {
        (self.mnemonic.is_branch() || self.mnemonic == Mnemonic::Call)
            && matches!(
                self.operands.first(),
                Some(Operand::IndirectReg(_) | Operand::IndirectMem(_))
            )
    }

    /// Is this instruction from the NOP family (including multi-byte forms)?
    pub fn is_nop(&self) -> bool {
        self.mnemonic == Mnemonic::Nop
    }

    /// Condition code, for conditional mnemonics.
    pub fn cond(&self) -> Option<Cond> {
        self.mnemonic.cond()
    }

    /// A single-byte `nop`.
    pub fn nop() -> Instruction {
        Instruction::new(Mnemonic::Nop, vec![])
    }

    /// A canonical NOP instruction of exactly `len` bytes (1..=6).
    ///
    /// These are the forms gas emits for `.p2align` padding:
    ///
    /// | len | form |
    /// |-----|------|
    /// | 1 | `nop` |
    /// | 2 | `nopw` (`66 90`) |
    /// | 3 | `nopl (%rax)` |
    /// | 4 | `nopl 0(%rax)` |
    /// | 5 | `nopl 0(%rax,%rax,1)` |
    /// | 6 | `nopw 0(%rax,%rax,1)` |
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 6; longer pads should be built
    /// from several instructions (see [`Instruction::nop_pad`]).
    pub fn nop_of_len(len: usize) -> Instruction {
        let rax = Reg::q(RegId::Rax);
        let mem_zero = |index: bool| {
            Operand::Mem(Mem {
                disp: Disp::Imm(0),
                base: Some(rax),
                index: if index { Some(rax) } else { None },
                scale: 1,
            })
        };
        match len {
            1 => Instruction::nop(),
            2 => Instruction::with_width(Mnemonic::Nop, Width::B2, vec![]),
            3 => Instruction::with_width(
                Mnemonic::Nop,
                Width::B4,
                vec![Operand::Mem(Mem::base_disp(rax, 0))],
            ),
            4 => Instruction::with_width(Mnemonic::Nop, Width::B4, vec![mem_zero(false)]),
            5 => Instruction::with_width(Mnemonic::Nop, Width::B4, vec![mem_zero(true)]),
            6 => Instruction::with_width(Mnemonic::Nop, Width::B2, vec![mem_zero(true)]),
            _ => panic!("nop_of_len supports 1..=6 bytes, got {len}"),
        }
    }

    /// A sequence of NOP instructions covering exactly `len` bytes, using the
    /// fewest instructions (all 6-byte forms plus one remainder form).
    pub fn nop_pad(len: usize) -> Vec<Instruction> {
        let mut out = Vec::new();
        let mut remaining = len;
        while remaining > 6 {
            out.push(Instruction::nop_of_len(6));
            remaining -= 6;
        }
        if remaining > 0 {
            out.push(Instruction::nop_of_len(remaining));
        }
        out
    }

    /// The full AT&T mnemonic string, with size suffixes re-attached.
    pub fn att_mnemonic(&self) -> String {
        match self.mnemonic {
            Mnemonic::Movsx | Mnemonic::Movzx => {
                let from = self.src_width.and_then(Width::att_suffix).unwrap_or('b');
                let to = self.op_width.and_then(Width::att_suffix).unwrap_or('l');
                format!("{}{}{}", self.mnemonic.att_base(), from, to)
            }
            Mnemonic::Setcc(_) => self.mnemonic.att_base(),
            _ => {
                let base = self.mnemonic.att_base();
                if self.mnemonic.takes_size_suffix() {
                    if let Some(suffix) = self.op_width.and_then(Width::att_suffix) {
                        return format!("{base}{suffix}");
                    }
                }
                base
            }
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lock {
            write!(f, "lock ")?;
        }
        write!(f, "{}", self.att_mnemonic())?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Shorthand builders for common instructions, used heavily by tests,
/// generators and passes.
pub mod build {
    use super::*;

    /// `mov src, dst` with explicit width.
    pub fn mov(width: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::with_width(Mnemonic::Mov, width, vec![src.into(), dst.into()])
    }

    /// `add src, dst`.
    pub fn add(width: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::with_width(Mnemonic::Add, width, vec![src.into(), dst.into()])
    }

    /// `sub src, dst`.
    pub fn sub(width: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::with_width(Mnemonic::Sub, width, vec![src.into(), dst.into()])
    }

    /// `cmp src, dst`.
    pub fn cmp(width: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::with_width(Mnemonic::Cmp, width, vec![src.into(), dst.into()])
    }

    /// `test src, dst`.
    pub fn test(width: Width, src: impl Into<Operand>, dst: impl Into<Operand>) -> Instruction {
        Instruction::with_width(Mnemonic::Test, width, vec![src.into(), dst.into()])
    }

    /// `jcc label`.
    pub fn jcc(cond: Cond, label: &str) -> Instruction {
        Instruction::new(
            Mnemonic::Jcc(cond),
            vec![Operand::Label(Sym::intern(label))],
        )
    }

    /// `jmp label`.
    pub fn jmp(label: &str) -> Instruction {
        Instruction::new(Mnemonic::Jmp, vec![Operand::Label(Sym::intern(label))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_att() {
        let i = build::mov(
            Width::B4,
            Operand::Imm(5),
            Operand::Mem(Mem::base_disp(Reg::q(RegId::Rbp), -4)),
        );
        assert_eq!(i.to_string(), "movl $5, -4(%rbp)");
        let j = build::jcc(Cond::Ne, ".L3");
        assert_eq!(j.to_string(), "jne .L3");
    }

    #[test]
    fn from_att_roundtrip() {
        let i = Instruction::from_att(
            "movsbl",
            vec![
                Operand::Mem(Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 1)),
                Operand::Reg(Reg::l(RegId::Rdx)),
            ],
        )
        .unwrap();
        assert_eq!(i.to_string(), "movsbl 1(%rdi,%r8,4), %edx");
        assert_eq!(i.mnemonic, Mnemonic::Movsx);
    }

    #[test]
    fn width_inference() {
        let i = Instruction::from_att(
            "mov",
            vec![
                Operand::Reg(Reg::l(RegId::Rax)),
                Operand::Reg(Reg::l(RegId::Rbx)),
            ],
        )
        .unwrap();
        assert_eq!(i.width(), Width::B4);
        assert_eq!(i.to_string(), "movl %eax, %ebx");
    }

    #[test]
    fn target_label() {
        assert_eq!(build::jmp(".L5").target_label(), Some(".L5"));
        assert_eq!(build::jcc(Cond::G, ".L3").target_label(), Some(".L3"));
        let call = Instruction::new(Mnemonic::Call, vec![Operand::Label("foo".into())]);
        assert_eq!(call.target_label(), Some("foo"));
        let ind = Instruction::new(
            Mnemonic::Jmp,
            vec![Operand::IndirectReg(Reg::q(RegId::Rax))],
        );
        assert_eq!(ind.target_label(), None);
        assert!(ind.is_indirect_branch());
    }

    #[test]
    fn nop_forms_display() {
        assert_eq!(Instruction::nop_of_len(1).to_string(), "nop");
        assert_eq!(Instruction::nop_of_len(2).to_string(), "nopw");
        assert_eq!(Instruction::nop_of_len(3).to_string(), "nopl (%rax)");
        assert_eq!(Instruction::nop_of_len(4).to_string(), "nopl 0(%rax)");
        assert_eq!(
            Instruction::nop_of_len(5).to_string(),
            "nopl 0(%rax,%rax,1)"
        );
        assert_eq!(
            Instruction::nop_of_len(6).to_string(),
            "nopw 0(%rax,%rax,1)"
        );
    }

    #[test]
    fn nop_pad_splits() {
        let pad = Instruction::nop_pad(15);
        assert_eq!(pad.len(), 3); // 6 + 6 + 3
        assert!(pad.iter().all(Instruction::is_nop));
        assert!(Instruction::nop_pad(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "nop_of_len")]
    fn nop_of_len_rejects_oversize() {
        let _ = Instruction::nop_of_len(7);
    }
}
