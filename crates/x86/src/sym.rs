//! Global symbol interner.
//!
//! The zero-copy front end stores every symbol-shaped string (labels, branch
//! targets, symbolic displacements, directive symbols) as a [`Sym`]: a stable
//! `u32` handle into a process-wide append-only intern table. Interning turns
//! the per-token `String` allocations of the seed parser into a single hash
//! probe, makes symbol equality an integer compare, and gives the binary IR
//! snapshot format a dense string-table id space to serialize against.
//!
//! Design constraints, in order:
//!
//! 1. **Hash-by-content.** Request keys and analysis-cache keys are derived
//!    hashes over `Entry`/`Instruction` values. Those hashes must not change
//!    when a `String` field becomes a `Sym`, or every persisted disk-cache
//!    entry would be orphaned. `Sym::hash` therefore hashes the string
//!    contents exactly like `String` does. Equality stays id-based (the
//!    interner guarantees distinct ids ⇔ distinct strings, so the two are
//!    consistent), keeping the common comparison an integer compare.
//! 2. **Lock-free reads.** `as_str` must be as cheap as following a field:
//!    it is on every `Display`/emit path. Handles resolve through an
//!    append-only chunked pointer table with no lock; only interning new
//!    strings takes a (sharded) mutex.
//! 3. **`&'static str` access.** Interned storage is leaked, so borrows never
//!    fight lifetimes in index maps (`MaoUnit` keys its label index by
//!    `&'static str`). The cost is that interner memory is process-lifetime;
//!    a long-running `maod` grows with the distinct-symbol population of its
//!    traffic. [`Sym::stats`] exposes the population so the stats snapshot
//!    (schema v5 `frontend.interner`) can track it. Free-text fields (raw
//!    directive args, string literals) intentionally stay `String` to bound
//!    growth to symbol-like tokens.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// log2 of slots per chunk.
const CHUNK_BITS: u32 = 16;
/// Slots per chunk of the id → string table.
const CHUNK_LEN: usize = 1 << CHUNK_BITS;
/// Maximum number of chunks (caps the symbol population at 2^26).
const MAX_CHUNKS: usize = 1 << 10;
/// Shard count for the intern (write) path.
const SHARDS: usize = 16;

/// Slot payload: a thin pointer to a leaked `&'static str` fat pointer.
type Slot = AtomicPtr<&'static str>;

// One `AtomicPtr` per chunk, pointing at a leaked `[Slot; CHUNK_LEN]`.
// `const` item so the array-repeat initializer is allowed for a non-Copy type.
#[allow(clippy::declare_interior_mutable_const)]
const NULL_CHUNK: AtomicPtr<Slot> = AtomicPtr::new(std::ptr::null_mut());
static CHUNKS: [AtomicPtr<Slot>; MAX_CHUNKS] = [NULL_CHUNK; MAX_CHUNKS];

/// Serializes chunk creation (rare: once per 65536 symbols).
static CHUNK_ALLOC: Mutex<()> = Mutex::new(());

/// Next id to hand out. Ids are dense and allocation-ordered.
static COUNT: AtomicU32 = AtomicU32::new(0);
/// Total bytes of interned string payload (not counting table overhead).
static BYTES: AtomicUsize = AtomicUsize::new(0);

/// FNV-1a for the shard maps. Symbol keys are short (a few bytes to a few
/// dozen), where FNV beats SipHash by a wide margin; HashDoS resistance is
/// irrelevant for an intern table whose values are dense ids.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type ShardMap = HashMap<&'static str, u32, BuildHasherDefault<FnvHasher>>;

/// string → id maps, sharded by a cheap byte hash to keep parse threads from
/// serializing on one lock.
static MAP: OnceLock<[Mutex<ShardMap>; SHARDS]> = OnceLock::new();

fn shards() -> &'static [Mutex<ShardMap>; SHARDS] {
    MAP.get_or_init(|| std::array::from_fn(|_| Mutex::new(ShardMap::default())))
}

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes; only the low bits matter here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

/// Resolve the slot for `id`, creating the owning chunk if needed.
fn slot_for(id: u32) -> &'static Slot {
    let idx = id as usize;
    let chunk_idx = idx >> CHUNK_BITS;
    assert!(chunk_idx < MAX_CHUNKS, "symbol interner capacity exceeded");
    let mut chunk = CHUNKS[chunk_idx].load(Ordering::Acquire);
    if chunk.is_null() {
        let _guard = CHUNK_ALLOC.lock().unwrap_or_else(|e| e.into_inner());
        chunk = CHUNKS[chunk_idx].load(Ordering::Acquire);
        if chunk.is_null() {
            let slots: Vec<Slot> = (0..CHUNK_LEN)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            chunk = Box::leak(slots.into_boxed_slice()).as_mut_ptr();
            CHUNKS[chunk_idx].store(chunk, Ordering::Release);
        }
    }
    // In bounds by construction: idx & (CHUNK_LEN - 1) < CHUNK_LEN.
    unsafe { &*chunk.add(idx & (CHUNK_LEN - 1)) }
}

/// Slots in the per-thread short-symbol cache (see [`Sym::intern`]).
const SMALL_CACHE_SLOTS: usize = 1024;

thread_local! {
    /// Direct-mapped (key → id) cache for symbols of at most 7 bytes — the
    /// hot population (`.L123` labels, short globals). Keys are bijective
    /// (bytes packed little-endian into the low 56 bits, length in the top
    /// 8), so a key match IS a string match; and since interning is
    /// idempotent and append-only, a cached pair can never go stale.
    static SMALL_CACHE: std::cell::RefCell<[(u64, u32); SMALL_CACHE_SLOTS]> =
        const { std::cell::RefCell::new([(0, 0); SMALL_CACHE_SLOTS]) };
}

/// Pack a 1..=7-byte string into a unique nonzero u64 key, or None.
#[inline]
fn pack_small(s: &str) -> Option<u64> {
    let b = s.as_bytes();
    if b.is_empty() || b.len() > 7 {
        return None;
    }
    let mut v = (b.len() as u64) << 56;
    for (i, &c) in b.iter().enumerate() {
        v |= u64::from(c) << (8 * i);
    }
    Some(v)
}

/// Multiply-shift hash: the top 10 bits of the product index the cache.
#[inline]
fn small_slot(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as usize
}

/// A stable handle to an interned string.
///
/// `Copy`, 4 bytes. Equality is an id compare; hashing matches `String`
/// content hashing (see module docs); ordering is lexicographic by content so
/// sorted symbol lists stay deterministic and human-readable.
#[derive(Clone, Copy)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s`, returning its stable handle. Idempotent.
    ///
    /// Short symbols hit a thread-local direct-mapped cache first, skipping
    /// the shard lock and both hash passes on the hot label population.
    pub fn intern(s: &str) -> Sym {
        match pack_small(s) {
            Some(key) => SMALL_CACHE.with(|c| {
                let mut cache = c.borrow_mut();
                let slot = small_slot(key);
                let (k, id) = cache[slot];
                if k == key {
                    return Sym(id);
                }
                let sym = Sym::intern_shared(s);
                cache[slot] = (key, sym.0);
                sym
            }),
            None => Sym::intern_shared(s),
        }
    }

    /// The shared (sharded-map) intern path.
    fn intern_shared(s: &str) -> Sym {
        let shard = &shards()[shard_of(s)];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let stored: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = COUNT.fetch_add(1, Ordering::SeqCst);
        let slot = slot_for(id);
        let cell: &'static mut &'static str = Box::leak(Box::new(stored));
        slot.store(cell, Ordering::Release);
        BYTES.fetch_add(s.len(), Ordering::Relaxed);
        map.insert(stored, id);
        Sym(id)
    }

    /// The interned string. Lock-free; `&'static` because storage is leaked.
    #[inline]
    pub fn as_str(self) -> &'static str {
        let idx = self.0 as usize;
        let chunk = CHUNKS[idx >> CHUNK_BITS].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "Sym id without a chunk");
        // A Sym value can only be obtained from `intern`, which stores the
        // slot (Release) before returning the id; any thread holding the id
        // is ordered after that store.
        unsafe {
            let p = (*chunk.add(idx & (CHUNK_LEN - 1))).load(Ordering::Acquire);
            debug_assert!(!p.is_null(), "Sym id without a slot");
            *p
        }
    }

    /// The raw handle value (used by the snapshot codec's string table).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Interner population: `(distinct_symbols, payload_bytes)`.
    pub fn stats() -> (usize, usize) {
        (
            COUNT.load(Ordering::Relaxed) as usize,
            BYTES.load(Ordering::Relaxed),
        )
    }

    /// Is the interned string empty?
    pub fn is_empty(self) -> bool {
        self.as_str().is_empty()
    }

    /// Length in bytes of the interned string.
    pub fn len(self) -> usize {
        self.as_str().len()
    }
}

impl Default for Sym {
    fn default() -> Sym {
        Sym::intern("")
    }
}

impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Sym) -> bool {
        self.0 == other.0
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `String`/`str` hashing exactly — cache keys depend on it.
        self.as_str().hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl Deref for Sym {
    type Target = str;

    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::borrow::Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("sym_test_alpha");
        let b = Sym::intern("sym_test_alpha");
        let c = Sym::intern("sym_test_beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "sym_test_alpha");
        assert_eq!(c.as_str(), "sym_test_beta");
    }

    #[test]
    fn hash_matches_string_hash() {
        for s in ["", ".L5", "main", "a_rather_longer_symbol_name$x"] {
            let sym = Sym::intern(s);
            let mut h1 = DefaultHasher::new();
            sym.hash(&mut h1);
            let mut h2 = DefaultHasher::new();
            s.to_string().hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash mismatch for {s:?}");
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Sym::intern("zz"), Sym::intern("aa"), Sym::intern("mm")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["aa", "mm", "zz"]);
    }

    #[test]
    fn str_comparisons_work() {
        let s = Sym::intern(".L9");
        assert_eq!(s, ".L9");
        assert_eq!(".L9", s);
        assert!(s == ".L9".to_string());
        assert_eq!(&*s, ".L9");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn small_cache_agrees_with_shared_path() {
        // Same handle whether served from the thread-local cache, the
        // shared map, or another thread (which starts with a cold cache).
        let a = Sym::intern(".Lsc1");
        let b = Sym::intern(".Lsc1"); // cache hit
        let c = std::thread::spawn(|| Sym::intern(".Lsc1")).join().unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Keys encode the length, so a zero-padded prefix is a different
        // symbol, not a cache collision.
        let short = Sym::intern("sc");
        let padded = Sym::intern("sc\0");
        assert_ne!(short, padded);
        assert_eq!(padded.as_str(), "sc\0");
    }

    #[test]
    fn stats_grow() {
        let (count0, bytes0) = Sym::stats();
        Sym::intern("sym_stats_probe_unique_xyzzy");
        let (count1, bytes1) = Sym::stats();
        assert!(count1 >= count0 + 1);
        assert!(bytes1 >= bytes0 + "sym_stats_probe_unique_xyzzy".len());
        // Re-interning must not grow the population.
        Sym::intern("sym_stats_probe_unique_xyzzy");
        assert_eq!(Sym::stats().0, count1);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Sym::intern(&format!("conc_{}", (i + t) % 50)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                assert!(s.as_str().starts_with("conc_"));
            }
        }
        // Same string from different threads must be the same handle.
        let a = Sym::intern("conc_0");
        for syms in &all {
            for s in syms {
                if s.as_str() == "conc_0" {
                    assert_eq!(*s, a);
                }
            }
        }
    }
}
