//! x86-64 binary instruction encoder.
//!
//! The paper relies on gas for "binary encoding of assembly files and
//! instructions"; MAO needs it to know every instruction's *length* so that
//! relaxation and the alignment passes can reason about addresses. This
//! module implements real x86-64 encoding (legacy prefixes, REX, ModRM, SIB,
//! displacements, immediates) for the compiler-emitted subset modeled by
//! [`Mnemonic`].
//!
//! Branches that target labels have two possible encodings (`rel8`/`rel32`);
//! the caller (the relaxation pass in the `mao` crate) decides which via
//! [`BranchForm`]. Everything else has a unique shortest encoding, except
//! that an explicitly written zero displacement (`0(%rax)`) keeps its
//! displacement byte — that is how multi-byte NOP lengths are preserved
//! across round-trips.

use std::fmt;

use crate::insn::Instruction;
use crate::mnemonic::Mnemonic;
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, RegId, Width};

/// Which encoding a label-targeting branch should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchForm {
    /// 8-bit relative displacement (short form).
    Rel8,
    /// 32-bit relative displacement (near form).
    Rel32,
}

impl BranchForm {
    /// Does `delta` fit this form's displacement?
    pub fn fits(self, delta: i64) -> bool {
        match self {
            BranchForm::Rel8 => i8::try_from(delta).is_ok(),
            BranchForm::Rel32 => i32::try_from(delta).is_ok(),
        }
    }
}

/// Encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operand combination has no encoding in the supported subset.
    UnsupportedForm(String),
    /// An immediate or displacement does not fit its field.
    ValueOutOfRange(String),
    /// High-byte register combined with a REX-requiring operand.
    RexHighByteConflict,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnsupportedForm(s) => write!(f, "unsupported instruction form: {s}"),
            EncodeError::ValueOutOfRange(s) => write!(f, "value out of range: {s}"),
            EncodeError::RexHighByteConflict => {
                write!(f, "high-byte register cannot be used with a REX prefix")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn fits_i8(v: i64) -> bool {
    i8::try_from(v).is_ok()
}

fn fits_i32(v: i64) -> bool {
    i32::try_from(v).is_ok()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum DispBytes {
    #[default]
    None,
    D8(i8),
    D32(i32),
}

/// Incremental instruction assembler.
#[derive(Debug, Default)]
struct Asm {
    prefix_66: bool,
    mandatory: Option<u8>, // F2/F3 SSE prefix (before REX)
    lock: bool,
    rex_w: bool,
    rex_r: bool,
    rex_x: bool,
    rex_b: bool,
    rex_low8: bool, // spl/sil/dil/bpl force an empty REX
    high8_used: bool,
    opcode: Vec<u8>,
    modrm: Option<u8>,
    sib: Option<u8>,
    disp: DispBytes,
    imm: Vec<u8>,
}

impl Asm {
    fn new() -> Asm {
        Asm {
            disp: DispBytes::None,
            ..Asm::default()
        }
    }

    fn note_reg8(&mut self, r: Reg) {
        if r.high8 {
            self.high8_used = true;
        } else if r.width == Width::B1
            && matches!(r.id, RegId::Rsp | RegId::Rbp | RegId::Rsi | RegId::Rdi)
        {
            self.rex_low8 = true;
        }
    }

    /// Put `r` in the ModRM.reg field.
    fn set_reg(&mut self, r: Reg) {
        let enc = r.id.encoding();
        if enc >= 8 {
            self.rex_r = true;
        }
        self.note_reg8(r);
        let high_adjust = if r.high8 { 4 } else { 0 };
        let modrm = self.modrm.unwrap_or(0);
        self.modrm = Some(modrm | (((enc & 7) + high_adjust) << 3));
    }

    /// Put the opcode-extension digit in ModRM.reg.
    fn set_digit(&mut self, digit: u8) {
        let modrm = self.modrm.unwrap_or(0);
        self.modrm = Some(modrm | (digit << 3));
    }

    /// Put a register in ModRM.rm (mod=11).
    fn set_rm_reg(&mut self, r: Reg) {
        let enc = r.id.encoding();
        if enc >= 8 {
            self.rex_b = true;
        }
        self.note_reg8(r);
        let high_adjust = if r.high8 { 4 } else { 0 };
        let modrm = self.modrm.unwrap_or(0);
        self.modrm = Some(modrm | 0b1100_0000 | ((enc & 7) + high_adjust));
    }

    /// Encode a memory operand into ModRM.rm (+ SIB + displacement).
    fn set_rm_mem(&mut self, mem: &Mem) -> Result<(), EncodeError> {
        let modrm_base = self.modrm.unwrap_or(0);
        let disp_const = mem.disp.constant();
        let symbolic = disp_const.is_none();
        let disp_val = disp_const.unwrap_or(0);
        if !symbolic && !fits_i32(disp_val) {
            return Err(EncodeError::ValueOutOfRange(format!(
                "displacement {disp_val}"
            )));
        }

        // RIP-relative: mod=00, rm=101, disp32.
        if mem.is_rip_relative() {
            if mem.index.is_some() {
                return Err(EncodeError::UnsupportedForm(
                    "RIP-relative with index register".to_string(),
                ));
            }
            self.modrm = Some(modrm_base | 0b101);
            self.disp = DispBytes::D32(disp_val as i32);
            return Ok(());
        }

        let base = mem.base;
        let index = mem.index;

        if let Some(idx) = index {
            if idx.id == RegId::Rsp {
                return Err(EncodeError::UnsupportedForm(
                    "%rsp cannot be an index register".to_string(),
                ));
            }
        }

        let scale_bits = match mem.scale {
            0 | 1 => 0u8,
            2 => 1,
            4 => 2,
            8 => 3,
            s => {
                return Err(EncodeError::UnsupportedForm(format!("scale {s}")));
            }
        };

        match (base, index) {
            (None, None) => {
                // Absolute: SIB with base=101 (no base), index=100 (none), disp32.
                self.modrm = Some(modrm_base | 0b100);
                self.sib = Some(0b00_100_101);
                self.disp = DispBytes::D32(disp_val as i32);
            }
            (None, Some(idx)) => {
                // Index-only: SIB base=101, mod=00, disp32.
                if idx.id.encoding() >= 8 {
                    self.rex_x = true;
                }
                self.modrm = Some(modrm_base | 0b100);
                self.sib = Some((scale_bits << 6) | ((idx.id.encoding() & 7) << 3) | 0b101);
                self.disp = DispBytes::D32(disp_val as i32);
            }
            (Some(b), idx) => {
                let benc = b.id.encoding();
                if benc >= 8 {
                    self.rex_b = true;
                }
                let needs_sib = idx.is_some() || (benc & 7) == 0b100;
                // rbp/r13 as base cannot use mod=00; an explicitly written
                // zero displacement also keeps its byte.
                let base_is_bp = (benc & 7) == 0b101;
                let (mode, disp) = if symbolic {
                    (0b10, DispBytes::D32(disp_val as i32))
                } else if disp_val == 0 && !base_is_bp && !mem.disp.is_present() {
                    (0b00, DispBytes::None)
                } else if fits_i8(disp_val) {
                    (0b01, DispBytes::D8(disp_val as i8))
                } else {
                    (0b10, DispBytes::D32(disp_val as i32))
                };
                if needs_sib {
                    let idx_bits = match idx {
                        Some(i) => {
                            if i.id.encoding() >= 8 {
                                self.rex_x = true;
                            }
                            i.id.encoding() & 7
                        }
                        None => 0b100,
                    };
                    self.modrm = Some(modrm_base | (mode << 6) | 0b100);
                    self.sib = Some((scale_bits << 6) | (idx_bits << 3) | (benc & 7));
                } else {
                    self.modrm = Some(modrm_base | (mode << 6) | (benc & 7));
                }
                self.disp = disp;
            }
        }
        Ok(())
    }

    fn imm8(&mut self, v: i64) {
        self.imm.push(v as u8);
    }

    fn imm16(&mut self, v: i64) {
        self.imm.extend_from_slice(&(v as i16).to_le_bytes());
    }

    fn imm32(&mut self, v: i64) {
        self.imm.extend_from_slice(&(v as i32).to_le_bytes());
    }

    fn imm64(&mut self, v: i64) {
        self.imm.extend_from_slice(&v.to_le_bytes());
    }

    /// Immediate sized for `width` (64-bit ops take sign-extended imm32).
    fn imm_for_width(&mut self, v: i64, width: Width) -> Result<(), EncodeError> {
        match width {
            Width::B1 => {
                if !fits_i8(v) && !(0..=0xff).contains(&v) {
                    return Err(EncodeError::ValueOutOfRange(format!("imm8 {v}")));
                }
                self.imm8(v);
            }
            Width::B2 => {
                if !(-(1 << 15)..(1 << 16)).contains(&v) {
                    return Err(EncodeError::ValueOutOfRange(format!("imm16 {v}")));
                }
                self.imm16(v);
            }
            Width::B4 => {
                if !fits_i32(v) && !(0..=0xffff_ffff).contains(&v) {
                    return Err(EncodeError::ValueOutOfRange(format!("imm32 {v}")));
                }
                self.imm32(v);
            }
            Width::B8 => {
                if !fits_i32(v) {
                    return Err(EncodeError::ValueOutOfRange(format!(
                        "imm32 (sign-extended) {v}"
                    )));
                }
                self.imm32(v);
            }
            Width::B16 => {
                return Err(EncodeError::UnsupportedForm(
                    "imm with XMM width".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// The REX byte this instruction needs, or `None`; errors when a REX
    /// prefix would clash with a high-byte register operand.
    fn rex_byte(&self) -> Result<Option<u8>, EncodeError> {
        let rex_bits = (u8::from(self.rex_w) << 3)
            | (u8::from(self.rex_r) << 2)
            | (u8::from(self.rex_x) << 1)
            | u8::from(self.rex_b);
        if rex_bits == 0 && !self.rex_low8 {
            return Ok(None);
        }
        if self.high8_used {
            return Err(EncodeError::RexHighByteConflict);
        }
        Ok(Some(0x40 | rex_bits))
    }

    /// Byte length of the finished encoding, computed arithmetically — no
    /// output buffer. This is what makes cached-length relaxation cheap.
    fn encoded_len(&self) -> Result<usize, EncodeError> {
        let rex = self.rex_byte()?;
        Ok(usize::from(self.lock)
            + usize::from(self.prefix_66)
            + usize::from(self.mandatory.is_some())
            + usize::from(rex.is_some())
            + self.opcode.len()
            + usize::from(self.modrm.is_some())
            + usize::from(self.sib.is_some())
            + match self.disp {
                DispBytes::None => 0,
                DispBytes::D8(_) => 1,
                DispBytes::D32(_) => 4,
            }
            + self.imm.len())
    }

    fn finish_into(self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        let start = out.len();
        let rex = self.rex_byte()?;
        if self.lock {
            out.push(0xf0);
        }
        if self.prefix_66 {
            out.push(0x66);
        }
        if let Some(m) = self.mandatory {
            out.push(m);
        }
        if let Some(r) = rex {
            out.push(r);
        }
        out.extend_from_slice(&self.opcode);
        if let Some(m) = self.modrm {
            out.push(m);
        }
        if let Some(s) = self.sib {
            out.push(s);
        }
        match self.disp {
            DispBytes::None => {}
            DispBytes::D8(d) => out.push(d as u8),
            DispBytes::D32(d) => out.extend_from_slice(&d.to_le_bytes()),
        }
        out.extend_from_slice(&self.imm);
        debug_assert!(
            out.len() - start <= 15,
            "x86 instructions are at most 15 bytes"
        );
        Ok(())
    }
}

/// Apply operand-size/REX.W prefixes for a GPR operation of width `w`.
fn setup_width(asm: &mut Asm, w: Width) {
    match w {
        Width::B2 => asm.prefix_66 = true,
        Width::B8 => asm.rex_w = true,
        _ => {}
    }
}

/// Opcode byte for the 8-bit vs wider split: `base` is the wider opcode,
/// `base - 1` the 8-bit one (the usual x86 pairing like 88/89).
fn op_for_width(base: u8, w: Width) -> u8 {
    if w == Width::B1 {
        base - 1
    } else {
        base
    }
}

/// Encode `insn`, resolving a label-targeting branch with `form` and
/// displacement `rel` (ignored for non-branches; pass [`BranchForm::Rel32`]
/// and 0 when only the length matters).
pub fn encode(insn: &Instruction, form: BranchForm, rel: i64) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(15);
    encode_into(insn, form, rel, &mut out)?;
    Ok(out)
}

/// Encode `insn` like [`encode`], appending the bytes to `out`. Lets hot
/// callers (the simulator loader, benchmarks) reuse one scratch buffer
/// instead of allocating a fresh `Vec` per instruction.
pub fn encode_into(
    insn: &Instruction,
    form: BranchForm,
    rel: i64,
    out: &mut Vec<u8>,
) -> Result<(), EncodeError> {
    assemble(insn, form, rel)?.finish_into(out)
}

/// Byte lengths of a label-targeting branch in both forms: `(rel8, rel32)`.
/// One call gives the relaxation fixed point everything it will ever need
/// to know about the instruction, so lengths are computed once instead of
/// once per iteration.
pub fn branch_lengths(insn: &Instruction) -> Result<(u32, u32), EncodeError> {
    let short = assemble(insn, BranchForm::Rel8, 0)?.encoded_len()?;
    let near = assemble(insn, BranchForm::Rel32, 0)?.encoded_len()?;
    Ok((short as u32, near as u32))
}

/// Build the instruction's encoding parts without serializing them.
fn assemble(insn: &Instruction, form: BranchForm, rel: i64) -> Result<Asm, EncodeError> {
    let mut asm = Asm::new();
    asm.lock = insn.lock;
    let w = insn.width();
    let unsupported = || {
        Err::<Asm, _>(EncodeError::UnsupportedForm(format!(
            "{insn} ({:?})",
            insn.mnemonic
        )))
    };

    use Mnemonic as M;
    use Operand as O;
    let ops = &insn.operands;

    match insn.mnemonic {
        // ALU group sharing the 00..3D / 80-83 pattern.
        M::Add | M::Or | M::Adc | M::Sbb | M::And | M::Sub | M::Xor | M::Cmp => {
            let digit = match insn.mnemonic {
                M::Add => 0,
                M::Or => 1,
                M::Adc => 2,
                M::Sbb => 3,
                M::And => 4,
                M::Sub => 5,
                M::Xor => 6,
                M::Cmp => 7,
                _ => unreachable!(),
            };
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1)) {
                (Some(O::Imm(v)), Some(dst)) => {
                    // 83 /digit ib when sign-extendable, else 80/81 /digit.
                    let use_i8 = w != Width::B1 && fits_i8(*v);
                    asm.opcode.push(if w == Width::B1 {
                        0x80
                    } else if use_i8 {
                        0x83
                    } else {
                        0x81
                    });
                    asm.set_digit(digit);
                    match dst {
                        O::Reg(r) => asm.set_rm_reg(*r),
                        O::Mem(mref) => asm.set_rm_mem(mref)?,
                        _ => return unsupported(),
                    }
                    if use_i8 {
                        asm.imm8(*v);
                    } else {
                        asm.imm_for_width(*v, w)?;
                    }
                }
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(digit * 8 + 1, w));
                    asm.set_reg(*src);
                    asm.set_rm_reg(*dst);
                }
                (Some(O::Reg(src)), Some(O::Mem(dst))) => {
                    asm.opcode.push(op_for_width(digit * 8 + 1, w));
                    asm.set_reg(*src);
                    asm.set_rm_mem(dst)?;
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(digit * 8 + 3, w));
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Mov => {
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(0x89, w));
                    asm.set_reg(*src);
                    asm.set_rm_reg(*dst);
                }
                (Some(O::Reg(src)), Some(O::Mem(dst))) => {
                    asm.opcode.push(op_for_width(0x89, w));
                    asm.set_reg(*src);
                    asm.set_rm_mem(dst)?;
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(0x8b, w));
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                (Some(O::Imm(v)), Some(O::Reg(dst))) => {
                    if w == Width::B8 && fits_i32(*v) {
                        // C7 /0 id, sign-extended — shorter than movabs.
                        asm.opcode.push(0xc7);
                        asm.set_digit(0);
                        asm.set_rm_reg(*dst);
                        asm.imm32(*v);
                    } else if w == Width::B8 {
                        // movabs: B8+r io.
                        if dst.id.encoding() >= 8 {
                            asm.rex_b = true;
                        }
                        asm.opcode.push(0xb8 + (dst.id.encoding() & 7));
                        asm.imm64(*v);
                    } else {
                        if dst.id.encoding() >= 8 {
                            asm.rex_b = true;
                        }
                        asm.note_reg8(*dst);
                        let base = if w == Width::B1 { 0xb0 } else { 0xb8 };
                        let high_adjust = if dst.high8 { 4 } else { 0 };
                        asm.opcode
                            .push(base + ((dst.id.encoding() & 7) + high_adjust));
                        asm.imm_for_width(*v, w)?;
                    }
                }
                (Some(O::Imm(v)), Some(O::Mem(dst))) => {
                    asm.opcode.push(op_for_width(0xc7, w));
                    asm.set_digit(0);
                    asm.set_rm_mem(dst)?;
                    asm.imm_for_width(*v, w)?;
                }
                _ => return unsupported(),
            }
        }
        M::Movabs => match (ops.first(), ops.get(1)) {
            (Some(O::Imm(v)), Some(O::Reg(dst))) => {
                asm.rex_w = true;
                if dst.id.encoding() >= 8 {
                    asm.rex_b = true;
                }
                asm.opcode.push(0xb8 + (dst.id.encoding() & 7));
                asm.imm64(*v);
            }
            _ => return unsupported(),
        },
        M::Movsx | M::Movzx => {
            let from = insn.src_width.unwrap_or(Width::B1);
            let to = insn.op_width.unwrap_or(Width::B4);
            setup_width(&mut asm, to);
            match (insn.mnemonic, from) {
                (M::Movsx, Width::B1) => asm.opcode.extend_from_slice(&[0x0f, 0xbe]),
                (M::Movsx, Width::B2) => asm.opcode.extend_from_slice(&[0x0f, 0xbf]),
                (M::Movsx, Width::B4) => asm.opcode.push(0x63), // movslq
                (M::Movzx, Width::B1) => asm.opcode.extend_from_slice(&[0x0f, 0xb6]),
                (M::Movzx, Width::B2) => asm.opcode.extend_from_slice(&[0x0f, 0xb7]),
                _ => return unsupported(),
            }
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Lea => {
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1)) {
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(0x8d);
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Test => {
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(0x85, w));
                    asm.set_reg(*src);
                    asm.set_rm_reg(*dst);
                }
                (Some(O::Reg(src)), Some(O::Mem(dst))) => {
                    asm.opcode.push(op_for_width(0x85, w));
                    asm.set_reg(*src);
                    asm.set_rm_mem(dst)?;
                }
                (Some(O::Imm(v)), Some(dst)) => {
                    asm.opcode.push(op_for_width(0xf7, w));
                    asm.set_digit(0);
                    match dst {
                        O::Reg(r) => asm.set_rm_reg(*r),
                        O::Mem(mref) => asm.set_rm_mem(mref)?,
                        _ => return unsupported(),
                    }
                    asm.imm_for_width(*v, w)?;
                }
                _ => return unsupported(),
            }
        }
        M::Xchg => {
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.opcode.push(op_for_width(0x87, w));
                    asm.set_reg(*src);
                    asm.set_rm_reg(*dst);
                }
                (Some(O::Reg(src)), Some(O::Mem(dst))) | (Some(O::Mem(dst)), Some(O::Reg(src))) => {
                    asm.opcode.push(op_for_width(0x87, w));
                    asm.set_reg(*src);
                    asm.set_rm_mem(dst)?;
                }
                _ => return unsupported(),
            }
        }
        M::Not | M::Neg => {
            setup_width(&mut asm, w);
            asm.opcode.push(op_for_width(0xf7, w));
            asm.set_digit(if insn.mnemonic == M::Not { 2 } else { 3 });
            match ops.first() {
                Some(O::Reg(r)) => asm.set_rm_reg(*r),
                Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                _ => return unsupported(),
            }
        }
        M::Inc | M::Dec => {
            setup_width(&mut asm, w);
            asm.opcode.push(op_for_width(0xff, w));
            asm.set_digit(if insn.mnemonic == M::Inc { 0 } else { 1 });
            match ops.first() {
                Some(O::Reg(r)) => asm.set_rm_reg(*r),
                Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                _ => return unsupported(),
            }
        }
        M::Mul | M::Idiv | M::Div => {
            setup_width(&mut asm, w);
            asm.opcode.push(op_for_width(0xf7, w));
            asm.set_digit(match insn.mnemonic {
                M::Mul => 4,
                M::Idiv => 7,
                M::Div => 6,
                _ => unreachable!(),
            });
            match ops.first() {
                Some(O::Reg(r)) => asm.set_rm_reg(*r),
                Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                _ => return unsupported(),
            }
        }
        M::Imul => {
            setup_width(&mut asm, w);
            match (ops.first(), ops.get(1), ops.get(2)) {
                (Some(src), None, None) => {
                    asm.opcode.push(op_for_width(0xf7, w));
                    asm.set_digit(5);
                    match src {
                        O::Reg(r) => asm.set_rm_reg(*r),
                        O::Mem(mref) => asm.set_rm_mem(mref)?,
                        _ => return unsupported(),
                    }
                }
                (Some(src), Some(O::Reg(dst)), None) => {
                    asm.opcode.extend_from_slice(&[0x0f, 0xaf]);
                    asm.set_reg(*dst);
                    match src {
                        O::Reg(r) => asm.set_rm_reg(*r),
                        O::Mem(mref) => asm.set_rm_mem(mref)?,
                        _ => return unsupported(),
                    }
                }
                (Some(O::Imm(v)), Some(src), Some(O::Reg(dst))) => {
                    let use_i8 = fits_i8(*v);
                    asm.opcode.push(if use_i8 { 0x6b } else { 0x69 });
                    asm.set_reg(*dst);
                    match src {
                        O::Reg(r) => asm.set_rm_reg(*r),
                        O::Mem(mref) => asm.set_rm_mem(mref)?,
                        _ => return unsupported(),
                    }
                    if use_i8 {
                        asm.imm8(*v);
                    } else {
                        asm.imm_for_width(*v, w)?;
                    }
                }
                _ => return unsupported(),
            }
        }
        M::Shl | M::Shr | M::Sar | M::Rol | M::Ror => {
            setup_width(&mut asm, w);
            let digit = match insn.mnemonic {
                M::Rol => 0,
                M::Ror => 1,
                M::Shl => 4,
                M::Shr => 5,
                M::Sar => 7,
                _ => unreachable!(),
            };
            let set_target = |asm: &mut Asm, op: &Operand| -> Result<(), EncodeError> {
                match op {
                    O::Reg(r) => {
                        asm.set_rm_reg(*r);
                        Ok(())
                    }
                    O::Mem(mref) => asm.set_rm_mem(mref),
                    _ => Err(EncodeError::UnsupportedForm("shift target".to_string())),
                }
            };
            match (ops.first(), ops.get(1)) {
                (Some(target), None) => {
                    // Implicit shift-by-1.
                    asm.opcode.push(op_for_width(0xd1, w));
                    asm.set_digit(digit);
                    set_target(&mut asm, target)?;
                }
                (Some(O::Imm(1)), Some(target)) => {
                    asm.opcode.push(op_for_width(0xd1, w));
                    asm.set_digit(digit);
                    set_target(&mut asm, target)?;
                }
                (Some(O::Imm(v)), Some(target)) => {
                    asm.opcode.push(op_for_width(0xc1, w));
                    asm.set_digit(digit);
                    set_target(&mut asm, target)?;
                    asm.imm8(*v);
                }
                (Some(O::Reg(cl)), Some(target)) if cl.id == RegId::Rcx => {
                    asm.opcode.push(op_for_width(0xd3, w));
                    asm.set_digit(digit);
                    set_target(&mut asm, target)?;
                }
                _ => return unsupported(),
            }
        }
        M::Push => match ops.first() {
            Some(O::Reg(r)) => {
                if r.id.encoding() >= 8 {
                    asm.rex_b = true;
                }
                asm.opcode.push(0x50 + (r.id.encoding() & 7));
            }
            Some(O::Imm(v)) => {
                if fits_i8(*v) {
                    asm.opcode.push(0x6a);
                    asm.imm8(*v);
                } else {
                    asm.opcode.push(0x68);
                    asm.imm32(*v);
                }
            }
            Some(O::Mem(mref)) => {
                asm.opcode.push(0xff);
                asm.set_digit(6);
                asm.set_rm_mem(mref)?;
            }
            _ => return unsupported(),
        },
        M::Pop => match ops.first() {
            Some(O::Reg(r)) => {
                if r.id.encoding() >= 8 {
                    asm.rex_b = true;
                }
                asm.opcode.push(0x58 + (r.id.encoding() & 7));
            }
            Some(O::Mem(mref)) => {
                asm.opcode.push(0x8f);
                asm.set_digit(0);
                asm.set_rm_mem(mref)?;
            }
            _ => return unsupported(),
        },
        M::Cltq => {
            asm.rex_w = true;
            asm.opcode.push(0x98);
        }
        M::Cwtl => asm.opcode.push(0x98),
        M::Cltd => asm.opcode.push(0x99),
        M::Cqto => {
            asm.rex_w = true;
            asm.opcode.push(0x99);
        }
        M::Jmp => match ops.first() {
            Some(O::Label(_)) => match form {
                BranchForm::Rel8 => {
                    if !form.fits(rel) {
                        return Err(EncodeError::ValueOutOfRange(format!("rel8 {rel}")));
                    }
                    asm.opcode.push(0xeb);
                    asm.imm8(rel);
                }
                BranchForm::Rel32 => {
                    if !form.fits(rel) {
                        return Err(EncodeError::ValueOutOfRange(format!("rel32 {rel}")));
                    }
                    asm.opcode.push(0xe9);
                    asm.imm32(rel);
                }
            },
            Some(O::IndirectReg(r)) => {
                asm.opcode.push(0xff);
                asm.set_digit(4);
                asm.set_rm_reg(*r);
            }
            Some(O::IndirectMem(mref)) => {
                asm.opcode.push(0xff);
                asm.set_digit(4);
                asm.set_rm_mem(mref)?;
            }
            _ => return unsupported(),
        },
        M::Jcc(c) => match ops.first() {
            Some(O::Label(_)) => match form {
                BranchForm::Rel8 => {
                    if !form.fits(rel) {
                        return Err(EncodeError::ValueOutOfRange(format!("rel8 {rel}")));
                    }
                    asm.opcode.push(0x70 + c.encoding());
                    asm.imm8(rel);
                }
                BranchForm::Rel32 => {
                    if !form.fits(rel) {
                        return Err(EncodeError::ValueOutOfRange(format!("rel32 {rel}")));
                    }
                    asm.opcode.extend_from_slice(&[0x0f, 0x80 + c.encoding()]);
                    asm.imm32(rel);
                }
            },
            _ => return unsupported(),
        },
        M::Call => match ops.first() {
            Some(O::Label(_)) => {
                if !fits_i32(rel) {
                    return Err(EncodeError::ValueOutOfRange(format!("rel32 {rel}")));
                }
                asm.opcode.push(0xe8);
                asm.imm32(rel);
            }
            Some(O::IndirectReg(r)) => {
                asm.opcode.push(0xff);
                asm.set_digit(2);
                asm.set_rm_reg(*r);
            }
            Some(O::IndirectMem(mref)) => {
                asm.opcode.push(0xff);
                asm.set_digit(2);
                asm.set_rm_mem(mref)?;
            }
            _ => return unsupported(),
        },
        M::Ret => asm.opcode.push(0xc3),
        M::Leave => asm.opcode.push(0xc9),
        M::Setcc(c) => {
            asm.opcode.extend_from_slice(&[0x0f, 0x90 + c.encoding()]);
            asm.set_digit(0);
            match ops.first() {
                Some(O::Reg(r)) => asm.set_rm_reg(*r),
                Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                _ => return unsupported(),
            }
        }
        M::Cmovcc(c) => {
            setup_width(&mut asm, w);
            asm.opcode.extend_from_slice(&[0x0f, 0x40 + c.encoding()]);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Nop => {
            if ops.is_empty() {
                if insn.op_width == Some(Width::B2) {
                    asm.prefix_66 = true;
                }
                asm.opcode.push(0x90);
            } else {
                // Multi-byte NOP: 0F 1F /0.
                if insn.op_width == Some(Width::B2) {
                    asm.prefix_66 = true;
                }
                asm.opcode.extend_from_slice(&[0x0f, 0x1f]);
                asm.set_digit(0);
                match ops.first() {
                    Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                    Some(O::Reg(r)) => asm.set_rm_reg(*r),
                    _ => return unsupported(),
                }
            }
        }
        M::Pause => {
            asm.mandatory = Some(0xf3);
            asm.opcode.push(0x90);
        }
        // SSE: (prefix, opcode-load, opcode-store); reg field is the XMM.
        M::Movss | M::Movsd | M::Movups | M::Movaps | M::Movapd => {
            let (prefix, load, store): (Option<u8>, u8, u8) = match insn.mnemonic {
                M::Movss => (Some(0xf3), 0x10, 0x11),
                M::Movsd => (Some(0xf2), 0x10, 0x11),
                M::Movups => (None, 0x10, 0x11),
                M::Movaps => (None, 0x28, 0x29),
                M::Movapd => {
                    asm.prefix_66 = true;
                    (None, 0x28, 0x29)
                }
                _ => unreachable!(),
            };
            asm.mandatory = prefix;
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.opcode.extend_from_slice(&[0x0f, load]);
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.opcode.extend_from_slice(&[0x0f, load]);
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                (Some(O::Reg(src)), Some(O::Mem(dst))) => {
                    asm.opcode.extend_from_slice(&[0x0f, store]);
                    asm.set_reg(*src);
                    asm.set_rm_mem(dst)?;
                }
                _ => return unsupported(),
            }
        }
        M::Addss
        | M::Addsd
        | M::Subss
        | M::Subsd
        | M::Mulss
        | M::Mulsd
        | M::Divss
        | M::Divsd
        | M::Sqrtss
        | M::Sqrtsd
        | M::Ucomiss
        | M::Ucomisd
        | M::Comiss
        | M::Comisd
        | M::Pxor
        | M::Xorps
        | M::Xorpd
        | M::Cvtss2sd
        | M::Cvtsd2ss => {
            let (mandatory, p66, op): (Option<u8>, bool, u8) = match insn.mnemonic {
                M::Addss => (Some(0xf3), false, 0x58),
                M::Addsd => (Some(0xf2), false, 0x58),
                M::Subss => (Some(0xf3), false, 0x5c),
                M::Subsd => (Some(0xf2), false, 0x5c),
                M::Mulss => (Some(0xf3), false, 0x59),
                M::Mulsd => (Some(0xf2), false, 0x59),
                M::Divss => (Some(0xf3), false, 0x5e),
                M::Divsd => (Some(0xf2), false, 0x5e),
                M::Sqrtss => (Some(0xf3), false, 0x51),
                M::Sqrtsd => (Some(0xf2), false, 0x51),
                M::Ucomiss => (None, false, 0x2e),
                M::Ucomisd => (None, true, 0x2e),
                M::Comiss => (None, false, 0x2f),
                M::Comisd => (None, true, 0x2f),
                M::Pxor => (None, true, 0xef),
                M::Xorps => (None, false, 0x57),
                M::Xorpd => (None, true, 0x57),
                M::Cvtss2sd => (Some(0xf3), false, 0x5a),
                M::Cvtsd2ss => (Some(0xf2), false, 0x5a),
                _ => unreachable!(),
            };
            asm.mandatory = mandatory;
            asm.prefix_66 = p66;
            asm.opcode.extend_from_slice(&[0x0f, op]);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Cvtsi2ss | M::Cvtsi2sd | M::Cvttss2si | M::Cvttsd2si => {
            let (mandatory, op) = match insn.mnemonic {
                M::Cvtsi2ss => (0xf3, 0x2a),
                M::Cvtsi2sd => (0xf2, 0x2a),
                M::Cvttss2si => (0xf3, 0x2c),
                M::Cvttsd2si => (0xf2, 0x2c),
                _ => unreachable!(),
            };
            asm.mandatory = Some(mandatory);
            if insn.op_width == Some(Width::B8) {
                asm.rex_w = true;
            }
            asm.opcode.extend_from_slice(&[0x0f, op]);
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Mem(src)), Some(O::Reg(dst))) => {
                    asm.set_reg(*dst);
                    asm.set_rm_mem(src)?;
                }
                _ => return unsupported(),
            }
        }
        M::Movd | M::Movdq => {
            asm.prefix_66 = true;
            if insn.mnemonic == M::Movdq {
                asm.rex_w = true;
            }
            match (ops.first(), ops.get(1)) {
                (Some(O::Reg(src)), Some(O::Reg(dst))) if dst.id.is_xmm() => {
                    asm.opcode.extend_from_slice(&[0x0f, 0x6e]);
                    asm.set_reg(*dst);
                    asm.set_rm_reg(*src);
                }
                (Some(O::Reg(src)), Some(O::Reg(dst))) if src.id.is_xmm() => {
                    asm.opcode.extend_from_slice(&[0x0f, 0x7e]);
                    asm.set_reg(*src);
                    asm.set_rm_reg(*dst);
                }
                _ => return unsupported(),
            }
        }
        M::Prefetchnta | M::Prefetcht0 | M::Prefetcht1 | M::Prefetcht2 => {
            asm.opcode.extend_from_slice(&[0x0f, 0x18]);
            asm.set_digit(match insn.mnemonic {
                M::Prefetchnta => 0,
                M::Prefetcht0 => 1,
                M::Prefetcht1 => 2,
                M::Prefetcht2 => 3,
                _ => unreachable!(),
            });
            match ops.first() {
                Some(O::Mem(mref)) => asm.set_rm_mem(mref)?,
                _ => return unsupported(),
            }
        }
        M::Ud2 => asm.opcode.extend_from_slice(&[0x0f, 0x0b]),
        M::Int3 => asm.opcode.push(0xcc),
        M::Hlt => asm.opcode.push(0xf4),
        M::Cpuid => asm.opcode.extend_from_slice(&[0x0f, 0xa2]),
        M::Rdtsc => asm.opcode.extend_from_slice(&[0x0f, 0x31]),
        M::Mfence => asm.opcode.extend_from_slice(&[0x0f, 0xae, 0xf0]),
        M::Lfence => asm.opcode.extend_from_slice(&[0x0f, 0xae, 0xe8]),
        M::Sfence => asm.opcode.extend_from_slice(&[0x0f, 0xae, 0xf8]),
        M::Endbr64 => {
            asm.mandatory = Some(0xf3);
            asm.opcode.extend_from_slice(&[0x0f, 0x1e, 0xfa]);
        }
    }

    Ok(asm)
}

/// Length in bytes of `insn`, with a label-targeting branch assumed to use
/// `form`. This is what the relaxation fixed point consumes. Computed
/// arithmetically from the instruction's parts — no bytes are materialized.
pub fn encoded_length(insn: &Instruction, form: BranchForm) -> Result<usize, EncodeError> {
    assemble(insn, form, 0)?.encoded_len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::Cond;
    use crate::insn::build;
    use crate::operand::Mem;

    fn enc(i: &Instruction) -> Vec<u8> {
        encode(i, BranchForm::Rel32, 0).unwrap()
    }

    /// The exact byte sequences from the paper's Section II listing.
    #[test]
    fn paper_relaxation_listing_encodings() {
        use crate::reg::{Reg, RegId, Width};
        let rbp = Reg::q(RegId::Rbp);
        let rsp = Reg::q(RegId::Rsp);

        let push = Instruction::new(Mnemonic::Push, vec![Operand::Reg(rbp)]);
        assert_eq!(enc(&push), vec![0x55]);

        let mov = build::mov(Width::B8, rsp, rbp);
        assert_eq!(enc(&mov), vec![0x48, 0x89, 0xe5]);

        let movl = build::mov(Width::B4, Operand::Imm(5), Mem::base_disp(rbp, -4));
        assert_eq!(enc(&movl), vec![0xc7, 0x45, 0xfc, 0x05, 0x00, 0x00, 0x00]);

        let addl = build::add(Width::B4, Operand::Imm(1), Mem::base_disp(rbp, -4));
        assert_eq!(enc(&addl), vec![0x83, 0x45, 0xfc, 0x01]);

        let subl = build::sub(Width::B4, Operand::Imm(1), Mem::base_disp(rbp, -4));
        assert_eq!(enc(&subl), vec![0x83, 0x6d, 0xfc, 0x01]);

        let cmpl = build::cmp(Width::B4, Operand::Imm(0), Mem::base_disp(rbp, -4));
        assert_eq!(enc(&cmpl), vec![0x83, 0x7d, 0xfc, 0x00]);

        // jmp rel8: eb 7f, jmp rel32: e9 imm32, jne rel32: 0f 85 imm32.
        let jmp = build::jmp(".L");
        assert_eq!(
            encode(&jmp, BranchForm::Rel8, 0x7f).unwrap(),
            vec![0xeb, 0x7f]
        );
        assert_eq!(
            encode(&jmp, BranchForm::Rel32, 0x80).unwrap(),
            vec![0xe9, 0x80, 0x00, 0x00, 0x00]
        );
        let jne = build::jcc(Cond::Ne, ".L");
        assert_eq!(
            encode(&jne, BranchForm::Rel32, -0x86).unwrap(),
            vec![0x0f, 0x85, 0x7a, 0xff, 0xff, 0xff]
        );
        assert_eq!(encode(&jne, BranchForm::Rel8, -0x10).unwrap().len(), 2);
    }

    #[test]
    fn nop_lengths_are_exact() {
        for len in 1..=6usize {
            let n = Instruction::nop_of_len(len);
            assert_eq!(enc(&n).len(), len, "nop_of_len({len})");
        }
        assert_eq!(enc(&Instruction::nop()), vec![0x90]);
        // The canonical 5-byte NOP used for instrumentation points.
        assert_eq!(
            enc(&Instruction::nop_of_len(5)),
            vec![0x0f, 0x1f, 0x44, 0x00, 0x00]
        );
    }

    #[test]
    fn rel8_overflow_is_an_error() {
        let jmp = build::jmp(".L");
        assert!(matches!(
            encode(&jmp, BranchForm::Rel8, 0x80),
            Err(EncodeError::ValueOutOfRange(_))
        ));
    }

    #[test]
    fn mcf_loop_encodings() {
        use crate::reg::{Reg, RegId, Width};
        // movsbl 1(%rdi,%r8,4),%edx from Figure 1.
        let i = Instruction::from_att(
            "movsbl",
            vec![
                Operand::Mem(Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 1)),
                Operand::Reg(Reg::l(RegId::Rdx)),
            ],
        )
        .unwrap();
        // REX.X for r8 index: 42 0f be 54 87 01
        assert_eq!(enc(&i), vec![0x42, 0x0f, 0xbe, 0x54, 0x87, 0x01]);

        // addq $1, %r8 -> 49 83 c0 01
        let i = build::add(Width::B8, Operand::Imm(1), Reg::q(RegId::R8));
        assert_eq!(enc(&i), vec![0x49, 0x83, 0xc0, 0x01]);

        // cmpl %r8d, %r9d -> 45 39 c1
        let i = build::cmp(Width::B4, Reg::l(RegId::R8), Reg::l(RegId::R9));
        assert_eq!(enc(&i), vec![0x45, 0x39, 0xc1]);
    }

    #[test]
    fn zero_extension_pattern_encodings() {
        use crate::reg::{Reg, RegId, Width};
        // andl $255, %eax -> 25 ff 00 00 00 (via 81 /4) — we use 81 form: 81 e4?
        // Note: we do not implement the AL/eAX short forms; 81 /4 id is used.
        let i = Instruction::with_width(
            Mnemonic::And,
            Width::B4,
            vec![Operand::Imm(255), Operand::Reg(Reg::l(RegId::Rax))],
        );
        assert_eq!(enc(&i), vec![0x81, 0xe0, 0xff, 0x00, 0x00, 0x00]);
        // mov %eax, %eax -> 89 c0
        let i = build::mov(Width::B4, Reg::l(RegId::Rax), Reg::l(RegId::Rax));
        assert_eq!(enc(&i), vec![0x89, 0xc0]);
    }

    #[test]
    fn movss_store() {
        use crate::reg::{Reg, RegId};
        // movss %xmm0,(%rdi,%rax,4) -> f3 0f 11 04 87
        let i = Instruction::new(
            Mnemonic::Movss,
            vec![
                Operand::Reg(Reg::xmm(0)),
                Operand::Mem(Mem::base_index(
                    Reg::q(RegId::Rdi),
                    Reg::q(RegId::Rax),
                    4,
                    0,
                )),
            ],
        );
        assert_eq!(enc(&i), vec![0xf3, 0x0f, 0x11, 0x04, 0x87]);
    }

    #[test]
    fn rsp_base_needs_sib() {
        use crate::reg::{Reg, RegId, Width};
        // movq 24(%rsp), %rdx -> 48 8b 54 24 18
        let i = build::mov(
            Width::B8,
            Mem::base_disp(Reg::q(RegId::Rsp), 24),
            Reg::q(RegId::Rdx),
        );
        assert_eq!(enc(&i), vec![0x48, 0x8b, 0x54, 0x24, 0x18]);
    }

    #[test]
    fn rbp_base_needs_disp8() {
        use crate::reg::{Reg, RegId, Width};
        // mov (%rbp), %rax must encode disp8=0: 48 8b 45 00
        let i = build::mov(
            Width::B8,
            Mem::base_disp(Reg::q(RegId::Rbp), 0),
            Reg::q(RegId::Rax),
        );
        assert_eq!(enc(&i), vec![0x48, 0x8b, 0x45, 0x00]);
        // Same for r13.
        let i = build::mov(
            Width::B8,
            Mem::base_disp(Reg::q(RegId::R13), 0),
            Reg::q(RegId::Rax),
        );
        assert_eq!(enc(&i), vec![0x49, 0x8b, 0x45, 0x00]);
    }

    #[test]
    fn explicit_zero_disp_forces_disp8() {
        use crate::operand::Disp;
        use crate::reg::{Reg, RegId, Width};
        let implicit = build::mov(
            Width::B8,
            Mem::base_disp(Reg::q(RegId::Rax), 0),
            Reg::q(RegId::Rbx),
        );
        let explicit = build::mov(
            Width::B8,
            Mem {
                disp: Disp::Imm(0),
                base: Some(Reg::q(RegId::Rax)),
                index: None,
                scale: 1,
            },
            Reg::q(RegId::Rbx),
        );
        assert_eq!(enc(&implicit).len() + 1, enc(&explicit).len());
    }

    #[test]
    fn rip_relative() {
        use crate::reg::{Reg, RegId, Width};
        let i = build::mov(Width::B8, Mem::rip_relative("glob"), Reg::q(RegId::Rax));
        // 48 8b 05 <disp32>
        let b = enc(&i);
        assert_eq!(&b[..3], &[0x48, 0x8b, 0x05]);
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn shifts() {
        use crate::reg::{Reg, RegId, Width};
        // shrl $12, %edi -> c1 ef 0c
        let i = Instruction::with_width(
            Mnemonic::Shr,
            Width::B4,
            vec![Operand::Imm(12), Operand::Reg(Reg::l(RegId::Rdi))],
        );
        assert_eq!(enc(&i), vec![0xc1, 0xef, 0x0c]);
        // sarl %ecx (by 1) -> d1 f9
        let i = Instruction::with_width(
            Mnemonic::Sar,
            Width::B4,
            vec![Operand::Reg(Reg::l(RegId::Rcx))],
        );
        assert_eq!(enc(&i), vec![0xd1, 0xf9]);
        // shlq %cl, %rax -> 48 d3 e0
        let i = Instruction::with_width(
            Mnemonic::Shl,
            Width::B8,
            vec![
                Operand::Reg(Reg::b(RegId::Rcx)),
                Operand::Reg(Reg::q(RegId::Rax)),
            ],
        );
        assert_eq!(enc(&i), vec![0x48, 0xd3, 0xe0]);
    }

    #[test]
    fn lea_encoding() {
        use crate::reg::{Reg, RegId, Width};
        // leal (%r8,%rdi), %ebx -> 41 8d 1c 38
        let i = Instruction::with_width(
            Mnemonic::Lea,
            Width::B4,
            vec![
                Operand::Mem(Mem::base_index(Reg::q(RegId::R8), Reg::q(RegId::Rdi), 1, 0)),
                Operand::Reg(Reg::l(RegId::Rbx)),
            ],
        );
        assert_eq!(enc(&i), vec![0x41, 0x8d, 0x1c, 0x38]);
        // leal 2(%rdx), %r8d -> 44 8d 42 02
        let i = Instruction::with_width(
            Mnemonic::Lea,
            Width::B4,
            vec![
                Operand::Mem(Mem::base_disp(Reg::q(RegId::Rdx), 2)),
                Operand::Reg(Reg::l(RegId::R8)),
            ],
        );
        assert_eq!(enc(&i), vec![0x44, 0x8d, 0x42, 0x02]);
    }

    #[test]
    fn prefetchnta() {
        use crate::reg::{Reg, RegId};
        // prefetchnta (%rax) -> 0f 18 00
        let i = Instruction::new(
            Mnemonic::Prefetchnta,
            vec![Operand::Mem(Mem::base_disp(Reg::q(RegId::Rax), 0))],
        );
        assert_eq!(enc(&i), vec![0x0f, 0x18, 0x00]);
    }

    #[test]
    fn call_and_ret() {
        let c = Instruction::new(Mnemonic::Call, vec![Operand::Label("f".into())]);
        assert_eq!(encode(&c, BranchForm::Rel32, 0x100).unwrap().len(), 5);
        let r = Instruction::new(Mnemonic::Ret, vec![]);
        assert_eq!(enc(&r), vec![0xc3]);
    }

    #[test]
    fn low8_regs_need_rex() {
        use crate::reg::{Reg, RegId, Width};
        // movb %sil, %al -> 40 88 f0
        let i = build::mov(Width::B1, Reg::b(RegId::Rsi), Reg::b(RegId::Rax));
        assert_eq!(enc(&i), vec![0x40, 0x88, 0xf0]);
        // movb %dl, %al (no REX) -> 88 d0
        let i = build::mov(Width::B1, Reg::b(RegId::Rdx), Reg::b(RegId::Rax));
        assert_eq!(enc(&i), vec![0x88, 0xd0]);
    }

    #[test]
    fn high8_rex_conflict_is_rejected() {
        use crate::reg::{parse_reg_name, Width};
        let ah = parse_reg_name("ah").unwrap();
        let sil = parse_reg_name("sil").unwrap();
        let i = build::mov(Width::B1, ah, sil);
        assert_eq!(
            encode(&i, BranchForm::Rel32, 0),
            Err(EncodeError::RexHighByteConflict)
        );
    }

    #[test]
    fn xorb_high_low() {
        use crate::reg::{Reg, RegId, Width};
        // xorb $1, %dl -> 80 f2 01
        let i = Instruction::with_width(
            Mnemonic::Xor,
            Width::B1,
            vec![Operand::Imm(1), Operand::Reg(Reg::b(RegId::Rdx))],
        );
        assert_eq!(enc(&i), vec![0x80, 0xf2, 0x01]);
    }

    #[test]
    fn movabs_imm64() {
        use crate::reg::{Reg, RegId};
        let i = Instruction::new(
            Mnemonic::Movabs,
            vec![
                Operand::Imm(0x1122334455667788),
                Operand::Reg(Reg::q(RegId::Rax)),
            ],
        );
        let b = enc(&i);
        assert_eq!(b[0], 0x48);
        assert_eq!(b[1], 0xb8);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn imul_forms() {
        use crate::reg::{Reg, RegId, Width};
        // imull %ebx -> f7 eb
        let one = Instruction::with_width(
            Mnemonic::Imul,
            Width::B4,
            vec![Operand::Reg(Reg::l(RegId::Rbx))],
        );
        assert_eq!(enc(&one), vec![0xf7, 0xeb]);
        // imull %ecx, %eax -> 0f af c1
        let two = Instruction::with_width(
            Mnemonic::Imul,
            Width::B4,
            vec![
                Operand::Reg(Reg::l(RegId::Rcx)),
                Operand::Reg(Reg::l(RegId::Rax)),
            ],
        );
        assert_eq!(enc(&two), vec![0x0f, 0xaf, 0xc1]);
        // imull $100, %ecx, %eax -> 6b c1 64
        let three = Instruction::with_width(
            Mnemonic::Imul,
            Width::B4,
            vec![
                Operand::Imm(100),
                Operand::Reg(Reg::l(RegId::Rcx)),
                Operand::Reg(Reg::l(RegId::Rax)),
            ],
        );
        assert_eq!(enc(&three), vec![0x6b, 0xc1, 0x64]);
    }

    #[test]
    fn lengths_at_most_15() {
        use crate::reg::{Reg, RegId, Width};
        let i = build::mov(
            Width::B8,
            Operand::Mem(Mem::base_index(
                Reg::q(RegId::R13),
                Reg::q(RegId::R12),
                8,
                0x12345678,
            )),
            Reg::q(RegId::R15),
        );
        let b = enc(&i);
        assert!(b.len() <= 15);
    }

    #[test]
    fn indirect_jump_through_table() {
        use crate::operand::Disp;
        use crate::reg::{Reg, RegId};
        // jmp *.Ltab(,%rax,8) -> ff 24 c5 <disp32>
        let i = Instruction::new(
            Mnemonic::Jmp,
            vec![Operand::IndirectMem(Mem {
                disp: Disp::Symbol {
                    name: ".Ltab".into(),
                    addend: 0,
                },
                base: None,
                index: Some(Reg::q(RegId::Rax)),
                scale: 8,
            })],
        );
        let b = enc(&i);
        assert_eq!(&b[..3], &[0xff, 0x24, 0xc5]);
        assert_eq!(b.len(), 7);
    }
}

#[cfg(test)]
mod more_form_tests {
    use super::*;
    use crate::flags::Cond;
    use crate::insn::{build, Instruction};
    use crate::mnemonic::Mnemonic;
    use crate::operand::{Mem, Operand};
    use crate::reg::{Reg, RegId, Width};

    fn enc(i: &Instruction) -> Vec<u8> {
        encode(i, BranchForm::Rel32, 0).unwrap()
    }

    #[test]
    fn push_immediates() {
        let i = Instruction::new(Mnemonic::Push, vec![Operand::Imm(42)]);
        assert_eq!(enc(&i), vec![0x6a, 0x2a]);
        let i = Instruction::new(Mnemonic::Push, vec![Operand::Imm(0x1234)]);
        assert_eq!(enc(&i), vec![0x68, 0x34, 0x12, 0x00, 0x00]);
    }

    #[test]
    fn push_pop_memory() {
        let m = Mem::base_disp(Reg::q(RegId::Rbx), 8);
        let i = Instruction::new(Mnemonic::Push, vec![Operand::Mem(m.clone())]);
        assert_eq!(enc(&i), vec![0xff, 0x73, 0x08]);
        let i = Instruction::new(Mnemonic::Pop, vec![Operand::Mem(m)]);
        assert_eq!(enc(&i), vec![0x8f, 0x43, 0x08]);
    }

    #[test]
    fn setcc_memory_destination() {
        let i = Instruction::from_att(
            "setne",
            vec![Operand::Mem(Mem::base_disp(Reg::q(RegId::Rdi), 0))],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0x0f, 0x95, 0x07]);
    }

    #[test]
    fn cmov_from_memory() {
        let i = Instruction::from_att(
            "cmovel",
            vec![
                Operand::Mem(Mem::base_disp(Reg::q(RegId::Rsi), 4)),
                Operand::Reg(Reg::l(RegId::Rax)),
            ],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0x0f, 0x44, 0x46, 0x04]);
    }

    #[test]
    fn test_immediate_with_memory() {
        let i = Instruction::from_att(
            "testl",
            vec![
                Operand::Imm(0xff),
                Operand::Mem(Mem::base_disp(Reg::q(RegId::Rbp), -4)),
            ],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0xf7, 0x45, 0xfc, 0xff, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn not_neg_on_memory() {
        let m = Mem::base_disp(Reg::q(RegId::Rcx), 0);
        let i = Instruction::with_width(Mnemonic::Not, Width::B4, vec![Operand::Mem(m.clone())]);
        assert_eq!(enc(&i), vec![0xf7, 0x11]);
        let i = Instruction::with_width(Mnemonic::Neg, Width::B8, vec![Operand::Mem(m)]);
        assert_eq!(enc(&i), vec![0x48, 0xf7, 0x19]);
    }

    #[test]
    fn inc_dec_forms() {
        let i = Instruction::from_att("incq", vec![Operand::Reg(Reg::q(RegId::Rax))]).unwrap();
        assert_eq!(enc(&i), vec![0x48, 0xff, 0xc0]);
        let i = Instruction::from_att(
            "decl",
            vec![Operand::Mem(Mem::base_disp(Reg::q(RegId::Rdx), 16))],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0xff, 0x4a, 0x10]);
    }

    #[test]
    fn index_only_sib() {
        // movl %eax, (,%rbx,4): SIB with no base -> disp32 required.
        let i = Instruction::from_att(
            "movl",
            vec![
                Operand::Reg(Reg::l(RegId::Rax)),
                Operand::Mem(Mem {
                    disp: crate::operand::Disp::None,
                    base: None,
                    index: Some(Reg::q(RegId::Rbx)),
                    scale: 4,
                }),
            ],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0x89, 0x04, 0x9d, 0x00, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn r12_base_needs_sib_r13_needs_disp() {
        // r12 as base shares rsp's SIB-escape encoding.
        let i = Instruction::from_att(
            "movq",
            vec![
                Operand::Mem(Mem::base_disp(Reg::q(RegId::R12), 0)),
                Operand::Reg(Reg::q(RegId::Rax)),
            ],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0x49, 0x8b, 0x04, 0x24]);
        // r13 as base shares rbp's disp-required encoding.
        let i = Instruction::from_att(
            "movq",
            vec![
                Operand::Mem(Mem::base_disp(Reg::q(RegId::R13), 0)),
                Operand::Reg(Reg::q(RegId::Rax)),
            ],
        )
        .unwrap();
        assert_eq!(enc(&i), vec![0x49, 0x8b, 0x45, 0x00]);
    }

    #[test]
    fn indirect_call_and_jmp_register() {
        let i = Instruction::new(
            Mnemonic::Call,
            vec![Operand::IndirectReg(Reg::q(RegId::Rax))],
        );
        assert_eq!(enc(&i), vec![0xff, 0xd0]);
        let i = Instruction::new(
            Mnemonic::Jmp,
            vec![Operand::IndirectReg(Reg::q(RegId::R11))],
        );
        assert_eq!(enc(&i), vec![0x41, 0xff, 0xe3]);
    }

    #[test]
    fn sse_reg_reg_moves() {
        let i = Instruction::new(
            Mnemonic::Movss,
            vec![Operand::Reg(Reg::xmm(1)), Operand::Reg(Reg::xmm(0))],
        );
        assert_eq!(enc(&i), vec![0xf3, 0x0f, 0x10, 0xc1]);
        let i = Instruction::new(
            Mnemonic::Movaps,
            vec![Operand::Reg(Reg::xmm(8)), Operand::Reg(Reg::xmm(2))],
        );
        assert_eq!(enc(&i), vec![0x41, 0x0f, 0x28, 0xd0]);
    }

    #[test]
    fn movd_between_gpr_and_xmm() {
        let i = Instruction::new(
            Mnemonic::Movd,
            vec![Operand::Reg(Reg::l(RegId::Rax)), Operand::Reg(Reg::xmm(0))],
        );
        assert_eq!(enc(&i), vec![0x66, 0x0f, 0x6e, 0xc0]);
        let i = Instruction::new(
            Mnemonic::Movd,
            vec![Operand::Reg(Reg::xmm(0)), Operand::Reg(Reg::l(RegId::Rax))],
        );
        assert_eq!(enc(&i), vec![0x66, 0x0f, 0x7e, 0xc0]);
    }

    #[test]
    fn misc_fixed_encodings() {
        let enc1 = |m: Mnemonic| enc(&Instruction::new(m, vec![]));
        assert_eq!(enc1(Mnemonic::Ud2), vec![0x0f, 0x0b]);
        assert_eq!(enc1(Mnemonic::Cpuid), vec![0x0f, 0xa2]);
        assert_eq!(enc1(Mnemonic::Rdtsc), vec![0x0f, 0x31]);
        assert_eq!(enc1(Mnemonic::Mfence), vec![0x0f, 0xae, 0xf0]);
        assert_eq!(enc1(Mnemonic::Lfence), vec![0x0f, 0xae, 0xe8]);
        assert_eq!(enc1(Mnemonic::Sfence), vec![0x0f, 0xae, 0xf8]);
        assert_eq!(enc1(Mnemonic::Endbr64), vec![0xf3, 0x0f, 0x1e, 0xfa]);
        assert_eq!(enc1(Mnemonic::Pause), vec![0xf3, 0x90]);
        assert_eq!(enc1(Mnemonic::Cltq), vec![0x48, 0x98]);
        assert_eq!(enc1(Mnemonic::Cqto), vec![0x48, 0x99]);
    }

    #[test]
    fn lock_prefix_encodes_first() {
        let mut i = Instruction::from_att(
            "addl",
            vec![
                Operand::Imm(1),
                Operand::Mem(Mem::base_disp(Reg::q(RegId::Rdi), 0)),
            ],
        )
        .unwrap();
        i.lock = true;
        assert_eq!(enc(&i), vec![0xf0, 0x83, 0x07, 0x01]);
    }

    #[test]
    fn unsupported_forms_error_not_panic() {
        // Immediate destination is nonsense.
        let i = Instruction::with_width(
            Mnemonic::Mov,
            Width::B4,
            vec![Operand::Imm(1), Operand::Imm(2)],
        );
        assert!(matches!(
            encode(&i, BranchForm::Rel32, 0),
            Err(EncodeError::UnsupportedForm(_))
        ));
        // Setcc with an immediate operand.
        let i = Instruction::from_att("sete", vec![Operand::Imm(1)]).unwrap();
        assert!(encode(&i, BranchForm::Rel32, 0).is_err());
    }

    #[test]
    fn arithmetic_length_matches_materialized_encoding() {
        let insns = [
            Instruction::new(Mnemonic::Push, vec![Operand::Reg(Reg::q(RegId::Rbp))]),
            build::mov(Width::B8, Reg::q(RegId::Rsp), Reg::q(RegId::Rbp)),
            build::mov(
                Width::B4,
                Operand::Imm(5),
                Mem::base_disp(Reg::q(RegId::Rbp), -4),
            ),
            build::jmp(".L"),
            build::jcc(Cond::E, ".L"),
            Instruction::from_att("call", vec![Operand::Label("f".into())]).unwrap(),
            Instruction::nop_of_len(6),
        ];
        for insn in &insns {
            for form in [BranchForm::Rel8, BranchForm::Rel32] {
                let bytes = encode(insn, form, 0).unwrap();
                assert_eq!(
                    encoded_length(insn, form).unwrap(),
                    bytes.len(),
                    "{insn} {form:?}"
                );
                let mut buf = vec![0xaa];
                encode_into(insn, form, 0, &mut buf).unwrap();
                assert_eq!(&buf[1..], &bytes[..], "{insn} {form:?}");
            }
        }
    }

    #[test]
    fn branch_lengths_give_both_forms_at_once() {
        assert_eq!(branch_lengths(&build::jmp(".L")).unwrap(), (2, 5));
        assert_eq!(branch_lengths(&build::jcc(Cond::E, ".L")).unwrap(), (2, 6));
    }
}
