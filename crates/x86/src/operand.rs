//! Instruction operands: immediates, registers, memory references, labels.
//!
//! Operands are stored in AT&T order (sources first, destination last), the
//! same convention the assembly text uses.

use std::fmt;

use crate::reg::Reg;
use crate::sym::Sym;

/// Displacement part of a memory operand.
///
/// `None` and `Imm(0)` encode the same address but are kept distinct so that
/// textual round-trips preserve the encoding the author chose: `0(%rax)`
/// keeps its explicit zero displacement byte, which matters when an exact
/// instruction *length* was intended (multi-byte NOPs, alignment padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Disp {
    /// No displacement written.
    #[default]
    None,
    /// Constant displacement.
    Imm(i64),
    /// Symbolic displacement (`foo`, `foo+8`), resolved by linker or by the
    /// relaxation pass for local labels.
    Symbol {
        /// Symbol or label name (interned).
        name: Sym,
        /// Constant addend.
        addend: i64,
    },
}

impl Disp {
    /// The constant value if this displacement is numeric (treating `None`
    /// as zero), or `None` if symbolic.
    pub fn constant(&self) -> Option<i64> {
        match self {
            Disp::None => Some(0),
            Disp::Imm(v) => Some(*v),
            Disp::Symbol { .. } => None,
        }
    }

    /// Is there anything to print before the parenthesis?
    pub fn is_present(&self) -> bool {
        !matches!(self, Disp::None)
    }
}

impl fmt::Display for Disp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disp::None => Ok(()),
            Disp::Imm(v) => write!(f, "{v}"),
            Disp::Symbol { name, addend } => {
                write!(f, "{name}")?;
                if *addend != 0 {
                    write!(f, "{addend:+}")?;
                }
                Ok(())
            }
        }
    }
}

/// A memory operand: `disp(base, index, scale)` in AT&T syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mem {
    /// Displacement.
    pub disp: Disp,
    /// Base register (may be `%rip` for RIP-relative addressing).
    pub base: Option<Reg>,
    /// Index register (never `%rsp`/`%rip`).
    pub index: Option<Reg>,
    /// Scale factor: 1, 2, 4 or 8.
    pub scale: u8,
}

impl Mem {
    /// Absolute (displacement-only) address.
    pub fn abs(disp: i64) -> Mem {
        Mem {
            disp: Disp::Imm(disp),
            base: None,
            index: None,
            scale: 1,
        }
    }

    /// `disp(base)` form.
    pub fn base_disp(base: Reg, disp: i64) -> Mem {
        Mem {
            disp: if disp == 0 {
                Disp::None
            } else {
                Disp::Imm(disp)
            },
            base: Some(base),
            index: None,
            scale: 1,
        }
    }

    /// `disp(base,index,scale)` form.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> Mem {
        Mem {
            disp: if disp == 0 {
                Disp::None
            } else {
                Disp::Imm(disp)
            },
            base: Some(base),
            index: Some(index),
            scale,
        }
    }

    /// RIP-relative reference to a symbol.
    pub fn rip_relative(symbol: &str) -> Mem {
        Mem {
            disp: Disp::Symbol {
                name: Sym::intern(symbol),
                addend: 0,
            },
            base: Some(crate::reg::Reg::q(crate::reg::RegId::Rip)),
            index: None,
            scale: 1,
        }
    }

    /// Registers read when computing the effective address.
    pub fn regs_used(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Is this a RIP-relative reference?
    pub fn is_rip_relative(&self) -> bool {
        self.base.is_some_and(|r| r.id == crate::reg::RegId::Rip)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.disp)?;
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some(i) = self.index {
                write!(f, ",{i},{}", self.scale)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An instruction operand.
///
/// Every payload is plain-old-data (symbols are interned [`Sym`] ids), so
/// operands are `Copy` and an operand list can live inline in its
/// instruction — see [`Operands`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Immediate (`$imm`). Symbolic immediates (`$sym`) are not modeled.
    Imm(i64),
    /// Register.
    Reg(Reg),
    /// Memory reference.
    Mem(Mem),
    /// Direct code label or symbol (branch/call target, e.g. `jmp .L5`).
    Label(Sym),
    /// Indirect register target (`call *%rax`).
    IndirectReg(Reg),
    /// Indirect memory target (`jmp *table(,%rax,8)`).
    IndirectMem(Mem),
}

impl Operand {
    /// Register payload, if this is a plain register operand.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Immediate payload, if this is an immediate operand.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// Memory payload, if this is a (direct) memory operand.
    pub fn mem(&self) -> Option<&Mem> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Label payload, if this is a direct label operand.
    pub fn label(&self) -> Option<&str> {
        match self {
            Operand::Label(l) => Some(l.as_str()),
            _ => None,
        }
    }

    /// Is this operand a memory reference (direct or indirect)?
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_) | Operand::IndirectMem(_))
    }

    /// Registers read to evaluate this operand *as a source or address*
    /// (for a register operand this is the register itself; note the caller
    /// decides whether a register destination is read).
    pub fn regs_read(&self) -> Vec<Reg> {
        match self {
            Operand::Imm(_) | Operand::Label(_) => Vec::new(),
            Operand::Reg(r) | Operand::IndirectReg(r) => vec![*r],
            Operand::Mem(m) | Operand::IndirectMem(m) => m.regs_used().collect(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Label(l) => write!(f, "{l}"),
            Operand::IndirectReg(r) => write!(f, "*{r}"),
            Operand::IndirectMem(m) => write!(f, "*{m}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

/// Inline capacity of [`Operands`]. Three covers every real x86 form
/// (`imul $imm, src, dst` is the widest); longer lists spill to the heap.
const OPERANDS_INLINE: usize = 3;

#[derive(Clone)]
enum OperandsRepr {
    /// `len` live operands at the front of the buffer. Slots past `len` are
    /// uninitialized — `Operand` is `Copy` (no drop glue), so leaving them
    /// untouched is sound and skips a per-instruction buffer memset.
    Inline(u8, [std::mem::MaybeUninit<Operand>; OPERANDS_INLINE]),
    /// Spilled list (only for instructions with more operands than the
    /// inline buffer holds — snapshot decoding caps the count at 8).
    Heap(Vec<Operand>),
}

/// An instruction's operand list, stored inline in the instruction.
///
/// Parsing and snapshot decoding construct one of these per instruction, so
/// the common ≤3-operand case must not heap-allocate: operands are `Copy`
/// and live in a fixed inline buffer, spilling to a `Vec` only for
/// degenerate long lists. The type derefs to `[Operand]` and compares,
/// hashes and prints exactly like the `Vec<Operand>` it replaced —
/// representation (inline vs. spilled) is never observable.
#[derive(Clone)]
pub struct Operands(OperandsRepr);

impl Operands {
    /// Empty list (no allocation, no buffer initialization).
    pub const fn new() -> Operands {
        Operands(OperandsRepr::Inline(
            0,
            [std::mem::MaybeUninit::uninit(); OPERANDS_INLINE],
        ))
    }

    /// Append an operand, spilling to the heap past the inline capacity.
    #[inline]
    pub fn push(&mut self, op: Operand) {
        match &mut self.0 {
            OperandsRepr::Inline(len, buf) => {
                let n = *len as usize;
                if n < OPERANDS_INLINE {
                    buf[n].write(op);
                    *len = (n + 1) as u8;
                } else {
                    let mut spilled = Vec::with_capacity(OPERANDS_INLINE + 1);
                    // SAFETY: n == OPERANDS_INLINE, so every inline slot has
                    // been written.
                    let init: &[Operand] =
                        unsafe { std::slice::from_raw_parts(buf.as_ptr().cast(), OPERANDS_INLINE) };
                    spilled.extend_from_slice(init);
                    spilled.push(op);
                    self.0 = OperandsRepr::Heap(spilled);
                }
            }
            OperandsRepr::Heap(v) => v.push(op),
        }
    }

    /// The operands as a slice (also available through deref).
    #[inline]
    pub fn as_slice(&self) -> &[Operand] {
        match &self.0 {
            // SAFETY: the first `len` slots are always initialized — `push`
            // writes slot `len` before incrementing, and `len` never exceeds
            // the number of written slots.
            OperandsRepr::Inline(len, buf) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr().cast(), *len as usize)
            },
            OperandsRepr::Heap(v) => v,
        }
    }

    /// Mutable slice over the operands (length cannot change through it).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Operand] {
        match &mut self.0 {
            // SAFETY: as in `as_slice`; `Operand` is `Copy`, so overwriting
            // through the slice needs no drop glue.
            OperandsRepr::Inline(len, buf) => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast(), *len as usize)
            },
            OperandsRepr::Heap(v) => v,
        }
    }
}

impl Default for Operands {
    fn default() -> Operands {
        Operands::new()
    }
}

impl std::ops::Deref for Operands {
    type Target = [Operand];
    fn deref(&self) -> &[Operand] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Operands {
    fn deref_mut(&mut self) -> &mut [Operand] {
        self.as_mut_slice()
    }
}

impl From<Vec<Operand>> for Operands {
    fn from(v: Vec<Operand>) -> Operands {
        if v.len() <= OPERANDS_INLINE {
            let mut buf = [std::mem::MaybeUninit::uninit(); OPERANDS_INLINE];
            for (slot, &op) in buf.iter_mut().zip(&v) {
                slot.write(op);
            }
            Operands(OperandsRepr::Inline(v.len() as u8, buf))
        } else {
            Operands(OperandsRepr::Heap(v))
        }
    }
}

impl<const N: usize> From<[Operand; N]> for Operands {
    fn from(ops: [Operand; N]) -> Operands {
        let mut out = Operands::new();
        for op in ops {
            out.push(op);
        }
        out
    }
}

impl FromIterator<Operand> for Operands {
    fn from_iter<I: IntoIterator<Item = Operand>>(iter: I) -> Operands {
        let mut out = Operands::new();
        for op in iter {
            out.push(op);
        }
        out
    }
}

impl<'a> IntoIterator for &'a Operands {
    type Item = &'a Operand;
    type IntoIter = std::slice::Iter<'a, Operand>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut Operands {
    type Item = &'a mut Operand;
    type IntoIter = std::slice::IterMut<'a, Operand>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

// Equality, hashing and debug all go through the slice view, so an inline
// list and a spilled list with the same operands are indistinguishable (and
// hash identically to the `Vec<Operand>` this type replaced).
impl PartialEq for Operands {
    fn eq(&self, other: &Operands) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Operands {}

impl std::hash::Hash for Operands {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Operands {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Reg, RegId};

    #[test]
    fn mem_display() {
        let m = Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 1);
        assert_eq!(m.to_string(), "1(%rdi,%r8,4)");
        let m = Mem::base_disp(Reg::q(RegId::Rbp), -4);
        assert_eq!(m.to_string(), "-4(%rbp)");
        let m = Mem::base_disp(Reg::q(RegId::Rax), 0);
        assert_eq!(m.to_string(), "(%rax)");
        let m = Mem::abs(4096);
        assert_eq!(m.to_string(), "4096");
    }

    #[test]
    fn explicit_zero_disp_is_preserved() {
        let m = Mem {
            disp: Disp::Imm(0),
            base: Some(Reg::q(RegId::Rax)),
            index: None,
            scale: 1,
        };
        assert_eq!(m.to_string(), "0(%rax)");
        assert_ne!(m, Mem::base_disp(Reg::q(RegId::Rax), 0));
        assert_eq!(m.disp.constant(), Some(0));
    }

    #[test]
    fn rip_relative() {
        let m = Mem::rip_relative("foo");
        assert_eq!(m.to_string(), "foo(%rip)");
        assert!(m.is_rip_relative());
    }

    #[test]
    fn symbol_addend_display() {
        let d = Disp::Symbol {
            name: "tbl".into(),
            addend: 8,
        };
        assert_eq!(d.to_string(), "tbl+8");
        assert_eq!(d.constant(), None);
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Imm(-5).to_string(), "$-5");
        assert_eq!(Operand::Label(".L5".into()).to_string(), ".L5");
        assert_eq!(
            Operand::IndirectReg(Reg::q(RegId::Rax)).to_string(),
            "*%rax"
        );
    }

    #[test]
    fn regs_read() {
        let m = Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 0);
        let op = Operand::Mem(m);
        let regs = op.regs_read();
        assert_eq!(regs.len(), 2);
        assert!(op.is_mem());
    }
}
