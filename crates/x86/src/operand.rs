//! Instruction operands: immediates, registers, memory references, labels.
//!
//! Operands are stored in AT&T order (sources first, destination last), the
//! same convention the assembly text uses.

use std::fmt;

use crate::reg::Reg;

/// Displacement part of a memory operand.
///
/// `None` and `Imm(0)` encode the same address but are kept distinct so that
/// textual round-trips preserve the encoding the author chose: `0(%rax)`
/// keeps its explicit zero displacement byte, which matters when an exact
/// instruction *length* was intended (multi-byte NOPs, alignment padding).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Disp {
    /// No displacement written.
    #[default]
    None,
    /// Constant displacement.
    Imm(i64),
    /// Symbolic displacement (`foo`, `foo+8`), resolved by linker or by the
    /// relaxation pass for local labels.
    Symbol {
        /// Symbol or label name.
        name: String,
        /// Constant addend.
        addend: i64,
    },
}

impl Disp {
    /// The constant value if this displacement is numeric (treating `None`
    /// as zero), or `None` if symbolic.
    pub fn constant(&self) -> Option<i64> {
        match self {
            Disp::None => Some(0),
            Disp::Imm(v) => Some(*v),
            Disp::Symbol { .. } => None,
        }
    }

    /// Is there anything to print before the parenthesis?
    pub fn is_present(&self) -> bool {
        !matches!(self, Disp::None)
    }
}

impl fmt::Display for Disp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disp::None => Ok(()),
            Disp::Imm(v) => write!(f, "{v}"),
            Disp::Symbol { name, addend } => {
                write!(f, "{name}")?;
                if *addend != 0 {
                    write!(f, "{addend:+}")?;
                }
                Ok(())
            }
        }
    }
}

/// A memory operand: `disp(base, index, scale)` in AT&T syntax.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Mem {
    /// Displacement.
    pub disp: Disp,
    /// Base register (may be `%rip` for RIP-relative addressing).
    pub base: Option<Reg>,
    /// Index register (never `%rsp`/`%rip`).
    pub index: Option<Reg>,
    /// Scale factor: 1, 2, 4 or 8.
    pub scale: u8,
}

impl Mem {
    /// Absolute (displacement-only) address.
    pub fn abs(disp: i64) -> Mem {
        Mem {
            disp: Disp::Imm(disp),
            base: None,
            index: None,
            scale: 1,
        }
    }

    /// `disp(base)` form.
    pub fn base_disp(base: Reg, disp: i64) -> Mem {
        Mem {
            disp: if disp == 0 {
                Disp::None
            } else {
                Disp::Imm(disp)
            },
            base: Some(base),
            index: None,
            scale: 1,
        }
    }

    /// `disp(base,index,scale)` form.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> Mem {
        Mem {
            disp: if disp == 0 {
                Disp::None
            } else {
                Disp::Imm(disp)
            },
            base: Some(base),
            index: Some(index),
            scale,
        }
    }

    /// RIP-relative reference to a symbol.
    pub fn rip_relative(symbol: &str) -> Mem {
        Mem {
            disp: Disp::Symbol {
                name: symbol.to_string(),
                addend: 0,
            },
            base: Some(crate::reg::Reg::q(crate::reg::RegId::Rip)),
            index: None,
            scale: 1,
        }
    }

    /// Registers read when computing the effective address.
    pub fn regs_used(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Is this a RIP-relative reference?
    pub fn is_rip_relative(&self) -> bool {
        self.base.is_some_and(|r| r.id == crate::reg::RegId::Rip)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.disp)?;
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some(i) = self.index {
                write!(f, ",{i},{}", self.scale)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An instruction operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Immediate (`$imm`). Symbolic immediates (`$sym`) are not modeled.
    Imm(i64),
    /// Register.
    Reg(Reg),
    /// Memory reference.
    Mem(Mem),
    /// Direct code label or symbol (branch/call target, e.g. `jmp .L5`).
    Label(String),
    /// Indirect register target (`call *%rax`).
    IndirectReg(Reg),
    /// Indirect memory target (`jmp *table(,%rax,8)`).
    IndirectMem(Mem),
}

impl Operand {
    /// Register payload, if this is a plain register operand.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Immediate payload, if this is an immediate operand.
    pub fn imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// Memory payload, if this is a (direct) memory operand.
    pub fn mem(&self) -> Option<&Mem> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Label payload, if this is a direct label operand.
    pub fn label(&self) -> Option<&str> {
        match self {
            Operand::Label(l) => Some(l),
            _ => None,
        }
    }

    /// Is this operand a memory reference (direct or indirect)?
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_) | Operand::IndirectMem(_))
    }

    /// Registers read to evaluate this operand *as a source or address*
    /// (for a register operand this is the register itself; note the caller
    /// decides whether a register destination is read).
    pub fn regs_read(&self) -> Vec<Reg> {
        match self {
            Operand::Imm(_) | Operand::Label(_) => Vec::new(),
            Operand::Reg(r) | Operand::IndirectReg(r) => vec![*r],
            Operand::Mem(m) | Operand::IndirectMem(m) => m.regs_used().collect(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Label(l) => write!(f, "{l}"),
            Operand::IndirectReg(r) => write!(f, "*{r}"),
            Operand::IndirectMem(m) => write!(f, "*{m}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Reg, RegId};

    #[test]
    fn mem_display() {
        let m = Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 1);
        assert_eq!(m.to_string(), "1(%rdi,%r8,4)");
        let m = Mem::base_disp(Reg::q(RegId::Rbp), -4);
        assert_eq!(m.to_string(), "-4(%rbp)");
        let m = Mem::base_disp(Reg::q(RegId::Rax), 0);
        assert_eq!(m.to_string(), "(%rax)");
        let m = Mem::abs(4096);
        assert_eq!(m.to_string(), "4096");
    }

    #[test]
    fn explicit_zero_disp_is_preserved() {
        let m = Mem {
            disp: Disp::Imm(0),
            base: Some(Reg::q(RegId::Rax)),
            index: None,
            scale: 1,
        };
        assert_eq!(m.to_string(), "0(%rax)");
        assert_ne!(m, Mem::base_disp(Reg::q(RegId::Rax), 0));
        assert_eq!(m.disp.constant(), Some(0));
    }

    #[test]
    fn rip_relative() {
        let m = Mem::rip_relative("foo");
        assert_eq!(m.to_string(), "foo(%rip)");
        assert!(m.is_rip_relative());
    }

    #[test]
    fn symbol_addend_display() {
        let d = Disp::Symbol {
            name: "tbl".into(),
            addend: 8,
        };
        assert_eq!(d.to_string(), "tbl+8");
        assert_eq!(d.constant(), None);
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Imm(-5).to_string(), "$-5");
        assert_eq!(Operand::Label(".L5".into()).to_string(), ".L5");
        assert_eq!(
            Operand::IndirectReg(Reg::q(RegId::Rax)).to_string(),
            "*%rax"
        );
    }

    #[test]
    fn regs_read() {
        let m = Mem::base_index(Reg::q(RegId::Rdi), Reg::q(RegId::R8), 4, 0);
        let op = Operand::Mem(m);
        let regs = op.regs_read();
        assert_eq!(regs.len(), 2);
        assert!(op.is_mem());
    }
}
