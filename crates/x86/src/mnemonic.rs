//! Mnemonic (opcode family) model and AT&T mnemonic-string parsing.
//!
//! An AT&T mnemonic string such as `movl`, `movsbl`, `jne` or `cmovge`
//! combines an opcode family with operand-size suffixes and/or a condition
//! code. [`parse_mnemonic`] splits such a string into a [`Mnemonic`] plus the
//! explicit widths, which the parser then stores on the instruction.

use crate::flags::Cond;
use crate::reg::Width;

/// Opcode family, independent of operand size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // The variants mirror x86 mnemonics 1:1.
pub enum Mnemonic {
    // Data movement.
    Mov,
    Movabs,
    /// Sign-extending move (`movsbl`, `movswq`, `movslq`, ...).
    Movsx,
    /// Zero-extending move (`movzbl`, `movzwl`, ...).
    Movzx,
    Lea,
    Xchg,
    Push,
    Pop,
    // Integer ALU.
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
    Not,
    Neg,
    Inc,
    Dec,
    Cmp,
    Test,
    Imul,
    Mul,
    Idiv,
    Div,
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
    // Sign-extension idioms.
    /// `cltq` — sign-extend %eax into %rax (a.k.a. `cdqe`).
    Cltq,
    /// `cltd` — sign-extend %eax into %edx:%eax (a.k.a. `cdq`).
    Cltd,
    /// `cqto` — sign-extend %rax into %rdx:%rax (a.k.a. `cqo`).
    Cqto,
    /// `cwtl` — sign-extend %ax into %eax (a.k.a. `cwde`).
    Cwtl,
    // Control flow.
    Jmp,
    /// Conditional jump with the given condition.
    Jcc(Cond),
    Call,
    Ret,
    Leave,
    /// `setcc` — set byte on condition.
    Setcc(Cond),
    /// `cmovcc` — conditional move.
    Cmovcc(Cond),
    // NOP family.
    Nop,
    Pause,
    // SSE scalar / packed subset used by compiler output.
    Movss,
    Movsd,
    Movaps,
    Movapd,
    Movups,
    Movd,
    Movdq,
    Addss,
    Addsd,
    Subss,
    Subsd,
    Mulss,
    Mulsd,
    Divss,
    Divsd,
    Sqrtss,
    Sqrtsd,
    Ucomiss,
    Ucomisd,
    Comiss,
    Comisd,
    Cvtsi2ss,
    Cvtsi2sd,
    Cvttss2si,
    Cvttsd2si,
    Cvtss2sd,
    Cvtsd2ss,
    Pxor,
    Xorps,
    Xorpd,
    // Prefetch hints.
    Prefetchnta,
    Prefetcht0,
    Prefetcht1,
    Prefetcht2,
    // Misc / barriers.
    Ud2,
    Int3,
    Hlt,
    Cpuid,
    Rdtsc,
    Mfence,
    Lfence,
    Sfence,
    Endbr64,
}

impl Mnemonic {
    /// Every opcode family, with the conditional families (`jcc`, `setcc`,
    /// `cmovcc`) represented once — the side-effect table collapses all
    /// condition codes into a single entry, so one representative suffices
    /// for coverage audits. Keep in sync with the enum above.
    pub const ALL: [Mnemonic; 86] = [
        Mnemonic::Mov,
        Mnemonic::Movabs,
        Mnemonic::Movsx,
        Mnemonic::Movzx,
        Mnemonic::Lea,
        Mnemonic::Xchg,
        Mnemonic::Push,
        Mnemonic::Pop,
        Mnemonic::Add,
        Mnemonic::Adc,
        Mnemonic::Sub,
        Mnemonic::Sbb,
        Mnemonic::And,
        Mnemonic::Or,
        Mnemonic::Xor,
        Mnemonic::Not,
        Mnemonic::Neg,
        Mnemonic::Inc,
        Mnemonic::Dec,
        Mnemonic::Cmp,
        Mnemonic::Test,
        Mnemonic::Imul,
        Mnemonic::Mul,
        Mnemonic::Idiv,
        Mnemonic::Div,
        Mnemonic::Shl,
        Mnemonic::Shr,
        Mnemonic::Sar,
        Mnemonic::Rol,
        Mnemonic::Ror,
        Mnemonic::Cltq,
        Mnemonic::Cltd,
        Mnemonic::Cqto,
        Mnemonic::Cwtl,
        Mnemonic::Jmp,
        Mnemonic::Jcc(Cond::E),
        Mnemonic::Call,
        Mnemonic::Ret,
        Mnemonic::Leave,
        Mnemonic::Setcc(Cond::E),
        Mnemonic::Cmovcc(Cond::E),
        Mnemonic::Nop,
        Mnemonic::Pause,
        Mnemonic::Movss,
        Mnemonic::Movsd,
        Mnemonic::Movaps,
        Mnemonic::Movapd,
        Mnemonic::Movups,
        Mnemonic::Movd,
        Mnemonic::Movdq,
        Mnemonic::Addss,
        Mnemonic::Addsd,
        Mnemonic::Subss,
        Mnemonic::Subsd,
        Mnemonic::Mulss,
        Mnemonic::Mulsd,
        Mnemonic::Divss,
        Mnemonic::Divsd,
        Mnemonic::Sqrtss,
        Mnemonic::Sqrtsd,
        Mnemonic::Ucomiss,
        Mnemonic::Ucomisd,
        Mnemonic::Comiss,
        Mnemonic::Comisd,
        Mnemonic::Cvtsi2ss,
        Mnemonic::Cvtsi2sd,
        Mnemonic::Cvttss2si,
        Mnemonic::Cvttsd2si,
        Mnemonic::Cvtss2sd,
        Mnemonic::Cvtsd2ss,
        Mnemonic::Pxor,
        Mnemonic::Xorps,
        Mnemonic::Xorpd,
        Mnemonic::Prefetchnta,
        Mnemonic::Prefetcht0,
        Mnemonic::Prefetcht1,
        Mnemonic::Prefetcht2,
        Mnemonic::Ud2,
        Mnemonic::Int3,
        Mnemonic::Hlt,
        Mnemonic::Cpuid,
        Mnemonic::Rdtsc,
        Mnemonic::Mfence,
        Mnemonic::Lfence,
        Mnemonic::Sfence,
        Mnemonic::Endbr64,
    ];

    /// Is this an unconditional or conditional branch (`jmp`/`jcc`)?
    pub fn is_branch(self) -> bool {
        matches!(self, Mnemonic::Jmp | Mnemonic::Jcc(_))
    }

    /// Is this a conditional branch?
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Mnemonic::Jcc(_))
    }

    /// Does this mnemonic end a basic block (branch, call-return edge,
    /// return, trap)?
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Mnemonic::Jmp
                | Mnemonic::Jcc(_)
                | Mnemonic::Call
                | Mnemonic::Ret
                | Mnemonic::Ud2
                | Mnemonic::Hlt
                | Mnemonic::Int3
        )
    }

    /// The condition code carried by `jcc`/`setcc`/`cmovcc`.
    pub fn cond(self) -> Option<Cond> {
        match self {
            Mnemonic::Jcc(c) | Mnemonic::Setcc(c) | Mnemonic::Cmovcc(c) => Some(c),
            _ => None,
        }
    }

    /// Stable numeric code for the binary IR snapshot format.
    ///
    /// Non-conditional mnemonics use their index in [`Mnemonic::ALL`]
    /// (append-only by convention; the snapshot version must be bumped if
    /// the order ever changes). Conditional families put the family in the
    /// high byte and the hardware condition nibble in the low byte, so every
    /// `(family, cond)` pair gets a distinct code.
    pub fn snapshot_code(self) -> u16 {
        match self {
            Mnemonic::Jcc(c) => 0x100 | u16::from(c.encoding()),
            Mnemonic::Setcc(c) => 0x200 | u16::from(c.encoding()),
            Mnemonic::Cmovcc(c) => 0x300 | u16::from(c.encoding()),
            other => {
                static INDEX: std::sync::OnceLock<std::collections::HashMap<Mnemonic, u16>> =
                    std::sync::OnceLock::new();
                let map = INDEX.get_or_init(|| {
                    Mnemonic::ALL
                        .iter()
                        .enumerate()
                        .map(|(i, &m)| (m, i as u16))
                        .collect()
                });
                *map.get(&other)
                    .expect("mnemonic missing from Mnemonic::ALL")
            }
        }
    }

    /// Inverse of [`Mnemonic::snapshot_code`].
    pub fn from_snapshot_code(code: u16) -> Option<Mnemonic> {
        let cond = |code: u16| Cond::ALL.get((code & 0xff) as usize).copied();
        match code & 0xff00 {
            0x100 => cond(code).map(Mnemonic::Jcc),
            0x200 => cond(code).map(Mnemonic::Setcc),
            0x300 => cond(code).map(Mnemonic::Cmovcc),
            0x000 => Mnemonic::ALL
                .get(code as usize)
                .copied()
                .filter(|m| m.cond().is_none()),
            _ => None,
        }
    }

    /// Replace the condition code of a conditional mnemonic.
    pub fn with_cond(self, c: Cond) -> Mnemonic {
        match self {
            Mnemonic::Jcc(_) => Mnemonic::Jcc(c),
            Mnemonic::Setcc(_) => Mnemonic::Setcc(c),
            Mnemonic::Cmovcc(_) => Mnemonic::Cmovcc(c),
            other => other,
        }
    }

    /// The AT&T base name, without size suffixes but including the condition
    /// code for conditional mnemonics.
    pub fn att_base(self) -> String {
        match self {
            Mnemonic::Jcc(c) => format!("j{}", c.att_suffix()),
            Mnemonic::Setcc(c) => format!("set{}", c.att_suffix()),
            Mnemonic::Cmovcc(c) => format!("cmov{}", c.att_suffix()),
            other => fixed_name(other).to_string(),
        }
    }

    /// Does this mnemonic take an AT&T operand-size suffix (`b`/`w`/`l`/`q`)?
    pub fn takes_size_suffix(self) -> bool {
        matches!(
            self,
            Mnemonic::Mov
                | Mnemonic::Movabs
                | Mnemonic::Xchg
                | Mnemonic::Push
                | Mnemonic::Pop
                | Mnemonic::Add
                | Mnemonic::Adc
                | Mnemonic::Sub
                | Mnemonic::Sbb
                | Mnemonic::And
                | Mnemonic::Or
                | Mnemonic::Xor
                | Mnemonic::Not
                | Mnemonic::Neg
                | Mnemonic::Inc
                | Mnemonic::Dec
                | Mnemonic::Cmp
                | Mnemonic::Test
                | Mnemonic::Imul
                | Mnemonic::Mul
                | Mnemonic::Idiv
                | Mnemonic::Div
                | Mnemonic::Shl
                | Mnemonic::Shr
                | Mnemonic::Sar
                | Mnemonic::Rol
                | Mnemonic::Ror
                | Mnemonic::Lea
                | Mnemonic::Nop
                | Mnemonic::Cmovcc(_)
        )
    }
}

/// Result of parsing an AT&T mnemonic string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedMnemonic {
    /// The opcode family.
    pub mnemonic: Mnemonic,
    /// Explicit operand (destination) width from the suffix, if any.
    pub op_width: Option<Width>,
    /// Explicit source width (only for `movsx`/`movzx`, whose AT&T suffix
    /// carries two widths, e.g. `movsbl` = byte -> long).
    pub src_width: Option<Width>,
}

impl ParsedMnemonic {
    fn plain(mnemonic: Mnemonic) -> ParsedMnemonic {
        ParsedMnemonic {
            mnemonic,
            op_width: None,
            src_width: None,
        }
    }
}

fn fixed_name(m: Mnemonic) -> &'static str {
    match m {
        Mnemonic::Mov => "mov",
        Mnemonic::Movabs => "movabs",
        Mnemonic::Movsx => "movs",
        Mnemonic::Movzx => "movz",
        Mnemonic::Lea => "lea",
        Mnemonic::Xchg => "xchg",
        Mnemonic::Push => "push",
        Mnemonic::Pop => "pop",
        Mnemonic::Add => "add",
        Mnemonic::Adc => "adc",
        Mnemonic::Sub => "sub",
        Mnemonic::Sbb => "sbb",
        Mnemonic::And => "and",
        Mnemonic::Or => "or",
        Mnemonic::Xor => "xor",
        Mnemonic::Not => "not",
        Mnemonic::Neg => "neg",
        Mnemonic::Inc => "inc",
        Mnemonic::Dec => "dec",
        Mnemonic::Cmp => "cmp",
        Mnemonic::Test => "test",
        Mnemonic::Imul => "imul",
        Mnemonic::Mul => "mul",
        Mnemonic::Idiv => "idiv",
        Mnemonic::Div => "div",
        Mnemonic::Shl => "shl",
        Mnemonic::Shr => "shr",
        Mnemonic::Sar => "sar",
        Mnemonic::Rol => "rol",
        Mnemonic::Ror => "ror",
        Mnemonic::Cltq => "cltq",
        Mnemonic::Cltd => "cltd",
        Mnemonic::Cqto => "cqto",
        Mnemonic::Cwtl => "cwtl",
        Mnemonic::Jmp => "jmp",
        Mnemonic::Call => "call",
        Mnemonic::Ret => "ret",
        Mnemonic::Leave => "leave",
        Mnemonic::Nop => "nop",
        Mnemonic::Pause => "pause",
        Mnemonic::Movss => "movss",
        Mnemonic::Movsd => "movsd",
        Mnemonic::Movaps => "movaps",
        Mnemonic::Movapd => "movapd",
        Mnemonic::Movups => "movups",
        Mnemonic::Movd => "movd",
        Mnemonic::Movdq => "movq",
        Mnemonic::Addss => "addss",
        Mnemonic::Addsd => "addsd",
        Mnemonic::Subss => "subss",
        Mnemonic::Subsd => "subsd",
        Mnemonic::Mulss => "mulss",
        Mnemonic::Mulsd => "mulsd",
        Mnemonic::Divss => "divss",
        Mnemonic::Divsd => "divsd",
        Mnemonic::Sqrtss => "sqrtss",
        Mnemonic::Sqrtsd => "sqrtsd",
        Mnemonic::Ucomiss => "ucomiss",
        Mnemonic::Ucomisd => "ucomisd",
        Mnemonic::Comiss => "comiss",
        Mnemonic::Comisd => "comisd",
        Mnemonic::Cvtsi2ss => "cvtsi2ss",
        Mnemonic::Cvtsi2sd => "cvtsi2sd",
        Mnemonic::Cvttss2si => "cvttss2si",
        Mnemonic::Cvttsd2si => "cvttsd2si",
        Mnemonic::Cvtss2sd => "cvtss2sd",
        Mnemonic::Cvtsd2ss => "cvtsd2ss",
        Mnemonic::Pxor => "pxor",
        Mnemonic::Xorps => "xorps",
        Mnemonic::Xorpd => "xorpd",
        Mnemonic::Prefetchnta => "prefetchnta",
        Mnemonic::Prefetcht0 => "prefetcht0",
        Mnemonic::Prefetcht1 => "prefetcht1",
        Mnemonic::Prefetcht2 => "prefetcht2",
        Mnemonic::Ud2 => "ud2",
        Mnemonic::Int3 => "int3",
        Mnemonic::Hlt => "hlt",
        Mnemonic::Cpuid => "cpuid",
        Mnemonic::Rdtsc => "rdtsc",
        Mnemonic::Mfence => "mfence",
        Mnemonic::Lfence => "lfence",
        Mnemonic::Sfence => "sfence",
        Mnemonic::Endbr64 => "endbr64",
        Mnemonic::Jcc(_) | Mnemonic::Setcc(_) | Mnemonic::Cmovcc(_) => {
            unreachable!("conditional mnemonics have no fixed name")
        }
    }
}

/// Mnemonics that exist only without a size suffix (exact-match table).
/// Checked *before* suffix stripping so that e.g. `call` is not parsed as
/// `cal` + `l`, or `movsd` as `movs` + `d`.
fn exact_table(name: &str) -> Option<Mnemonic> {
    Some(match name {
        "movabs" => Mnemonic::Movabs,
        "lea" => Mnemonic::Lea,
        "call" | "callq" => Mnemonic::Call,
        "jmpq" => Mnemonic::Jmp,
        "ret" | "retq" => Mnemonic::Ret,
        "leave" | "leaveq" => Mnemonic::Leave,
        "jmp" => Mnemonic::Jmp,
        "cltq" | "cdqe" => Mnemonic::Cltq,
        "cltd" | "cdq" => Mnemonic::Cltd,
        "cqto" | "cqo" => Mnemonic::Cqto,
        "cwtl" | "cwde" => Mnemonic::Cwtl,
        "nop" => Mnemonic::Nop,
        "pause" => Mnemonic::Pause,
        "movss" => Mnemonic::Movss,
        "movsd" => Mnemonic::Movsd,
        "movaps" => Mnemonic::Movaps,
        "movapd" => Mnemonic::Movapd,
        "movups" => Mnemonic::Movups,
        "movd" => Mnemonic::Movd,
        "addss" => Mnemonic::Addss,
        "addsd" => Mnemonic::Addsd,
        "subss" => Mnemonic::Subss,
        "subsd" => Mnemonic::Subsd,
        "mulss" => Mnemonic::Mulss,
        "mulsd" => Mnemonic::Mulsd,
        "divss" => Mnemonic::Divss,
        "divsd" => Mnemonic::Divsd,
        "sqrtss" => Mnemonic::Sqrtss,
        "sqrtsd" => Mnemonic::Sqrtsd,
        "ucomiss" => Mnemonic::Ucomiss,
        "ucomisd" => Mnemonic::Ucomisd,
        "comiss" => Mnemonic::Comiss,
        "comisd" => Mnemonic::Comisd,
        "cvtss2sd" => Mnemonic::Cvtss2sd,
        "cvtsd2ss" => Mnemonic::Cvtsd2ss,
        "pxor" => Mnemonic::Pxor,
        "xorps" => Mnemonic::Xorps,
        "xorpd" => Mnemonic::Xorpd,
        "prefetchnta" => Mnemonic::Prefetchnta,
        "prefetcht0" => Mnemonic::Prefetcht0,
        "prefetcht1" => Mnemonic::Prefetcht1,
        "prefetcht2" => Mnemonic::Prefetcht2,
        "ud2" => Mnemonic::Ud2,
        "int3" => Mnemonic::Int3,
        "hlt" => Mnemonic::Hlt,
        "cpuid" => Mnemonic::Cpuid,
        "rdtsc" => Mnemonic::Rdtsc,
        "mfence" => Mnemonic::Mfence,
        "lfence" => Mnemonic::Lfence,
        "sfence" => Mnemonic::Sfence,
        "endbr64" => Mnemonic::Endbr64,
        _ => return None,
    })
}

/// Base mnemonics that accept an optional `b`/`w`/`l`/`q` size suffix.
fn suffixed_table(base: &str) -> Option<Mnemonic> {
    Some(match base {
        "mov" => Mnemonic::Mov,
        "xchg" => Mnemonic::Xchg,
        "push" => Mnemonic::Push,
        "pop" => Mnemonic::Pop,
        "add" => Mnemonic::Add,
        "adc" => Mnemonic::Adc,
        "sub" => Mnemonic::Sub,
        "sbb" => Mnemonic::Sbb,
        "and" => Mnemonic::And,
        "or" => Mnemonic::Or,
        "xor" => Mnemonic::Xor,
        "not" => Mnemonic::Not,
        "neg" => Mnemonic::Neg,
        "inc" => Mnemonic::Inc,
        "dec" => Mnemonic::Dec,
        "cmp" => Mnemonic::Cmp,
        "test" => Mnemonic::Test,
        "imul" => Mnemonic::Imul,
        "mul" => Mnemonic::Mul,
        "idiv" => Mnemonic::Idiv,
        "div" => Mnemonic::Div,
        "shl" | "sal" => Mnemonic::Shl,
        "shr" => Mnemonic::Shr,
        "sar" => Mnemonic::Sar,
        "rol" => Mnemonic::Rol,
        "ror" => Mnemonic::Ror,
        "lea" => Mnemonic::Lea,
        "nop" => Mnemonic::Nop,
        "movabs" => Mnemonic::Movabs,
        "cvtsi2ss" => Mnemonic::Cvtsi2ss,
        "cvtsi2sd" => Mnemonic::Cvtsi2sd,
        "cvttss2si" => Mnemonic::Cvttss2si,
        "cvttsd2si" => Mnemonic::Cvttsd2si,
        _ => return None,
    })
}

/// Parse an AT&T mnemonic string into its opcode family and explicit widths.
///
/// Returns `None` for mnemonics outside the supported subset.
///
/// # Examples
///
/// ```
/// use mao_x86::mnemonic::{parse_mnemonic, Mnemonic};
/// use mao_x86::reg::Width;
///
/// let p = parse_mnemonic("movsbl").unwrap();
/// assert_eq!(p.mnemonic, Mnemonic::Movsx);
/// assert_eq!(p.src_width, Some(Width::B1));
/// assert_eq!(p.op_width, Some(Width::B4));
/// ```
pub fn parse_mnemonic(name: &str) -> Option<ParsedMnemonic> {
    // Fast front table: common spellings resolve with one hash probe over
    // the name packed into a u64. The table memoizes the probe chain below
    // (it is built by calling it), so the two can never disagree; misses
    // fall through to the full chain.
    if let Some(v) = pack_mnemonic(name.as_bytes()) {
        let table = mnemonic_fast_table();
        let mut slot = mnemonic_slot(v);
        loop {
            let (k, p) = table[slot];
            if k == v {
                return Some(p);
            }
            if k == 0 {
                break;
            }
            slot = (slot + 1) % MNEMONIC_FAST_SLOTS;
        }
    }
    parse_mnemonic_uncached(name)
}

/// Spellings memoized in the fast front table: everything a compiler emits
/// at volume. Unknown or rare spellings just miss into the full chain.
const COMMON_SPELLINGS: &[&str] = &[
    "mov", "movq", "movl", "movw", "movb", "movabsq", "lea", "leaq", "leal", "add", "addq", "addl",
    "addw", "addb", "sub", "subq", "subl", "subw", "subb", "imul", "imulq", "imull", "mulq",
    "mull", "idivq", "idivl", "divq", "divl", "and", "andq", "andl", "andb", "or", "orq", "orl",
    "orb", "xor", "xorq", "xorl", "xorb", "not", "notq", "notl", "neg", "negq", "negl", "inc",
    "incq", "incl", "dec", "decq", "decl", "shl", "shlq", "shll", "shr", "shrq", "shrl", "sar",
    "sarq", "sarl", "sal", "salq", "sall", "rol", "rolq", "ror", "rorq", "cmp", "cmpq", "cmpl",
    "cmpw", "cmpb", "test", "testq", "testl", "testw", "testb", "push", "pushq", "pop", "popq",
    "call", "ret", "leave", "nop", "jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl", "jle", "ja",
    "jae", "jb", "jbe", "js", "jns", "jo", "jno", "jc", "jnc", "sete", "setne", "setg", "setge",
    "setl", "setle", "seta", "setae", "setb", "setbe", "cmove", "cmovne", "cmovg", "cmovge",
    "cmovl", "cmovle", "cmova", "cmovb", "movzbl", "movzbq", "movzwl", "movzwq", "movsbl",
    "movsbq", "movswl", "movswq", "movslq", "cltq", "cqto", "cdq", "cwtl",
];

const MNEMONIC_FAST_SLOTS: usize = 512;

/// Pack a ≤8-byte spelling into a nonzero u64 key.
#[inline]
fn pack_mnemonic(b: &[u8]) -> Option<u64> {
    if b.is_empty() || b.len() > 8 {
        return None;
    }
    let mut v = 0u64;
    for (i, &c) in b.iter().enumerate() {
        v |= u64::from(c) << (8 * i as u32);
    }
    Some(v)
}

#[inline]
fn mnemonic_slot(v: u64) -> usize {
    (v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 55) as usize % MNEMONIC_FAST_SLOTS
}

static MNEMONIC_FAST: std::sync::OnceLock<[(u64, ParsedMnemonic); MNEMONIC_FAST_SLOTS]> =
    std::sync::OnceLock::new();

fn mnemonic_fast_table() -> &'static [(u64, ParsedMnemonic); MNEMONIC_FAST_SLOTS] {
    MNEMONIC_FAST.get_or_init(|| {
        let nil = ParsedMnemonic::plain(Mnemonic::Nop);
        let mut t = [(0u64, nil); MNEMONIC_FAST_SLOTS];
        for &name in COMMON_SPELLINGS {
            // Memoize the full chain's answer; spellings it rejects are
            // simply not cached.
            let Some(parsed) = parse_mnemonic_uncached(name) else {
                continue;
            };
            let v = pack_mnemonic(name.as_bytes()).expect("common spelling fits in 8 bytes");
            let mut slot = mnemonic_slot(v);
            while t[slot].0 != 0 {
                slot = (slot + 1) % MNEMONIC_FAST_SLOTS;
            }
            t[slot] = (v, parsed);
        }
        t
    })
}

fn parse_mnemonic_uncached(name: &str) -> Option<ParsedMnemonic> {
    // 1. Exact-match (unsuffixed) mnemonics, including the SSE family whose
    //    trailing letters look like size suffixes.
    if let Some(m) = exact_table(name) {
        return Some(ParsedMnemonic::plain(m));
    }

    // 2. Conditional families: jcc / setcc / cmovcc[suffix].
    if let Some(rest) = name.strip_prefix('j') {
        if let Some(c) = Cond::from_att_suffix(rest) {
            return Some(ParsedMnemonic::plain(Mnemonic::Jcc(c)));
        }
    }
    if let Some(rest) = name.strip_prefix("set") {
        if let Some(c) = Cond::from_att_suffix(rest) {
            return Some(ParsedMnemonic {
                mnemonic: Mnemonic::Setcc(c),
                op_width: Some(Width::B1),
                src_width: None,
            });
        }
    }
    if let Some(rest) = name.strip_prefix("cmov") {
        if let Some(c) = Cond::from_att_suffix(rest) {
            return Some(ParsedMnemonic::plain(Mnemonic::Cmovcc(c)));
        }
        // cmov with trailing size suffix, e.g. `cmovnel`.
        let mut chars = rest.chars();
        if let Some(last) = chars.next_back() {
            if let Some(w) = Width::from_att_suffix(last) {
                if let Some(c) = Cond::from_att_suffix(chars.as_str()) {
                    return Some(ParsedMnemonic {
                        mnemonic: Mnemonic::Cmovcc(c),
                        op_width: Some(w),
                        src_width: None,
                    });
                }
            }
        }
    }

    // 3. movs/movz two-width extension moves (movsbl, movzwq, movslq, ...).
    for (prefix, mnemonic) in [("movs", Mnemonic::Movsx), ("movz", Mnemonic::Movzx)] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let mut chars = rest.chars();
            if let (Some(a), Some(b), None) = (chars.next(), chars.next(), chars.next()) {
                if let (Some(from), Some(to)) =
                    (Width::from_att_suffix(a), Width::from_att_suffix(b))
                {
                    if from < to {
                        return Some(ParsedMnemonic {
                            mnemonic,
                            op_width: Some(to),
                            src_width: Some(from),
                        });
                    }
                }
            }
        }
    }
    if name == "movsxd" {
        return Some(ParsedMnemonic {
            mnemonic: Mnemonic::Movsx,
            op_width: Some(Width::B8),
            src_width: Some(Width::B4),
        });
    }

    // 4. Suffix-stripped base mnemonics.
    let mut chars = name.chars();
    if let Some(last) = chars.next_back() {
        if let Some(w) = Width::from_att_suffix(last) {
            if let Some(m) = suffixed_table(chars.as_str()) {
                return Some(ParsedMnemonic {
                    mnemonic: m,
                    op_width: Some(w),
                    src_width: None,
                });
            }
        }
    }

    // 5. Bare (unsuffixed) base mnemonics: width inferred from operands.
    suffixed_table(name).map(ParsedMnemonic::plain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixed_alu() {
        let p = parse_mnemonic("addl").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Add);
        assert_eq!(p.op_width, Some(Width::B4));
        let p = parse_mnemonic("subq").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Sub);
        assert_eq!(p.op_width, Some(Width::B8));
        let p = parse_mnemonic("sall").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Shl);
    }

    #[test]
    fn bare_mnemonics() {
        assert_eq!(parse_mnemonic("add").unwrap().op_width, None);
        assert_eq!(parse_mnemonic("mov").unwrap().mnemonic, Mnemonic::Mov);
    }

    #[test]
    fn call_not_suffix_stripped() {
        assert_eq!(parse_mnemonic("call").unwrap().mnemonic, Mnemonic::Call);
        assert_eq!(parse_mnemonic("callq").unwrap().mnemonic, Mnemonic::Call);
    }

    #[test]
    fn callq_suffix() {
        // gas prints `callq`/`retq` in 64-bit mode.
        assert!(parse_mnemonic("retq").is_some());
    }

    #[test]
    fn sse_not_suffix_stripped() {
        assert_eq!(parse_mnemonic("movsd").unwrap().mnemonic, Mnemonic::Movsd);
        assert_eq!(parse_mnemonic("movss").unwrap().mnemonic, Mnemonic::Movss);
        assert_eq!(parse_mnemonic("addsd").unwrap().mnemonic, Mnemonic::Addsd);
    }

    #[test]
    fn extension_moves() {
        let p = parse_mnemonic("movzbl").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Movzx);
        assert_eq!(p.src_width, Some(Width::B1));
        assert_eq!(p.op_width, Some(Width::B4));
        let p = parse_mnemonic("movslq").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Movsx);
        assert_eq!(p.src_width, Some(Width::B4));
        assert_eq!(p.op_width, Some(Width::B8));
        // Narrowing "extension" is invalid.
        assert!(parse_mnemonic("movzlb").is_none());
    }

    #[test]
    fn conditional_families() {
        assert_eq!(
            parse_mnemonic("jne").unwrap().mnemonic,
            Mnemonic::Jcc(Cond::Ne)
        );
        assert_eq!(
            parse_mnemonic("jz").unwrap().mnemonic,
            Mnemonic::Jcc(Cond::E)
        );
        let p = parse_mnemonic("sete").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Setcc(Cond::E));
        assert_eq!(p.op_width, Some(Width::B1));
        assert_eq!(
            parse_mnemonic("cmovge").unwrap().mnemonic,
            Mnemonic::Cmovcc(Cond::Ge)
        );
        let p = parse_mnemonic("cmovnel").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Cmovcc(Cond::Ne));
        assert_eq!(p.op_width, Some(Width::B4));
    }

    #[test]
    fn jmp_is_not_jcc() {
        assert_eq!(parse_mnemonic("jmp").unwrap().mnemonic, Mnemonic::Jmp);
    }

    #[test]
    fn nop_with_suffix() {
        let p = parse_mnemonic("nopw").unwrap();
        assert_eq!(p.mnemonic, Mnemonic::Nop);
        assert_eq!(p.op_width, Some(Width::B2));
    }

    #[test]
    fn unknown_rejected() {
        assert!(parse_mnemonic("frobnicate").is_none());
        assert!(parse_mnemonic("").is_none());
    }

    #[test]
    fn att_base_names() {
        assert_eq!(Mnemonic::Jcc(Cond::Ne).att_base(), "jne");
        assert_eq!(Mnemonic::Setcc(Cond::G).att_base(), "setg");
        assert_eq!(Mnemonic::Add.att_base(), "add");
        assert_eq!(Mnemonic::Cmovcc(Cond::L).att_base(), "cmovl");
    }

    #[test]
    fn cond_accessors() {
        assert_eq!(Mnemonic::Jcc(Cond::E).cond(), Some(Cond::E));
        assert_eq!(Mnemonic::Add.cond(), None);
        assert_eq!(
            Mnemonic::Jcc(Cond::E).with_cond(Cond::Ne),
            Mnemonic::Jcc(Cond::Ne)
        );
    }
}
