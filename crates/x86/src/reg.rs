//! Architectural register model for x86-64.
//!
//! Registers are identified by a *physical id* ([`RegId`], the 64-bit
//! architectural register they alias) plus an access [`Width`]. The AT&T
//! names (`%al`, `%ax`, `%eax`, `%rax`, ...) map onto `(RegId, Width)` pairs;
//! the legacy high-byte registers (`%ah`..`%bh`) are modeled with a separate
//! [`Reg::high8`] marker since they alias bits 8..16 of their parent.

use std::fmt;
use std::str::FromStr;

/// Access width of a register or operation, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit (`b` suffix).
    B1,
    /// 16-bit (`w` suffix).
    B2,
    /// 32-bit (`l` suffix).
    B4,
    /// 64-bit (`q` suffix).
    B8,
    /// 128-bit (XMM).
    B16,
}

impl Width {
    /// Number of bytes accessed.
    pub fn bytes(self) -> u8 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
            Width::B16 => 16,
        }
    }

    /// Number of bits accessed.
    pub fn bits(self) -> u32 {
        u32::from(self.bytes()) * 8
    }

    /// The AT&T operand-size suffix letter, if one exists for this width.
    pub fn att_suffix(self) -> Option<char> {
        match self {
            Width::B1 => Some('b'),
            Width::B2 => Some('w'),
            Width::B4 => Some('l'),
            Width::B8 => Some('q'),
            Width::B16 => None,
        }
    }

    /// Parse an AT&T suffix letter.
    pub fn from_att_suffix(c: char) -> Option<Width> {
        match c {
            'b' => Some(Width::B1),
            'w' => Some(Width::B2),
            'l' => Some(Width::B4),
            'q' => Some(Width::B8),
            _ => None,
        }
    }

    /// Mask covering the low `self` bytes of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::B1 => 0xff,
            Width::B2 => 0xffff,
            Width::B4 => 0xffff_ffff,
            Width::B8 | Width::B16 => u64::MAX,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// Physical register identity: the widest architectural register of an
/// aliasing group. `%eax`, `%ax`, `%al` and `%ah` all have id [`RegId::Rax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum RegId {
    Rax = 0,
    Rcx,
    Rdx,
    Rbx,
    Rsp,
    Rbp,
    Rsi,
    Rdi,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    /// Instruction pointer (only valid as a memory base, RIP-relative).
    Rip,
    Xmm0,
    Xmm1,
    Xmm2,
    Xmm3,
    Xmm4,
    Xmm5,
    Xmm6,
    Xmm7,
    Xmm8,
    Xmm9,
    Xmm10,
    Xmm11,
    Xmm12,
    Xmm13,
    Xmm14,
    Xmm15,
}

/// Total number of [`RegId`] values (for dense bitset/array indexing).
pub const NUM_REG_IDS: usize = 33;

impl RegId {
    /// All general-purpose register ids, in encoding order.
    pub const GPRS: [RegId; 16] = [
        RegId::Rax,
        RegId::Rcx,
        RegId::Rdx,
        RegId::Rbx,
        RegId::Rsp,
        RegId::Rbp,
        RegId::Rsi,
        RegId::Rdi,
        RegId::R8,
        RegId::R9,
        RegId::R10,
        RegId::R11,
        RegId::R12,
        RegId::R13,
        RegId::R14,
        RegId::R15,
    ];

    /// Dense index suitable for array/bitset indexing.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstruct a `RegId` from [`RegId::index`].
    pub fn from_index(idx: usize) -> Option<RegId> {
        if idx < NUM_REG_IDS {
            // SAFETY-free approach: match through the GPR/XMM tables.
            let all = [
                RegId::Rax,
                RegId::Rcx,
                RegId::Rdx,
                RegId::Rbx,
                RegId::Rsp,
                RegId::Rbp,
                RegId::Rsi,
                RegId::Rdi,
                RegId::R8,
                RegId::R9,
                RegId::R10,
                RegId::R11,
                RegId::R12,
                RegId::R13,
                RegId::R14,
                RegId::R15,
                RegId::Rip,
                RegId::Xmm0,
                RegId::Xmm1,
                RegId::Xmm2,
                RegId::Xmm3,
                RegId::Xmm4,
                RegId::Xmm5,
                RegId::Xmm6,
                RegId::Xmm7,
                RegId::Xmm8,
                RegId::Xmm9,
                RegId::Xmm10,
                RegId::Xmm11,
                RegId::Xmm12,
                RegId::Xmm13,
                RegId::Xmm14,
                RegId::Xmm15,
            ];
            Some(all[idx])
        } else {
            None
        }
    }

    /// True for the sixteen general-purpose registers (not RIP, not XMM).
    pub fn is_gpr(self) -> bool {
        (self as u8) < 16
    }

    /// True for the sixteen XMM registers.
    pub fn is_xmm(self) -> bool {
        (self as u8) >= RegId::Xmm0 as u8
    }

    /// Hardware encoding number (0-15) within the register file.
    ///
    /// For GPRs this is the ModRM/REX number; for XMM likewise.
    pub fn encoding(self) -> u8 {
        let v = self as u8;
        if self.is_xmm() {
            v - RegId::Xmm0 as u8
        } else {
            v
        }
    }
}

/// An architectural register reference: physical id + access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    /// Aliasing group (widest register).
    pub id: RegId,
    /// Access width.
    pub width: Width,
    /// True for the legacy high-byte registers `%ah`, `%ch`, `%dh`, `%bh`
    /// (bits 8..16 of the parent). Only meaningful when `width == B1`.
    pub high8: bool,
}

impl Reg {
    /// Construct a plain (non-high-byte) register reference.
    pub fn new(id: RegId, width: Width) -> Reg {
        Reg {
            id,
            width,
            high8: false,
        }
    }

    /// 64-bit GPR reference.
    pub fn q(id: RegId) -> Reg {
        Reg::new(id, Width::B8)
    }

    /// 32-bit GPR reference.
    pub fn l(id: RegId) -> Reg {
        Reg::new(id, Width::B4)
    }

    /// 16-bit GPR reference.
    pub fn w(id: RegId) -> Reg {
        Reg::new(id, Width::B2)
    }

    /// 8-bit (low-byte) GPR reference.
    pub fn b(id: RegId) -> Reg {
        Reg::new(id, Width::B1)
    }

    /// XMM register reference.
    pub fn xmm(n: u8) -> Reg {
        let id = RegId::from_index(RegId::Xmm0.index() + n as usize)
            .expect("xmm register number out of range");
        Reg::new(id, Width::B16)
    }

    /// Does this reference alias (overlap) `other`?
    ///
    /// All widths of the same [`RegId`] alias each other; on x86-64 a 32-bit
    /// write also zeroes the upper half, so treating any overlap as aliasing
    /// is the conservative and correct model for data-flow.
    pub fn aliases(self, other: Reg) -> bool {
        self.id == other.id
    }

    /// Does a write to this register fully define the whole 64-bit parent?
    ///
    /// True for 64-bit writes and — by the x86-64 zero-extension rule — for
    /// 32-bit writes. 8/16-bit writes merge into the old value.
    pub fn write_defines_parent(self) -> bool {
        matches!(self.width, Width::B4 | Width::B8 | Width::B16)
    }

    /// The AT&T spelling, without the `%` sigil.
    pub fn att_name(self) -> &'static str {
        att_name(self)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.att_name())
    }
}

/// Error returned when a register name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

macro_rules! reg_names {
    ($(($name:literal, $id:ident, $width:ident, $high8:literal)),+ $(,)?) => {
        fn att_name(r: Reg) -> &'static str {
            $(
                if r.id == RegId::$id && r.width == Width::$width && r.high8 == $high8 {
                    return $name;
                }
            )+
            "<invalid-reg>"
        }

        /// Every AT&T register spelling and the register it denotes.
        static REG_NAME_LIST: &[(&str, Reg)] = &[
            $(
                ($name, Reg { id: RegId::$id, width: Width::$width, high8: $high8 }),
            )+
        ];
    };
}

/// Pack a ≤8-byte name into a u64 key (little-endian, zero-padded). Every
/// register spelling fits; longer inputs are not register names.
#[inline]
fn pack_reg_name(b: &[u8]) -> Option<u64> {
    if b.is_empty() || b.len() > 8 {
        return None;
    }
    let mut v = 0u64;
    for (i, &c) in b.iter().enumerate() {
        v |= u64::from(c) << (8 * i as u32);
    }
    Some(v)
}

const REG_TABLE_SLOTS: usize = 256;

#[inline]
fn reg_slot(v: u64) -> usize {
    (v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize
}

/// Open-addressed name table keyed by the packed spelling. A key of 0 marks
/// an empty slot (no spelling packs to 0: names are non-empty ASCII).
static REG_TABLE: std::sync::OnceLock<[(u64, Reg); REG_TABLE_SLOTS]> = std::sync::OnceLock::new();

fn reg_table() -> &'static [(u64, Reg); REG_TABLE_SLOTS] {
    REG_TABLE.get_or_init(|| {
        let nil = Reg {
            id: RegId::Rax,
            width: Width::B8,
            high8: false,
        };
        let mut t = [(0u64, nil); REG_TABLE_SLOTS];
        for &(name, reg) in REG_NAME_LIST {
            let v = pack_reg_name(name.as_bytes()).expect("register name fits in 8 bytes");
            let mut slot = reg_slot(v);
            while t[slot].0 != 0 {
                slot = (slot + 1) % REG_TABLE_SLOTS;
            }
            t[slot] = (v, reg);
        }
        t
    })
}

/// Parse an AT&T register name (without the `%` sigil).
///
/// One multiply-shift hash and (almost always) one probe over the packed
/// spelling — the parser calls this for every register operand, so the
/// str-match the seed parser used was a measurable share of parse time.
pub fn parse_reg_name(name: &str) -> Option<Reg> {
    let v = pack_reg_name(name.as_bytes())?;
    let table = reg_table();
    let mut slot = reg_slot(v);
    loop {
        let (k, r) = table[slot];
        if k == v {
            return Some(r);
        }
        if k == 0 {
            return None;
        }
        slot = (slot + 1) % REG_TABLE_SLOTS;
    }
}

reg_names! {
    ("rax", Rax, B8, false), ("eax", Rax, B4, false), ("ax", Rax, B2, false), ("al", Rax, B1, false), ("ah", Rax, B1, true),
    ("rcx", Rcx, B8, false), ("ecx", Rcx, B4, false), ("cx", Rcx, B2, false), ("cl", Rcx, B1, false), ("ch", Rcx, B1, true),
    ("rdx", Rdx, B8, false), ("edx", Rdx, B4, false), ("dx", Rdx, B2, false), ("dl", Rdx, B1, false), ("dh", Rdx, B1, true),
    ("rbx", Rbx, B8, false), ("ebx", Rbx, B4, false), ("bx", Rbx, B2, false), ("bl", Rbx, B1, false), ("bh", Rbx, B1, true),
    ("rsp", Rsp, B8, false), ("esp", Rsp, B4, false), ("sp", Rsp, B2, false), ("spl", Rsp, B1, false),
    ("rbp", Rbp, B8, false), ("ebp", Rbp, B4, false), ("bp", Rbp, B2, false), ("bpl", Rbp, B1, false),
    ("rsi", Rsi, B8, false), ("esi", Rsi, B4, false), ("si", Rsi, B2, false), ("sil", Rsi, B1, false),
    ("rdi", Rdi, B8, false), ("edi", Rdi, B4, false), ("di", Rdi, B2, false), ("dil", Rdi, B1, false),
    ("r8", R8, B8, false), ("r8d", R8, B4, false), ("r8w", R8, B2, false), ("r8b", R8, B1, false),
    ("r9", R9, B8, false), ("r9d", R9, B4, false), ("r9w", R9, B2, false), ("r9b", R9, B1, false),
    ("r10", R10, B8, false), ("r10d", R10, B4, false), ("r10w", R10, B2, false), ("r10b", R10, B1, false),
    ("r11", R11, B8, false), ("r11d", R11, B4, false), ("r11w", R11, B2, false), ("r11b", R11, B1, false),
    ("r12", R12, B8, false), ("r12d", R12, B4, false), ("r12w", R12, B2, false), ("r12b", R12, B1, false),
    ("r13", R13, B8, false), ("r13d", R13, B4, false), ("r13w", R13, B2, false), ("r13b", R13, B1, false),
    ("r14", R14, B8, false), ("r14d", R14, B4, false), ("r14w", R14, B2, false), ("r14b", R14, B1, false),
    ("r15", R15, B8, false), ("r15d", R15, B4, false), ("r15w", R15, B2, false), ("r15b", R15, B1, false),
    ("rip", Rip, B8, false),
    ("xmm0", Xmm0, B16, false), ("xmm1", Xmm1, B16, false), ("xmm2", Xmm2, B16, false), ("xmm3", Xmm3, B16, false),
    ("xmm4", Xmm4, B16, false), ("xmm5", Xmm5, B16, false), ("xmm6", Xmm6, B16, false), ("xmm7", Xmm7, B16, false),
    ("xmm8", Xmm8, B16, false), ("xmm9", Xmm9, B16, false), ("xmm10", Xmm10, B16, false), ("xmm11", Xmm11, B16, false),
    ("xmm12", Xmm12, B16, false), ("xmm13", Xmm13, B16, false), ("xmm14", Xmm14, B16, false), ("xmm15", Xmm15, B16, false),
}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        let name = s.strip_prefix('%').unwrap_or(s);
        parse_reg_name(name).ok_or_else(|| ParseRegError {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        for name in [
            "rax", "eax", "ax", "al", "ah", "r8d", "r15b", "sil", "xmm7", "rip",
        ] {
            let r = parse_reg_name(name).unwrap();
            assert_eq!(r.att_name(), name);
        }
    }

    #[test]
    fn fromstr_accepts_sigil() {
        let r: Reg = "%eax".parse().unwrap();
        assert_eq!(r, Reg::l(RegId::Rax));
        assert!("%".parse::<Reg>().is_err());
        assert!("foo".parse::<Reg>().is_err());
    }

    #[test]
    fn aliasing() {
        let eax = Reg::l(RegId::Rax);
        let rax = Reg::q(RegId::Rax);
        let ah = parse_reg_name("ah").unwrap();
        assert!(eax.aliases(rax));
        assert!(ah.aliases(rax));
        assert!(!eax.aliases(Reg::l(RegId::Rbx)));
    }

    #[test]
    fn width_properties() {
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B4.att_suffix(), Some('l'));
        assert_eq!(Width::from_att_suffix('q'), Some(Width::B8));
        assert_eq!(Width::B2.mask(), 0xffff);
    }

    #[test]
    fn encoding_numbers() {
        assert_eq!(RegId::Rax.encoding(), 0);
        assert_eq!(RegId::R15.encoding(), 15);
        assert_eq!(RegId::Xmm0.encoding(), 0);
        assert_eq!(RegId::Xmm15.encoding(), 15);
        assert!(RegId::Xmm3.is_xmm());
        assert!(!RegId::Rip.is_gpr());
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..NUM_REG_IDS {
            let id = RegId::from_index(i).unwrap();
            assert_eq!(id.index(), i);
        }
        assert!(RegId::from_index(NUM_REG_IDS).is_none());
    }

    #[test]
    fn write_defines_parent_rule() {
        assert!(Reg::l(RegId::Rax).write_defines_parent());
        assert!(Reg::q(RegId::Rax).write_defines_parent());
        assert!(!Reg::w(RegId::Rax).write_defines_parent());
        assert!(!Reg::b(RegId::Rax).write_defines_parent());
    }
}
