//! The machine cost-model provider.
//!
//! Every port/latency-sensitive layer — the `mao-sim` timing pipeline, the
//! `SCHED` cost function, the LOOP16/LSDFIT/BRALIGN thresholds, the
//! superoptimizer's candidate ranking — used to carry its own hand-set
//! copy of the same numbers. This module is the single source: a
//! [`CostModel`] maps mnemonics to latency / reciprocal throughput / port
//! masks and carries the machine parameters those passes key off
//! (decode-line size, LSD window, predictor index shift, load-to-use
//! latency). Built-in tables reproduce the historical hand-set values
//! exactly; measured tables come out of `mao-probe`'s characterization
//! sweep as versioned `.mpt` files (serve-style magic + version +
//! checksum) and load through the same type.
//!
//! A process-global provider ([`current`] / [`install`]) hands the active
//! model to pass pipelines without threading a parameter through every
//! call site; it defaults to the built-in Core-2-like table, so behavior
//! is unchanged until a table is explicitly installed.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock, RwLock};

use crate::effects::def_use;
use crate::flags::Cond;
use crate::insn::Instruction;
use crate::mnemonic::Mnemonic;

/// Per-mnemonic execution costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MnemonicCost {
    /// Result latency in cycles.
    pub latency: u32,
    /// Reciprocal throughput × 100 (cycles per instruction when issued
    /// back-to-back with no dependences; 33 = three per cycle).
    pub recip_tp_x100: u32,
    /// Execution-port mask under the model's `num_ports`. Bit p set means
    /// the instruction may issue on port p.
    pub port_mask: u64,
}

/// Machine parameters the alignment and scheduling passes key off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineParams {
    /// Instructions issued per cycle by the scheduler's machine model.
    pub issue_width: u32,
    /// Number of execution ports.
    pub num_ports: u32,
    /// All ports identical (AMD-K8-style lanes)?
    pub symmetric_ports: bool,
    /// Instruction fetch/decode chunk in bytes (LOOP16's line).
    pub decode_line: u32,
    /// Loop-stream-detector window in decode lines (LSDFIT's budget).
    pub lsd_max_lines: u32,
    /// Branch-predictor index shift — the `PC >> k` of §III.C.g
    /// (BRALIGN's bucket size is `1 << k`).
    pub predictor_shift: u32,
    /// L1 load-to-use latency added to a memory-reading instruction.
    pub load_latency: u32,
    /// Cycles lost on a mispredicted branch.
    pub mispredict_penalty: u32,
    /// Port mask for memory-writing instructions (store address + data).
    pub store_ports: u64,
    /// Port mask for pure loads (`mov` from memory).
    pub load_ports: u64,
}

/// The instruction set every table in this crate costs. `.mpt` containers
/// for other ISAs are rejected at load with [`MptError::WrongIsa`].
pub const MPT_ISA: &str = "x86-64";

/// Where a table's numbers came from — written into `.mpt` files and
/// surfaced through the maod stats schema (v6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Producer: `hand-set` for built-ins, `probe/<backend>` for sweeps.
    pub source: String,
    /// The machine that was measured (profile name or host description).
    pub target: String,
    /// Generator identity, e.g. `mao-probe sweep v1`.
    pub generator: String,
    /// RNG seed the sweep ran with (0 for hand-set tables).
    pub seed: u64,
    /// Instruction set the per-mnemonic costs describe. Container v1
    /// predates the field and implies [`MPT_ISA`]; v2 stamps it
    /// explicitly so a table measured for one ISA can never be installed
    /// into an optimizer instantiation for another.
    pub isa: String,
}

impl Default for Provenance {
    fn default() -> Provenance {
        Provenance {
            source: String::new(),
            target: String::new(),
            generator: String::new(),
            seed: 0,
            isa: MPT_ISA.to_string(),
        }
    }
}

/// A complete machine cost model: per-mnemonic table + machine parameters
/// + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Human-readable model name.
    pub name: String,
    /// Where the numbers came from.
    pub provenance: Provenance,
    /// Machine parameters.
    pub machine: MachineParams,
    /// Cost assumed for mnemonics with no table entry.
    pub default_cost: MnemonicCost,
    /// Per-mnemonic entries, keyed by [`Mnemonic::snapshot_code`] of the
    /// condition-normalized mnemonic.
    table: BTreeMap<u16, MnemonicCost>,
}

/// Condition families share one entry (as in the effects tables). This is
/// the `.mpt` table key: [`Mnemonic::snapshot_code`] of the normalized
/// mnemonic.
pub fn table_key(m: Mnemonic) -> u16 {
    match m {
        Mnemonic::Jcc(_) => Mnemonic::Jcc(Cond::E),
        Mnemonic::Setcc(_) => Mnemonic::Setcc(Cond::E),
        Mnemonic::Cmovcc(_) => Mnemonic::Cmovcc(Cond::E),
        other => other,
    }
    .snapshot_code()
}

impl CostModel {
    /// An empty model over `machine` (every mnemonic gets `default_cost`).
    pub fn new(name: &str, machine: MachineParams, default_cost: MnemonicCost) -> CostModel {
        CostModel {
            name: name.to_string(),
            provenance: Provenance::default(),
            machine,
            default_cost,
            table: BTreeMap::new(),
        }
    }

    /// Set the cost entry for a mnemonic (condition families collapse).
    pub fn set(&mut self, m: Mnemonic, cost: MnemonicCost) {
        self.table.insert(table_key(m), cost);
    }

    /// The cost entry for a mnemonic, falling back to the default.
    pub fn get(&self, m: Mnemonic) -> MnemonicCost {
        self.table
            .get(&table_key(m))
            .copied()
            .unwrap_or(self.default_cost)
    }

    /// Mnemonics with explicit entries.
    pub fn entries(&self) -> impl Iterator<Item = (Mnemonic, MnemonicCost)> + '_ {
        self.table
            .iter()
            .filter_map(|(&code, &cost)| Mnemonic::from_snapshot_code(code).map(|m| (m, cost)))
    }

    /// Number of explicit per-mnemonic entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the table empty (default-only)?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Execution latency of an instruction in cycles (no memory term —
    /// the simulator charges cache latency separately).
    pub fn latency(&self, insn: &Instruction) -> u64 {
        u64::from(self.get(insn.mnemonic).latency)
    }

    /// Scheduler latency: execution latency plus the L1 load-to-use
    /// latency for memory-reading instructions.
    pub fn sched_latency(&self, insn: &Instruction) -> u64 {
        let base = self.latency(insn);
        if def_use(insn).mem_read {
            base + u64::from(self.machine.load_latency)
        } else {
            base
        }
    }

    /// Port mask under an explicit port count. Machines with three or
    /// fewer ports, or symmetric lanes, issue anywhere; otherwise stores
    /// and pure loads take the dedicated memory ports and everything else
    /// takes its table mask, clipped to the available ports (an empty clip
    /// falls back to "anywhere" so narrow machines stay schedulable).
    pub fn ports_for(&self, insn: &Instruction, num_ports: usize, symmetric: bool) -> u64 {
        let all = (1u64 << num_ports) - 1;
        if symmetric || num_ports <= 3 {
            return all;
        }
        let du = def_use(insn);
        let mask = if du.mem_write {
            self.machine.store_ports
        } else if du.mem_read && insn.mnemonic == Mnemonic::Mov {
            self.machine.load_ports
        } else {
            self.get(insn.mnemonic).port_mask
        };
        let clipped = mask & all;
        if clipped == 0 {
            all
        } else {
            clipped
        }
    }

    /// Port mask under the model's own port count.
    pub fn ports(&self, insn: &Instruction) -> u64 {
        self.ports_for(
            insn,
            self.machine.num_ports as usize,
            self.machine.symmetric_ports,
        )
    }

    /// The built-in Intel-Core-2-like table — the historical hand-set
    /// numbers from the timing simulator and the `SCHED` cost function.
    pub fn core2() -> CostModel {
        let machine = MachineParams {
            issue_width: 3,
            num_ports: 6,
            symmetric_ports: false,
            decode_line: 16,
            lsd_max_lines: 4,
            predictor_shift: 5,
            load_latency: 3,
            mispredict_penalty: 15,
            store_ports: 0b01_1000,
            load_ports: 0b00_0100,
        };
        let mut model = CostModel::new("intel-core2-like", machine, cost(1, 0b10_0011));
        model.provenance = Provenance {
            source: "hand-set".to_string(),
            target: "intel-core2-like".to_string(),
            generator: "builtin".to_string(),
            seed: 0,
            isa: MPT_ISA.to_string(),
        };
        use Mnemonic as M;
        // Latencies and port bindings follow the paper's Core-2 anecdotes:
        // lea on port 0 only, shifts on ports 0 and 5, multiplies on port 1.
        model.set(M::Lea, cost(1, 0b00_0001));
        for m in [M::Shl, M::Shr, M::Sar] {
            model.set(m, cost(1, 0b10_0001));
        }
        for m in [M::Imul, M::Mul] {
            model.set(m, cost(3, 0b00_0010));
        }
        for m in [M::Idiv, M::Div] {
            model.set(m, cost(20, 0b00_0001));
        }
        for m in [M::Mulss, M::Mulsd] {
            model.set(m, cost(4, 0b00_0010));
        }
        for m in [M::Addss, M::Addsd, M::Subss, M::Subsd] {
            model.set(m, cost(3, 0b00_0001));
        }
        for m in [M::Divss, M::Divsd, M::Sqrtss, M::Sqrtsd] {
            model.set(m, cost(12, 0b00_0001));
        }
        for m in [
            M::Cvtsi2ss,
            M::Cvtsi2sd,
            M::Cvttss2si,
            M::Cvttsd2si,
            M::Cvtss2sd,
            M::Cvtsd2ss,
        ] {
            model.set(m, cost(3, 0b10_0011));
        }
        model
    }

    /// The built-in AMD-Opteron-like table: same latency ranking, but a
    /// symmetric 4-port backend, 32-byte fetch windows, a one-window loop
    /// buffer and `PC >> 4` predictor indexing.
    pub fn opteron() -> CostModel {
        let mut model = CostModel::core2();
        model.name = "amd-opteron-like".to_string();
        model.provenance.target = "amd-opteron-like".to_string();
        model.machine.num_ports = 4;
        model.machine.symmetric_ports = true;
        model.machine.decode_line = 32;
        model.machine.lsd_max_lines = 1;
        model.machine.predictor_shift = 4;
        model.machine.mispredict_penalty = 12;
        model
    }
}

/// Entry constructor: reciprocal throughput is derived from the port
/// count (a fully pipelined unit retires one instruction per port per
/// cycle), which is exactly what the measurement sweep recovers.
fn cost(latency: u32, port_mask: u64) -> MnemonicCost {
    let ports = port_mask.count_ones().max(1);
    MnemonicCost {
        latency,
        recip_tp_x100: (100 / ports).max(1),
        port_mask,
    }
}

// ---------------------------------------------------------------------------
// The `.mpt` container: magic + version + checksum, like the serve disk
// store and the `MAOSNAP` snapshot format. A file that fails any check is
// rejected before a single field is interpreted.
// ---------------------------------------------------------------------------

/// File magic (8 bytes).
pub const MPT_MAGIC: [u8; 8] = *b"MAOMPT\x1a\x00";
/// Container version this build writes. Version 2 added the ISA
/// identifier to the provenance block; v1 files (which predate it) are
/// still accepted and imply [`MPT_ISA`].
pub const MPT_VERSION: u16 = 2;
/// Oldest container version this build still reads.
pub const MPT_MIN_VERSION: u16 = 1;

/// Why a `.mpt` file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MptError {
    /// Filesystem error.
    Io(String),
    /// Wrong magic: not a parameter table at all.
    BadMagic,
    /// Container version this build does not speak.
    BadVersion {
        /// Version found in the file.
        found: u16,
        /// Version this build expects.
        expected: u16,
    },
    /// File shorter than its header claims.
    Truncated {
        /// Bytes the header promised.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Payload checksum mismatch (bit rot or a torn write).
    BadChecksum,
    /// The table costs a different instruction set than this optimizer
    /// instantiation: structurally valid, semantically unusable.
    WrongIsa {
        /// ISA identifier stamped in the file's provenance block.
        found: String,
    },
    /// Structurally invalid payload.
    Malformed(String),
}

impl std::fmt::Display for MptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MptError::Io(m) => write!(f, "i/o error: {m}"),
            MptError::BadMagic => write!(f, "not a .mpt parameter table (bad magic)"),
            MptError::BadVersion { found, expected } => {
                write!(f, "unsupported .mpt version {found} (expected {expected})")
            }
            MptError::Truncated { needed, have } => {
                write!(f, "truncated .mpt: need {needed} bytes, have {have}")
            }
            MptError::BadChecksum => write!(f, "corrupt .mpt: payload checksum mismatch"),
            MptError::WrongIsa { found } => write!(
                f,
                "wrong ISA: table costs `{found}` instructions, this optimizer needs `{MPT_ISA}`"
            ),
            MptError::Malformed(m) => write!(f, "malformed .mpt payload: {m}"),
        }
    }
}

impl std::error::Error for MptError {}

/// FNV-1a over the payload (the same checksum family the serve disk store
/// and snapshot tier use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MptError> {
        if self.pos + n > self.bytes.len() {
            return Err(MptError::Malformed(format!(
                "field overruns payload at offset {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, MptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, MptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, MptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, MptError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(MptError::Malformed(format!("string length {len} absurd")));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| MptError::Malformed("non-utf8 string".into()))
    }
}

impl CostModel {
    /// Serialize to the `.mpt` container format.
    pub fn to_mpt_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, &self.name);
        put_str(&mut payload, &self.provenance.source);
        put_str(&mut payload, &self.provenance.target);
        put_str(&mut payload, &self.provenance.generator);
        payload.extend_from_slice(&self.provenance.seed.to_le_bytes());
        put_str(&mut payload, &self.provenance.isa);
        let m = &self.machine;
        for v in [
            m.issue_width,
            m.num_ports,
            u32::from(m.symmetric_ports),
            m.decode_line,
            m.lsd_max_lines,
            m.predictor_shift,
            m.load_latency,
            m.mispredict_penalty,
        ] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&m.store_ports.to_le_bytes());
        payload.extend_from_slice(&m.load_ports.to_le_bytes());
        for c in [&self.default_cost] {
            payload.extend_from_slice(&c.latency.to_le_bytes());
            payload.extend_from_slice(&c.recip_tp_x100.to_le_bytes());
            payload.extend_from_slice(&c.port_mask.to_le_bytes());
        }
        payload.extend_from_slice(&(self.table.len() as u32).to_le_bytes());
        for (&code, c) in &self.table {
            payload.extend_from_slice(&code.to_le_bytes());
            payload.extend_from_slice(&c.latency.to_le_bytes());
            payload.extend_from_slice(&c.recip_tp_x100.to_le_bytes());
            payload.extend_from_slice(&c.port_mask.to_le_bytes());
        }

        let mut out = Vec::with_capacity(payload.len() + 30);
        out.extend_from_slice(&MPT_MAGIC);
        out.extend_from_slice(&MPT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a `.mpt` container; every integrity check (magic, version,
    /// length, checksum) runs before any field is interpreted.
    pub fn from_mpt_bytes(bytes: &[u8]) -> Result<CostModel, MptError> {
        const HEADER: usize = 8 + 2 + 4 + 8;
        if bytes.len() < HEADER {
            return Err(MptError::Truncated {
                needed: HEADER,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MPT_MAGIC {
            return Err(MptError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if !(MPT_MIN_VERSION..=MPT_VERSION).contains(&version) {
            return Err(MptError::BadVersion {
                found: version,
                expected: MPT_VERSION,
            });
        }
        let payload_len = u32::from_le_bytes(bytes[10..14].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[14..22].try_into().unwrap());
        if bytes.len() != HEADER + payload_len {
            return Err(MptError::Truncated {
                needed: HEADER + payload_len,
                have: bytes.len(),
            });
        }
        let payload = &bytes[HEADER..];
        if fnv1a(payload) != checksum {
            return Err(MptError::BadChecksum);
        }

        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        let name = r.string()?;
        let provenance = Provenance {
            source: r.string()?,
            target: r.string()?,
            generator: r.string()?,
            seed: r.u64()?,
            // v1 containers predate the identifier; every v1 table ever
            // written costed x86-64 instructions.
            isa: if version >= 2 {
                r.string()?
            } else {
                MPT_ISA.to_string()
            },
        };
        if provenance.isa != MPT_ISA {
            return Err(MptError::WrongIsa {
                found: provenance.isa,
            });
        }
        let machine = MachineParams {
            issue_width: r.u32()?,
            num_ports: r.u32()?,
            symmetric_ports: r.u32()? != 0,
            decode_line: r.u32()?,
            lsd_max_lines: r.u32()?,
            predictor_shift: r.u32()?,
            load_latency: r.u32()?,
            mispredict_penalty: r.u32()?,
            store_ports: r.u64()?,
            load_ports: r.u64()?,
        };
        let mut entry = || -> Result<MnemonicCost, MptError> {
            Ok(MnemonicCost {
                latency: r.u32()?,
                recip_tp_x100: r.u32()?,
                port_mask: r.u64()?,
            })
        };
        let default_cost = entry()?;
        let count = r.u32()? as usize;
        let mut table = BTreeMap::new();
        for _ in 0..count {
            let code = r.u16()?;
            if Mnemonic::from_snapshot_code(code).is_none() {
                return Err(MptError::Malformed(format!("unknown mnemonic code {code}")));
            }
            let cost = MnemonicCost {
                latency: r.u32()?,
                recip_tp_x100: r.u32()?,
                port_mask: r.u64()?,
            };
            table.insert(code, cost);
        }
        if r.pos != payload.len() {
            return Err(MptError::Malformed(format!(
                "{} trailing bytes after table",
                payload.len() - r.pos
            )));
        }
        Ok(CostModel {
            name,
            provenance,
            machine,
            default_cost,
            table,
        })
    }

    /// Write atomically (temp file + rename, like the serve disk store):
    /// a reader never observes a torn table.
    pub fn write_mpt(&self, path: &Path) -> Result<(), MptError> {
        let bytes = self.to_mpt_bytes();
        let tmp = path.with_extension("mpt.tmp");
        let io = |e: std::io::Error| MptError::Io(format!("{}: {e}", path.display()));
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Load and fully validate a `.mpt` file.
    pub fn load_mpt(path: &Path) -> Result<CostModel, MptError> {
        let bytes =
            std::fs::read(path).map_err(|e| MptError::Io(format!("{}: {e}", path.display())))?;
        CostModel::from_mpt_bytes(&bytes)
    }

    /// Checksum of the serialized table — the provenance fingerprint the
    /// stats schema reports.
    pub fn fingerprint(&self) -> u64 {
        let bytes = self.to_mpt_bytes();
        u64::from_le_bytes(bytes[14..22].try_into().unwrap())
    }
}

// ---------------------------------------------------------------------------
// The process-global provider.
// ---------------------------------------------------------------------------

fn slot() -> &'static RwLock<Arc<CostModel>> {
    static CURRENT: OnceLock<RwLock<Arc<CostModel>>> = OnceLock::new();
    CURRENT.get_or_init(|| RwLock::new(Arc::new(CostModel::core2())))
}

/// The active cost model (defaults to the built-in Core-2-like table).
pub fn current() -> Arc<CostModel> {
    slot().read().expect("cost model lock").clone()
}

/// Install `model` as the process-wide cost model. Pipelines pick it up on
/// their next cost query; installing before any pipeline runs (the CLI
/// flag path) makes the whole process consistent.
pub fn install(model: Arc<CostModel>) {
    *slot().write().expect("cost model lock") = model;
}

/// Reset the provider to the built-in table (tests).
pub fn install_builtin() {
    install(Arc::new(CostModel::core2()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction;
    use crate::reg::{Reg, RegId};

    fn insn(att: &str, ops: Vec<crate::operand::Operand>) -> Instruction {
        Instruction::from_att(att, ops).unwrap()
    }

    #[test]
    fn builtin_matches_hand_set_latencies() {
        let m = CostModel::core2();
        let imul = insn(
            "imull",
            vec![Reg::l(RegId::Rcx).into(), Reg::l(RegId::Rax).into()],
        );
        let add = insn(
            "addl",
            vec![Reg::l(RegId::Rcx).into(), Reg::l(RegId::Rax).into()],
        );
        assert_eq!(m.latency(&imul), 3);
        assert_eq!(m.latency(&add), 1);
        assert_eq!(m.get(Mnemonic::Idiv).latency, 20);
        assert_eq!(m.get(Mnemonic::Mulsd).latency, 4);
        assert_eq!(m.get(Mnemonic::Sqrtss).latency, 12);
        assert_eq!(m.get(Mnemonic::Cvtss2sd).latency, 3);
    }

    #[test]
    fn builtin_matches_paper_port_anecdote() {
        let m = CostModel::core2();
        let lea = insn(
            "leal",
            vec![
                crate::operand::Mem::base_disp(Reg::q(RegId::Rax), 0).into(),
                Reg::l(RegId::Rbx).into(),
            ],
        );
        assert_eq!(m.ports_for(&lea, 6, false), 0b00_0001, "lea: port 0 only");
        let sar = insn("sarl", vec![Reg::l(RegId::Rax).into()]);
        assert_eq!(m.ports_for(&sar, 6, false), 0b10_0001, "sar: ports 0+5");
        // Clipping to fewer ports keeps a nonempty mask.
        assert_ne!(m.ports_for(&sar, 3, false), 0);
        // Symmetric machines issue anywhere.
        assert_eq!(m.ports_for(&sar, 4, true), 0b1111);
    }

    #[test]
    fn sched_latency_adds_load_to_use() {
        let m = CostModel::core2();
        let load = insn(
            "movq",
            vec![
                crate::operand::Mem::base_disp(Reg::q(RegId::Rdi), 0).into(),
                Reg::q(RegId::Rax).into(),
            ],
        );
        assert_eq!(m.latency(&load), 1);
        assert_eq!(m.sched_latency(&load), 4, "1 + 3 load-to-use");
    }

    #[test]
    fn cond_families_collapse() {
        let mut m = CostModel::core2();
        m.set(
            Mnemonic::Cmovcc(Cond::L),
            MnemonicCost {
                latency: 2,
                recip_tp_x100: 100,
                port_mask: 1,
            },
        );
        assert_eq!(m.get(Mnemonic::Cmovcc(Cond::E)).latency, 2);
        assert_eq!(m.get(Mnemonic::Cmovcc(Cond::Ne)).latency, 2);
    }

    #[test]
    fn mpt_round_trip() {
        for model in [CostModel::core2(), CostModel::opteron()] {
            let bytes = model.to_mpt_bytes();
            let back = CostModel::from_mpt_bytes(&bytes).unwrap();
            assert_eq!(back, model);
            // Serialization is canonical: same model, same bytes.
            assert_eq!(back.to_mpt_bytes(), bytes);
        }
    }

    #[test]
    fn mpt_v1_frames_load_with_the_implied_isa() {
        // Re-encode a v2 container as v1: drop the isa string from the
        // payload, stamp version 1, refresh length and checksum. This is
        // exactly the byte layout every pre-ISA-boundary table used.
        let model = CostModel::core2();
        let v2 = model.to_mpt_bytes();
        let payload = &v2[22..];
        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        for _ in 0..4 {
            r.string().unwrap(); // name, source, target, generator
        }
        r.u64().unwrap(); // seed
        let isa_start = r.pos;
        r.string().unwrap(); // the v2 isa field
        let mut v1_payload = payload[..isa_start].to_vec();
        v1_payload.extend_from_slice(&payload[r.pos..]);
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MPT_MAGIC);
        v1.extend_from_slice(&1u16.to_le_bytes());
        v1.extend_from_slice(&(v1_payload.len() as u32).to_le_bytes());
        v1.extend_from_slice(&fnv1a(&v1_payload).to_le_bytes());
        v1.extend_from_slice(&v1_payload);

        let loaded = CostModel::from_mpt_bytes(&v1).expect("v1 container still loads");
        assert_eq!(loaded.provenance.isa, MPT_ISA);
        assert_eq!(loaded, model);
    }

    #[test]
    fn mpt_rejects_a_wrong_isa_table() {
        let mut model = CostModel::core2();
        model.provenance.isa = "aarch64".to_string();
        let bytes = model.to_mpt_bytes();
        let err = CostModel::from_mpt_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            MptError::WrongIsa {
                found: "aarch64".to_string()
            }
        );
        assert!(err.to_string().contains("aarch64"), "{err}");
        assert!(err.to_string().contains(MPT_ISA), "{err}");
    }

    #[test]
    fn mpt_rejects_bad_magic() {
        let mut bytes = CostModel::core2().to_mpt_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(CostModel::from_mpt_bytes(&bytes), Err(MptError::BadMagic));
    }

    #[test]
    fn mpt_rejects_version_skew() {
        let mut bytes = CostModel::core2().to_mpt_bytes();
        bytes[8] = 0x7f; // version low byte
        assert!(matches!(
            CostModel::from_mpt_bytes(&bytes),
            Err(MptError::BadVersion { found: 0x7f, .. })
        ));
    }

    #[test]
    fn mpt_rejects_truncation() {
        let bytes = CostModel::core2().to_mpt_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            assert!(matches!(
                CostModel::from_mpt_bytes(&bytes[..cut]),
                Err(MptError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn mpt_rejects_corruption() {
        let clean = CostModel::core2().to_mpt_bytes();
        // Flip one payload byte: checksum must catch it.
        let mut bytes = clean.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            CostModel::from_mpt_bytes(&bytes),
            Err(MptError::BadChecksum)
        );
        // Appending garbage is a length mismatch.
        let mut bytes = clean;
        bytes.push(0);
        assert!(matches!(
            CostModel::from_mpt_bytes(&bytes),
            Err(MptError::Truncated { .. })
        ));
    }

    #[test]
    fn mpt_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("mpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("core2.mpt");
        let model = CostModel::core2();
        model.write_mpt(&path).unwrap();
        assert_eq!(CostModel::load_mpt(&path).unwrap(), model);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provider_defaults_to_builtin() {
        assert_eq!(current().name, "intel-core2-like");
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = CostModel::core2();
        let mut b = CostModel::core2();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set(
            Mnemonic::Add,
            MnemonicCost {
                latency: 2,
                recip_tp_x100: 50,
                port_mask: 0b11,
            },
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
