//! Vendored offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this crate implements
//! the small criterion API surface the workspace's benches use — benchmark
//! groups, `bench_function`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros — over a plain wall-clock
//! harness (fixed warm-up, median-of-samples reporting, no plots or
//! statistical regression testing).

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored: the shim has
    /// no tunables, but `cargo bench` passes `--bench` through).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {}", name.as_ref());
        BenchmarkGroup {
            _parent: self,
            samples: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        run_one(name.as_ref(), 20, None, &mut f);
    }

    /// Print the trailing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.samples, self.throughput, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Time `routine`, once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = std::hint::black_box(routine()); // warm-up
        for _ in 0..self.target {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed());
            std::hint::black_box(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        target: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name:<32} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput
        .map(|t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!("  {:>14.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("  {:>14.0} B/s", per_sec(n)),
            }
        })
        .unwrap_or_default();
    println!(
        "  {name:<32} median {median:>12.3?}  (min {:?}, max {:?}, n={}){rate}",
        b.samples[0],
        b.samples[b.samples.len() - 1],
        b.samples.len()
    );
}

/// Group benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        group.bench_function("counting", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 3);
    }
}
