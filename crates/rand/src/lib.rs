//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so instead of pulling
//! `rand` from a registry this workspace vendors the tiny API surface it
//! actually uses: a seedable generator (`rngs::StdRng`), `SeedableRng`, and
//! the `RngExt` sampling methods (`random`, `random_range`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small, fast,
//! and deterministic for a given seed, which is all the corpus generator,
//! the Nopinizer pass and the probe sequences need ("a random number seed
//! can be specified to produce repeatable results").

use std::ops::{Range, RangeInclusive};

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64, used to expand one u64 seed into the full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generator types, mirroring `rand::rngs`.

    use super::splitmix64;

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

use rngs::StdRng;

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The sampling methods every generator offers (`rand`'s `Rng` trait; the
/// 0.9+ line renamed the methods to `random*`).
pub trait RngExt {
    /// Uniform value over the type's natural range.
    fn random<T: Standard>(&mut self) -> T;

    /// Uniform value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(0..4u32);
            assert!(v < 4);
            let w = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let x = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0..4u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
