//! End-to-end tests of the `mao` command-line driver, exercising the
//! paper's invocation style (`--mao=PASS=opt[val]:ASM=o[path]`).

use std::process::Command;

fn mao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mao"))
}

fn write_input(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mao-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write input");
    path
}

const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";

#[test]
fn paper_style_invocation_writes_output_file() {
    let input = write_input("in1.s", INPUT);
    let output = input.with_file_name("out1.s");
    let status = mao()
        .arg("--mao=REDTEST:ADDADD:ASM=o[".to_string() + output.to_str().unwrap() + "]")
        .arg(&input)
        .status()
        .expect("driver runs");
    assert!(status.success());
    let text = std::fs::read_to_string(&output).expect("output written");
    assert!(!text.contains("testl"), "{text}");
    assert!(text.contains("addl $7, %eax"), "{text}");
}

#[test]
fn default_emission_goes_to_stdout() {
    let input = write_input("in2.s", INPUT);
    let out = mao()
        .arg("--mao=REDTEST")
        .arg(&input)
        .output()
        .expect("driver runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("subl $16, %r15d"));
    assert!(!stdout.contains("testl"));
    // Pass statistics go to stderr, like the paper's tracing.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REDTEST"), "{stderr}");
}

#[test]
fn lfind_trace_matches_paper_example() {
    // The paper's own example: --mao=LFIND=trace[0]:ASM=o[/dev/null].
    let input = write_input(
        "in3.s",
        "\t.type\tf, @function\nf:\n.L:\n\taddl $1, %eax\n\tjne .L\n\tret\n",
    );
    let out = mao()
        .arg("--mao=LFIND=trace[1]:ASM=o[/dev/null]")
        .arg(&input)
        .output()
        .expect("driver runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("loop"), "{stderr}");
}

#[test]
fn list_passes_shows_registry() {
    let out = mao().arg("--list-passes").output().expect("driver runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["REDTEST", "LOOP16", "SCHED", "NOPIN", "LFIND", "ASM"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn profile_flag_writes_chrome_trace() {
    let input = write_input("in_profile.s", INPUT);
    let profile = input.with_file_name("profile.json");
    let out = mao()
        .arg("--mao=REDTEST:ADDADD")
        .arg("--profile")
        .arg(&profile)
        .arg(&input)
        .output()
        .expect("driver runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Chrome trace profile"), "{stderr}");
    let trace = std::fs::read_to_string(&profile).expect("profile written");
    let json = mao_serve::Json::parse(&trace).expect("profile is valid JSON");
    let events = json.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty(), "spans were recorded");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(mao_serve::Json::as_str))
        .collect();
    assert!(names.contains(&"REDTEST"), "{names:?}");
    assert!(
        names.contains(&"f"),
        "per-function spans present: {names:?}"
    );
}

#[test]
fn bad_pass_name_fails_cleanly() {
    let input = write_input("in4.s", INPUT);
    let out = mao()
        .arg("--mao=NOSUCH")
        .arg(&input)
        .output()
        .expect("driver runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown pass"));
}

#[test]
fn parse_error_reports_line() {
    let input = write_input("in5.s", "nop\nbogus_mnemonic %eax\n");
    let out = mao().arg(&input).output().expect("driver runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn missing_input_fails() {
    let out = mao().output().expect("driver runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
