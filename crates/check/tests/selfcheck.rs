//! End-to-end self-test of the differential harness: a deliberately
//! injected miscompile (the MISOPT pass) must be caught by the oracle,
//! shrunk to a minimal unit, persisted to a regression corpus, and then
//! replayable from disk.

use mao_check::paths::PathRunner;
use mao_check::regress::{load_dir, Expect};
use mao_check::run_injection_selftest;

#[test]
fn injected_miscompile_is_caught_shrunk_persisted_and_replayable() {
    let dir = std::env::temp_dir().join(format!("mao-check-selftest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let failures = run_injection_selftest(42, Some(&dir)).expect("selftest must catch MISOPT");
    assert!(!failures.is_empty());
    for f in &failures {
        assert!(f.passes.contains("MISOPT"));
        // Shrinking never grows the unit and keeps it parseable.
        assert!(mao::MaoUnit::parse(&f.shrunk_asm).is_ok());
        assert!(f.saved.is_some(), "failure was not persisted: {f:?}");
    }

    // The persisted corpus loads back and every entry still reproduces:
    // expect=mismatch files assert the checker keeps catching the
    // injected bug.
    let corpus = load_dir(&dir).expect("persisted corpus parses");
    assert_eq!(corpus.len(), failures.len());
    let runner = PathRunner::new(2);
    for regression in &corpus {
        assert_eq!(regression.expect, Expect::Mismatch);
        regression
            .replay(&runner)
            .expect("replay reproduces the catch");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
