//! End-to-end tests of the daemon: a real `mao serve` child process on a
//! Unix-domain socket, driven through `mao client`, the library [`Client`],
//! and `mao batch`. These prove the ISSUE's acceptance criteria:
//!
//! (a) daemon output is byte-identical to one-shot `mao` for the same pass
//!     string, (b) a repeated request is served from the cache (hit counter
//!     moves, no re-optimization trace), (c) a panicking pass yields a
//!     structured error while the daemon keeps serving.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};

use mao_serve::json::Json;
use mao_serve::protocol::{OptimizeRequest, Request};
use mao_serve::server::Listen;
use mao_serve::Client;

const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";
const PASSES: &str = "REDTEST:ADDADD:DCE";

static NEXT_SOCKET: AtomicU32 = AtomicU32::new(0);

fn mao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mao"))
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mao-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A daemon child on its own socket; killed (and socket removed) on drop so
/// a failing test doesn't leak processes.
struct Daemon {
    child: Child,
    socket: std::path::PathBuf,
}

impl Daemon {
    fn start(extra_args: &[&str]) -> Daemon {
        let socket = temp_dir().join(format!(
            "maod-{}.sock",
            NEXT_SOCKET.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_file(&socket);
        let child = mao()
            .arg("serve")
            .arg("--listen")
            .arg(&socket)
            .args(extra_args)
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon starts");
        Daemon { child, socket }
    }

    fn addr(&self) -> Listen {
        Listen::Unix(self.socket.clone())
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr()).expect("client connects")
    }

    fn listen_arg(&self) -> String {
        self.socket.to_str().unwrap().to_string()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn optimize_request(asm: &str, passes: &str) -> Request {
    Request::Optimize(OptimizeRequest {
        asm: asm.to_string(),
        passes: passes.to_string(),
        jobs: None,
        timeout_ms: None,
        use_cache: true,
        isa: mao::isa::IsaId::X86_64,
    })
}

#[test]
fn daemon_output_is_byte_identical_to_oneshot() {
    // One-shot reference run.
    let input = temp_dir().join("identity.s");
    std::fs::write(&input, INPUT).unwrap();
    let oneshot = mao()
        .arg(format!("--mao={PASSES}"))
        .arg(&input)
        .output()
        .expect("one-shot runs");
    assert!(oneshot.status.success());
    assert!(!oneshot.stdout.is_empty());

    // Same request through the daemon, via the `mao client` front end.
    let daemon = Daemon::start(&[]);
    let served = mao()
        .arg("client")
        .arg("--listen")
        .arg(daemon.listen_arg())
        .arg("--passes")
        .arg(PASSES)
        .arg(&input)
        .output()
        .expect("client runs");
    assert!(
        served.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&served.stderr)
    );
    assert_eq!(
        oneshot.stdout, served.stdout,
        "served asm must be byte-identical to one-shot asm"
    );
}

#[test]
fn repeated_request_is_served_from_cache() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    let request = optimize_request(INPUT, PASSES);

    let cold = client.request(&request).expect("first request");
    assert_eq!(cold.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(cold.get("cache").unwrap().as_str(), Some("miss"));

    let warm = client.request(&request).expect("second request");
    assert_eq!(warm.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(warm.get("cache").unwrap().as_str(), Some("hit"));
    // Same transformed assembly, but no re-optimization happened: the trace
    // is empty and the pipeline timings are zero.
    assert_eq!(
        cold.get("asm").unwrap().as_str(),
        warm.get("asm").unwrap().as_str()
    );
    assert_eq!(warm.get("trace").unwrap().as_arr().unwrap().len(), 0);
    assert_eq!(
        warm.get("timings")
            .unwrap()
            .get("optimize_us")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    // The stats endpoint agrees: one hit, one miss.
    let stats = client.request(&Request::Stats).expect("stats");
    let cache = stats.get("stats").unwrap().get("result_cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
}

#[test]
fn panicking_pass_is_isolated_and_daemon_keeps_serving() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();

    // PANIC is the fault-injection pass; the daemon must answer with a
    // structured error rather than dying.
    let crash = client
        .request(&optimize_request(INPUT, "REDTEST:PANIC"))
        .expect("panic request still gets a response");
    assert_eq!(crash.get("status").unwrap().as_str(), Some("error"));
    let error = crash.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("panic"));
    assert!(error
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("injected pass panic"));

    // The same connection and a fresh connection both keep working.
    let after = client
        .request(&optimize_request(INPUT, PASSES))
        .expect("request after panic");
    assert_eq!(after.get("status").unwrap().as_str(), Some("ok"));
    let mut fresh = daemon.client();
    let pong = fresh.request(&Request::Ping).expect("ping");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // And the panic was counted.
    let stats = fresh.request(&Request::Stats).expect("stats");
    let requests = stats.get("stats").unwrap().get("requests").unwrap();
    assert_eq!(requests.get("panics").unwrap().as_u64(), Some(1));
}

#[test]
fn timeout_returns_structured_error_over_socket() {
    let daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    let slow = Request::Optimize(OptimizeRequest {
        asm: INPUT.to_string(),
        // Sleep without panicking: func[nosuch] makes PANIC a no-op after
        // its injected delay.
        passes: "PANIC=sleep_ms[3000],func[nosuch]".to_string(),
        jobs: None,
        timeout_ms: Some(50),
        use_cache: false,
        isa: mao::isa::IsaId::X86_64,
    });
    let response = client.request(&slow).expect("timeout still answered");
    assert_eq!(response.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(
        response.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("timeout")
    );
}

#[test]
fn oversized_frame_is_rejected_and_connection_survives() {
    let daemon = Daemon::start(&["--max-request-bytes", "1024"]);
    let mut client = daemon.client();
    let big = optimize_request(&"\tnop\n".repeat(4096), "");
    let response = client.request(&big).expect("rejection is a response");
    assert_eq!(response.get("status").unwrap().as_str(), Some("error"));
    assert_eq!(
        response.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("too_large")
    );
    // The frame was drained; the connection still serves small requests.
    let small = client
        .request(&optimize_request(INPUT, ""))
        .expect("small request after oversize");
    assert_eq!(small.get("status").unwrap().as_str(), Some("ok"));
}

#[test]
fn shutdown_request_drains_daemon_and_removes_socket() {
    let mut daemon = Daemon::start(&[]);
    let mut client = daemon.client();
    let _ = client
        .request(&optimize_request(INPUT, PASSES))
        .expect("warm-up request");
    let ack = client.request(&Request::Shutdown).expect("shutdown ack");
    assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits cleanly after shutdown");
    assert!(
        !daemon.socket.exists(),
        "socket file is removed on clean shutdown"
    );
}

#[test]
fn batch_mode_round_trips_ndjson() {
    let request = optimize_request(INPUT, PASSES).to_json().to_string();
    let input = format!("{request}\n{request}\n{}\n", r#"{"type":"stats"}"#);
    let mut child = mao()
        .arg("batch")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("batch starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("feed batch stdin");
    let out = child.wait_with_output().expect("batch finishes");
    assert!(out.status.success());
    let lines: Vec<Json> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("response line parses"))
        .collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(lines[0].get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(lines[1].get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        lines[0].get("asm").unwrap().as_str(),
        lines[1].get("asm").unwrap().as_str()
    );
    let cache = lines[2].get("stats").unwrap().get("result_cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
}
