//! End-to-end tests of the cost-model plumbing in the `mao` driver:
//! `mao probe --sweep/--show` and the differential `mao check
//! --cost-model`. Each invocation is its own process, so installing a
//! table never races the process-global provider other tests read.

use std::path::PathBuf;
use std::process::Command;

use mao_x86::cost::CostModel;

fn mao() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mao"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mao-costcli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A hand-set table written through the real serializer: content-identical
/// to the builtin, provenance marked so the output proves which table ran.
fn write_table(dir: &PathBuf) -> PathBuf {
    let mut model = CostModel::core2();
    model.name = "cli-test-table".to_string();
    model.provenance.source = "probe/sim".to_string();
    model.provenance.seed = 23;
    let path = dir.join("table.mpt");
    model.write_mpt(&path).expect("write table");
    path
}

#[test]
fn probe_sweep_writes_a_table_show_round_trips_it() {
    let dir = tempdir("sweep");
    let path = dir.join("swept.mpt");
    let out = mao()
        .args(["probe", "--sweep", "--trips", "600", "--seed", "5", "-o"])
        .arg(&path)
        .output()
        .expect("driver runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("probe/sim"), "{stdout}");
    assert!(stdout.contains("wrote"), "{stdout}");

    // The written table loads through the library and carries provenance.
    let model = CostModel::load_mpt(&path).expect("swept table loads");
    assert_eq!(model.provenance.source, "probe/sim");
    assert_eq!(model.provenance.seed, 5);
    assert!(
        model.len() >= 20,
        "catalog-sized table, got {}",
        model.len()
    );

    // --show prints the same provenance and exits zero.
    let out = mao()
        .arg("probe")
        .arg("--show")
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("probe/sim"), "{stdout}");
    assert!(stdout.contains("seed 5"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn probe_show_rejects_damaged_tables_nonzero() {
    let dir = tempdir("reject");
    let good = write_table(&dir);
    let bytes = std::fs::read(&good).unwrap();

    // Truncated, corrupted payload, version-skewed, and not-a-table: every
    // damage class must exit nonzero with a structured error.
    let trunc = dir.join("trunc.mpt");
    std::fs::write(&trunc, &bytes[..30]).unwrap();
    let mut corrupted = bytes.clone();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0xff;
    let corrupt = dir.join("corrupt.mpt");
    std::fs::write(&corrupt, &corrupted).unwrap();
    let mut skewed = bytes.clone();
    skewed[8] = 99; // container version field
    let skew = dir.join("skew.mpt");
    std::fs::write(&skew, &skewed).unwrap();
    let junk = dir.join("junk.mpt");
    std::fs::write(&junk, b"GARBAGEGARBAGEGARBAGEGARBAGE").unwrap();

    // Wrong ISA: structurally pristine, semantically unusable. Written
    // through the real serializer so only the provenance identifier is off.
    let mut foreign_model = CostModel::core2();
    foreign_model.provenance.isa = "aarch64".to_string();
    let foreign = dir.join("foreign.mpt");
    std::fs::write(&foreign, foreign_model.to_mpt_bytes()).unwrap();

    for (path, needle) in [
        (&trunc, "truncated"),
        (&corrupt, "checksum"),
        (&skew, "version"),
        (&junk, "magic"),
        (&foreign, "wrong ISA"),
    ] {
        let out = mao().arg("probe").arg("--show").arg(path).output().unwrap();
        assert!(!out.status.success(), "{} must be rejected", path.display());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{}: {stderr}", path.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_with_cost_model_runs_differentially_and_reports_the_table() {
    let dir = tempdir("diff");
    let table = write_table(&dir);
    let out = mao()
        .args(["check", "--seed", "7", "--cases", "4", "--jobs", "2"])
        .args(["--passes", "SCHED,LOOP16"])
        .arg("--cost-model")
        .arg(&table)
        .output()
        .expect("driver runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("cost model `cli-test-table`"), "{stdout}");
    assert!(stdout.contains("probe/sim"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_refuses_a_rejected_cost_model() {
    let dir = tempdir("refuse");
    let bad = dir.join("bad.mpt");
    std::fs::write(&bad, b"definitely not a table").unwrap();
    let out = mao()
        .args(["check", "--cases", "1"])
        .arg("--cost-model")
        .arg(&bad)
        .output()
        .expect("driver runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load cost model"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_divergences_under_a_table_persist_to_the_regression_corpus() {
    // The injected miscompile stands in for a "pass divergence under
    // measured costs": with --cost-model AND --regress-dir, the caught
    // failure must be ddmin-shrunk and persisted like any other.
    let dir = tempdir("persist");
    let table = write_table(&dir);
    let regress = dir.join("regressions");
    let out = mao()
        .args(["check", "--inject-miscompile", "--seed", "3"])
        .arg("--cost-model")
        .arg(&table)
        .arg("--regress-dir")
        .arg(&regress)
        .output()
        .expect("driver runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("cost model `cli-test-table`"), "{stdout}");
    assert!(stdout.contains("persisted to"), "{stdout}");
    let persisted: Vec<_> = std::fs::read_dir(&regress)
        .expect("regress dir exists")
        .collect();
    assert!(!persisted.is_empty(), "shrunk divergence files on disk");
    let _ = std::fs::remove_dir_all(&dir);
}
