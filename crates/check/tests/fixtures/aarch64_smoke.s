	.text
	.globl	clamp_sum
	.type	clamp_sum, @function
clamp_sum:
	sub	sp, sp, #16
	str	x19, [sp, #8]
	mov	x19, x0
	nop
	cmp	x19, #0
	b.lt	.Lneg
	add	x0, x19, x1
	nop
	b.ge	.Ldone
.Lneg:
	mov	x0, #0
	bl	report_clamp
.Ldone:
	ldr	x19, [sp, #8]
	add	sp, sp, #16
	ret
	.type	report_clamp, @function
report_clamp:
	nop
	mov	x0, #1
	ret
