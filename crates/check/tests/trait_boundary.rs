//! The ISA trait boundary must be invisible on x86-64: routing the paper
//! kernels through every execution path with the ISA threaded explicitly
//! (`optimize_isa(.., IsaId::X86_64)`) has to produce bytes identical to
//! the pre-boundary entry point (`MaoUnit::parse`, no ISA argument
//! anywhere). This is the satellite differential gate for the trait
//! extraction — any behavioral drift behind the boundary (parser dialect,
//! snapshot tag, engine cache key, pass gating) shows up here as a byte
//! diff on a real kernel.

use mao::isa::IsaId;
use mao::pass::{parse_invocations, run_pipeline_with, PipelineConfig};
use mao::MaoUnit;
use mao_check::paths::PathRunner;
use mao_corpus::kernels;

/// A meaty x86 pipeline: scalar cleanups, the scheduler, layout consumers.
/// (SUPEROPT and the stochastic NOPIN are left out to keep the reference
/// run exactly reproducible without registry-order coupling.)
const PASSES: &str = "REDTEST:ADDADD:CONSTFOLD:DCE:SCHED:BRALIGN:NOPKILL:INSTPREP";

/// The historical default path, exactly as the driver ran before the
/// boundary existed: parse with no ISA in sight, pipeline at `--jobs 1`,
/// emit.
fn legacy_reference(asm: &str) -> String {
    let mut unit = MaoUnit::parse(asm).expect("paper kernel parses");
    let invs = parse_invocations(PASSES).expect("pass string parses");
    run_pipeline_with(&mut unit, &invs, None, &PipelineConfig { jobs: 1 })
        .expect("reference pipeline runs");
    unit.emit()
}

#[test]
fn x86_behind_the_trait_is_byte_identical_on_paper_kernels() {
    let runner = PathRunner::new(4);
    let suite = kernels::paper_suite(8);
    assert!(!suite.is_empty());
    let mut transformed_any = false;
    for w in &suite {
        let reference = legacy_reference(&w.asm);
        if reference != MaoUnit::parse(&w.asm).unwrap().emit() {
            transformed_any = true;
        }
        for path in runner.all() {
            let got = runner
                .optimize_isa(path, &w.asm, PASSES, IsaId::X86_64)
                .unwrap_or_else(|e| panic!("kernel `{}` failed on {path:?}: {e}", w.name));
            assert_eq!(
                got, reference,
                "kernel `{}` diverged from the pre-boundary reference on {path:?}",
                w.name
            );
        }
    }
    assert!(
        transformed_any,
        "the pipeline was a no-op on every paper kernel — the gate is vacuous"
    );
}
