//! The `mao` command-line driver.
//!
//! One-shot mode mirrors the paper's invocation style:
//!
//! ```text
//! mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s
//! ```
//!
//! `--mao=` options select and order the passes; everything else is treated
//! as an input assembly file (the real MAO forwards unknown options to gas;
//! this reproduction has no gas behind it, so unknown options are reported).
//! The pseudo-passes `READ` (implicit first) and `ASM` (emission, with an
//! `o[path]` option) frame the pipeline exactly as §III.A describes.
//!
//! Service mode keeps the optimizer resident between requests:
//!
//! ```text
//! mao serve --listen unix:/tmp/maod.sock --shards 4 --cache-dir /var/cache/maod
//! mao client --listen unix:/tmp/maod.sock --passes REDTEST:ADDADD in.s
//! mao client --stats
//! mao batch < requests.ndjson
//! mao loadgen --requests 500 --connections 4 --p99-limit-us 2000000
//! ```
//!
//! Check mode runs the differential correctness harness (see the
//! `mao-check` crate docs):
//!
//! ```text
//! mao check --seed 42 --cases 500
//! mao check --smoke
//! mao check --cost-model core2.mpt --regress-dir tests/regressions
//! ```
//!
//! `--cost-model` runs the same differential sweep with a measured `.mpt`
//! table installed as the process-global cost model, so pass bugs that
//! only appear under calibrated numbers are caught, ddmin-shrunk, and
//! persisted like any other divergence.
//!
//! Superopt mode runs the search-based superoptimizer (see the
//! `mao-superopt` crate docs) over one input, with an optional persistent
//! learned-rewrite cache:
//!
//! ```text
//! mao superopt --seed 42 --cache-dir /var/cache/mao-rewrites in.s -o out.s
//! mao superopt --smoke --seed 42
//! mao superopt --inject-bogus-rewrite --smoke
//! ```
//!
//! Probe mode runs the §IV characterization harness (see the `mao-probe`
//! crate docs): a calibration sweep fits per-mnemonic latency/throughput/
//! port-pressure tables plus machine parameters and writes them as a
//! versioned `.mpt` file that every port/latency-sensitive pass loads
//! through the process-global cost provider:
//!
//! ```text
//! mao probe --sweep --profile core2 -o core2.mpt
//! mao probe --show core2.mpt
//! mao probe --calibrate-profile my-box -o my-box.mpt
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use mao::pass::{
    parse_invocations, registry, run_pipeline_observed, PassInvocation, PipelineConfig,
};
use mao::{AnalysisCache, MaoUnit, Obs};
use mao_serve::engine::{Engine, EngineConfig};
use mao_serve::json::Json;
use mao_serve::protocol::{OptimizeRequest, Request};
use mao_serve::server::Listen;
use mao_serve::Client;

fn usage() -> &'static str {
    "usage: mao [--mao=PASS[=opt[val],...][:PASS...]]... [--jobs N] [--profile FILE]\n\
     \x20          [--isa x86-64|aarch64] [--emit-snapshot FILE] [--snapshot-dir DIR]\n\
     \x20          [--list-passes] input.s|input.msnap\n\
     \x20      mao serve  [--listen ADDR] [--shards N] [--jobs N] [--timeout-ms N]\n\
     \x20                 [--max-pending N] [--cache-dir DIR] [--cache-max-bytes N]\n\
     \x20                 [--cache-fsync] [--idle-timeout-ms N] [--cache-cap N]\n\
     \x20                 [--analysis-cache-cap N] [--max-request-bytes N]\n\
     \x20                 [--snapshot-dir DIR] [--snapshot-max-bytes N]\n\
     \x20                 [--cost-model FILE.mpt]\n\
     \x20      mao client [--listen ADDR] [--passes STR] [--jobs N] [--timeout-ms N]\n\
     \x20                 [--timeout SECS] [--no-cache] [--isa ISA] [-o FILE] input.s\n\
     \x20                 | --stats | --metrics | --ping | --shutdown\n\
     \x20                 (exit 3 = shed with BUSY, exit 4 = timed out)\n\
     \x20      mao batch  [--shards N] [--jobs N] [--timeout-ms N] [--cache-cap N]\n\
     \x20      mao loadgen [--listen ADDR] [--requests N] [--connections N]\n\
     \x20                 [--depth N] [--hot-keys N] [--cold-pct N] [--malformed-pct N]\n\
     \x20                 [--passes STR] [--p50-limit-us N] [--p99-limit-us N] [--json]\n\
     \x20      mao check  [--seed N] [--cases N] [--passes A,B:C,...] [--jobs N]\n\
     \x20                 [--budget N] [--regress-dir DIR] [--inject-miscompile]\n\
     \x20                 [--cost-model FILE.mpt] [--isa ISA] [--smoke] [--verbose]\n\
     \x20      mao superopt [--seed N] [--jobs N] [--cache-dir DIR] [--min-window N]\n\
     \x20                 [--max-window N] [--diff-states N] [--enum-max N]\n\
     \x20                 [--iters N] [--max-candidates N] [--inject-bogus-rewrite]\n\
     \x20                 [--smoke] [-o FILE] input.s\n\
     \x20      mao probe  --sweep [--profile core2|opteron] [--backend sim|wall]\n\
     \x20                 [--seed N] [--name NAME] [--trips N] [-o FILE.mpt]\n\
     \x20                 | --show FILE.mpt\n\
     \x20                 | --calibrate-profile NAME [--profile P] [--seed N]\n\
     \x20                 [-o FILE.mpt]\n\
     \n\
     --isa ISA  target instruction set: x86-64 (default) or aarch64.\n\
     \x20           Selects the parser dialect, gates ISA-specific passes, and\n\
     \x20           keys every cache. `mao check --isa aarch64` runs the\n\
     \x20           structural sweep (no simulator oracle for aarch64 yet).\n\
     --jobs N   worker threads for function-level passes (0 = all cores;\n\
     \x20           default 1, or the MAO_JOBS environment variable when set).\n\
     \x20           Output is byte-identical for every N.\n\
     --profile FILE   record every pass/function span and write a Chrome\n\
     \x20           trace (chrome://tracing, Perfetto) to FILE after the run.\n\
     --emit-snapshot FILE   write the parsed unit as a compact binary IR\n\
     \x20           snapshot (loadable in place of the .s input later).\n\
     --snapshot-dir DIR   content-addressed snapshot store keyed by input\n\
     \x20           content hash: previously seen inputs load their parsed\n\
     \x20           IR from disk and skip text parsing entirely.\n\
     --metrics  fetch the daemon's metrics registry as Prometheus text.\n\
     ADDR is `unix:/path`, `tcp:host:port`, or a bare socket path\n\
     (default unix:/tmp/maod.sock, or the MAOD_SOCKET environment variable).\n\
     The ASM pseudo-pass emits assembly: ASM=o[/path/to/out.s] (default stdout).\n\
     Without any ASM pass, the transformed unit is emitted to stdout."
}

fn default_listen() -> String {
    std::env::var("MAOD_SOCKET").unwrap_or_else(|_| "unix:/tmp/maod.sock".to_string())
}

fn main() -> ExitCode {
    // Extension passes join the registry before any pipeline parses pass
    // strings — SUPEROPT is then addressable from every mode (one-shot
    // --mao=, serve/client, check, and the superopt subcommand).
    mao_superopt::register();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("superopt") => cmd_superopt(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        _ => cmd_oneshot(&args),
    }
}

/// Shared `--flag VALUE` scanner for the service subcommands.
struct ArgParser<'a> {
    args: std::slice::Iter<'a, String>,
}

impl<'a> ArgParser<'a> {
    fn new(args: &'a [String]) -> ArgParser<'a> {
        ArgParser { args: args.iter() }
    }

    fn next(&mut self) -> Option<&'a String> {
        self.args.next()
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.args
            .next()
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
    }

    fn numeric<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        self.value(flag)?
            .parse()
            .map_err(|_| format!("{flag} needs a numeric value"))
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut listen = default_listen();
    let mut config = EngineConfig::default();
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--listen" => listen = parser.value("--listen")?.to_string(),
                // --workers survives as an alias from the pre-shard daemon.
                "--shards" | "--workers" => config.shards = parser.numeric("--shards")?,
                "--jobs" => config.jobs = parser.numeric("--jobs")?,
                "--timeout-ms" => config.timeout_ms = parser.numeric("--timeout-ms")?,
                "--max-pending" => config.max_pending = parser.numeric("--max-pending")?,
                "--cache-dir" => config.cache_dir = Some(parser.value("--cache-dir")?.into()),
                "--cache-max-bytes" => {
                    config.cache_max_bytes = parser.numeric("--cache-max-bytes")?
                }
                "--cache-fsync" => config.cache_fsync = true,
                "--idle-timeout-ms" => {
                    config.idle_timeout_ms = parser.numeric("--idle-timeout-ms")?
                }
                "--cache-cap" => config.result_cache_capacity = parser.numeric("--cache-cap")?,
                "--analysis-cache-cap" => {
                    config.analysis_cache_capacity = parser.numeric("--analysis-cache-cap")?
                }
                "--max-request-bytes" => {
                    config.max_request_bytes = parser.numeric("--max-request-bytes")?
                }
                "--snapshot-dir" => {
                    config.snapshot_dir = Some(parser.value("--snapshot-dir")?.into())
                }
                "--snapshot-max-bytes" => {
                    config.snapshot_max_bytes = parser.numeric("--snapshot-max-bytes")?
                }
                "--cost-model" => config.cost_model = Some(parser.value("--cost-model")?.into()),
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown serve option `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao serve: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }
    let addr = match Listen::parse(&listen) {
        Ok(a) => a,
        Err(message) => {
            eprintln!("mao serve: bad --listen: {message}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match Engine::build(config) {
        Ok(e) => e,
        Err(message) => {
            eprintln!("mao serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    match mao_serve::server::serve(engine, &addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mao serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mao client` exit code when the daemon shed the request with `BUSY`.
const EXIT_BUSY: u8 = 3;
/// `mao client` exit code when the request timed out (server budget or
/// client `--timeout`).
const EXIT_TIMEOUT: u8 = 4;

fn cmd_client(args: &[String]) -> ExitCode {
    let mut listen = default_listen();
    let mut passes = String::new();
    let mut jobs: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut client_timeout: Option<std::time::Duration> = None;
    let mut use_cache = true;
    let mut isa = mao::isa::IsaId::X86_64;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut admin: Option<Request> = None;
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--listen" => listen = parser.value("--listen")?.to_string(),
                "--passes" => passes = parser.value("--passes")?.to_string(),
                "--isa" => {
                    let name = parser.value("--isa")?;
                    isa = mao::isa::IsaId::from_name(name)
                        .ok_or_else(|| format!("unknown --isa `{name}`"))?;
                }
                "--jobs" => jobs = Some(parser.numeric("--jobs")?),
                "--timeout-ms" => timeout_ms = Some(parser.numeric("--timeout-ms")?),
                "--timeout" => {
                    let secs: f64 = parser.numeric("--timeout")?;
                    client_timeout = Some(std::time::Duration::from_secs_f64(secs.max(0.001)));
                }
                "--no-cache" => use_cache = false,
                "-o" | "--out" => out = Some(parser.value("-o")?.to_string()),
                "--stats" => admin = Some(Request::Stats),
                "--metrics" => admin = Some(Request::Metrics),
                "--ping" => admin = Some(Request::Ping),
                "--shutdown" => admin = Some(Request::Shutdown),
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown client option `{other}`"))
                }
                input => inputs.push(input.to_string()),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao client: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }
    let addr = match Listen::parse(&listen) {
        Ok(a) => a,
        Err(message) => {
            eprintln!("mao client: bad --listen: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect_with_io_timeout(&addr, client_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mao client: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Socket-level timeouts surface as WouldBlock/TimedOut; scripts need
    // to tell "daemon too slow" apart from "daemon broken".
    let io_exit = |e: &std::io::Error| -> ExitCode {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ExitCode::from(EXIT_TIMEOUT)
        } else {
            ExitCode::FAILURE
        }
    };

    if let Some(request) = admin {
        let raw_metrics = request == Request::Metrics;
        return match client.request(&request) {
            Ok(response) => {
                // Metrics are Prometheus text; print the payload raw so the
                // output can be piped straight into a scraper or promtool.
                match response.get("metrics").and_then(Json::as_str) {
                    Some(text) if raw_metrics => print!("{text}"),
                    _ => println!("{}", response.to_string()),
                }
                let _ = std::io::stdout().flush();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mao client: {e}");
                io_exit(&e)
            }
        };
    }

    let Some(input) = inputs.first() else {
        eprintln!("mao client: no input file\n{}", usage());
        return ExitCode::FAILURE;
    };
    let asm = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mao client: cannot read `{input}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = Request::Optimize(OptimizeRequest {
        asm,
        passes,
        jobs,
        timeout_ms,
        use_cache,
        isa,
    });
    let response = match client.request(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mao client: {e}");
            return io_exit(&e);
        }
    };
    if response.get("status").and_then(Json::as_str) != Some("ok") {
        let (kind, message) = match response.get("error") {
            Some(e) => (
                e.get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                e.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            ),
            None => ("?".to_string(), response.to_string()),
        };
        eprintln!("mao client: server error [{kind}]: {message}");
        // Shed and timed-out requests get their own exit codes so build
        // scripts can back off and retry instead of failing the build.
        return match kind.as_str() {
            "busy" => ExitCode::from(EXIT_BUSY),
            "timeout" => ExitCode::from(EXIT_TIMEOUT),
            _ => ExitCode::FAILURE,
        };
    }
    // Trace and per-pass stats to stderr, matching one-shot mode's format.
    if let Some(trace) = response.get("trace").and_then(Json::as_arr) {
        for line in trace {
            if let Some(line) = line.as_str() {
                eprintln!("[mao] {line}");
            }
        }
    }
    if let Some(passes) = response
        .get("stats")
        .and_then(|s| s.get("passes"))
        .and_then(Json::as_arr)
    {
        for pass in passes {
            let name = pass.get("name").and_then(Json::as_str).unwrap_or("?");
            let transformations = pass
                .get("transformations")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let matches = pass.get("matches").and_then(Json::as_u64).unwrap_or(0);
            if transformations > 0 || matches > 0 {
                eprintln!("[mao] {name}: {transformations} transformations, {matches} matches");
            }
        }
    }
    if let Some(cache) = response.get("cache").and_then(Json::as_str) {
        eprintln!("[mao] cache: {cache}");
    }
    let asm_out = response.get("asm").and_then(Json::as_str).unwrap_or("");
    match out.as_deref() {
        Some("-") | None => {
            print!("{asm_out}");
            let _ = std::io::stdout().flush();
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, asm_out) {
                eprintln!("mao client: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let mut config = EngineConfig::default();
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--shards" | "--workers" => config.shards = parser.numeric("--shards")?,
                "--jobs" => config.jobs = parser.numeric("--jobs")?,
                "--timeout-ms" => config.timeout_ms = parser.numeric("--timeout-ms")?,
                "--cache-cap" => config.result_cache_capacity = parser.numeric("--cache-cap")?,
                "--max-request-bytes" => {
                    config.max_request_bytes = parser.numeric("--max-request-bytes")?
                }
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown batch option `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao batch: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }
    let engine = Engine::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match mao_serve::run_batch(&engine, stdin.lock(), stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mao batch: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_loadgen(args: &[String]) -> ExitCode {
    let mut listen = default_listen();
    let mut config = mao_serve::loadgen::LoadgenConfig::default();
    let mut json_out = false;
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--listen" => listen = parser.value("--listen")?.to_string(),
                "--requests" => config.requests = parser.numeric("--requests")?,
                "--connections" => config.connections = parser.numeric("--connections")?,
                "--depth" => config.pipeline_depth = parser.numeric("--depth")?,
                "--hot-keys" => config.hot_keys = parser.numeric("--hot-keys")?,
                "--cold-pct" => config.cold_pct = parser.numeric("--cold-pct")?,
                "--malformed-pct" => config.malformed_pct = parser.numeric("--malformed-pct")?,
                "--passes" => config.passes = parser.value("--passes")?.to_string(),
                "--p50-limit-us" => config.p50_limit_us = Some(parser.numeric("--p50-limit-us")?),
                "--p99-limit-us" => config.p99_limit_us = Some(parser.numeric("--p99-limit-us")?),
                "--json" => json_out = true,
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown loadgen option `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao loadgen: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }
    config.addr = match Listen::parse(&listen) {
        Ok(a) => a,
        Err(message) => {
            eprintln!("mao loadgen: bad --listen: {message}");
            return ExitCode::FAILURE;
        }
    };
    let report = match mao_serve::loadgen::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mao loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json_out {
        println!("{}", report.to_json().to_string());
    } else {
        println!(
            "mao loadgen: {} requests in {:.2}s ({:.1} req/s)",
            report.sent,
            report.elapsed_s,
            report.throughput_rps()
        );
        println!(
            "  ok {} (hit {} / hit_disk {} / miss {}), busy {}, expected_err {}, unexpected_err {}",
            report.ok,
            report.cache_hits,
            report.cache_disk_hits,
            report.cache_misses,
            report.busy,
            report.expected_errors,
            report.unexpected_errors
        );
        println!(
            "  latency: client p50 {}us p99 {}us | service p50 {:.0}us p99 {:.0}us",
            report.client_p50_us,
            report.client_p99_us,
            report.service_p50_us,
            report.service_p99_us
        );
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        for failure in &report.failures {
            eprintln!("mao loadgen: GATE FAILED: {failure}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut config = mao_check::CheckConfig::default();
    let mut inject = false;
    let mut smoke = false;
    let mut isa = mao::isa::IsaId::X86_64;
    let mut cost_model: Option<String> = None;
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--seed" => config.seed = parser.numeric("--seed")?,
                "--cost-model" => cost_model = Some(parser.value("--cost-model")?.to_string()),
                "--cases" => config.cases = parser.numeric("--cases")?,
                "--passes" => {
                    config.passes = Some(
                        parser
                            .value("--passes")?
                            .split(',')
                            .map(str::to_string)
                            .collect(),
                    )
                }
                "--jobs" => config.jobs = parser.numeric("--jobs")?,
                "--budget" => config.budget = parser.numeric("--budget")?,
                "--regress-dir" => config.regress_dir = Some(parser.value("--regress-dir")?.into()),
                "--inject-miscompile" => inject = true,
                "--isa" => {
                    let name = parser.value("--isa")?;
                    isa = mao::isa::IsaId::from_name(name)
                        .ok_or_else(|| format!("unknown --isa `{name}`"))?;
                }
                // The CI stage: small, fast, fixed seed, every ISA.
                "--smoke" => {
                    smoke = true;
                    config.seed = 42;
                    config.cases = 25;
                }
                "--verbose" | "-v" => config.verbose = true,
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown check option `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao check: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }

    // Differential mode: install the measured table before any pipeline
    // runs, so the whole sweep checks the passes under those numbers. A
    // rejected table aborts the run — it must never be half-installed.
    if let Some(path) = &cost_model {
        match mao_check::install_cost_model(std::path::Path::new(path)) {
            Ok(model) => println!(
                "mao check: cost model `{}` ({}, fingerprint {:016x})",
                model.name,
                model.provenance.source,
                model.fingerprint()
            ),
            Err(message) => {
                eprintln!("mao check: {message}");
                return ExitCode::FAILURE;
            }
        }
    }

    if inject {
        // Fault-injection self-test: MISOPT must be caught, shrunk, and
        // (when --regress-dir is given) persisted.
        return match mao_check::run_injection_selftest(config.seed, config.regress_dir.as_deref()) {
            Ok(failures) => {
                for f in &failures {
                    println!(
                        "caught {} [{} via {}]: {}",
                        f.case,
                        f.passes,
                        f.path.name(),
                        f.detail
                    );
                    if let Some(path) = &f.saved {
                        println!("  persisted to {}", path.display());
                    }
                }
                println!(
                    "mao check: injection self-test caught {} miscompile(s)",
                    failures.len()
                );
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("mao check: INJECTION SELF-TEST FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }

    // The AArch64 leg: structural matrix (no simulator oracle). `--isa
    // aarch64` runs it alone; `--smoke` appends it to the x86 sweep so CI
    // covers both instantiations in one invocation.
    if isa == mao::isa::IsaId::Aarch64 {
        let report = mao_check::run_structural_check(isa, &config);
        println!(
            "mao check [{isa}]: structural sweep -> {} cases, {} comparisons, {} failure(s)",
            report.cases,
            report.comparisons,
            report.failures.len()
        );
        return report_check(&format!("check [{isa}]"), &report);
    }
    let report = mao_check::run_check(&config);
    println!(
        "mao check: seed {} -> {} cases ({} skipped), {} oracle comparisons ({} deduped), {} failure(s)",
        config.seed,
        report.cases,
        report.skipped,
        report.comparisons,
        report.deduped,
        report.failures.len()
    );
    let x86 = report_check("check", &report);
    if !smoke {
        return x86;
    }
    let a64_config = mao_check::CheckConfig {
        passes: None, // structural sweep picks the ISA-neutral set
        ..config
    };
    let a64 = mao_check::run_structural_check(mao::isa::IsaId::Aarch64, &a64_config);
    println!(
        "mao check: aarch64 structural leg -> {} cases, {} comparisons, {} failure(s)",
        a64.cases,
        a64.comparisons,
        a64.failures.len()
    );
    let a64 = report_check("check [aarch64]", &a64);
    if x86 == ExitCode::SUCCESS && a64 == ExitCode::SUCCESS {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print a sweep's failures (if any) and fold it to an exit code.
fn report_check(tag: &str, report: &mao_check::CheckReport) -> ExitCode {
    if report.ok() {
        return ExitCode::SUCCESS;
    }
    for f in &report.failures {
        eprintln!(
            "FAIL [{tag}] {} [{} via {}]: {}",
            f.case,
            f.passes,
            f.path.name(),
            f.detail
        );
        eprintln!("  shrunk to:\n{}", indent(&f.shrunk_asm));
        match &f.saved {
            Some(path) => eprintln!("  persisted to {}", path.display()),
            None => eprintln!("  (pass --regress-dir to persist)"),
        }
    }
    ExitCode::FAILURE
}

fn cmd_superopt(args: &[String]) -> ExitCode {
    let mut seed: u64 = 0;
    let mut jobs: usize = 1;
    let mut min_window: usize = 3;
    let mut max_window: usize = 8;
    let mut diff_states: usize = 5;
    let mut enum_max: Option<usize> = None;
    let mut iters: Option<usize> = None;
    let mut max_candidates: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut inject = false;
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--seed" => seed = parser.numeric("--seed")?,
                "--jobs" => jobs = parser.numeric("--jobs")?,
                "--min-window" => min_window = parser.numeric("--min-window")?,
                "--max-window" => max_window = parser.numeric("--max-window")?,
                "--diff-states" => diff_states = parser.numeric("--diff-states")?,
                "--enum-max" => enum_max = Some(parser.numeric("--enum-max")?),
                "--iters" => iters = Some(parser.numeric("--iters")?),
                "--max-candidates" => max_candidates = Some(parser.numeric("--max-candidates")?),
                "--cache-dir" => cache_dir = Some(parser.value("--cache-dir")?.to_string()),
                "--inject-bogus-rewrite" => inject = true,
                "--smoke" => smoke = true,
                "-o" | "--out" => out = Some(parser.value("-o")?.to_string()),
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown superopt option `{other}`"))
                }
                input => inputs.push(input.to_string()),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao superopt: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }

    // The CI stage: the bundled smoke unit, a fixed seed, small budgets.
    let text = if smoke {
        if seed == 0 {
            seed = 42;
        }
        iters.get_or_insert(64);
        max_candidates.get_or_insert(96);
        mao_superopt::SMOKE_ASM.to_string()
    } else {
        let Some(input) = inputs.first() else {
            eprintln!("mao superopt: no input file\n{}", usage());
            return ExitCode::FAILURE;
        };
        match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mao superopt: cannot read `{input}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut unit = match MaoUnit::parse(&text) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("mao superopt: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Assemble the pass invocation through the normal option grammar so the
    // CLI exercises exactly what `--mao=SUPEROPT=...` would.
    let mut spec = format!(
        "{}=seed[{seed}],min-window[{min_window}],max-window[{max_window}],diff-states[{diff_states}]",
        mao_superopt::PASS_NAME
    );
    if let Some(n) = enum_max {
        spec.push_str(&format!(",enum-max[{n}]"));
    }
    if let Some(n) = iters {
        spec.push_str(&format!(",iters[{n}]"));
    }
    if let Some(n) = max_candidates {
        spec.push_str(&format!(",max-candidates[{n}]"));
    }
    if let Some(dir) = &cache_dir {
        spec.push_str(&format!(",cache-dir[{dir}]"));
    }
    if inject {
        spec.push_str(",inject-bogus-rewrite[1]");
    }
    let invocations = match parse_invocations(&spec) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mao superopt: {e}");
            return ExitCode::FAILURE;
        }
    };

    let config = PipelineConfig { jobs };
    let obs = Obs::aggregating();
    let analyses = Arc::new(AnalysisCache::new());
    let report =
        match run_pipeline_observed(&mut unit, &invocations, None, &config, &analyses, &obs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mao superopt: {e}");
                return ExitCode::FAILURE;
            }
        };
    for line in &report.trace {
        eprintln!("[mao] {line}");
    }

    let counter = |name: &str| obs.metrics.counter_value(name);
    let rewrites = counter("mao_superopt_rewrites_total");
    eprintln!(
        "[mao] superopt: {} windows, {} searches, {} candidates, {} rewrites",
        counter("mao_superopt_windows_total"),
        counter("mao_superopt_searches_total"),
        counter("mao_superopt_candidates_total"),
        rewrites,
    );
    eprintln!(
        "[mao] superopt: cache {} hits / {} misses; rejected {} diff, {} oracle",
        counter("mao_superopt_cache_hits_total"),
        counter("mao_superopt_cache_misses_total"),
        counter("mao_superopt_diff_rejects_total"),
        counter("mao_superopt_oracle_rejects_total"),
    );

    if inject {
        // Fault-injection self-test: the seeded bogus rewrite must have hit
        // the two-phase verifier and bounced. The pass itself fails hard if
        // an injected rewrite is ever accepted; this guards the "nothing
        // was injected at all" hole.
        let rejected = counter("mao_superopt_injected_rejected_total");
        if rejected == 0 {
            eprintln!(
                "mao superopt: INJECTION SELF-TEST FAILED: no injected rewrite was exercised"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("mao superopt: injection self-test rejected {rejected} bogus rewrite(s)");
    }

    match out.as_deref() {
        Some("-") | None if smoke => {} // smoke is a gate, not a transform
        Some("-") | None => {
            print!("{}", unit.emit());
            let _ = std::io::stdout().flush();
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, unit.emit()) {
                eprintln!("mao superopt: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke && !inject && rewrites == 0 {
        eprintln!("mao superopt: SMOKE FAILED: no rewrite discovered on the smoke unit");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_probe(args: &[String]) -> ExitCode {
    use mao_probe::{run_sweep, Processor, SimBackend, SweepConfig, WallClockBackend};
    use mao_x86::cost::CostModel;

    let mut sweep = false;
    let mut show: Option<String> = None;
    let mut calibrate: Option<String> = None;
    let mut profile = "core2".to_string();
    let mut backend = "sim".to_string();
    let mut cfg = SweepConfig::default();
    let mut out: Option<String> = None;
    let mut parser = ArgParser::new(args);
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = parser.next() {
            match arg.as_str() {
                "--sweep" => sweep = true,
                "--show" => show = Some(parser.value("--show")?.to_string()),
                "--calibrate-profile" => {
                    calibrate = Some(parser.value("--calibrate-profile")?.to_string())
                }
                "--profile" => profile = parser.value("--profile")?.to_string(),
                "--backend" => backend = parser.value("--backend")?.to_string(),
                "--seed" => cfg.seed = parser.numeric("--seed")?,
                "--name" => cfg.name = Some(parser.value("--name")?.to_string()),
                "--trips" => cfg.trip_count = parser.numeric("--trips")?,
                "-o" | "--out" => out = Some(parser.value("-o")?.to_string()),
                "--help" | "-h" => {
                    println!("{}", usage());
                    std::process::exit(0);
                }
                other => return Err(format!("unknown probe option `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(message) = parsed {
        eprintln!("mao probe: {message}\n{}", usage());
        return ExitCode::FAILURE;
    }

    // --show: load and display a table. Every rejection (bad magic, version
    // skew, truncation, checksum mismatch) exits nonzero with the structured
    // load error and the table is never installed — the CI corrupt-table
    // stages key off this exit code.
    if let Some(path) = show {
        return match CostModel::load_mpt(std::path::Path::new(&path)) {
            Ok(model) => {
                print_model(&model);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mao probe: cannot load `{path}`: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if !sweep && calibrate.is_none() {
        eprintln!(
            "mao probe: nothing to do (pass --sweep, --show FILE or --calibrate-profile NAME)\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    }

    let proc = match profile.as_str() {
        "core2" | "intel" => Processor::core2(),
        "opteron" | "amd" => Processor::opteron(),
        other => {
            eprintln!("mao probe: unknown --profile `{other}` (core2|opteron)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(name) = &calibrate {
        cfg.name = Some(name.clone());
    }

    let obs = Obs::aggregating();
    let result = match backend.as_str() {
        "sim" => run_sweep(&mut SimBackend, &proc, &cfg, &obs),
        "wall" => {
            if !WallClockBackend::available() {
                eprintln!(
                    "mao probe: wall-clock backend unavailable on this host \
                     (needs x86-64 linux and a working `cc`)"
                );
                return ExitCode::FAILURE;
            }
            run_sweep(&mut WallClockBackend, &proc, &cfg, &obs)
        }
        other => {
            eprintln!("mao probe: unknown --backend `{other}` (sim|wall)");
            return ExitCode::FAILURE;
        }
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mao probe: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "probe sweep: {} on {} (seed {})",
        report.model.provenance.source,
        report.model.provenance.target,
        report.model.provenance.seed
    );
    println!(
        "{:<10} {:>7} {:>6} {:>5}  {:>9} {:>12} {:>8}",
        "mnemonic", "latency", "rtp", "ports", "cycle-cpi", "disjoint-cpi", "chain"
    );
    for m in &report.measurements {
        let c = report.model.get(m.spec.mnemonic);
        println!(
            "{:<10} {:>7} {:>6.2} {:>5}  {:>9.2} {:>12.2} {:>8}",
            m.spec.name,
            c.latency,
            c.recip_tp_x100 as f64 / 100.0,
            c.port_mask.count_ones(),
            m.cycle_cpi,
            m.disjoint_cpi,
            if m.chain_consistent() {
                "ok"
            } else {
                "MISMATCH"
            }
        );
    }
    for (name, err) in &report.skipped {
        println!("{name:<10} skipped: {err}");
    }
    let mach = report.model.machine;
    println!(
        "machine: issue {} wide, {} ports{}, decode line {}B, lsd {} lines, \
         predictor shift {}, load-to-use {}",
        mach.issue_width,
        mach.num_ports,
        if mach.symmetric_ports {
            " (symmetric)"
        } else {
            ""
        },
        mach.decode_line,
        mach.lsd_max_lines,
        mach.predictor_shift,
        mach.load_latency
    );
    println!(
        "measurements: {} stable, {} unstable",
        obs.metrics.counter_value("mao_probe_measurements_total"),
        obs.metrics.counter_value("mao_probe_unstable_total")
    );

    let out_path = out.or_else(|| calibrate.as_ref().map(|n| format!("{n}.mpt")));
    if let Some(path) = &out_path {
        if let Err(e) = report.model.write_mpt(std::path::Path::new(path)) {
            eprintln!("mao probe: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} mnemonics, fingerprint {:016x})",
            report.model.len(),
            report.model.fingerprint()
        );
    }

    let Some(profile_name) = calibrate else {
        return ExitCode::SUCCESS;
    };

    // --calibrate-profile: the fitted table becomes a third simulation
    // profile, and the model is installed as the process-global cost
    // provider so LOOP16/SCHED/LSDFIT/BRALIGN plan with the measured
    // numbers — then the EXPERIMENTS.md tables re-run against it end to
    // end (the §V.B LOOP16 rows plus the 252.eon single-pass effects).
    let config = mao_sim::UarchConfig::from_cost_model(&report.model);
    mao_x86::cost::install(Arc::new(report.model));

    println!("\n== Table: 252.eon single-pass effects (profile `{profile_name}`) ==");
    println!("{:<14} {:>10}", "pass", "measured");
    let Some(eon) = mao_corpus::spec::spec2000_benchmark("252.eon") else {
        eprintln!("mao probe: 252.eon benchmark missing from the corpus");
        return ExitCode::FAILURE;
    };
    for pass in ["NOPKILL", "REDTEST"] {
        let (pct, _) = match mao_bench::pass_effect(&eon, pass, &config) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("mao probe: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{pass:<14} {pct:>+9.2}%");
    }

    println!("\n== Table: LOOP16 on profile `{profile_name}` ==");
    println!("{:<14} {:>10}", "benchmark", "measured");
    for name in mao_corpus::spec::SPEC2000_NAMES {
        let Some(w) = mao_corpus::spec::spec2000_benchmark(name) else {
            eprintln!("mao probe: benchmark `{name}` missing from the corpus");
            return ExitCode::FAILURE;
        };
        let (pct, rep) = match mao_bench::pass_effect(&w, "LOOP16", &config) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("mao probe: {e}");
                return ExitCode::FAILURE;
            }
        };
        let transforms = rep.stats("LOOP16").map(|s| s.transformations).unwrap_or(0);
        println!("{name:<14} {pct:>+9.2}% ({transforms} loops aligned)");
    }
    ExitCode::SUCCESS
}

/// Pretty-print a loaded `.mpt` cost table (the `mao probe --show` path).
fn print_model(model: &mao_x86::cost::CostModel) {
    let p = &model.provenance;
    println!(
        "table `{}`: {} mnemonics + default",
        model.name,
        model.len()
    );
    println!(
        "  provenance: isa {}, source {}, target {}, generator {}, seed {}, fingerprint {:016x}",
        p.isa,
        p.source,
        p.target,
        p.generator,
        p.seed,
        model.fingerprint()
    );
    let m = model.machine;
    println!(
        "  machine: issue {} wide, {} ports{}, decode line {}B, lsd {} lines, \
         predictor shift {}, load-to-use {}, mispredict {}",
        m.issue_width,
        m.num_ports,
        if m.symmetric_ports {
            " (symmetric)"
        } else {
            ""
        },
        m.decode_line,
        m.lsd_max_lines,
        m.predictor_shift,
        m.load_latency,
        m.mispredict_penalty
    );
    println!(
        "  {:<12} {:>7} {:>6} {:>10}",
        "mnemonic", "latency", "rtp", "port mask"
    );
    let d = model.default_cost;
    println!(
        "  {:<12} {:>7} {:>6.2} {:>#10b}",
        "(default)",
        d.latency,
        d.recip_tp_x100 as f64 / 100.0,
        d.port_mask
    );
    for (mnemonic, cost) in model.entries() {
        println!(
            "  {:<12} {:>7} {:>6.2} {:>#10b}",
            format!("{mnemonic:?}"),
            cost.latency,
            cost.recip_tp_x100 as f64 / 100.0,
            cost.port_mask
        );
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    | {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn cmd_oneshot(args: &[String]) -> ExitCode {
    let mut option_strings: Vec<String> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut list_passes = false;
    let mut profile_out: Option<String> = None;
    let mut emit_snapshot: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut isa_flag: Option<mao::isa::IsaId> = None;
    // Default from the environment; --jobs on the command line wins.
    let mut jobs: usize = std::env::var("MAO_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(rest) = arg.strip_prefix("--mao=") {
            option_strings.push(rest.to_string());
        } else if arg == "--list-passes" {
            list_passes = true;
        } else if arg == "--jobs" {
            let Some(n) = iter.next().and_then(|v| v.parse().ok()) else {
                eprintln!("mao: --jobs needs a numeric argument (0 = all cores)");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else if let Some(rest) = arg.strip_prefix("--jobs=") {
            let Ok(n) = rest.parse() else {
                eprintln!("mao: --jobs needs a numeric argument (0 = all cores)");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else if arg == "--isa" || arg.starts_with("--isa=") {
            let name = match arg.strip_prefix("--isa=") {
                Some(rest) => Some(rest.to_string()),
                None => iter.next().cloned(),
            };
            let Some(isa) = name.as_deref().and_then(mao::isa::IsaId::from_name) else {
                eprintln!("mao: --isa needs x86-64 or aarch64");
                return ExitCode::FAILURE;
            };
            isa_flag = Some(isa);
        } else if arg == "--profile" {
            let Some(path) = iter.next() else {
                eprintln!("mao: --profile needs an output file");
                return ExitCode::FAILURE;
            };
            profile_out = Some(path.clone());
        } else if let Some(rest) = arg.strip_prefix("--profile=") {
            profile_out = Some(rest.to_string());
        } else if arg == "--emit-snapshot" {
            let Some(path) = iter.next() else {
                eprintln!("mao: --emit-snapshot needs an output file");
                return ExitCode::FAILURE;
            };
            emit_snapshot = Some(path.clone());
        } else if let Some(rest) = arg.strip_prefix("--emit-snapshot=") {
            emit_snapshot = Some(rest.to_string());
        } else if arg == "--snapshot-dir" {
            let Some(dir) = iter.next() else {
                eprintln!("mao: --snapshot-dir needs a directory");
                return ExitCode::FAILURE;
            };
            snapshot_dir = Some(dir.clone());
        } else if let Some(rest) = arg.strip_prefix("--snapshot-dir=") {
            snapshot_dir = Some(rest.to_string());
        } else if arg == "--help" || arg == "-h" {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        } else if arg.starts_with('-') {
            eprintln!("mao: unknown option `{arg}` (gas passthrough is not supported)");
            return ExitCode::FAILURE;
        } else {
            inputs.push(arg.clone());
        }
    }

    if list_passes {
        let reg = registry();
        println!("{:<10} description", "pass");
        for (name, factory) in &reg {
            println!("{:<10} {}", name, factory().description());
        }
        println!("{:<10} emit assembly output: ASM=o[path]", "ASM");
        return ExitCode::SUCCESS;
    }

    let Some(input) = inputs.first() else {
        eprintln!("mao: no input file\n{}", usage());
        return ExitCode::FAILURE;
    };

    let raw = match std::fs::read(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mao: cannot read `{input}`: {e}");
            return ExitCode::FAILURE;
        }
    };

    // READ: parsing is "a pass as well, but called by default as the first
    // pass" (§III.A). The front end is snapshot-aware: a binary IR snapshot
    // file, or a `--snapshot-dir` entry keyed by the input's content hash,
    // replaces text parsing with a direct IR load.
    let (mut unit, snapshot_key) = if raw.starts_with(&mao_asm::snapshot::SNAPSHOT_MAGIC) {
        let key = match mao_asm::snapshot::snapshot_key(&raw) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("mao: {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // A snapshot carries its unit's ISA in the header; an explicit
        // --isa that disagrees is a structured error, not a reinterpret.
        let stamped = match mao_asm::snapshot::snapshot_isa(&raw) {
            Ok(isa) => isa,
            Err(e) => {
                eprintln!("mao: {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(requested) = isa_flag {
            if requested != stamped {
                eprintln!(
                    "mao: {input}: snapshot is `{stamped}`, but --isa asked for `{requested}`"
                );
                return ExitCode::FAILURE;
            }
        }
        match mao_asm::snapshot::decode(&raw, Some(key)) {
            Ok(entries) => {
                eprintln!("[mao] frontend: loaded snapshot `{input}` ({stamped})");
                (MaoUnit::from_entries_isa(entries, stamped), key)
            }
            Err(e) => {
                eprintln!("mao: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let isa = isa_flag.unwrap_or_default();
        let text = match String::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("mao: `{input}` is neither UTF-8 assembly nor an IR snapshot");
                return ExitCode::FAILURE;
            }
        };
        // The ISA folds into the store key, like the daemon's snapshot
        // tier: identical text parsed under two dialects must not collide.
        let key = mao_asm::snapshot::content_key(&text) ^ (u128::from(isa.tag()) << 120);
        let store = match &snapshot_dir {
            Some(dir) => match mao_serve::SnapshotStore::open(dir, 0) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("mao: cannot open snapshot dir `{dir}`: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let cached = store.as_ref().and_then(|s| s.load_key(key));
        match cached {
            Some(entries) => {
                eprintln!("[mao] frontend: snapshot hit");
                (MaoUnit::from_entries_isa(entries, isa), key)
            }
            None => {
                if store.is_some() {
                    eprintln!("[mao] frontend: snapshot miss");
                }
                let unit = match MaoUnit::parse_with_jobs_isa(&text, jobs, isa) {
                    Ok(u) => u,
                    Err(e) => {
                        eprintln!("mao: {input}:{e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(store) = &store {
                    store.put(key, unit.entries());
                }
                (unit, key)
            }
        }
    };

    if let Some(path) = &emit_snapshot {
        let bytes = mao_asm::snapshot::encode(unit.entries(), snapshot_key);
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("mao: cannot write snapshot `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[mao] frontend: wrote snapshot to {path} ({} bytes)",
            bytes.len()
        );
    }

    let mut invocations: Vec<PassInvocation> = Vec::new();
    for s in &option_strings {
        match parse_invocations(s) {
            Ok(mut invs) => invocations.append(&mut invs),
            Err(e) => {
                eprintln!("mao: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Split out ASM pseudo-passes; run optimization segments between them.
    let config = PipelineConfig { jobs };
    let obs = if profile_out.is_some() {
        Obs::recording()
    } else {
        Obs::off()
    };
    let analyses = Arc::new(AnalysisCache::new());
    let mut emitted = false;
    let mut segment: Vec<PassInvocation> = Vec::new();
    let run_segment = |unit: &mut MaoUnit, segment: &mut Vec<PassInvocation>| -> bool {
        if segment.is_empty() {
            return true;
        }
        match run_pipeline_observed(unit, segment, None, &config, &analyses, &obs) {
            Ok(report) => {
                for line in &report.trace {
                    eprintln!("[mao] {line}");
                }
                for (name, stats) in &report.passes {
                    if stats.transformations > 0 || stats.matches > 0 {
                        eprintln!(
                            "[mao] {name}: {} transformations, {} matches",
                            stats.transformations, stats.matches
                        );
                    }
                    for note in &stats.notes {
                        eprintln!("[mao] {name}: {note}");
                    }
                }
                segment.clear();
                true
            }
            Err(e) => {
                eprintln!("mao: {e}");
                false
            }
        }
    };

    for inv in invocations {
        if inv.name == "ASM" {
            if !run_segment(&mut unit, &mut segment) {
                return ExitCode::FAILURE;
            }
            let out = unit.emit();
            match inv.options.get("o") {
                Some("-") | None => {
                    print!("{out}");
                    let _ = std::io::stdout().flush();
                }
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &out) {
                        eprintln!("mao: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            emitted = true;
        } else if inv.name == "READ" {
            // Already performed; accept for command-line compatibility.
        } else {
            segment.push(inv);
        }
    }
    if !run_segment(&mut unit, &mut segment) {
        return ExitCode::FAILURE;
    }
    if !emitted {
        print!("{}", unit.emit());
        let _ = std::io::stdout().flush();
    }
    if let Some(path) = &profile_out {
        if let Err(e) = std::fs::write(path, obs.recorder.chrome_trace_json()) {
            eprintln!("mao: cannot write profile `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[mao] wrote Chrome trace profile to {path}");
    }
    ExitCode::SUCCESS
}
