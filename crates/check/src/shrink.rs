//! Failure minimization: shrink a failing unit to the smallest one that
//! still reproduces the mismatch.
//!
//! Two phases, run to a fixpoint:
//!
//! 1. **delete-entry** — ddmin-style chunk deletion over the unit's text
//!   lines, with chunk sizes n/2, n/4, …, 1;
//! 2. **simplify-operand** — rewrite each `$imm` toward `$1` then `$0`.
//!
//! The caller supplies the *interestingness predicate* ("this text still
//! mismatches under the same passes/path"). Candidates that no longer
//! parse, load, or run simply make the predicate return `false`, so no
//! validity pre-check is needed here.

/// Shrink `asm` while `still_fails` holds. Returns the minimized text
/// (always satisfies the predicate; at worst the input itself).
pub fn shrink(asm: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    debug_assert!(still_fails(asm), "shrink called on a non-failing unit");
    let mut best = asm.to_string();
    loop {
        let mut progressed = false;
        if let Some(smaller) = delete_lines(&best, &mut still_fails) {
            best = smaller;
            progressed = true;
        }
        if let Some(simpler) = simplify_immediates(&best, &mut still_fails) {
            best = simpler;
            progressed = true;
        }
        if !progressed {
            return best;
        }
    }
}

/// One full ddmin sweep over the lines. Returns a strictly smaller failing
/// text, or `None` if nothing could be deleted.
fn delete_lines(asm: &str, still_fails: &mut impl FnMut(&str) -> bool) -> Option<String> {
    let mut lines: Vec<String> = asm.lines().map(str::to_string).collect();
    let mut shrunk = false;
    let mut chunk = (lines.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < lines.len() {
            let end = (start + chunk).min(lines.len());
            let candidate: Vec<String> = lines[..start]
                .iter()
                .chain(&lines[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && still_fails(&render(&candidate)) {
                lines = candidate;
                shrunk = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    shrunk.then(|| render(&lines))
}

/// Try to rewrite each `$imm` to `$1`, then `$0`. Returns a simplified
/// failing text, or `None` if every rewrite broke the failure.
fn simplify_immediates(asm: &str, still_fails: &mut impl FnMut(&str) -> bool) -> Option<String> {
    let mut best = asm.to_string();
    let mut simplified = false;
    loop {
        let mut progressed = false;
        for (offset, value) in immediates(&best) {
            if value == "0" {
                continue; // already minimal; never rewrite upward
            }
            for target in ["1", "0"] {
                if value == target {
                    continue;
                }
                let candidate = format!(
                    "{}{}{}",
                    &best[..offset],
                    target,
                    &best[offset + value.len()..]
                );
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                    simplified = true;
                    break;
                }
            }
            if progressed {
                break; // offsets are stale after an edit; rescan
            }
        }
        if !progressed {
            break;
        }
    }
    simplified.then_some(best)
}

/// Byte offsets and texts of every `$imm` literal in the text.
fn immediates(asm: &str) -> Vec<(usize, String)> {
    let bytes = asm.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            let start = i + 1;
            let mut end = start;
            if end < bytes.len() && bytes[end] == b'-' {
                end += 1;
            }
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start && bytes[start..end] != *b"-" {
                out.push((start, asm[start..end].to_string()));
            }
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

fn render(lines: &[String]) -> String {
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deletes_irrelevant_lines() {
        let asm = "a\nb\nMAGIC\nc\nd\ne\n";
        let shrunk = shrink(asm, |s| s.contains("MAGIC"));
        assert_eq!(shrunk, "MAGIC\n");
    }

    #[test]
    fn simplifies_immediates() {
        let asm = "\taddl $4735, %eax\n";
        let shrunk = shrink(asm, |s| s.contains("addl"));
        assert_eq!(shrunk, "\taddl $0, %eax\n");
    }

    #[test]
    fn keeps_load_bearing_immediates() {
        let asm = "\tjunk\n\taddl $47, %eax\n";
        let shrunk = shrink(asm, |s| s.contains("$47"));
        assert_eq!(shrunk, "\taddl $47, %eax\n");
    }

    #[test]
    fn negative_immediates_are_scanned() {
        let imms = immediates("\taddl $-12, %eax\n\tmovl $3, %ecx\n");
        assert_eq!(imms.len(), 2);
        assert_eq!(imms[0].1, "-12");
        assert_eq!(imms[1].1, "3");
    }

    #[test]
    fn end_to_end_on_a_real_unit() {
        // Predicate: unit parses, runs, and returns 42 — everything not
        // needed for that should be deleted.
        let asm = ".type f, @function\nf:\n\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl $40, %eax\n\taddl $2, %eax\n\tmovl $7, %r10d\n\tpopq %rbp\n\tret\n";
        let returns_42 = |s: &str| {
            crate::oracle::observe(s, "f", &[], 1000)
                .ok()
                .and_then(|o| o.result.ok())
                .map(|(v, _)| v == 42)
                .unwrap_or(false)
        };
        let shrunk = shrink(asm, returns_42);
        assert!(shrunk.len() < asm.len());
        assert!(!shrunk.contains("r10d"), "dead filler deleted: {shrunk}");
        assert!(returns_42(&shrunk), "minimized unit still fails: {shrunk}");
    }
}
