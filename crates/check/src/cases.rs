//! Case generation for the differential sweep.
//!
//! Three seeded sources, mixed round-robin:
//!
//! * **kernels** — the paper's motivating kernels
//!   ([`mao_corpus::kernels::paper_suite`]) at randomized small iteration
//!   counts;
//! * **synth** — the §III.B "compiler output" generator
//!   ([`mao_corpus::compiler::generate`]) at randomized sizes and planting
//!   rates, one case per generated function;
//! * **mutants** — random but parse-checked text-level mutations of the
//!   kernels (NOP insertion, instruction duplication, scratch-register
//!   filler, immediate perturbation, planted redundancy patterns), so the
//!   sweep is not limited to shapes the generators produce on purpose.
//!
//! Mutation does not need to preserve the *kernel's* semantics — the
//! oracle compares the mutant against its own optimized form. It only
//! needs to keep units parseable; non-terminating mutants are caught by
//! the simulator's instruction budget and skipped upstream.

use mao_corpus::compiler::{generate, GeneratorConfig};
use mao_corpus::kernels;
use mao_corpus::Workload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One runnable differential test case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Display name (source + parameters).
    pub name: String,
    /// Assembly text.
    pub asm: String,
    /// Entry function.
    pub entry: String,
    /// SysV arguments.
    pub args: Vec<u64>,
    /// Simulator instruction budget.
    pub budget: u64,
}

impl Case {
    fn from_workload(name: String, w: Workload, budget: u64) -> Case {
        Case {
            name,
            asm: w.asm,
            entry: w.entry,
            args: w.args,
            budget,
        }
    }
}

/// Default per-case instruction budget. Kernel trip counts are kept small
/// by the generator, so anything past this is a runaway mutant.
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Generate `count` seeded cases.
pub fn generate_cases(seed: u64, count: usize) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x636865636b); // "check"
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        match out.len() % 3 {
            0 => out.push(kernel_case(&mut rng)),
            1 => out.extend(synth_cases(&mut rng, count - out.len())),
            _ => out.push(mutant_case(&mut rng)),
        }
    }
    out.truncate(count);
    out
}

/// A paper kernel at a randomized small size.
fn kernel_case(rng: &mut StdRng) -> Case {
    let iters = rng.random_range(3..40u64);
    let suite = kernels::paper_suite(iters);
    let pick = rng.random_range(0..suite.len());
    let w = suite[pick].clone();
    Case::from_workload(format!("kernel:{}#i{iters}", w.name), w, DEFAULT_BUDGET)
}

/// One synthetic compiler-output unit; a case per generated function.
fn synth_cases(rng: &mut StdRng, room: usize) -> Vec<Case> {
    let functions = rng.random_range(1..4usize);
    let config = GeneratorConfig {
        seed: rng.random(),
        functions,
        slots_per_function: rng.random_range(6..40usize),
        p_redzext: 0.15,
        p_test: 0.30,
        p_test_redundant: 0.5,
        p_redmov: 0.15,
        p_addadd: 0.20,
    };
    let corpus = generate(&config);
    (0..functions.min(room.max(1)))
        .map(|f| Case {
            name: format!("synth:s{:x}f{f}", config.seed),
            asm: corpus.asm.clone(),
            entry: format!("synth_fn_{f}"),
            args: Vec::new(),
            budget: DEFAULT_BUDGET,
        })
        .collect()
}

/// A kernel with 1–3 random parse-checked mutations applied.
fn mutant_case(rng: &mut StdRng) -> Case {
    let iters = rng.random_range(3..24u64);
    let suite = kernels::paper_suite(iters);
    let pick = rng.random_range(0..suite.len());
    let w = suite[pick].clone();
    let mut asm = w.asm.clone();
    let n = rng.random_range(1..4usize);
    let mut applied = 0;
    for _ in 0..n {
        let candidate = mutate_once(rng, &asm);
        if mao::MaoUnit::parse(&candidate).is_ok() {
            asm = candidate;
            applied += 1;
        }
    }
    Case {
        name: format!("mutant:{}#i{iters}m{applied}", w.name),
        asm,
        entry: w.entry,
        args: w.args,
        budget: DEFAULT_BUDGET,
    }
}

/// Indices of instruction lines that are safe to duplicate or perturb:
/// tab-indented, not control flow, not a directive.
fn insn_lines(lines: &[&str]) -> Vec<usize> {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            l.starts_with('\t')
                && !t.starts_with('.')
                && !t.starts_with('j')
                && !t.starts_with("call")
                && !t.starts_with("ret")
                && !t.ends_with(':')
        })
        .map(|(i, _)| i)
        .collect()
}

/// Apply one random text-level mutation.
fn mutate_once(rng: &mut StdRng, asm: &str) -> String {
    let lines: Vec<&str> = asm.lines().collect();
    let insns = insn_lines(&lines);
    if insns.is_empty() {
        return asm.to_string();
    }
    let at = insns[rng.random_range(0..insns.len())];
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    match rng.random_range(0..5u32) {
        // NOP insertion: shifts every later address, stressing layout.
        0 => out.insert(at, "\tnop".to_string()),
        // Duplicate a straight-line instruction.
        1 => out.insert(at, lines[at].to_string()),
        // Dead filler on caller-saved scratch (unobservable by the oracle).
        2 => {
            let k: u32 = rng.random_range(0..1000);
            out.insert(at, format!("\tmovl ${k}, %r10d"));
        }
        // Perturb an immediate in place (a different program for both
        // sides of the differential — still a valid case).
        3 => {
            if let Some(m) = perturb_immediate(rng, lines[at]) {
                out[at] = m;
            }
        }
        // Plant a redundancy pattern for the scalar passes to chew on.
        _ => {
            let planted = match rng.random_range(0..3u32) {
                0 => "\tandl $255, %r10d\n\tmov %r10d, %r10d",
                1 => "\tsubl $16, %r11d\n\ttestl %r11d, %r11d",
                _ => "\taddq $3, %r10\n\taddq $4, %r10",
            };
            out.insert(at, planted.to_string());
        }
    }
    out.join("\n") + "\n"
}

/// Bump one `$imm` on the line by a small delta, if it has one.
fn perturb_immediate(rng: &mut StdRng, line: &str) -> Option<String> {
    let dollar = line.find('$')?;
    let rest = &line[dollar + 1..];
    let end = rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit() && *c != '-')
        .map_or(rest.len(), |(i, _)| i);
    let value: i64 = rest[..end].parse().ok()?;
    let delta = rng.random_range(1..5i64);
    let new = value.checked_add(delta)?;
    Some(format!("{}{}{}", &line[..dollar + 1], new, &rest[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parseable() {
        let a = generate_cases(42, 30);
        let b = generate_cases(42, 30);
        assert_eq!(a.len(), 30);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.asm, y.asm);
        }
        for c in &a {
            mao::MaoUnit::parse(&c.asm)
                .unwrap_or_else(|e| panic!("case {} does not parse: {e}", c.name));
        }
    }

    #[test]
    fn seeds_differ() {
        let a = generate_cases(1, 12);
        let b = generate_cases(2, 12);
        assert!(a.iter().zip(&b).any(|(x, y)| x.asm != y.asm));
    }

    #[test]
    fn sources_are_mixed() {
        let cases = generate_cases(7, 20);
        assert!(cases.iter().any(|c| c.name.starts_with("kernel:")));
        assert!(cases.iter().any(|c| c.name.starts_with("synth:")));
        assert!(cases.iter().any(|c| c.name.starts_with("mutant:")));
    }
}
