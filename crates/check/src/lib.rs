//! mao-check: the differential correctness harness.
//!
//! Every pass this repo ships is an assembly-to-assembly rewrite that
//! claims to preserve semantics. This crate checks that claim the way
//! Minotaur-style verifiers do, but with the in-tree simulator as the
//! oracle: generate randomized units, optimize them through **every
//! execution path shipped** (one-shot driver, parallel driver, `maod`
//! engine with cold and warm caches, legacy-relax layout), then run
//! original and optimized in `mao-sim` from the same initial state and
//! demand observational equivalence.
//!
//! Checked per unit × pass-config:
//!
//! 1. all execution paths emit byte-identical text;
//! 2. the emitted text reparses and re-emits byte-identically
//!    (round-trip stability);
//! 3. the optimized run matches the original on return value,
//!    callee-saved registers, stored memory, and flag discipline
//!    (see [`oracle`]).
//!
//! Failures are shrunk ([`shrink`]) and persisted to the regression
//! corpus ([`regress`]), which `cargo test` replays forever after.

pub mod cases;
pub mod oracle;
pub mod paths;
pub mod regress;
pub mod shrink;

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use cases::{generate_cases, Case};
use oracle::{compare, observe, Observation};
use paths::{ExecPath, PathRunner};
use regress::{Expect, Regression};

/// Every semantics-preserving pass the sweep exercises, one invocation
/// string per pass (mirrors `tests/pass_semantics.rs`). MISOPT is *not*
/// here — it is the deliberate miscompiler used by the self-test.
pub const TRANSFORMING_PASSES: [&str; 14] = [
    "REDZEXT",
    "REDTEST",
    "REDMOV",
    "ADDADD",
    "CONSTFOLD",
    "DCE",
    "SCHED",
    "LOOP16",
    "LSDFIT",
    "BRALIGN",
    "NOPKILL",
    "NOPIN=seed[3],density[0.1]",
    "INSTPREP",
    // Small fixed budgets: the sweep checks that whatever SUPEROPT rewrites
    // is equivalent, not how much it finds.
    "SUPEROPT=seed[1],max-window[6],diff-states[3],iters[24],max-candidates[48]",
];

/// Install a measured `.mpt` cost table as the process-global cost model
/// for a differential run: every pass planned after this call uses the
/// table's numbers, so divergences that only appear under measured costs
/// surface in the same shrink-and-persist machinery as any other failure.
///
/// A table the loader rejects (corrupt, truncated, version-skewed) is an
/// error and is **never** installed. The provider is process-global: tests
/// calling this must restore `mao_x86::cost::install_builtin()` afterwards
/// (or run in their own process) so concurrent tests keep planning with
/// the numbers they expect.
pub fn install_cost_model(path: &Path) -> Result<std::sync::Arc<mao_x86::cost::CostModel>, String> {
    let model = mao_x86::cost::CostModel::load_mpt(path)
        .map_err(|e| format!("cannot load cost model {}: {e}", path.display()))?;
    let model = std::sync::Arc::new(model);
    mao_x86::cost::install(model.clone());
    Ok(model)
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Master seed for case generation.
    pub seed: u64,
    /// Number of cases to generate.
    pub cases: usize,
    /// Pass configs to check (`None` = every transforming pass alone,
    /// plus the full pipeline).
    pub passes: Option<Vec<String>>,
    /// Worker count for the parallel execution path.
    pub jobs: usize,
    /// Simulator instruction budget per run.
    pub budget: u64,
    /// Where to persist shrunk failures (`None` = don't persist).
    pub regress_dir: Option<PathBuf>,
    /// Print per-case progress.
    pub verbose: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            seed: 42,
            cases: 100,
            passes: None,
            jobs: 4,
            budget: cases::DEFAULT_BUDGET,
            regress_dir: None,
            verbose: false,
        }
    }
}

/// One confirmed, shrunk failure.
#[derive(Debug)]
pub struct Failure {
    /// Generated case name.
    pub case: String,
    /// Pass invocation string.
    pub passes: String,
    /// Execution path the failure reproduces under.
    pub path: ExecPath,
    /// Human-readable divergence.
    pub detail: String,
    /// Minimized failing assembly.
    pub shrunk_asm: String,
    /// Where the regression file landed, if persisted.
    pub saved: Option<PathBuf>,
}

/// Sweep statistics.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Cases generated.
    pub cases: usize,
    /// Cases skipped because the original unit does not run cleanly.
    pub skipped: usize,
    /// Oracle comparisons actually simulated.
    pub comparisons: usize,
    /// Optimized texts skipped as duplicates of an already-verified text.
    pub deduped: usize,
    /// Confirmed failures (after shrinking).
    pub failures: Vec<Failure>,
}

impl CheckReport {
    /// True when the sweep found no failures.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The pass configs a sweep runs: each transforming pass alone, then the
/// whole pipeline in registry order.
pub fn default_pass_configs() -> Vec<String> {
    let mut out: Vec<String> = TRANSFORMING_PASSES.iter().map(|p| p.to_string()).collect();
    out.push(TRANSFORMING_PASSES.join(":"));
    out
}

/// Run the full differential sweep.
pub fn run_check(config: &CheckConfig) -> CheckReport {
    let runner = PathRunner::new(config.jobs);
    let pass_configs = config.passes.clone().unwrap_or_else(default_pass_configs);
    let mut report = CheckReport::default();
    let cases = generate_cases(config.seed, config.cases);
    report.cases = cases.len();
    for case in &cases {
        check_case(config, &runner, &pass_configs, case, &mut report);
    }
    report
}

/// Check one case against every pass config and execution path.
fn check_case(
    config: &CheckConfig,
    runner: &PathRunner,
    pass_configs: &[String],
    case: &Case,
    report: &mut CheckReport,
) {
    // The original must run cleanly; generated/mutated units that fault or
    // blow the budget are not usable oracles.
    let original = match observe(&case.asm, &case.entry, &case.args, config.budget) {
        Ok(o) if o.result.is_ok() => o,
        _ => {
            report.skipped += 1;
            if config.verbose {
                eprintln!("skip {} (original does not run)", case.name);
            }
            return;
        }
    };
    // Emit fidelity: parse+emit must preserve semantics before any pass
    // runs. The normalized text also seeds the dedup set, so pass configs
    // that turn out to be no-ops on this unit cost no extra simulation.
    let normalized = match normalize(&case.asm) {
        Ok(n) => n,
        Err(e) => {
            report.failures.push(Failure {
                case: case.name.clone(),
                passes: "<none>".to_string(),
                path: ExecPath::OneShot,
                detail: format!("emit round-trip failed: {e}"),
                shrunk_asm: case.asm.clone(),
                saved: None,
            });
            return;
        }
    };
    let mut verified: HashSet<String> = HashSet::new();
    report.comparisons += 1;
    match observe(&normalized, &case.entry, &case.args, config.budget) {
        Ok(n) if compare(&original, &n).is_none() => {
            verified.insert(normalized);
        }
        other => {
            let detail = match other {
                Ok(n) => compare(&original, &n).unwrap_or_default(),
                Err(e) => e,
            };
            report.failures.push(Failure {
                case: case.name.clone(),
                passes: "<none>".to_string(),
                path: ExecPath::OneShot,
                detail: format!("normalized unit diverges from source: {detail}"),
                shrunk_asm: case.asm.clone(),
                saved: None,
            });
            return;
        }
    }
    if config.verbose {
        eprintln!("case {}", case.name);
    }
    for passes in pass_configs {
        check_pass_config(
            config,
            runner,
            case,
            &original,
            passes,
            &mut verified,
            report,
        );
    }
}

/// Run one pass config through the path matrix and the oracle.
#[allow(clippy::too_many_arguments)]
fn check_pass_config(
    config: &CheckConfig,
    runner: &PathRunner,
    case: &Case,
    original: &Observation,
    passes: &str,
    verified: &mut HashSet<String>,
    report: &mut CheckReport,
) {
    // 1. Path agreement: every execution path must emit the same bytes.
    let mut texts = Vec::new();
    for path in runner.all() {
        match runner.optimize(path, &case.asm, passes) {
            Ok(t) => texts.push((path, t)),
            Err(e) => {
                report.failures.push(fail_and_persist(
                    config,
                    case,
                    passes,
                    path,
                    format!("optimize failed: {e}"),
                    |asm| runner.optimize(path, asm, passes).is_err(),
                ));
                return;
            }
        }
    }
    let (base_path, base) = (texts[0].0, texts[0].1.clone());
    for (path, text) in &texts[1..] {
        if *text != base {
            let (path, base_path) = (*path, base_path);
            report.failures.push(fail_and_persist(
                config,
                case,
                passes,
                path,
                format!(
                    "{} and {} emit different bytes",
                    base_path.name(),
                    path.name()
                ),
                |asm| match (
                    runner.optimize(base_path, asm, passes),
                    runner.optimize(path, asm, passes),
                ) {
                    (Ok(a), Ok(b)) => a != b,
                    _ => false,
                },
            ));
            return;
        }
    }
    // 2. Round-trip stability of the optimized text.
    match normalize(&base) {
        Ok(again) if again == base => {}
        Ok(_) | Err(_) => {
            report.failures.push(fail_and_persist(
                config,
                case,
                passes,
                base_path,
                "optimized text is not reparse-stable".to_string(),
                |asm| match runner.optimize(base_path, asm, passes) {
                    Ok(t) => !matches!(normalize(&t), Ok(again) if again == t),
                    Err(_) => false,
                },
            ));
            return;
        }
    }
    // 3. The oracle. Skip texts already proven equivalent for this case.
    if verified.contains(&base) {
        report.deduped += 1;
        return;
    }
    report.comparisons += 1;
    let divergence = match observe(&base, &case.entry, &case.args, config.budget) {
        Ok(optimized) => compare(original, &optimized),
        Err(e) => Some(format!("optimized unit unusable: {e}")),
    };
    match divergence {
        None => {
            verified.insert(base);
        }
        Some(detail) => {
            let budget = config.budget;
            let entry = case.entry.clone();
            let args = case.args.clone();
            report.failures.push(fail_and_persist(
                config,
                case,
                passes,
                base_path,
                detail,
                move |asm| {
                    reproduces_mismatch(runner, asm, &entry, &args, passes, base_path, budget)
                },
            ));
        }
    }
}

/// Does optimizing `asm` under `passes`/`path` still diverge from itself?
fn reproduces_mismatch(
    runner: &PathRunner,
    asm: &str,
    entry: &str,
    args: &[u64],
    passes: &str,
    path: ExecPath,
    budget: u64,
) -> bool {
    let original = match observe(asm, entry, args, budget) {
        Ok(o) if o.result.is_ok() => o,
        _ => return false, // shrunk too far: original no longer runs
    };
    let optimized_asm = match runner.optimize(path, asm, passes) {
        Ok(t) => t,
        Err(_) => return false,
    };
    match observe(&optimized_asm, entry, args, budget) {
        Ok(optimized) => compare(&original, &optimized).is_some(),
        Err(_) => true, // optimizing made the unit unusable: still a bug
    }
}

/// Shrink a failure and persist it to the regression corpus.
fn fail_and_persist(
    config: &CheckConfig,
    case: &Case,
    passes: &str,
    path: ExecPath,
    detail: String,
    still_fails: impl FnMut(&str) -> bool,
) -> Failure {
    let shrunk_asm = shrink::shrink(&case.asm, still_fails);
    let saved = config.regress_dir.as_deref().and_then(|dir| {
        let expect = if passes.contains("MISOPT") {
            Expect::Mismatch
        } else {
            Expect::Pass
        };
        let regression = Regression {
            name: case.name.clone(),
            passes: passes.to_string(),
            path,
            entry: case.entry.clone(),
            args: case.args.clone(),
            expect,
            asm: shrunk_asm.clone(),
        };
        regression.save(dir).ok()
    });
    if config.verbose {
        eprintln!(
            "FAIL {} [{} via {}]: {detail}",
            case.name,
            passes,
            path.name()
        );
    }
    Failure {
        case: case.name.clone(),
        passes: passes.to_string(),
        path,
        detail,
        shrunk_asm,
        saved,
    }
}

/// Parse + emit (the identity pipeline).
fn normalize(asm: &str) -> Result<String, String> {
    mao::MaoUnit::parse(asm)
        .map(|u| u.emit())
        .map_err(|e| format!("reparse: {e}"))
}

/// Fault-injection self-test: prove the harness catches, shrinks, and
/// persists a deliberate miscompile. Runs a short sweep with the MISOPT
/// pass appended to a scalar cleanup pipeline and demands at least one
/// failure. Returns the failures (all from MISOPT) or an error if the
/// injection went undetected — which would mean the oracle is blind.
pub fn run_injection_selftest(
    seed: u64,
    regress_dir: Option<&Path>,
) -> Result<Vec<Failure>, String> {
    let config = CheckConfig {
        seed,
        cases: 12,
        passes: Some(vec![
            "MISOPT=mode[imm],nth[0]".to_string(),
            "ADDADD:MISOPT=mode[drop],nth[1]".to_string(),
        ]),
        regress_dir: regress_dir.map(Path::to_path_buf),
        ..CheckConfig::default()
    };
    let report = run_check(&config);
    if report.cases == report.skipped {
        return Err("selftest generated no runnable cases".to_string());
    }
    if report.failures.is_empty() {
        return Err(format!(
            "MISOPT injected miscompiles into {} case(s) and the checker caught none",
            report.cases - report.skipped
        ));
    }
    Ok(report.failures)
}

// ---------------------------------------------------------------------------
// The structural matrix leg: ISAs without a simulator oracle.
// ---------------------------------------------------------------------------

/// The built-in AArch64 kernels the structural sweep runs. Hand-written
/// rather than generated: the AArch64 instantiation is minimal (nine
/// mnemonics) and the structural leg checks the *machinery* — path
/// agreement, round-trip stability, layout invariants — not semantic
/// breadth, which stays the simulator-backed x86 sweep's job.
pub const A64_STRUCTURAL_CASES: [(&str, &str); 4] = [
    (
        "a64-leaf",
        "\t.text\n\t.type\tf, @function\nf:\n\tnop\n\tmov\tx1, x0\n\tadd\tx0, x1, #1\n\tret\n",
    ),
    (
        "a64-branchy",
        "\t.text\n\t.type\tf, @function\nf:\n\tcmp\tx0, #0\n\tb.eq\t.L2\n\tsub\tx0, x0, #1\n\
         \tnop\n.L2:\n\tret\n",
    ),
    (
        "a64-spill",
        "\t.text\n\t.type\tf, @function\nf:\n\tsub\tsp, sp, #16\n\tstr\tx19, [sp, #8]\n\
         \tmov\tx19, x0\n\tnop\n\tldr\tx19, [sp, #8]\n\tadd\tsp, sp, #16\n\tret\n",
    ),
    (
        "a64-call",
        "\t.text\n\t.type\tf, @function\nf:\n\tcmp\tx0, #7\n\tb.lt\t.L1\n\tbl\tg\n\tnop\n\
         .L1:\n\tmov\tx0, #0\n\tret\n\t.type\tg, @function\ng:\n\tadd\tx0, x0, x0\n\tret\n",
    ),
];

/// The pass configs the structural sweep runs: every ISA-neutral pass
/// alone, then all of them chained.
pub fn a64_pass_configs() -> Vec<String> {
    let neutral = ["MAOPASS", "LFIND", "DCE", "NOPKILL"];
    let mut out: Vec<String> = neutral.iter().map(|p| p.to_string()).collect();
    out.push(neutral.join(":"));
    out
}

/// The structural differential sweep for an ISA with no simulator oracle
/// (today: AArch64). Runs each built-in kernel through every execution
/// path and demands, per pass config:
///
/// 1. every path emits byte-identical text (the same matrix the x86
///    sweep runs);
/// 2. the optimized text reparses and re-emits byte-identically;
/// 3. the relaxed layout is structurally sound: entry addresses are
///    monotone, and every AArch64 instruction occupies exactly 4 bytes
///    (the fixed-width encoding contract the ISA trait promises).
///
/// Failures land in the same [`CheckReport`] shape as the x86 sweep but
/// are not shrunk or persisted — the corpus is fixed and tiny.
pub fn run_structural_check(isa: mao::isa::IsaId, config: &CheckConfig) -> CheckReport {
    let runner = PathRunner::new(config.jobs);
    let pass_configs = config.passes.clone().unwrap_or_else(a64_pass_configs);
    let mut report = CheckReport::default();
    report.cases = A64_STRUCTURAL_CASES.len();
    for (name, asm) in A64_STRUCTURAL_CASES {
        if config.verbose {
            eprintln!("case {name}");
        }
        for passes in &pass_configs {
            if let Some((path, detail)) =
                structural_divergence(&runner, asm, passes, isa, &mut report)
            {
                report.failures.push(Failure {
                    case: name.to_string(),
                    passes: passes.clone(),
                    path,
                    detail,
                    shrunk_asm: asm.to_string(),
                    saved: None,
                });
            }
        }
    }
    report
}

/// One case × pass config of the structural sweep; `None` means clean.
fn structural_divergence(
    runner: &PathRunner,
    asm: &str,
    passes: &str,
    isa: mao::isa::IsaId,
    report: &mut CheckReport,
) -> Option<(ExecPath, String)> {
    let mut texts = Vec::new();
    for path in runner.all() {
        match runner.optimize_isa(path, asm, passes, isa) {
            Ok(t) => texts.push((path, t)),
            Err(e) => return Some((path, format!("optimize failed: {e}"))),
        }
    }
    let (base_path, base) = (texts[0].0, texts[0].1.clone());
    for (path, text) in &texts[1..] {
        if *text != base {
            return Some((
                *path,
                format!(
                    "{} and {} emit different bytes",
                    base_path.name(),
                    path.name()
                ),
            ));
        }
    }
    report.comparisons += 1;
    // Round-trip stability through the ISA's own dialect.
    match mao::MaoUnit::parse_isa(&base, isa) {
        Ok(unit) if unit.emit() == base => {
            // Layout invariants over the relaxed optimized unit.
            let layout = match mao::relax(&unit) {
                Ok(l) => l,
                Err(e) => return Some((base_path, format!("relaxation failed: {e}"))),
            };
            let mut prev_end = 0u64;
            for id in 0..layout.addr.len() {
                let addr = layout.addr[id];
                if addr < prev_end {
                    return Some((base_path, format!("layout not monotone at entry {id}")));
                }
                prev_end = addr + u64::from(layout.size[id]);
                if let Some(insn) = unit.insn_any(id) {
                    if insn.isa() == isa && layout.size[id] != 4 {
                        return Some((
                            base_path,
                            format!(
                                "fixed-width ISA emitted a {}-byte instruction at entry {id}",
                                layout.size[id]
                            ),
                        ));
                    }
                }
            }
            None
        }
        Ok(_) => Some((
            base_path,
            "optimized text is not reparse-stable".to_string(),
        )),
        Err(e) => Some((base_path, format!("optimized text does not reparse: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pass_configs_cover_the_registry() {
        let configs = default_pass_configs();
        assert_eq!(configs.len(), TRANSFORMING_PASSES.len() + 1);
        assert!(configs.last().unwrap().contains("REDZEXT:"));
    }

    #[test]
    fn small_sweep_is_green() {
        let report = run_check(&CheckConfig {
            seed: 42,
            cases: 6,
            ..CheckConfig::default()
        });
        assert_eq!(report.cases, 6);
        assert!(
            report.ok(),
            "differential sweep found failures: {:#?}",
            report.failures
        );
        assert!(report.comparisons > 0);
    }

    #[test]
    fn a64_structural_sweep_is_green() {
        let report = run_structural_check(
            mao::isa::IsaId::Aarch64,
            &CheckConfig {
                jobs: 2,
                ..CheckConfig::default()
            },
        );
        assert_eq!(report.cases, A64_STRUCTURAL_CASES.len());
        assert!(
            report.ok(),
            "structural sweep found failures: {:#?}",
            report.failures
        );
        assert!(report.comparisons > 0);
    }

    #[test]
    fn a64_structural_sweep_catches_an_x86_only_pass() {
        // An x86-only pass in the config must surface as a structured
        // failure on every case, not a panic or a silent skip.
        let report = run_structural_check(
            mao::isa::IsaId::Aarch64,
            &CheckConfig {
                jobs: 2,
                passes: Some(vec!["SCHED".to_string()]),
                ..CheckConfig::default()
            },
        );
        assert_eq!(report.failures.len(), A64_STRUCTURAL_CASES.len());
        for f in &report.failures {
            assert!(f.detail.contains("does not support ISA"), "{}", f.detail);
        }
    }

    #[test]
    fn injection_selftest_catches_misopt() {
        let failures = run_injection_selftest(7, None).expect("selftest");
        assert!(failures.iter().all(|f| f.passes.contains("MISOPT")));
        // Shrinking produced something no bigger than the source.
        for f in &failures {
            assert!(!f.shrunk_asm.is_empty());
        }
    }
}
