//! The equivalence oracle, re-exported from `mao_sim::oracle`.
//!
//! The oracle was born here in the differential checker (PR 4) but moved
//! down into `mao-sim` so the superoptimizer — which cannot depend on
//! `mao-check` without a dependency cycle through `mao-serve` — shares the
//! same definition of "observationally equivalent". Everything the checker
//! used from this module keeps its old path.

pub use mao_sim::oracle::*;
