//! The persisted regression corpus: failing cases live on as `.s` files
//! under `tests/regressions/` and are replayed by `cargo test` forever
//! after.
//!
//! Each file is ordinary assembly prefixed with `# mao-check:` key=value
//! header comments (the asm lexer strips `#` comments, so the file also
//! assembles as-is):
//!
//! ```text
//! # mao-check: passes=ADDADD
//! # mao-check: path=oneshot
//! # mao-check: entry=f
//! # mao-check: args=3,4
//! # mao-check: expect=pass
//! ```
//!
//! `expect=pass` is a real-bug regression: replay asserts the pass now
//! preserves semantics. `expect=mismatch` is a fault-injection
//! self-test: replay asserts the checker still *catches* the deliberate
//! miscompile — a standing canary for the oracle itself.

use std::fs;
use std::path::{Path, PathBuf};

use crate::cases::DEFAULT_BUDGET;
use crate::oracle::{compare, observe};
use crate::paths::{ExecPath, PathRunner};

/// What a regression file asserts on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The optimized unit must be equivalent (a fixed miscompile).
    Pass,
    /// The checker must still flag the unit (an injected miscompile).
    Mismatch,
}

/// One persisted regression case.
#[derive(Debug, Clone)]
pub struct Regression {
    /// File stem (derived from the original case name).
    pub name: String,
    /// Pass invocation string the failure occurred under.
    pub passes: String,
    /// Execution path the failure occurred under.
    pub path: ExecPath,
    /// Entry function.
    pub entry: String,
    /// SysV arguments.
    pub args: Vec<u64>,
    /// Replay assertion.
    pub expect: Expect,
    /// The (shrunk) assembly, without headers.
    pub asm: String,
}

impl Regression {
    /// Render the on-disk file: headers + assembly.
    pub fn render(&self) -> String {
        let args = self
            .args
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let expect = match self.expect {
            Expect::Pass => "pass",
            Expect::Mismatch => "mismatch",
        };
        format!(
            "# mao-check: passes={}\n# mao-check: path={}\n# mao-check: entry={}\n# mao-check: args={}\n# mao-check: expect={}\n{}",
            self.passes,
            self.path.name(),
            self.entry,
            args,
            expect,
            self.asm
        )
    }

    /// Parse a regression file back.
    pub fn parse(name: &str, text: &str) -> Result<Regression, String> {
        let mut passes = None;
        let mut path = None;
        let mut entry = None;
        let mut args = Vec::new();
        let mut expect = None;
        let mut asm = String::new();
        for line in text.lines() {
            if let Some(kv) = line.strip_prefix("# mao-check:") {
                let (key, value) = kv
                    .trim()
                    .split_once('=')
                    .ok_or_else(|| format!("{name}: malformed header {line:?}"))?;
                match key {
                    "passes" => passes = Some(value.to_string()),
                    "path" => {
                        path = Some(
                            ExecPath::parse(value)
                                .ok_or_else(|| format!("{name}: unknown path {value:?}"))?,
                        )
                    }
                    "entry" => entry = Some(value.to_string()),
                    "args" => {
                        for a in value.split(',').filter(|a| !a.is_empty()) {
                            args.push(
                                a.parse()
                                    .map_err(|e| format!("{name}: bad arg {a:?}: {e}"))?,
                            );
                        }
                    }
                    "expect" => {
                        expect = Some(match value {
                            "pass" => Expect::Pass,
                            "mismatch" => Expect::Mismatch,
                            other => return Err(format!("{name}: unknown expect {other:?}")),
                        })
                    }
                    other => return Err(format!("{name}: unknown header key {other:?}")),
                }
            } else {
                asm.push_str(line);
                asm.push('\n');
            }
        }
        Ok(Regression {
            name: name.to_string(),
            passes: passes.ok_or_else(|| format!("{name}: missing passes header"))?,
            path: path.ok_or_else(|| format!("{name}: missing path header"))?,
            entry: entry.ok_or_else(|| format!("{name}: missing entry header"))?,
            args,
            expect: expect.ok_or_else(|| format!("{name}: missing expect header"))?,
            asm,
        })
    }

    /// Write the regression under `dir`, uniquifying the stem if taken.
    /// Returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let stem = sanitize(&self.name);
        let mut file = dir.join(format!("{stem}.s"));
        let mut suffix = 1;
        while file.exists() {
            file = dir.join(format!("{stem}-{suffix}.s"));
            suffix += 1;
        }
        fs::write(&file, self.render())?;
        Ok(file)
    }

    /// Re-run the case and check the recorded expectation. `Ok(())` means
    /// the corpus still holds; `Err` is the replay failure description.
    pub fn replay(&self, runner: &PathRunner) -> Result<(), String> {
        let original = observe(&self.asm, &self.entry, &self.args, DEFAULT_BUDGET)
            .map_err(|e| format!("{}: original no longer runs: {e}", self.name))?;
        if original.result.is_err() {
            return Err(format!(
                "{}: original run faults: {:?}",
                self.name, original.result
            ));
        }
        let optimized_asm = runner
            .optimize(self.path, &self.asm, &self.passes)
            .map_err(|e| format!("{}: optimize failed: {e}", self.name))?;
        let optimized = observe(&optimized_asm, &self.entry, &self.args, DEFAULT_BUDGET)
            .map_err(|e| format!("{}: optimized unit unusable: {e}", self.name))?;
        let divergence = compare(&original, &optimized);
        match (self.expect, divergence) {
            (Expect::Pass, None) | (Expect::Mismatch, Some(_)) => Ok(()),
            (Expect::Pass, Some(d)) => Err(format!("{}: regressed again: {d}", self.name)),
            (Expect::Mismatch, None) => Err(format!(
                "{}: checker no longer catches the injected miscompile",
                self.name
            )),
        }
    }
}

/// Load every `*.s` regression under `dir` (sorted by file name).
pub fn load_dir(dir: &Path) -> Result<Vec<Regression>, String> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(out), // no corpus yet
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    files.sort();
    for file in files {
        let name = file
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("regression")
            .to_string();
        let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push(Regression::parse(&name, &text)?);
    }
    Ok(out)
}

/// File-stem-safe version of a case name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Regression {
        Regression {
            name: "mutant-mcf-fig1".to_string(),
            passes: "ADDADD:DCE".to_string(),
            path: ExecPath::Jobs(4),
            entry: "f".to_string(),
            args: vec![3, 4],
            expect: Expect::Mismatch,
            asm: ".type f, @function\nf:\n\tret\n".to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let r = sample();
        let back = Regression::parse(&r.name, &r.render()).unwrap();
        assert_eq!(back.passes, r.passes);
        assert_eq!(back.path, r.path);
        assert_eq!(back.entry, r.entry);
        assert_eq!(back.args, r.args);
        assert_eq!(back.expect, r.expect);
        assert_eq!(back.asm, r.asm);
    }

    #[test]
    fn headers_are_inert_for_the_assembler() {
        let r = sample();
        mao::MaoUnit::parse(&r.render()).expect("headers lex as comments");
    }

    #[test]
    fn missing_header_is_an_error() {
        let text = "# mao-check: passes=DCE\nf:\n\tret\n";
        assert!(Regression::parse("x", text).is_err());
    }

    #[test]
    fn sanitize_makes_file_stems() {
        assert_eq!(sanitize("mutant:mcf_fig1#i7m2"), "mutant-mcf_fig1-i7m2");
    }

    #[test]
    fn expect_pass_replay_succeeds_on_equivalent_unit() {
        let runner = PathRunner::new(2);
        let r = Regression {
            name: "simple".to_string(),
            passes: "ADDADD".to_string(),
            path: ExecPath::OneShot,
            entry: "f".to_string(),
            args: vec![],
            expect: Expect::Pass,
            asm: ".type f, @function\nf:\n\taddl $3, %eax\n\taddl $4, %eax\n\tret\n".to_string(),
        };
        r.replay(&runner).unwrap();
    }

    #[test]
    fn expect_mismatch_replay_catches_injection() {
        let runner = PathRunner::new(2);
        let r = Regression {
            name: "inject".to_string(),
            passes: "MISOPT=mode[imm],nth[0]".to_string(),
            path: ExecPath::OneShot,
            entry: "f".to_string(),
            args: vec![],
            expect: Expect::Mismatch,
            asm: ".type f, @function\nf:\n\tmovl $41, %eax\n\taddl $1, %eax\n\tret\n".to_string(),
        };
        r.replay(&runner).unwrap();
    }
}
