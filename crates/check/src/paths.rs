//! The execution-path matrix: every way this repo can run a pipeline over
//! a unit must produce the same bytes.
//!
//! Shipped paths:
//!
//! * **oneshot** — `run_pipeline_with` at `--jobs 1`, exactly what the
//!   `mao` driver does;
//! * **jobs N** — the parallel function-level driver (PR 1 promises
//!   byte-identical output at any `N`);
//! * **engine** — the `maod` engine, twice: a cold request (cache miss)
//!   and an identical warm repeat that must be served from the
//!   content-addressed cache with identical bytes;
//! * **legacy-relax** — the same pipeline with every pass forced onto the
//!   reference relaxation solver instead of the incremental fragment
//!   solver (PR 3 promises identical layouts);
//! * **snapshot** — parse, round-trip the unit through the binary IR
//!   snapshot codec (encode → decode → rebuild), then run the pipeline
//!   over the reloaded unit (the snapshot tier promises the reloaded IR
//!   is indistinguishable from freshly parsed IR).

use mao::isa::IsaId;
use mao::pass::{parse_invocations, run_pipeline_with, PipelineConfig};
use mao::MaoUnit;
use mao_serve::protocol::{OptimizeRequest, Request, Response};
use mao_serve::{CacheOutcome, Engine, EngineConfig};

/// One way of running a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// The one-shot driver (`--jobs 1`).
    OneShot,
    /// The parallel function-level driver at this many jobs.
    Jobs(usize),
    /// The `maod` engine: cold request, then a warm cache-hit repeat.
    Engine,
    /// The legacy reference relaxation solver.
    LegacyRelax,
    /// Binary IR snapshot round-trip before the pipeline.
    Snapshot,
}

impl ExecPath {
    /// Display name (also the `path:` key in persisted regressions).
    pub fn name(self) -> String {
        match self {
            ExecPath::OneShot => "oneshot".to_string(),
            ExecPath::Jobs(n) => format!("jobs{n}"),
            ExecPath::Engine => "engine".to_string(),
            ExecPath::LegacyRelax => "legacy-relax".to_string(),
            ExecPath::Snapshot => "snapshot".to_string(),
        }
    }

    /// Parse a `name()` spelling back (for regression replay).
    pub fn parse(s: &str) -> Option<ExecPath> {
        match s {
            "oneshot" => Some(ExecPath::OneShot),
            "engine" => Some(ExecPath::Engine),
            "legacy-relax" => Some(ExecPath::LegacyRelax),
            "snapshot" => Some(ExecPath::Snapshot),
            _ => s
                .strip_prefix("jobs")
                .and_then(|n| n.parse().ok())
                .map(ExecPath::Jobs),
        }
    }
}

/// Append `legacy-relax` to every pass of an invocation string, so layout
/// consumers (BRALIGN/LOOP16/LSDFIT/INSTPREP) take the reference solver.
fn with_legacy_relax(passes: &str) -> String {
    passes
        .split(':')
        .map(|seg| {
            if seg.is_empty() {
                seg.to_string()
            } else if seg.contains('=') {
                format!("{seg},legacy-relax")
            } else {
                format!("{seg}=legacy-relax")
            }
        })
        .collect::<Vec<_>>()
        .join(":")
}

/// Runs pipelines through every [`ExecPath`]. Holds one resident engine so
/// the warm-cache path is genuinely warm across a sweep.
pub struct PathRunner {
    engine: Engine,
    /// Worker count for the [`ExecPath::Jobs`] path.
    pub jobs: usize,
}

impl PathRunner {
    /// Runner with a private engine (2 workers is plenty for checking).
    pub fn new(jobs: usize) -> PathRunner {
        // Every execution path resolves passes through the registry, so the
        // extension pass must be in before any sweep parses its config.
        mao_superopt::register();
        let config = EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        };
        PathRunner {
            engine: Engine::new(config),
            jobs: jobs.max(2),
        }
    }

    /// The full path matrix for one sweep.
    pub fn all(&self) -> Vec<ExecPath> {
        vec![
            ExecPath::OneShot,
            ExecPath::Jobs(self.jobs),
            ExecPath::Engine,
            ExecPath::LegacyRelax,
            ExecPath::Snapshot,
        ]
    }

    /// Run `passes` over `asm` through `path`, returning the emitted text
    /// (x86-64, the historical default).
    pub fn optimize(&self, path: ExecPath, asm: &str, passes: &str) -> Result<String, String> {
        self.optimize_isa(path, asm, passes, IsaId::X86_64)
    }

    /// Run `passes` over `asm` through `path` for the given ISA. Every
    /// execution path threads the ISA the same way the shipped drivers
    /// do: parser dialect, cache keys, pass gating.
    pub fn optimize_isa(
        &self,
        path: ExecPath,
        asm: &str,
        passes: &str,
        isa: IsaId,
    ) -> Result<String, String> {
        match path {
            ExecPath::OneShot => run_local(asm, passes, 1, isa),
            ExecPath::Jobs(n) => run_local(asm, passes, n, isa),
            ExecPath::LegacyRelax => run_local(asm, &with_legacy_relax(passes), 1, isa),
            ExecPath::Engine => self.run_engine(asm, passes, isa),
            ExecPath::Snapshot => run_snapshot(asm, passes, isa),
        }
    }

    /// Cold request then an identical warm repeat: the warm answer must be
    /// a cache hit with the same bytes.
    fn run_engine(&self, asm: &str, passes: &str, isa: IsaId) -> Result<String, String> {
        let request = |use_cache: bool| {
            Request::Optimize(OptimizeRequest {
                asm: asm.to_string(),
                passes: passes.to_string(),
                jobs: None,
                timeout_ms: None,
                use_cache,
                isa,
            })
        };
        let cold = match self.engine.handle(request(true)) {
            Response::Optimized { outcome, .. } => outcome.asm,
            Response::Error { kind, message } => {
                return Err(format!("engine cold request failed [{kind:?}]: {message}"))
            }
            other => return Err(format!("engine cold request: unexpected {other:?}")),
        };
        match self.engine.handle(request(true)) {
            Response::Optimized { outcome, cache, .. } => {
                if cache != CacheOutcome::Hit {
                    return Err(format!(
                        "engine warm repeat was not a cache hit (got {cache:?})"
                    ));
                }
                if outcome.asm != cold {
                    return Err("engine warm repeat returned different bytes".to_string());
                }
                Ok(cold)
            }
            Response::Error { kind, message } => {
                Err(format!("engine warm request failed [{kind:?}]: {message}"))
            }
            other => Err(format!("engine warm request: unexpected {other:?}")),
        }
    }
}

/// Parse + pipeline + emit with the given job count.
fn run_local(asm: &str, passes: &str, jobs: usize, isa: IsaId) -> Result<String, String> {
    let mut unit = MaoUnit::parse_isa(asm, isa).map_err(|e| format!("parse: {e}"))?;
    let invs = parse_invocations(passes).map_err(|e| format!("passes: {e}"))?;
    let config = PipelineConfig { jobs };
    run_pipeline_with(&mut unit, &invs, None, &config).map_err(|e| format!("pipeline: {e}"))?;
    Ok(unit.emit())
}

/// Parse, round-trip the IR through the binary snapshot codec, rebuild the
/// unit from the decoded entries, then run the pipeline (`--jobs 1`).
fn run_snapshot(asm: &str, passes: &str, isa: IsaId) -> Result<String, String> {
    let parsed = mao_asm::parse_isa(asm, isa).map_err(|e| format!("parse: {e}"))?;
    let key = mao_asm::snapshot::content_key(asm);
    let bytes = mao_asm::snapshot::encode(&parsed, key);
    let entries =
        mao_asm::snapshot::decode(&bytes, Some(key)).map_err(|e| format!("snapshot: {e}"))?;
    if entries != parsed {
        return Err("snapshot round-trip changed the entry list".to_string());
    }
    let mut unit = MaoUnit::from_entries_isa(entries, isa);
    let invs = parse_invocations(passes).map_err(|e| format!("passes: {e}"))?;
    let config = PipelineConfig { jobs: 1 };
    run_pipeline_with(&mut unit, &invs, None, &config).map_err(|e| format!("pipeline: {e}"))?;
    Ok(unit.emit())
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\t.type\tf, @function\nf:\n\tsubl $16, %r15d\n\ttestl %r15d, %r15d\n\tjne .L1\n\taddl $3, %eax\n\taddl $4, %eax\n.L1:\n\tret\n";

    #[test]
    fn legacy_relax_option_spelling() {
        assert_eq!(with_legacy_relax("DCE"), "DCE=legacy-relax");
        assert_eq!(
            with_legacy_relax("NOPIN=seed[3],density[0.1]:DCE"),
            "NOPIN=seed[3],density[0.1],legacy-relax:DCE=legacy-relax"
        );
    }

    #[test]
    fn all_paths_agree_on_bytes() {
        let runner = PathRunner::new(4);
        let texts: Vec<String> = runner
            .all()
            .into_iter()
            .map(|p| runner.optimize(p, INPUT, "REDTEST:ADDADD:DCE").unwrap())
            .collect();
        for t in &texts[1..] {
            assert_eq!(t, &texts[0]);
        }
        assert!(!texts[0].contains("testl"), "REDTEST fired");
    }

    #[test]
    fn all_paths_agree_on_aarch64_bytes() {
        let runner = PathRunner::new(4);
        let input = "\t.type\tf, @function\nf:\n\tnop\n\tmov\tx1, x0\n\tadd\tx0, x1, #1\n\tret\n";
        let texts: Vec<String> = runner
            .all()
            .into_iter()
            .map(|p| {
                runner
                    .optimize_isa(p, input, "NOPKILL:DCE", IsaId::Aarch64)
                    .unwrap()
            })
            .collect();
        for t in &texts[1..] {
            assert_eq!(t, &texts[0]);
        }
        assert!(!texts[0].contains("\tnop"), "NOPKILL fired: {}", texts[0]);
    }

    #[test]
    fn path_names_round_trip() {
        let runner = PathRunner::new(3);
        for path in runner.all() {
            assert_eq!(ExecPath::parse(&path.name()), Some(path));
        }
    }

    #[test]
    fn engine_warm_path_is_a_cache_hit() {
        let runner = PathRunner::new(2);
        // First call performs cold+warm internally; a second optimize call
        // must still succeed (now both requests hit).
        let a = runner.optimize(ExecPath::Engine, INPUT, "REDTEST").unwrap();
        let b = runner.optimize(ExecPath::Engine, INPUT, "REDTEST").unwrap();
        assert_eq!(a, b);
    }
}
