//! The core↔ISA boundary for the MAO reproduction.
//!
//! Everything above this crate (`mao-asm`, `mao` core, the passes, the
//! relaxer, `maod`, `mao check`) talks to instruction sets through the
//! types defined here; everything below it (`mao-x86`, `mao-aarch64`)
//! supplies one concrete instantiation each. The boundary has two faces,
//! chosen to match how the callers actually use it:
//!
//! * **Static dispatch on [`Insn`]** for the hot paths. Fragment
//!   relaxation and the pass pipeline iterate millions of instructions;
//!   a vtable call per encoded-length query would show up in the bench
//!   gates (`BENCH_relax.json`). The neutral [`Insn`] enum keeps those
//!   call sites monomorphic — the x86 arm compiles to exactly the code
//!   that existed before the refactor, which is what makes the
//!   byte-identical bar attainable.
//!
//! * **Dynamic dispatch on [`Isa`]** for the cold paths: front-end
//!   parsing hooks, NOP/padding synthesis, alignment policy, cost-model
//!   binding. These run once per statement (or once per unit), so a
//!   `&'static dyn Isa` handle is free, and dyn-safety keeps the trait
//!   usable from registries that store heterogeneous ISAs (the
//!   extension-pass registry, maod's per-request ISA selection).
//!
//! Adding a third ISA means: write a crate shaped like `mao-aarch64`,
//! add an [`IsaId`] variant + an [`Insn`] arm, implement [`Isa`], and
//! register it in [`isa()`]. DESIGN.md §15 walks through it.

use std::fmt;

/// Re-export of the x86-64 model. Core crates import x86 types through
/// here (`mao::isa::x86::...`) so that `mao_x86` never appears as a
/// direct dependency of pass/relaxation code.
pub mod x86 {
    pub use mao_x86::*;
}

/// Re-export of the AArch64 model, same contract as [`x86`].
pub mod aarch64 {
    pub use mao_aarch64::*;
}

pub use mao_x86::encode::BranchForm;
pub use mao_x86::sym::Sym;

/// Identifies an instruction set architecture.
///
/// The numeric `tag` values are stable on-disk identifiers: they appear
/// in the snapshot container header (v2), the layout-cache `.ml` frames
/// (v2), and drive `.mpt` provenance matching. Never renumber them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaId {
    /// The founding instantiation; also the default for legacy inputs
    /// (v1 snapshots, `.mpt` tables without provenance) that predate the
    /// ISA tag.
    #[default]
    X86_64,
    Aarch64,
}

impl IsaId {
    /// Every supported ISA, in tag order.
    pub const ALL: [IsaId; 2] = [IsaId::X86_64, IsaId::Aarch64];

    /// Canonical lowercase name, as accepted by `--isa` and emitted in
    /// stats / provenance.
    pub fn name(self) -> &'static str {
        match self {
            IsaId::X86_64 => "x86-64",
            IsaId::Aarch64 => "aarch64",
        }
    }

    /// Parse a user-supplied ISA name. Accepts the canonical names plus
    /// common aliases (`x86_64`, `amd64`, `arm64`).
    pub fn from_name(name: &str) -> Option<IsaId> {
        match name.trim().to_ascii_lowercase().as_str() {
            "x86-64" | "x86_64" | "x86" | "amd64" => Some(IsaId::X86_64),
            "aarch64" | "arm64" | "a64" => Some(IsaId::Aarch64),
            _ => None,
        }
    }

    /// Stable on-disk tag (snapshot header, layout frames).
    pub fn tag(self) -> u32 {
        match self {
            IsaId::X86_64 => 1,
            IsaId::Aarch64 => 2,
        }
    }

    /// Inverse of [`IsaId::tag`].
    pub fn from_tag(tag: u32) -> Option<IsaId> {
        match tag {
            1 => Some(IsaId::X86_64),
            2 => Some(IsaId::Aarch64),
            _ => None,
        }
    }
}

impl fmt::Display for IsaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction from any supported ISA.
///
/// Hot paths match on this enum directly (static dispatch); the x86 arm
/// is the dominant case and stays monomorphic. Code that only ever
/// handles x86 keeps working through [`Insn::x86`] — entries from other
/// ISAs simply fall outside its view.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    X86(mao_x86::Instruction),
    A64(mao_aarch64::A64Insn),
}

impl Insn {
    /// Which ISA this instruction belongs to.
    pub fn isa(&self) -> IsaId {
        match self {
            Insn::X86(_) => IsaId::X86_64,
            Insn::A64(_) => IsaId::Aarch64,
        }
    }

    /// The x86 instruction, if this is one.
    pub fn x86(&self) -> Option<&mao_x86::Instruction> {
        match self {
            Insn::X86(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to the x86 instruction, if this is one.
    pub fn x86_mut(&mut self) -> Option<&mut mao_x86::Instruction> {
        match self {
            Insn::X86(i) => Some(i),
            _ => None,
        }
    }

    /// The AArch64 instruction, if this is one.
    pub fn a64(&self) -> Option<&mao_aarch64::A64Insn> {
        match self {
            Insn::A64(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to the AArch64 instruction, if this is one.
    pub fn a64_mut(&mut self) -> Option<&mut mao_aarch64::A64Insn> {
        match self {
            Insn::A64(i) => Some(i),
            _ => None,
        }
    }

    /// The label this instruction branches or calls to, if any.
    pub fn target_label(&self) -> Option<&str> {
        match self {
            Insn::X86(i) => i.target_label(),
            Insn::A64(i) => i.target_label().map(|s| s.as_str()),
        }
    }

    /// Is this a no-op?
    pub fn is_nop(&self) -> bool {
        match self {
            Insn::X86(i) => i.is_nop(),
            Insn::A64(i) => i.is_nop(),
        }
    }

    /// Is this a branch (conditional or not, excluding calls/returns)?
    pub fn is_branch(&self) -> bool {
        match self {
            Insn::X86(i) => i.mnemonic.is_branch(),
            Insn::A64(i) => i.mnemonic.is_branch(),
        }
    }

    /// Does this instruction end or redirect control flow?
    pub fn is_control_flow(&self) -> bool {
        match self {
            Insn::X86(i) => i.mnemonic.is_control_flow(),
            Insn::A64(i) => i.mnemonic.is_control_flow(),
        }
    }

    /// Is this a call (`call` / `bl`)? Calls redirect control flow but fall
    /// through for basic-block purposes.
    pub fn is_call(&self) -> bool {
        match self {
            Insn::X86(i) => i.mnemonic == mao_x86::Mnemonic::Call,
            Insn::A64(i) => i.mnemonic == mao_aarch64::A64Mnemonic::Bl,
        }
    }
}

impl From<mao_x86::Instruction> for Insn {
    fn from(i: mao_x86::Instruction) -> Insn {
        Insn::X86(i)
    }
}

impl From<mao_aarch64::A64Insn> for Insn {
    fn from(i: mao_aarch64::A64Insn) -> Insn {
        Insn::A64(i)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::X86(i) => i.fmt(f),
            Insn::A64(i) => i.fmt(f),
        }
    }
}

/// Encoded length of `insn` in bytes under branch form `form`.
///
/// Static-dispatch hot-path helper: the relaxer calls this in its fixed
/// point. On A64 every instruction is 4 bytes and `form` is ignored.
pub fn encoded_length(insn: &Insn, form: BranchForm) -> Result<usize, mao_x86::EncodeError> {
    match insn {
        Insn::X86(i) => mao_x86::encode::encoded_length(i, form),
        Insn::A64(i) => Ok(i.encoded_length() as usize),
    }
}

/// `(short, near)` encoded lengths for a branch that relaxation may
/// rewrite. On A64 both forms are the fixed 4-byte width, so the fixed
/// point converges immediately.
pub fn branch_lengths(insn: &Insn) -> Result<(u32, u32), mao_x86::EncodeError> {
    match insn {
        Insn::X86(i) => mao_x86::encode::branch_lengths(i),
        Insn::A64(i) => {
            let n = i.encoded_length();
            Ok((n, n))
        }
    }
}

/// Does `insn` have distinct short/near branch encodings the relaxer can
/// choose between? Always false on fixed-width ISAs.
pub fn relaxable_branch(insn: &Insn) -> bool {
    match insn {
        // `jmp`/`jcc` to a label; `call` always encodes `rel32` and is
        // fixed-size, and indirect/external targets have no short form.
        Insn::X86(i) => i.mnemonic.is_branch() && i.target_label().is_some(),
        Insn::A64(_) => false,
    }
}

/// ISA-neutral summary of an instruction's side effects — the subset the
/// generic passes need (full per-register def/use stays ISA-specific).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Writes condition flags (EFLAGS / NZCV).
    pub defs_flags: bool,
    /// Reads condition flags.
    pub uses_flags: bool,
    /// May read memory.
    pub mem_read: bool,
    /// May write memory.
    pub mem_write: bool,
}

/// Effects summary for any instruction; data-table-backed on both ISAs.
pub fn effect_summary(insn: &Insn) -> EffectSummary {
    match insn {
        Insn::X86(i) => {
            let du = mao_x86::effects::def_use(i);
            EffectSummary {
                defs_flags: !du.flags_killed().is_empty(),
                uses_flags: !du.flags_use.is_empty(),
                mem_read: du.mem_read || du.barrier,
                mem_write: du.mem_write || du.barrier,
            }
        }
        Insn::A64(i) => {
            let e = i.effects();
            EffectSummary {
                defs_flags: e.defs_nzcv,
                uses_flags: e.uses_nzcv,
                mem_read: e.mem_read,
                mem_write: e.mem_write,
            }
        }
    }
}

/// Alignment and padding rules, expressed as parameters rather than
/// hardcoded in the relaxer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlignPolicy {
    /// Smallest unit the assembler may place an instruction on. 1 on
    /// x86; 4 on A64 (instructions must be word-aligned).
    pub insn_alignment: u32,
    /// Longest single padding instruction the ISA offers (multi-byte
    /// NOP on x86, one NOP word on A64).
    pub max_nop_unit: u32,
    /// Loop-top alignment the micro-architectural passes target.
    pub preferred_loop_align: u32,
}

/// Errors from ISA-boundary operations (parsing, padding synthesis).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsaError {
    /// The statement could not be parsed as an instruction of this ISA.
    Parse(String),
    /// The requested padding length is unrepresentable (e.g. not a
    /// multiple of 4 on A64).
    BadPadding { requested: usize },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Parse(msg) => write!(f, "parse error: {msg}"),
            IsaError::BadPadding { requested } => {
                write!(f, "cannot synthesize {requested} byte(s) of padding")
            }
        }
    }
}

impl std::error::Error for IsaError {}

/// The dyn-safe ISA vtable: parsing hooks, padding synthesis, alignment
/// policy, and cost-model binding. One `&'static dyn Isa` per ISA,
/// obtained from [`isa()`].
pub trait Isa: Send + Sync {
    /// Which ISA this is.
    fn id(&self) -> IsaId;

    /// Canonical name (same as `self.id().name()`).
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Parse one instruction statement (mnemonic + operands, already
    /// stripped of labels/directives/comments) into a neutral [`Insn`].
    fn parse_insn(&self, text: &str) -> Result<Insn, IsaError>;

    /// Intern a mnemonic string, if this ISA recognizes it. Lets the
    /// front end ask "is this statement an instruction?" cheaply.
    fn knows_mnemonic(&self, mnemonic: &str) -> bool;

    /// Encoded length of `insn` under `form`. `insn` is guaranteed to
    /// belong to this ISA.
    fn insn_length(&self, insn: &Insn, form: BranchForm) -> Result<usize, IsaError>;

    /// `(short, near)` lengths for a branch; equal on fixed-width ISAs.
    fn insn_branch_lengths(&self, insn: &Insn) -> Result<(u32, u32), IsaError>;

    /// Can the relaxer pick between short and near forms of `insn`?
    fn is_relaxable_branch(&self, insn: &Insn) -> bool {
        relaxable_branch(insn)
    }

    /// Effects summary for `insn`.
    fn effects(&self, insn: &Insn) -> EffectSummary {
        effect_summary(insn)
    }

    /// A canonical single no-op instruction.
    fn nop(&self) -> Insn;

    /// Synthesize instructions covering exactly `len` bytes of padding.
    fn nop_pad(&self, len: usize) -> Result<Vec<Insn>, IsaError>;

    /// Alignment and padding parameters.
    fn align_policy(&self) -> AlignPolicy;

    /// Does a cost table claiming ISA `name` bind to this ISA?
    /// (`.mpt` v1 tables carry no ISA and claim `""`, which binds to
    /// x86-64 for backward compatibility.)
    fn accepts_cost_table(&self, table_isa: &str) -> bool;
}

/// The x86-64 instantiation: everything delegates to `mao-x86`, which is
/// the pre-refactor code unchanged — this impl is the compatibility
/// anchor for the byte-identical guarantee.
pub struct X86Isa;

impl Isa for X86Isa {
    fn id(&self) -> IsaId {
        IsaId::X86_64
    }

    fn parse_insn(&self, text: &str) -> Result<Insn, IsaError> {
        x86_parse::parse_statement(text).map(Insn::X86)
    }

    fn knows_mnemonic(&self, mnemonic: &str) -> bool {
        mao_x86::parse_mnemonic(mnemonic).is_some()
    }

    fn insn_length(&self, insn: &Insn, form: BranchForm) -> Result<usize, IsaError> {
        encoded_length(insn, form).map_err(|e| IsaError::Parse(e.to_string()))
    }

    fn insn_branch_lengths(&self, insn: &Insn) -> Result<(u32, u32), IsaError> {
        branch_lengths(insn).map_err(|e| IsaError::Parse(e.to_string()))
    }

    fn nop(&self) -> Insn {
        Insn::X86(mao_x86::Instruction::nop())
    }

    fn nop_pad(&self, len: usize) -> Result<Vec<Insn>, IsaError> {
        Ok(mao_x86::Instruction::nop_pad(len)
            .into_iter()
            .map(Insn::X86)
            .collect())
    }

    fn align_policy(&self) -> AlignPolicy {
        AlignPolicy {
            insn_alignment: 1,
            max_nop_unit: 6,
            preferred_loop_align: 16,
        }
    }

    fn accepts_cost_table(&self, table_isa: &str) -> bool {
        table_isa.is_empty() || IsaId::from_name(table_isa) == Some(IsaId::X86_64)
    }
}

/// The AArch64 instantiation: fixed 4-byte widths, NZCV effects, no
/// branch relaxation.
pub struct A64Isa;

impl Isa for A64Isa {
    fn id(&self) -> IsaId {
        IsaId::Aarch64
    }

    fn parse_insn(&self, text: &str) -> Result<Insn, IsaError> {
        mao_aarch64::parse_insn(text)
            .map(Insn::A64)
            .map_err(IsaError::Parse)
    }

    fn knows_mnemonic(&self, mnemonic: &str) -> bool {
        mao_aarch64::parse_mnemonic(mnemonic).is_some()
    }

    fn insn_length(&self, insn: &Insn, form: BranchForm) -> Result<usize, IsaError> {
        encoded_length(insn, form).map_err(|e| IsaError::Parse(e.to_string()))
    }

    fn insn_branch_lengths(&self, insn: &Insn) -> Result<(u32, u32), IsaError> {
        branch_lengths(insn).map_err(|e| IsaError::Parse(e.to_string()))
    }

    fn nop(&self) -> Insn {
        Insn::A64(mao_aarch64::A64Insn::nop())
    }

    fn nop_pad(&self, len: usize) -> Result<Vec<Insn>, IsaError> {
        if len % mao_aarch64::INSN_BYTES as usize != 0 {
            return Err(IsaError::BadPadding { requested: len });
        }
        Ok((0..len / mao_aarch64::INSN_BYTES as usize)
            .map(|_| Insn::A64(mao_aarch64::A64Insn::nop()))
            .collect())
    }

    fn align_policy(&self) -> AlignPolicy {
        AlignPolicy {
            insn_alignment: 4,
            max_nop_unit: 4,
            preferred_loop_align: 16,
        }
    }

    fn accepts_cost_table(&self, table_isa: &str) -> bool {
        IsaId::from_name(table_isa) == Some(IsaId::Aarch64)
    }
}

/// Minimal AT&T statement parser backing [`X86Isa::parse_insn`]. The
/// production front end in `mao-asm` keeps its own zero-copy parser;
/// this one serves the dyn hook (registries, tools, tests) and accepts
/// the same operand grammar: `$imm`, `%reg`, `*%reg`, `*mem`, labels,
/// and `disp(base,index,scale)`.
mod x86_parse {
    use super::IsaError;
    use mao_x86::operand::{Disp, Mem, Operand, Operands};
    use mao_x86::reg::{parse_reg_name, Reg};
    use mao_x86::sym::Sym;
    use mao_x86::{parse_mnemonic, Instruction, Mnemonic};

    fn bad(msg: String) -> IsaError {
        IsaError::Parse(msg)
    }

    fn is_symbol_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'$' | b'@')
    }

    fn parse_int(s: &str) -> Option<i64> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b.trim()),
            None => (false, s),
        };
        let mag = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()?
        } else if body.len() > 1
            && body.starts_with('0')
            && body.bytes().all(|b| (b'0'..=b'7').contains(&b))
        {
            u64::from_str_radix(&body[1..], 8).ok()?
        } else {
            body.parse::<u64>().ok()?
        };
        Some(if neg {
            (mag as i64).wrapping_neg()
        } else {
            mag as i64
        })
    }

    fn parse_symbol_expr(s: &str) -> Option<Disp> {
        let s = s.trim();
        let b = s.as_bytes();
        let first = *b.first()?;
        if !(first.is_ascii_alphabetic() || matches!(first, b'_' | b'.' | b'$')) {
            return None;
        }
        let split = b
            .iter()
            .skip(1)
            .position(|&c| c == b'+' || c == b'-')
            .map(|i| i + 1);
        let (name, addend) = match split {
            Some(i) => {
                let (n, a) = s.split_at(i);
                (n.trim(), parse_int(a)?)
            }
            None => (s, 0),
        };
        if name.is_empty() || !name.bytes().all(is_symbol_byte) {
            return None;
        }
        Some(Disp::Symbol {
            name: Sym::intern(name),
            addend,
        })
    }

    fn parse_mem(s: &str) -> Result<Mem, IsaError> {
        let (disp_str, inner) = match s.find('(') {
            Some(open) => {
                let close = s
                    .rfind(')')
                    .ok_or_else(|| bad(format!("missing `)` in `{s}`")))?;
                (&s[..open], Some(&s[open + 1..close]))
            }
            None => (s, None),
        };
        let disp = if disp_str.trim().is_empty() {
            Disp::None
        } else if let Some(v) = parse_int(disp_str) {
            Disp::Imm(v)
        } else if let Some(d) = parse_symbol_expr(disp_str) {
            d
        } else {
            return Err(bad(format!("bad displacement `{disp_str}`")));
        };
        let mut mem = Mem {
            disp,
            base: None,
            index: None,
            scale: 1,
        };
        if let Some(inner) = inner {
            let mut parts = inner.split(',');
            let base = parts.next().map(str::trim);
            let index = parts.next().map(str::trim);
            let scale = parts.next().map(str::trim);
            if parts.next().is_some() {
                return Err(bad(format!("too many parts in `({inner})`")));
            }
            let parse_r = |p: &str| -> Result<Reg, IsaError> {
                let name = p
                    .strip_prefix('%')
                    .ok_or_else(|| bad(format!("expected register, got `{p}`")))?;
                parse_reg_name(name).ok_or_else(|| bad(format!("unknown register `{p}`")))
            };
            if let Some(b) = base.filter(|b| !b.is_empty()) {
                mem.base = Some(parse_r(b)?);
            }
            if let Some(i) = index.filter(|i| !i.is_empty()) {
                mem.index = Some(parse_r(i)?);
            }
            if let Some(sc) = scale.filter(|sc| !sc.is_empty()) {
                let v = parse_int(sc).ok_or_else(|| bad(format!("bad scale `{sc}`")))?;
                if ![1, 2, 4, 8].contains(&v) {
                    return Err(bad(format!("invalid scale {v}")));
                }
                mem.scale = v as u8;
            }
        }
        Ok(mem)
    }

    fn parse_operand(s: &str, is_branch: bool) -> Result<Operand, IsaError> {
        if let Some(imm) = s.strip_prefix('$') {
            let v = parse_int(imm).ok_or_else(|| bad(format!("unsupported immediate `{s}`")))?;
            return Ok(Operand::Imm(v));
        }
        if let Some(reg) = s.strip_prefix('%') {
            let r = parse_reg_name(reg).ok_or_else(|| bad(format!("unknown register `{s}`")))?;
            return Ok(Operand::Reg(r));
        }
        if let Some(ind) = s.strip_prefix('*') {
            let ind = ind.trim();
            if let Some(reg) = ind.strip_prefix('%') {
                let r =
                    parse_reg_name(reg).ok_or_else(|| bad(format!("unknown register `{ind}`")))?;
                return Ok(Operand::IndirectReg(r));
            }
            return Ok(Operand::IndirectMem(parse_mem(ind)?));
        }
        if is_branch && !s.as_bytes().contains(&b'(') && parse_int(s).is_none() {
            if s.bytes().all(is_symbol_byte) {
                return Ok(Operand::Label(Sym::intern(s)));
            }
            return Err(bad(format!("bad branch target `{s}`")));
        }
        Ok(Operand::Mem(parse_mem(s)?))
    }

    pub fn parse_statement(text: &str) -> Result<Instruction, IsaError> {
        let mut rest = text.trim();
        let mut lock = false;
        if let Some(r) = rest.strip_prefix("lock") {
            if r.starts_with(char::is_whitespace) {
                lock = true;
                rest = r.trim_start();
            }
        }
        let (mnem_str, ops_str) = match rest.find(char::is_whitespace) {
            Some(i) => (&rest[..i], rest[i..].trim()),
            None => (rest, ""),
        };
        let parsed = parse_mnemonic(mnem_str)
            .ok_or_else(|| bad(format!("unknown mnemonic `{mnem_str}`")))?;
        let is_branch = parsed.mnemonic.is_branch() || parsed.mnemonic == Mnemonic::Call;
        let mut operands = Operands::new();
        if !ops_str.is_empty() {
            let ob = ops_str.as_bytes();
            let mut depth = 0usize;
            let mut start = 0usize;
            for (k, &c) in ob.iter().enumerate() {
                match c {
                    b'(' => depth += 1,
                    b')' => depth = depth.saturating_sub(1),
                    b',' if depth == 0 => {
                        let part = ops_str[start..k].trim();
                        if !part.is_empty() {
                            operands.push(parse_operand(part, is_branch)?);
                        }
                        start = k + 1;
                    }
                    _ => {}
                }
            }
            let part = ops_str[start..].trim();
            if !part.is_empty() {
                operands.push(parse_operand(part, is_branch)?);
            }
        }
        let mut insn = Instruction::from_att(mnem_str, operands)
            .ok_or_else(|| bad(format!("unsupported statement `{text}`")))?;
        insn.lock = lock;
        Ok(insn)
    }
}

static X86_ISA: X86Isa = X86Isa;
static A64_ISA: A64Isa = A64Isa;

/// The registry: look up the `Isa` vtable for an [`IsaId`].
pub fn isa(id: IsaId) -> &'static dyn Isa {
    match id {
        IsaId::X86_64 => &X86_ISA,
        IsaId::Aarch64 => &A64_ISA,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time proof that `Isa` stays object-safe: the registry
    // hands out `&dyn Isa`, and this signature will not compile if a
    // future change breaks dyn-compatibility.
    fn _assert_object_safe(_: &dyn Isa) {}

    // And that it keeps working as a generic bound.
    fn _assert_generic_bound<I: Isa + ?Sized>(i: &I) -> IsaId {
        i.id()
    }

    #[test]
    fn isa_names_round_trip() {
        for id in IsaId::ALL {
            assert_eq!(IsaId::from_name(id.name()), Some(id));
            assert_eq!(IsaId::from_tag(id.tag()), Some(id));
            assert_eq!(isa(id).id(), id);
        }
        assert_eq!(IsaId::from_name("amd64"), Some(IsaId::X86_64));
        assert_eq!(IsaId::from_name("arm64"), Some(IsaId::Aarch64));
        assert_eq!(IsaId::from_name("riscv"), None);
        assert_eq!(IsaId::from_tag(0), None);
    }

    #[test]
    fn neutral_insn_static_dispatch_matches_x86_direct_calls() {
        let x = mao_x86::Instruction::from_att("ret", vec![]).unwrap();
        let n = Insn::from(x.clone());
        assert_eq!(n.isa(), IsaId::X86_64);
        assert_eq!(
            encoded_length(&n, BranchForm::Rel32).unwrap(),
            mao_x86::encode::encoded_length(&x, BranchForm::Rel32).unwrap()
        );
        assert_eq!(n.x86(), Some(&x));
        assert!(n.a64().is_none());
    }

    #[test]
    fn a64_insns_are_fixed_width_and_never_relaxable() {
        let i = mao_aarch64::parse_insn("b.eq\t.L1").unwrap();
        let n = Insn::from(i);
        assert_eq!(n.isa(), IsaId::Aarch64);
        assert_eq!(encoded_length(&n, BranchForm::Rel8).unwrap(), 4);
        assert_eq!(encoded_length(&n, BranchForm::Rel32).unwrap(), 4);
        assert_eq!(branch_lengths(&n).unwrap(), (4, 4));
        assert!(!relaxable_branch(&n));
        assert!(n.is_branch());
        assert_eq!(n.target_label(), Some(".L1"));
    }

    #[test]
    fn parse_hooks_dispatch_through_the_vtable() {
        let x = isa(IsaId::X86_64).parse_insn("ret").unwrap();
        assert_eq!(x.isa(), IsaId::X86_64);
        let a = isa(IsaId::Aarch64).parse_insn("add\tx0, x1, #8").unwrap();
        assert_eq!(a.isa(), IsaId::Aarch64);
        assert!(isa(IsaId::Aarch64).parse_insn("mov\tx0").is_err());
        assert!(isa(IsaId::X86_64).knows_mnemonic("movq"));
        assert!(!isa(IsaId::X86_64).knows_mnemonic("b.eq"));
        assert!(isa(IsaId::Aarch64).knows_mnemonic("b.eq"));
    }

    #[test]
    fn effect_summaries_reflect_the_tables() {
        let cmp = isa(IsaId::Aarch64).parse_insn("cmp\tx0, #0").unwrap();
        let eff = effect_summary(&cmp);
        assert!(eff.defs_flags && !eff.uses_flags);
        let ldr = isa(IsaId::Aarch64).parse_insn("ldr\tx0, [x1]").unwrap();
        assert!(effect_summary(&ldr).mem_read);
        let add = isa(IsaId::X86_64).parse_insn("addq\t%rax, %rbx").unwrap();
        assert!(effect_summary(&add).defs_flags);
    }

    #[test]
    fn nop_padding_respects_alignment_policy() {
        let x86 = isa(IsaId::X86_64);
        let pads = x86.nop_pad(7).unwrap();
        let total: usize = pads
            .iter()
            .map(|i| encoded_length(i, BranchForm::Rel32).unwrap())
            .sum();
        assert_eq!(total, 7);

        let a64 = isa(IsaId::Aarch64);
        assert_eq!(a64.nop_pad(8).unwrap().len(), 2);
        assert!(matches!(
            a64.nop_pad(6),
            Err(IsaError::BadPadding { requested: 6 })
        ));
        assert_eq!(a64.align_policy().insn_alignment, 4);
    }

    #[test]
    fn cost_table_binding_is_isa_checked() {
        let x86 = isa(IsaId::X86_64);
        assert!(x86.accepts_cost_table(""));
        assert!(x86.accepts_cost_table("x86-64"));
        assert!(!x86.accepts_cost_table("aarch64"));
        let a64 = isa(IsaId::Aarch64);
        assert!(a64.accepts_cost_table("aarch64"));
        assert!(!a64.accepts_cost_table(""));
    }
}
