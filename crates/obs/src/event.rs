//! Structured trace events.
//!
//! The old `PassContext::trace` pushed bare strings; a [`TraceEvent`] keeps
//! the same human-readable message but adds the pieces machine consumers
//! need: a verbosity level, the emitting scope (pass name), and key=value
//! fields. The legacy `[mao] <line>` stderr output is produced by
//! [`TraceEvent::legacy_line`], so existing tooling that scrapes stderr
//! keeps working unchanged while the JSON/profiling paths get structure.
//!
//! Events are built *lazily*: the tracing entry points take a closure, so a
//! filtered-out level never formats anything.

use std::fmt::Display;
use std::fmt::Write as _;

/// One structured trace event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceEvent {
    /// Verbosity level; filled by the emitting context from the call.
    pub level: u8,
    /// Emitting scope — the pass name for pipeline events. Filled by the
    /// context when left empty.
    pub scope: String,
    /// The human-readable line, exactly as the legacy tracer printed it.
    pub message: String,
    /// Structured key=value attachments.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// An event carrying just a message (scope and level filled by the
    /// emitting context).
    pub fn new(message: impl Into<String>) -> TraceEvent {
        TraceEvent {
            message: message.into(),
            ..TraceEvent::default()
        }
    }

    /// Attach a key=value field (builder style).
    pub fn field(mut self, key: &str, value: impl Display) -> TraceEvent {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Override the scope (normally inherited from the pass context).
    pub fn scope(mut self, scope: impl Into<String>) -> TraceEvent {
        self.scope = scope.into();
        self
    }

    /// The legacy rendering: the bare message, exactly what the pre-event
    /// tracer pushed and the driver printed as `[mao] <line>`.
    pub fn legacy_line(&self) -> &str {
        &self.message
    }

    /// The structured rendering: `scope: message key=value ...` — used
    /// where the consumer wants the fields inline (profiling dumps).
    pub fn render_structured(&self) -> String {
        let mut out = String::new();
        if !self.scope.is_empty() {
            let _ = write!(out, "[{}] ", self.scope);
        }
        out.push_str(&self.message);
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_line_is_the_bare_message() {
        let ev = TraceEvent::new("REDTEST: 3 removed")
            .field("removed", 3)
            .scope("REDTEST");
        assert_eq!(ev.legacy_line(), "REDTEST: 3 removed");
        assert_eq!(
            ev.render_structured(),
            "[REDTEST] REDTEST: 3 removed removed=3"
        );
    }

    #[test]
    fn default_event_is_empty() {
        let ev = TraceEvent::new("x");
        assert_eq!(ev.level, 0);
        assert!(ev.scope.is_empty());
        assert!(ev.fields.is_empty());
        assert_eq!(ev.render_structured(), "x");
    }
}
