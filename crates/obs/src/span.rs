//! Nested spans: enter/exit timing with thread-safe aggregation.
//!
//! A [`Span`] is an RAII guard: [`Span::enter`] opens it, dropping it
//! closes it and records the measurement into the [`Recorder`] it was
//! opened against. Every enter therefore has exactly one matching exit,
//! and nesting is tracked per thread — a span opened while another span is
//! live on the same thread records that span as its parent, which is what
//! makes the Chrome-trace export render a proper flame graph.
//!
//! Recorders come in three modes:
//!
//! * **Off** — `Span::enter` is one branch; no clock read, no allocation.
//! * **Aggregating** — only per-(category, name) totals are kept, bounded
//!   by [`MAX_TOTAL_KEYS`], so a daemon can run forever. This feeds the
//!   span section of the `stats` snapshot.
//! * **Recording** — every span record is kept and
//!   [`Recorder::chrome_trace_json`] exports them in Chrome trace format
//!   (load the file in `chrome://tracing` or Perfetto).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregation keys kept by an aggregating recorder before new (category,
/// name) pairs fold into the `other` bucket. Bounds daemon memory when span
/// names carry unbounded cardinality (per-function spans).
pub const MAX_TOTAL_KEYS: usize = 1024;

/// What a recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderMode {
    /// Totals only, bounded — for long-lived daemons.
    Aggregating,
    /// Every span record — for one-shot profiling and export.
    Recording,
}

/// One closed span, as kept by a recording recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the recorder.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dense per-process thread number (not the OS tid).
    pub tid: u64,
    /// Category (`pass`, `function`, `request`, ...).
    pub cat: String,
    /// Name within the category.
    pub name: String,
    /// Start, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Key=value attachments (`Span::arg` / `Span::counter`).
    pub args: Vec<(String, String)>,
}

/// Aggregated totals for one (category, name) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// Category.
    pub cat: String,
    /// Name (the literal `"other"` bucket absorbs overflow past
    /// [`MAX_TOTAL_KEYS`]).
    pub name: String,
    /// Number of spans closed under this key.
    pub count: u64,
    /// Cumulative wall-clock microseconds.
    pub total_us: u64,
}

#[derive(Debug, Default)]
struct Totals {
    map: BTreeMap<(String, String), (u64, u64)>,
}

impl Totals {
    fn record(&mut self, cat: &str, name: &str, dur_us: u64) {
        let key = if self.map.len() >= MAX_TOTAL_KEYS
            && !self.map.contains_key(&(cat.to_string(), name.to_string()))
        {
            (cat.to_string(), "other".to_string())
        } else {
            (cat.to_string(), name.to_string())
        };
        let slot = self.map.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += dur_us;
    }
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    mode: RecorderMode,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
    totals: Mutex<Totals>,
}

/// The span sink. Cloning shares the sink; the default recorder is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

thread_local! {
    /// Live span ids on this thread, innermost last. Shared across
    /// recorders: interleaving two live recorders on one thread would
    /// cross-link parents, which no in-tree layer does.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    /// Dense thread number for trace export (ThreadId has no stable u64).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

impl Recorder {
    /// A recorder that records nothing.
    pub fn off() -> Recorder {
        Recorder::default()
    }

    fn with_mode(mode: RecorderMode) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                mode,
                next_id: AtomicU64::new(1),
                records: Mutex::new(Vec::new()),
                totals: Mutex::new(Totals::default()),
            })),
        }
    }

    /// Totals-only recorder (bounded; daemon-safe).
    pub fn aggregating() -> Recorder {
        Recorder::with_mode(RecorderMode::Aggregating)
    }

    /// Full recorder (keeps every span; exportable as a Chrome trace).
    pub fn recording() -> Recorder {
        Recorder::with_mode(RecorderMode::Recording)
    }

    /// Is anything being recorded?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. Equivalent to [`Span::enter`].
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span {
            state: Some(SpanState {
                rec: inner.clone(),
                id,
                parent,
                cat,
                name: name.to_string(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Aggregated per-(category, name) totals, sorted by key.
    pub fn totals(&self) -> Vec<SpanTotal> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .totals
            .lock()
            .unwrap()
            .map
            .iter()
            .map(|((cat, name), (count, total_us))| SpanTotal {
                cat: cat.clone(),
                name: name.clone(),
                count: *count,
                total_us: *total_us,
            })
            .collect()
    }

    /// Every closed span record (empty unless in recording mode).
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.records.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Export every recorded span as Chrome trace format JSON — the
    /// `{"traceEvents": [...]}` object form, one complete (`"ph":"X"`)
    /// event per span, timestamps in microseconds since the recorder's
    /// epoch. Loads directly in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_str(&r.name),
                json_str(&r.cat),
                r.start_us,
                r.dur_us,
                r.tid,
            );
            out.push_str(",\"args\":{");
            for (j, (k, v)) in r.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string literal writer (escapes quotes, backslashes, and
/// control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct SpanState {
    rec: Arc<RecorderInner>,
    id: u64,
    parent: Option<u64>,
    cat: &'static str,
    name: String,
    start: Instant,
    args: Vec<(String, String)>,
}

/// An open span; closing (dropping) it records the measurement.
#[derive(Debug)]
pub struct Span {
    /// `None` when the recorder is off — every method is then a no-op.
    state: Option<SpanState>,
}

impl Span {
    /// Open a span against `recorder`. The paper-facing spelling of
    /// [`Recorder::span`]: `Span::enter(&rec, "pass", name)`.
    pub fn enter(recorder: &Recorder, cat: &'static str, name: &str) -> Span {
        recorder.span(cat, name)
    }

    /// Attach a key=value argument (rendered into the Chrome trace).
    pub fn arg(&mut self, key: &'static str, value: impl Display) {
        if let Some(state) = &mut self.state {
            state.args.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach a counter value — spelled separately from [`Span::arg`] to
    /// document intent at call sites, stored identically.
    pub fn counter(&mut self, key: &'static str, value: u64) {
        self.arg(key, value);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let dur_us = state.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are guards, so this thread's innermost open span is us;
            // be tolerant if a span was moved across threads before drop.
            if stack.last() == Some(&state.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != state.id);
            }
        });
        state
            .rec
            .totals
            .lock()
            .unwrap()
            .record(state.cat, &state.name, dur_us);
        if state.rec.mode == RecorderMode::Recording {
            let start_us = state.start.duration_since(state.rec.epoch).as_micros() as u64;
            state.rec.records.lock().unwrap().push(SpanRecord {
                id: state.id,
                parent: state.parent,
                tid: TID.with(|t| *t),
                cat: state.cat.to_string(),
                name: state.name,
                start_us,
                dur_us,
                args: state.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::off();
        let mut span = rec.span("pass", "X");
        span.arg("k", 1);
        drop(span);
        assert!(rec.totals().is_empty());
        assert!(rec.records().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn nesting_is_well_formed() {
        let rec = Recorder::recording();
        {
            let _outer = Span::enter(&rec, "pass", "OUTER");
            {
                let mut inner = Span::enter(&rec, "function", "f");
                inner.counter("edits", 3);
            }
            let _inner2 = Span::enter(&rec, "function", "g");
        }
        let records = rec.records();
        assert_eq!(records.len(), 3);
        let outer = records.iter().find(|r| r.name == "OUTER").unwrap();
        for name in ["f", "g"] {
            let child = records.iter().find(|r| r.name == name).unwrap();
            assert_eq!(child.parent, Some(outer.id), "{name} nests in OUTER");
            assert!(child.start_us >= outer.start_us);
            assert!(child.start_us + child.dur_us <= outer.start_us + outer.dur_us);
        }
        assert_eq!(outer.parent, None);
        let f = records.iter().find(|r| r.name == "f").unwrap();
        assert_eq!(f.args, vec![("edits".to_string(), "3".to_string())]);
    }

    #[test]
    fn cross_thread_spans_keep_their_own_stacks() {
        let rec = Recorder::recording();
        let _outer = Span::enter(&rec, "pass", "OUTER");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _s = Span::enter(&rec, "function", "worker");
                });
            }
        });
        drop(_outer);
        let records = rec.records();
        let workers: Vec<_> = records.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.parent, None, "worker threads have their own stack");
        }
    }

    #[test]
    fn aggregating_mode_keeps_totals_only() {
        let rec = Recorder::aggregating();
        for _ in 0..3 {
            let _s = rec.span("pass", "REDTEST");
        }
        let _other = rec.span("pass", "DCE");
        drop(_other);
        assert!(rec.records().is_empty(), "no per-span records kept");
        let totals = rec.totals();
        assert_eq!(totals.len(), 2);
        let redtest = totals.iter().find(|t| t.name == "REDTEST").unwrap();
        assert_eq!(redtest.count, 3);
        assert_eq!(redtest.cat, "pass");
    }

    #[test]
    fn totals_cardinality_is_bounded() {
        let rec = Recorder::aggregating();
        for i in 0..(MAX_TOTAL_KEYS + 50) {
            let _s = rec.span("function", &format!("f{i}"));
        }
        let totals = rec.totals();
        assert!(totals.len() <= MAX_TOTAL_KEYS + 1);
        let other = totals.iter().find(|t| t.name == "other").unwrap();
        assert_eq!(other.count, 50, "overflow folds into the `other` bucket");
        let total_count: u64 = totals.iter().map(|t| t.count).sum();
        assert_eq!(total_count, (MAX_TOTAL_KEYS + 50) as u64);
    }

    #[test]
    fn chrome_export_escapes_and_shapes() {
        let rec = Recorder::recording();
        {
            let mut s = rec.span("pass", "quote\"back\\slash");
            s.arg("note", "line\nbreak");
        }
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("quote\\\"back\\\\slash"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.ends_with("]}"));
    }
}
