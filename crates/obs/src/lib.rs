//! `mao-obs` — the unified telemetry layer.
//!
//! The paper positions MAO as production compiler infrastructure ("plugged
//! into the build process at Google"); operating it that way needs a way to
//! see *inside* a run. This crate is the std-only observability substrate
//! every other layer records into:
//!
//! * [`span`] — lightweight nested spans ([`Span::enter`]) with wall-time,
//!   key=value attachments, and thread-safe aggregation into a
//!   [`Recorder`]. A full recording exports as Chrome-trace-format JSON
//!   (`chrome://tracing` / Perfetto); an aggregating recorder keeps only
//!   per-(category, name) totals, bounded, for long-lived daemons.
//! * [`metrics`] — a registry of named monotonic [`Counter`]s and
//!   fixed-bucket [`Histogram`]s, rendered in Prometheus text exposition
//!   format.
//! * [`event`] — structured trace events ([`TraceEvent`]: level, scope,
//!   message, key=value fields) that replace the old ad-hoc string
//!   tracing; the legacy `[mao] <line>` stderr format is one rendering of
//!   an event.
//! * [`prom`] — the Prometheus text builder and a validator used by tests
//!   and CI to keep the `metrics` endpoint honest.
//!
//! The whole crate is deliberately dependency-free and cheap when disabled:
//! a disabled [`Recorder`] makes [`Span::enter`] a single branch with no
//! allocation and no clock read, and trace events are built lazily behind
//! closures so a filtered-out level costs nothing.

pub mod event;
pub mod metrics;
pub mod prom;
pub mod span;

pub use event::TraceEvent;
pub use metrics::{Counter, Histogram, HistogramSnapshot, Metrics, US_BUCKETS};
pub use prom::PromText;
pub use span::{Recorder, RecorderMode, Span, SpanRecord, SpanTotal};

use std::sync::Arc;

/// The telemetry bundle handed through the pass pipeline and the service:
/// one span recorder plus one metrics registry. Cloning is cheap (two
/// refcounts) and every clone records into the same sinks.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Span sink. Disabled by default.
    pub recorder: Recorder,
    /// Counter/histogram registry.
    pub metrics: Arc<Metrics>,
}

impl Obs {
    /// Telemetry that records nothing: spans are no-ops and metrics go to a
    /// private throwaway registry. This is the default for code paths that
    /// were not handed an observer.
    pub fn off() -> Obs {
        Obs::default()
    }

    /// Aggregating telemetry for long-lived processes: span *totals* are
    /// kept (bounded), individual span records are not.
    pub fn aggregating() -> Obs {
        Obs {
            recorder: Recorder::aggregating(),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Full recording for one-shot profiling (`mao --profile`): every span
    /// is kept and can be exported as a Chrome trace.
    pub fn recording() -> Obs {
        Obs {
            recorder: Recorder::recording(),
            metrics: Arc::new(Metrics::new()),
        }
    }
}
